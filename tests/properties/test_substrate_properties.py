"""Property-based tests of the simulator substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.apps.base import RankProgram
from repro.simmpi import World
from repro.simmpi.engine import Engine
from repro.simmpi.message import Envelope
from repro.simmpi.network import Network, TimingModel
from repro.simmpi.topology import CartGrid, balanced_dims


@settings(max_examples=50, deadline=None)
@given(delays=st.lists(st.floats(min_value=0, max_value=1e-3,
                                 allow_nan=False), min_size=1, max_size=40))
def test_engine_dispatches_in_nondecreasing_time(delays):
    eng = Engine()
    times = []
    for d in delays:
        eng.schedule(d, lambda: times.append(eng.now))
    eng.run()
    assert times == sorted(times)
    assert len(times) == len(delays)


@settings(max_examples=50, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=10**7),
                      min_size=1, max_size=30),
       jitter=st.floats(min_value=0.0, max_value=0.9))
def test_network_fifo_per_channel(sizes, jitter):
    eng = Engine()
    net = Network(eng, TimingModel(latency=1e-6, bandwidth=1e8, jitter=jitter),
                  seed=1)
    seen = []
    net.attach(1, lambda env: seen.append(env.meta["k"]))
    for k, size in enumerate(sizes):
        env = Envelope(src=0, dst=1, tag=0, payload=b"", size=size)
        env.meta["k"] = k
        net.transmit(env)
    eng.run()
    assert seen == list(range(len(sizes)))


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=1, max_value=512),
       d=st.integers(min_value=1, max_value=4))
def test_balanced_dims_always_factor(n, d):
    dims = balanced_dims(n, d)
    prod = 1
    for x in dims:
        prod *= x
    assert prod == n and len(dims) == d


@settings(max_examples=30, deadline=None)
@given(dims=st.lists(st.integers(min_value=1, max_value=6), min_size=1,
                     max_size=3))
def test_cart_grid_shift_inverse(dims):
    g = CartGrid(tuple(dims), periodic=True)
    for rank in range(g.size):
        for dim in range(g.ndims):
            fwd = g.shift(rank, dim, +1)
            assert fwd is not None
            assert g.shift(fwd, dim, -1) == rank


class RandomRing(RankProgram):
    """Ring reduction with seeded per-rank payload sizes; used to check the
    whole substrate is deterministic for a given seed."""

    def __init__(self, rank, size, seed=0):
        super().__init__(rank, size)
        rng = np.random.default_rng(seed * 1000 + rank)
        self.state = {"it": 0, "niters": 5,
                      "data": rng.standard_normal(1 + rank % 3), "acc": 0.0}

    def run(self, api):
        nxt = (api.rank + 1) % api.size
        prv = (api.rank - 1) % api.size
        while self.state["it"] < self.state["niters"]:
            yield api.send(nxt, self.state["data"].copy(), tag=1)
            got = yield api.recv(prv, tag=1)
            self.state["acc"] += float(np.sum(got))
            total = yield from api.allreduce(self.state["acc"])
            self.state["acc"] = total / api.size
            self.state["it"] += 1


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000),
       n=st.integers(min_value=2, max_value=7))
def test_simulation_bit_reproducible(seed, n):
    def run():
        world = World(n, lambda r, s: RandomRing(r, s, seed=seed))
        world.launch()
        t = world.run()
        return t, [p.state["acc"] for p in world.programs], \
            world.tracer.total_app_messages()

    assert run() == run()


@settings(max_examples=15, deadline=None)
@given(n=st.integers(min_value=2, max_value=9),
       values=st.lists(st.floats(min_value=-100, max_value=100,
                                 allow_nan=False), min_size=9, max_size=9))
def test_allreduce_matches_local_sum(n, values):
    class P(RankProgram):
        def __init__(self, rank, size):
            super().__init__(rank, size)
            self.state = {"out": None}

        def run(self, api):
            self.state["out"] = yield from api.allreduce(values[api.rank])

    world = World(n, P)
    world.launch()
    world.run()
    expected = sum(values[:n])
    for p in world.programs:
        assert abs(p.state["out"] - expected) < 1e-9 * max(1.0, abs(expected))
