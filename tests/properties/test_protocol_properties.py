"""Property-based tests of the protocol's core invariants (hypothesis).

These check the paper's Theorem 1 (validity after failures) over
randomized failure schedules, plus the structural invariants the Section
IV proof leans on (Prop. 1 phase monotonicity, the logging rule, recovery
-line sanity)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.apps.stencil import Stencil1D
from repro.core import ProtocolConfig, build_ft_world
from repro.core.recovery import compute_recovery_line

NPROCS = 5


def factory(rank, size):
    return Stencil1D(rank, size, niters=20, cells=3)


def config():
    return ProtocolConfig(checkpoint_interval=2.5e-5, rank_stagger=2e-6)


def reference():
    world, _ = build_ft_world(NPROCS, factory, config())
    world.launch()
    world.run()
    return world


_REF = None


def ref():
    global _REF
    if _REF is None:
        _REF = reference()
    return _REF


@settings(max_examples=25, deadline=None)
@given(
    rank=st.integers(min_value=0, max_value=NPROCS - 1),
    frac=st.floats(min_value=0.05, max_value=0.95),
)
def test_validity_under_random_single_failure(rank, frac):
    """Theorem 1: any (time, rank) fail-stop yields the failure-free send
    sequences and results."""
    ref_world = ref()
    t = frac * ref_world.engine.now
    world, ctl = build_ft_world(NPROCS, factory, config())
    ctl.inject_failure(t, rank)
    ctl.arm()
    world.launch()
    world.run()
    assert ctl.stall_flushes == 0  # single failures never need the rescue
    ref_seqs = ref_world.tracer.logical_send_sequences()
    seqs = world.tracer.logical_send_sequences()
    assert ref_seqs == seqs
    for p_ref, p in zip(ref_world.programs, world.programs):
        np.testing.assert_allclose(p_ref.result(), p.result())


@settings(max_examples=12, deadline=None)
@given(
    ranks=st.sets(st.integers(min_value=0, max_value=NPROCS - 1),
                  min_size=2, max_size=3),
    frac=st.floats(min_value=0.1, max_value=0.9),
)
def test_validity_under_concurrent_failures(ranks, frac):
    ref_world = ref()
    t = frac * ref_world.engine.now
    world, ctl = build_ft_world(NPROCS, factory, config())
    for r in ranks:
        ctl.inject_failure(t, r)
    ctl.arm()
    world.launch()
    world.run()
    assert ref_world.tracer.logical_send_sequences() == world.tracer.logical_send_sequences()
    for p_ref, p in zip(ref_world.programs, world.programs):
        np.testing.assert_allclose(p_ref.result(), p.result())


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_recovery_line_sanity_on_random_spe(data):
    """Random SPE tables: the fix-point (a) includes every failed rank,
    (b) never assigns an epoch above the failed rank's restart, (c) is
    monotone in the failure set."""
    nprocs = data.draw(st.integers(min_value=2, max_value=6))
    tables = {}
    for rank in range(nprocs):
        nepochs = data.draw(st.integers(min_value=1, max_value=4))
        table = {}
        date = 0
        for e in range(1, nepochs + 1):
            peers = {}
            for peer in range(nprocs):
                if peer == rank:
                    continue
                if data.draw(st.booleans()):
                    # non-logged constraint: epoch_recv <= epoch_send would
                    # be typical, but the fix-point must tolerate anything
                    peers[peer] = data.draw(st.integers(min_value=1, max_value=4))
            table[e] = (date, peers)
            date += data.draw(st.integers(min_value=0, max_value=5))
        tables[rank] = table
    failed = data.draw(st.sets(st.integers(min_value=0, max_value=nprocs - 1),
                               min_size=1, max_size=nprocs))
    restarts = {f: max(tables[f]) for f in failed}
    rl = compute_recovery_line(tables, restarts)
    for f in failed:
        assert f in rl
        assert rl[f][0] <= restarts[f]
    for rank, (epoch, date) in rl.items():
        assert epoch in tables[rank]
        assert tables[rank][epoch][0] == date
    # monotonicity: adding a failure never removes ranks or raises epochs
    one = next(iter(failed))
    rl_one = compute_recovery_line(tables, {one: restarts[one]})
    assert set(rl_one) <= set(rl)
    for rank, (epoch, _d) in rl_one.items():
        assert rl[rank][0] <= epoch


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_phase_monotone_along_deliveries(seed):
    """Prop. 1 observable: a receiver's phase after any delivery is at
    least the message's phase (checked over a whole run via piggybacked
    metadata)."""
    from repro.core.protocol import SDProtocol

    world, ctl = build_ft_world(NPROCS, factory,
                                ProtocolConfig(checkpoint_interval=2e-5,
                                               checkpoint_jitter=0.5,
                                               checkpoint_seed=seed,
                                               rank_stagger=1e-6))
    violations = []
    for proto in ctl.protocols:
        orig = proto.on_message

        def wrapped(env, proto=proto, orig=orig):
            ok = orig(env)
            if ok and proto.state.phase < env.meta["phase"]:
                violations.append((proto.rank, env.meta))
            return ok

        proto.on_message = wrapped
    world.launch()
    world.run()
    assert violations == []


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_logging_rule_iff_epoch_crossing(seed):
    """Every logged message crossed epochs upward; every SPE entry did not."""
    world, ctl = build_ft_world(NPROCS, factory,
                                ProtocolConfig(checkpoint_interval=2e-5,
                                               checkpoint_jitter=0.4,
                                               checkpoint_seed=seed,
                                               rank_stagger=1e-6))
    world.launch()
    world.run()
    for proto in ctl.protocols:
        for lm in proto.state.logs:
            assert lm.epoch_send < lm.epoch_recv
        for epoch, rec in proto.state.spe.items():
            for peer, epoch_recv in rec.recv_epoch.items():
                assert epoch_recv <= epoch
