"""Equivalence property: the worklist recovery-line solver (both its
incremental untraced path and its traced full-rescan path) computes the
same least fix-point as the literal Fig. 4 transcription.

The incremental path's correctness rests on a subtle invariant — each
receiver's consumed edge prefix covers every edge with ``epoch_recv``
at or above the *minimum* bound seen so far — so it is checked three ways:

* randomized SPE tables and failure sets (including multi-failure unions);
* repeated solves on one solver instance (the per-solve cursor must reset,
  and the once-per-snapshot sorted index must not be corrupted by use —
  this is exactly the Table I / rollback-analysis usage pattern);
* the full protocol stack on the minimized chaos reproducer schedules
  (second failure during network drain, re-kill of a just-restored rank,
  two rounds queued back-to-back), where every live ``solve`` call is
  cross-checked against the naive reference mid-recovery.
"""

import random

import pytest

from repro.chaos.schedule import FailureSpec, TrialSchedule
from repro.chaos.trial import run_trial_schedule
from repro.core.recovery import NaiveRecoveryLineSolver, RecoveryLineSolver


def _random_world(rng: random.Random):
    """Random SPE tables plus a failure set drawn from their epochs."""
    nprocs = rng.randint(2, 12)
    tables = {}
    for rank in range(nprocs):
        n_epochs = rng.randint(1, 5)
        spe = {}
        date = 0
        for epoch in range(1, n_epochs + 1):
            spe[epoch] = (date, {})
            date += rng.randint(0, 40)
        tables[rank] = spe
    # edges: sender k, from one of its epochs, to a peer, received in an
    # arbitrary epoch (receptions need not exist in the receiver's SPE —
    # only restart epochs must, and those are always sender-side epochs)
    for k in range(nprocs):
        for epoch_send in tables[k]:
            for _ in range(rng.randint(0, 3)):
                j = rng.randrange(nprocs)
                if j == k:
                    continue
                epoch_recv = rng.randint(1, 6)
                peers = tables[k][epoch_send][1]
                peers[j] = max(peers.get(j, 0), epoch_recv)
    n_failed = rng.randint(1, min(3, nprocs))
    failed = {}
    for rank in rng.sample(range(nprocs), n_failed):
        failed[rank] = rng.choice(sorted(tables[rank]))
    return tables, failed


def _assert_equivalent(tables, failed):
    ref = NaiveRecoveryLineSolver(tables).solve(failed)
    solver = RecoveryLineSolver(tables)
    fast = solver.solve(failed)
    steps = []
    traced = RecoveryLineSolver(tables).solve(
        failed, on_step=lambda *a: steps.append(a)
    )
    assert fast == ref
    assert traced == ref
    # the mapping's iteration order must also be path-independent (it can
    # leak into restore scheduling)
    assert list(fast) == list(ref) == list(traced)
    # the count-only path (Table I analysis) sees the same line size, and
    # repeating it on the same instance must not corrupt the scratch state
    assert solver.solve_count(failed) == len(ref)
    assert solver.solve_count(failed) == len(ref)
    assert solver.solve(failed) == ref
    # every traced step lowers a bound onto an edge that exists
    for k, epoch_send, j, _epoch_recv, _bound in steps:
        assert epoch_send in tables[k]
    return solver, ref


def test_randomized_tables_and_failures():
    rng = random.Random(20110)
    for _ in range(300):
        tables, failed = _random_world(rng)
        _assert_equivalent(tables, failed)


def test_repeated_solves_reuse_one_solver():
    """The rollback analysis builds one solver per snapshot and solves per
    failed rank: per-solve cursors must not bleed between solves."""
    rng = random.Random(4096)
    for _ in range(40):
        tables, _ = _random_world(rng)
        solver = RecoveryLineSolver(tables)
        for rank in sorted(tables):
            for epoch in sorted(tables[rank]):
                failed = {rank: epoch}
                assert solver.solve(failed) == NaiveRecoveryLineSolver(
                    tables
                ).solve(failed)


def test_multi_failure_union_matches_reference():
    rng = random.Random(7)
    for _ in range(100):
        tables, _ = _random_world(rng)
        ranks = sorted(tables)
        failed = {r: min(tables[r]) for r in ranks[: len(ranks) // 2 + 1]}
        _assert_equivalent(tables, failed)


def test_sparse_rank_ids_fall_back_to_dict_path():
    """Non-contiguous rank ids (offline analyses can slice worlds) must
    take the dict-backed path and still match the reference."""
    rng = random.Random(99)
    for _ in range(60):
        tables, failed = _random_world(rng)
        remap = {r: r * 1_000_003 + 17 for r in tables}
        tables = {
            remap[k]: {
                e: (d, {remap[j]: er for j, er in peers.items()})
                for e, (d, peers) in spe.items()
            }
            for k, spe in tables.items()
        }
        failed = {remap[r]: e for r, e in failed.items()}
        solver, _ = _assert_equivalent(tables, failed)
        assert solver._dense_n is None  # really exercised the dict path


@pytest.mark.parametrize(
    "failures",
    [
        # the minimized chaos reproducers (tests/chaos/test_reproducers.py):
        # multi-failure and mid-recovery geometries
        (FailureSpec(1, "at", frac=0.5), FailureSpec(2, "drain", delta=1.0e-6)),
        (FailureSpec(1, "at", frac=0.5), FailureSpec(1, "restored", delta=1.2e-4)),
        (
            FailureSpec(1, "at", frac=0.4),
            FailureSpec(2, "drain", delta=0.0),
            FailureSpec(3, "drain", delta=0.0),
        ),
    ],
    ids=["drain-window", "rekill-restored", "queued-rounds"],
)
def test_live_recovery_solves_match_reference(monkeypatch, failures):
    """Cross-check every recovery-line solve the protocol stack performs
    while driving the reproducer schedules — real SPE tables, multiple
    failures, solves happening mid-recovery."""
    from repro.core import recovery as rec

    orig = rec.RecoveryLineSolver.solve
    solves = []

    def checking(self, failed_restarts, on_step=None):
        out = orig(self, failed_restarts, on_step)
        ref = NaiveRecoveryLineSolver(self.spe_tables).solve(failed_restarts)
        assert out == ref and list(out) == list(ref)
        # exercise the *other* path on the same live tables too
        if on_step is None:
            other = orig(
                rec.RecoveryLineSolver(self.spe_tables),
                failed_restarts,
                lambda *a: None,
            )
        else:
            other = orig(rec.RecoveryLineSolver(self.spe_tables), failed_restarts)
        assert other == ref
        solves.append(len(failed_restarts))
        return out

    monkeypatch.setattr(rec.RecoveryLineSolver, "solve", checking)
    sched = TrialSchedule(
        seed=3, kernel="stencil", nprocs=4, niters=20, failures=failures
    )
    result = run_trial_schedule(sched)
    assert result.passed, {
        name: result.detail(name) for name in result.failed_oracles()
    }
    assert solves, "schedule drove no recovery-line solves"
