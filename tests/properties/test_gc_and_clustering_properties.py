"""Hypothesis properties: garbage-collection safety and clustering
invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.theory import (
    expected_rollback_fraction,
    rollback_fraction_given_position,
)
from repro.apps.stencil import Stencil1D
from repro.core import ProtocolConfig, build_ft_world
from repro.core.clustering import (
    Clustering,
    block_clusters,
    cluster_epochs,
    modularity_clusters,
)


@settings(max_examples=10, deadline=None)
@given(
    gc_frac=st.floats(min_value=0.1, max_value=0.8),
    fail_frac=st.floats(min_value=0.2, max_value=0.95),
    rank=st.integers(min_value=0, max_value=5),
)
def test_gc_never_breaks_recovery(gc_frac, fail_frac, rank):
    """Section III-A-4's safety claim as a property: garbage-collect at a
    random time, fail a random rank at a random later time — recovery must
    still find every checkpoint it asks for, and the execution stays
    valid."""
    def factory(r, s):
        return Stencil1D(r, s, niters=30, cells=4)

    cfg = ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=2e-6)
    ref, _ = _ref_cache(factory, cfg)
    horizon = ref.engine.now
    world, ctl = build_ft_world(6, factory, cfg)
    world.engine.schedule_at(gc_frac * horizon, ctl.collect_garbage)
    t_fail = max(fail_frac, gc_frac + 0.05) * horizon
    ctl.inject_failure(t_fail, rank)
    ctl.arm()
    world.launch()
    world.run()
    for r in range(6):
        np.testing.assert_allclose(
            ref.programs[r].result(), world.programs[r].result()
        )


_CACHE = {}


def _ref_cache(factory, cfg):
    key = "stencil6"
    if key not in _CACHE:
        world, ctl = build_ft_world(6, factory, cfg)
        world.launch()
        world.run()
        _CACHE[key] = (world, ctl)
    return _CACHE[key]


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_cluster_epochs_always_distinct_and_spaced(data):
    nclusters = data.draw(st.integers(min_value=1, max_value=12))
    spacing = data.draw(st.integers(min_value=2, max_value=5))
    order = data.draw(st.permutations(list(range(nclusters))))
    cluster_of = [c for c in range(nclusters) for _ in range(2)]
    epochs = cluster_epochs(cluster_of, spacing, list(order))
    values = sorted(epochs.values())
    assert len(set(values)) == nclusters
    assert all(b - a >= 2 for a, b in zip(values, values[1:]))


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_reconfiguration_never_exceeds_half_inter(data):
    n = data.draw(st.sampled_from([8, 12, 16]))
    ncl = data.draw(st.sampled_from([2, 4]))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
    m = rng.integers(0, 40, size=(n, n))
    np.fill_diagonal(m, 0)
    best = Clustering(block_clusters(n, ncl), m).reconfigure_epochs()
    assert best.predicted_log_fraction() <= best.isolation() / 2 + 1e-9


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_modularity_clusters_are_balanced_partition(data):
    n = data.draw(st.sampled_from([8, 12, 16]))
    ncl = data.draw(st.sampled_from([2, 4]))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
    m = rng.integers(0, 10, size=(n, n))
    np.fill_diagonal(m, 0)
    clusters = modularity_clusters(m, ncl)
    assert len(clusters) == n
    assert set(clusters) <= set(range(ncl))
    sizes = [clusters.count(c) for c in range(ncl)]
    assert max(sizes) <= 2 * n / ncl + 1


@settings(max_examples=50, deadline=None)
@given(p=st.integers(min_value=1, max_value=64))
def test_theory_is_average_of_positions(p):
    avg = sum(rollback_fraction_given_position(p, k) for k in range(p)) / p
    assert abs(avg - expected_rollback_fraction(p)) < 1e-12
