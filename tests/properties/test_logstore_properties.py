"""Hypothesis property: the Fig. 5 optimized channel reaches the same
logging decisions as the plain per-message-acknowledgement rule, for any
interleaving of sends, checkpoints and piggybacks."""

from hypothesis import given, settings, strategies as st

from repro.core.logstore import ReceiverChannel, SenderChannel

# script steps: ("send", small?) | ("sender_ckpt",) | ("receiver_ckpt",)
#               | ("piggyback",)
STEP = st.one_of(
    st.tuples(st.just("send"), st.booleans()),
    st.tuples(st.just("sender_ckpt")),
    st.tuples(st.just("receiver_ckpt")),
    st.tuples(st.just("piggyback")),
)


@settings(max_examples=200, deadline=None)
@given(script=st.lists(STEP, min_size=1, max_size=40))
def test_optimized_channel_matches_epoch_rule(script):
    sender = SenderChannel(eager_threshold=100)
    receiver = ReceiverChannel(eager_threshold=100)
    #: ssn -> should-log per the plain rule (epoch_send < epoch at delivery)
    expected: dict[int, bool] = {}
    for step in script:
        kind = step[0]
        if kind == "send":
            small = step[1]
            size = 10 if small else 1000
            msg, _blocking = sender.send(size)
            ack = receiver.deliver(msg)
            if msg.already_logged:
                expected[msg.ssn] = True
            else:
                expected[msg.ssn] = msg.epoch_send < receiver.epoch
            if ack is not None:
                sender.on_explicit_ack(*ack)
        elif kind == "sender_ckpt":
            sender.advance_epoch()
        elif kind == "receiver_ckpt":
            receiver.advance_epoch()
        elif kind == "piggyback":
            sender.on_piggyback(*receiver.piggyback())
    # final piggyback settles every outstanding copy
    sender.on_piggyback(*receiver.piggyback())

    logged = {ssn for (ssn, *_rest) in sender.log}
    for ssn, should in expected.items():
        if should:
            # must-log is strict: the epoch rule's coverage is what recovery
            # correctness depends on
            assert ssn in logged, f"ssn {ssn} should be logged"
        # over-logging is allowed (the piggyback path logs conservatively
        # when the receiver's epoch advanced before the confirmation), so
        # no assertion in the other direction — but confirmed entries must
        # never ALSO be logged
    confirmed = {ssn for ssn, *_rest in sender.confirmed}
    assert not (confirmed & logged), "a message cannot be both"


@settings(max_examples=100, deadline=None)
@given(script=st.lists(STEP, min_size=1, max_size=40))
def test_channel_never_leaks_copies(script):
    """After a settling piggyback, retained copies are only those the
    receiver has genuinely not received (here: none)."""
    sender = SenderChannel(eager_threshold=100)
    receiver = ReceiverChannel(eager_threshold=100)
    for step in script:
        kind = step[0]
        if kind == "send":
            msg, _ = sender.send(10 if step[1] else 1000)
            ack = receiver.deliver(msg)
            if ack is not None:
                sender.on_explicit_ack(*ack)
        elif kind == "sender_ckpt":
            sender.advance_epoch()
        elif kind == "receiver_ckpt":
            receiver.advance_epoch()
        elif kind == "piggyback":
            sender.on_piggyback(*receiver.piggyback())
    sender.on_piggyback(*receiver.piggyback())
    assert sender.unconfirmed == 0
