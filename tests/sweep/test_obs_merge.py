"""Cross-process observability merging: worker registries ship snapshots
back to the parent, and the merged registry is identical for any worker
count (inline vs. pool)."""

from repro.obs import MetricsRegistry
from repro.sweep import SweepTask, run_sweep


def obs_task(params):
    """Module-level (picklable) task exercising every instrument type."""
    obs = params["obs"]
    n = params["n"]
    obs.counter("task.runs").inc()
    obs.counter("task.n", ("n",)).inc(n, labels=(n,))
    g = obs.gauge("task.depth")
    g.inc(n)
    obs.histogram("task.size", (1.0, 10.0)).observe(float(n))
    obs.event("task.done", n=n)
    obs.flight.record(0, "send", uid=n)
    return {"n": n}


def tasks(count=4):
    return [SweepTask(name=f"t{i}", params={"n": i + 1}) for i in range(count)]


def run(workers):
    parent = MetricsRegistry()
    results = run_sweep(obs_task, tasks(), workers=workers,
                        obs=parent, collect_obs=True)
    assert all(r.ok for r in results)
    return parent, results


def comparable(reg):
    snap = reg.snapshot()
    # drop the parent-side sweep bookkeeping events (they carry wall-clock
    # durations); counters/histograms/flight are the determinism contract
    events = [(t, k, f) for t, k, f in snap["events"] if k != "sweep.task_done"]
    return snap["instruments"], events, snap["flight"]


def test_merged_obs_identical_inline_vs_pool():
    seq, seq_results = run(workers=1)
    par, par_results = run(workers=2)
    assert comparable(seq) == comparable(par)
    # per-result snapshots also identical in task order
    assert [r.obs for r in seq_results] == [r.obs for r in par_results]


def slot_task(params):
    """Task instrumented the slot-resolved way (the hot-path idiom):
    cells bound once, bare ``.n`` bumps, a per-rank flight sink."""
    obs = params["obs"]
    n = params["n"]
    runs = obs.counter_slot("slot.runs")
    sized = obs.counter("slot.bytes", ("src",)).slot((n,))
    for _ in range(n):
        runs.n += 1
        sized.n += 8
    obs.histogram("slot.size", (1.0, 10.0)).observe(float(n))
    sink = obs.flight.sink(0)
    sink.n += 1
    sink.append((sink.time.now, "send", 0, -1, n, 0, 0, 0, 0, None))
    return {"n": n}


def test_merged_export_byte_identical_workers_1_vs_4():
    """The PR 3 guarantee under the slot API: every exported artefact of
    the merged parent registry is byte-for-byte identical whether the
    sweep ran inline or on four workers."""
    from repro.obs.export import dump_flight, dump_metrics

    dumps = {}
    for workers in (1, 4):
        parent = MetricsRegistry()
        results = run_sweep(slot_task, tasks(), workers=workers,
                            obs=parent, collect_obs=True)
        assert all(r.ok for r in results)
        dumps[workers] = (
            dump_metrics(parent, fmt="jsonl"),
            dump_metrics(parent, fmt="csv"),
            dump_flight(parent, fmt="jsonl"),
        )
    assert dumps[1] == dumps[4]
    # sanity: the comparison is not vacuous
    assert "slot.runs" in dumps[1][0]
    assert dumps[1][2].count('"send"') == 4


def test_merge_happens_in_task_order():
    parent, _results = run(workers=3)
    # flight records concatenate in task order: uid sequence 1..4
    assert [rec[4] for rec in parent.flight.records(rank=0)] == [1, 2, 3, 4]
    assert parent.counter("task.runs").total == 4
    assert parent.gauge("task.depth").value == 1 + 2 + 3 + 4


def test_result_obs_excluded_from_json():
    _parent, results = run(workers=1)
    for r in results:
        assert r.obs is not None
        assert "obs" not in r.to_json()


def test_collect_obs_without_parent_registry_still_ships_snapshots():
    results = run_sweep(obs_task, tasks(2), workers=1, collect_obs=True)
    assert all(r.obs["instruments"] for r in results)


def test_no_collect_obs_keeps_results_lean():
    results = run_sweep(lambda p: p["n"], tasks(2), workers=1)
    assert all(r.obs is None for r in results)
