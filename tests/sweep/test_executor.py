"""Unit tests for the :mod:`repro.sweep` multiprocessing executor."""

import json
import os
import time

import pytest

from repro.obs import MetricsRegistry
from repro.sweep import SweepResult, SweepTask, run_sweep, save_results, task_seed
from repro.sweep.executor import _jsonable


# Task functions must live at module level so they pickle into workers.

def square(params):
    return params["x"] * params["x"]


def record_seed(params):
    return params["seed"]


def fail_on_odd(params):
    if params["x"] % 2:
        raise ValueError(f"odd input {params['x']}")
    return params["x"]


def structured(params):
    return {"rate": params["x"] / 2, "pair": (params["x"], "name")}


def _tasks(n):
    return [SweepTask(name=f"t{i}", params={"x": i}) for i in range(n)]


# ----------------------------------------------------------------------
# task_seed
# ----------------------------------------------------------------------

def test_task_seed_deterministic_and_distinct():
    assert task_seed(0, 0, "a") == task_seed(0, 0, "a")
    # any coordinate change moves the seed
    assert task_seed(0, 0, "a") != task_seed(1, 0, "a")
    assert task_seed(0, 0, "a") != task_seed(0, 1, "a")
    assert task_seed(0, 0, "a") != task_seed(0, 0, "b")


def test_task_seed_is_63_bit_non_negative():
    for i in range(50):
        s = task_seed(7, i, f"task-{i}")
        assert 0 <= s < 2**63


def test_task_seed_does_not_depend_on_hash_salt():
    """The documented reason for blake2b: ``hash()`` is salted per process,
    so per-task seeds must come from a content-addressed digest.  Pin the
    value so any accidental switch to ``hash()`` fails on the next run."""
    assert task_seed(0, 0, "pinned") == 7901061385613268754


# ----------------------------------------------------------------------
# run_sweep
# ----------------------------------------------------------------------

def test_sequential_sweep_returns_task_order():
    results = run_sweep(square, _tasks(5), workers=1)
    assert [r.index for r in results] == list(range(5))
    assert [r.value for r in results] == [0, 1, 4, 9, 16]
    assert all(r.ok and r.status == "ok" for r in results)


def test_parallel_matches_sequential():
    tasks = _tasks(6)
    seq = run_sweep(square, tasks, workers=1, base_seed=3)
    par = run_sweep(square, tasks, workers=2, base_seed=3)
    strip = lambda rs: [(r.index, r.name, r.status, r.value, r.seed)
                        for r in rs]
    assert strip(par) == strip(seq)


def test_seeds_injected_and_stable_across_worker_counts():
    tasks = _tasks(4)
    expected = [task_seed(11, i, t.name) for i, t in enumerate(tasks)]
    for workers in (1, 3):
        results = run_sweep(record_seed, tasks, workers=workers, base_seed=11)
        assert [r.value for r in results] == expected
        assert [r.seed for r in results] == expected


def test_error_isolation_sweep_continues():
    results = run_sweep(fail_on_odd, _tasks(5), workers=1)
    assert [r.status for r in results] == ["ok", "error", "ok", "error", "ok"]
    bad = results[1]
    assert not bad.ok
    assert bad.value is None
    assert "ValueError" in bad.error and "odd input 1" in bad.error
    assert "fail_on_odd" in bad.traceback


def test_error_isolation_in_workers():
    results = run_sweep(fail_on_odd, _tasks(5), workers=2)
    assert [r.status for r in results] == ["ok", "error", "ok", "error", "ok"]
    assert [r.index for r in results] == list(range(5))


def test_params_not_mutated_by_seed_injection():
    task = SweepTask(name="t", params={"x": 2})
    run_sweep(square, [task], workers=1)
    assert task.params == {"x": 2}  # seed went into a copy


def test_progress_callback_sees_every_result():
    seen = []
    run_sweep(square, _tasks(4), workers=1, on_progress=seen.append)
    assert sorted(r.index for r in seen) == list(range(4))


def test_obs_counters_track_completions():
    obs = MetricsRegistry()
    run_sweep(fail_on_odd, _tasks(4), workers=1, obs=obs)
    counter = obs.counter("sweep.tasks_completed", ("status",))
    assert counter.get(labels=("ok",)) == 2
    assert counter.get(labels=("error",)) == 2
    done = [e for e in obs.events if e.kind == "sweep.task_done"]
    assert len(done) == 4


def test_empty_sweep():
    assert run_sweep(square, [], workers=4) == []


# ----------------------------------------------------------------------
# save_results / to_json
# ----------------------------------------------------------------------

def test_save_results_structure(tmp_path):
    results = run_sweep(fail_on_odd, _tasks(3), workers=1, base_seed=5)
    out = tmp_path / "sweep.json"
    save_results(str(out), results, sweep_name="demo", extra={"ranks": 8})
    doc = json.loads(out.read_text())
    assert doc["sweep"] == "demo"
    assert doc["tasks"] == 3
    assert doc["ok"] == 2
    assert doc["errors"] == 1
    assert doc["extra"]["ranks"] == 8
    assert [r["index"] for r in doc["results"]] == [0, 1, 2]
    assert doc["results"][0]["value"] == 0
    assert doc["results"][1]["status"] == "error"
    assert "traceback" in doc["results"][1]
    assert "value" not in doc["results"][1]
    assert doc["results"][2]["seed"] == task_seed(5, 2, "t2")


def test_save_results_extra_cannot_clobber_document_keys(tmp_path):
    """Historically ``extra`` merged into the top level, so a key named
    ``results`` or ``ok`` silently replaced the document's own field."""
    results = run_sweep(square, _tasks(2), workers=1)
    out = tmp_path / "sweep.json"
    save_results(str(out), results, sweep_name="demo",
                 extra={"results": "clobber", "ok": -1, "tasks": 999})
    doc = json.loads(out.read_text())
    assert doc["tasks"] == 2 and doc["ok"] == 2  # document fields intact
    assert [r["index"] for r in doc["results"]] == [0, 1]
    assert doc["extra"] == {"results": "clobber", "ok": -1, "tasks": 999}


def test_to_json_handles_structured_values(tmp_path):
    results = run_sweep(structured, _tasks(2), workers=1)
    out = tmp_path / "sweep.json"
    save_results(str(out), results)
    doc = json.loads(out.read_text())
    assert doc["results"][1]["value"] == {"rate": 0.5, "pair": [1, "name"]}


def test_to_json_reprs_unserialisable_values():
    res = SweepResult(index=0, name="t", status="ok", value=object())
    encoded = res.to_json()
    assert isinstance(encoded["value"], str)
    json.dumps(encoded)  # must not raise


# ----------------------------------------------------------------------
# _jsonable key-collision handling
# ----------------------------------------------------------------------

def test_jsonable_disambiguates_colliding_stringified_keys():
    """``1`` and ``"1"`` both stringify to ``"1"``; they used to merge
    silently (last writer wins).  Both values must survive."""
    out = _jsonable({1: "int", "1": "str", None: "none", "None": "s"})
    assert out["1"] == "int"
    assert out["1#str"] == "str"
    assert out["None"] == "none"
    assert out["None#str"] == "s"
    assert len(out) == 4


def test_jsonable_collision_suffixes_are_deterministic():
    a = _jsonable({1: "a", "1": "b", 1.0: "c"})
    # 1 and 1.0 are equal dict keys, so only two entries exist
    assert a == {"1": "c", "1#str": "b"}
    out = _jsonable({"2": "s", 2: "i", "2#int": "taken"})
    assert out == {"2": "s", "2#int": "i", "2#int#str": "taken"}
    # the numbered suffix kicks in when the typed form is taken too
    out = _jsonable({"3": "a", "3#int": "b", 3: "c", (3,): {"3": 1, 3: 2}})
    assert out["3#int.2"] == "c"
    assert out["(3,)"] == {"3": 1, "3#int": 2}  # recursion disambiguates


def test_jsonable_strict_raises_on_collision_and_repr():
    with pytest.raises(ValueError, match="collide"):
        _jsonable({1: "a", "1": "b"}, strict=True)
    with pytest.raises(ValueError, match="content-stable"):
        _jsonable(object(), strict=True)
    # plain data passes through strict mode unchanged
    assert _jsonable({"a": [1, 2.5, None, True]}, strict=True) == \
        {"a": [1, 2.5, None, True]}


# ----------------------------------------------------------------------
# hard worker crashes (no exception, no result)
# ----------------------------------------------------------------------

def crash_hard(params):
    if params["x"] == 2:
        time.sleep(0.4)  # let innocent tasks drain first
        os._exit(13)  # simulated segfault/OOM kill: pool breaks
    return params["x"]


def test_worker_hard_crash_raises_lost_results():
    """A worker that dies without returning must not hang the sweep or
    silently drop its task: after a retry in a fresh pool, the sweep
    raises the historical lost-results error naming the task index."""
    with pytest.raises(RuntimeError,
                       match=r"sweep lost results for task indices \[2\]"):
        run_sweep(crash_hard, _tasks(4), workers=2)


# ----------------------------------------------------------------------
# obs snapshots from *error* results merge in task order
# ----------------------------------------------------------------------

def obs_then_fail(params):
    obs = params["obs"]
    n = params["x"]
    obs.counter("t.runs", ("n",)).inc(labels=(n,))
    obs.event("t.seen", n=n)
    if n % 2:
        raise ValueError(f"odd input {n}")
    return n


def _merged_export(workers):
    from repro.obs import dump_metrics

    parent = MetricsRegistry()
    results = run_sweep(obs_then_fail, _tasks(4), workers=workers,
                        obs=parent, collect_obs=True)
    assert [r.status for r in results] == ["ok", "error", "ok", "error"]
    order = [e.fields["n"] for e in parent.events if e.kind == "t.seen"]
    return dump_metrics(parent, "jsonl"), order


def test_error_result_obs_snapshots_merge_in_task_order():
    """Failing tasks still ship their partial obs snapshot, and the merge
    happens in task order for any worker count — error events from task 1
    land before task 2's even when a pool finished them out of order."""
    seq_export, seq_order = _merged_export(workers=1)
    par_export, par_order = _merged_export(workers=2)
    assert seq_order == [0, 1, 2, 3]
    assert par_order == [0, 1, 2, 3]
    assert par_export == seq_export


# ----------------------------------------------------------------------
# content-addressed cache round trip
# ----------------------------------------------------------------------

def test_cache_round_trip_byte_identity():
    """Second run against a warm cache: 100% hits, and every export —
    result JSON and the merged obs registry — byte-identical to the
    cold run (durations included: hits carry the cold run's)."""
    from repro.obs import dump_metrics
    from repro.service import ResultCache

    cache = ResultCache()

    def run(service_obs=None):
        parent = MetricsRegistry()
        results = run_sweep(obs_then_fail, _tasks(4), workers=1,
                            base_seed=9, obs=parent, collect_obs=True,
                            cache=cache, service_obs=service_obs)
        return results, dump_metrics(parent, "jsonl")

    cold, cold_obs = run()
    assert all(not r.cached for r in cold)
    assert cache.stats()["misses"] == 4 and cache.stats()["stores"] == 4

    acct = MetricsRegistry()
    warm, warm_obs = run(service_obs=acct)
    assert all(r.cached for r in warm)
    assert cache.stats()["hits"] == 4
    # hit/miss accounting lands in the *service* registry only
    assert acct.counter("service.cache", ("outcome",)).get(("hit",)) == 4
    assert "service.cache" not in warm_obs

    assert [r.to_json() for r in warm] == [r.to_json() for r in cold]
    assert [r.duration for r in warm] == [r.duration for r in cold]
    assert warm_obs == cold_obs


def test_cached_flag_not_serialized():
    res = SweepResult(index=0, name="t", status="ok", value=1, cached=True)
    assert "cached" not in res.to_json()
