"""Unit tests for the :mod:`repro.sweep` multiprocessing executor."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.sweep import SweepResult, SweepTask, run_sweep, save_results, task_seed


# Task functions must live at module level so they pickle into workers.

def square(params):
    return params["x"] * params["x"]


def record_seed(params):
    return params["seed"]


def fail_on_odd(params):
    if params["x"] % 2:
        raise ValueError(f"odd input {params['x']}")
    return params["x"]


def structured(params):
    return {"rate": params["x"] / 2, "pair": (params["x"], "name")}


def _tasks(n):
    return [SweepTask(name=f"t{i}", params={"x": i}) for i in range(n)]


# ----------------------------------------------------------------------
# task_seed
# ----------------------------------------------------------------------

def test_task_seed_deterministic_and_distinct():
    assert task_seed(0, 0, "a") == task_seed(0, 0, "a")
    # any coordinate change moves the seed
    assert task_seed(0, 0, "a") != task_seed(1, 0, "a")
    assert task_seed(0, 0, "a") != task_seed(0, 1, "a")
    assert task_seed(0, 0, "a") != task_seed(0, 0, "b")


def test_task_seed_is_63_bit_non_negative():
    for i in range(50):
        s = task_seed(7, i, f"task-{i}")
        assert 0 <= s < 2**63


def test_task_seed_does_not_depend_on_hash_salt():
    """The documented reason for blake2b: ``hash()`` is salted per process,
    so per-task seeds must come from a content-addressed digest.  Pin the
    value so any accidental switch to ``hash()`` fails on the next run."""
    assert task_seed(0, 0, "pinned") == 7901061385613268754


# ----------------------------------------------------------------------
# run_sweep
# ----------------------------------------------------------------------

def test_sequential_sweep_returns_task_order():
    results = run_sweep(square, _tasks(5), workers=1)
    assert [r.index for r in results] == list(range(5))
    assert [r.value for r in results] == [0, 1, 4, 9, 16]
    assert all(r.ok and r.status == "ok" for r in results)


def test_parallel_matches_sequential():
    tasks = _tasks(6)
    seq = run_sweep(square, tasks, workers=1, base_seed=3)
    par = run_sweep(square, tasks, workers=2, base_seed=3)
    strip = lambda rs: [(r.index, r.name, r.status, r.value, r.seed)
                        for r in rs]
    assert strip(par) == strip(seq)


def test_seeds_injected_and_stable_across_worker_counts():
    tasks = _tasks(4)
    expected = [task_seed(11, i, t.name) for i, t in enumerate(tasks)]
    for workers in (1, 3):
        results = run_sweep(record_seed, tasks, workers=workers, base_seed=11)
        assert [r.value for r in results] == expected
        assert [r.seed for r in results] == expected


def test_error_isolation_sweep_continues():
    results = run_sweep(fail_on_odd, _tasks(5), workers=1)
    assert [r.status for r in results] == ["ok", "error", "ok", "error", "ok"]
    bad = results[1]
    assert not bad.ok
    assert bad.value is None
    assert "ValueError" in bad.error and "odd input 1" in bad.error
    assert "fail_on_odd" in bad.traceback


def test_error_isolation_in_workers():
    results = run_sweep(fail_on_odd, _tasks(5), workers=2)
    assert [r.status for r in results] == ["ok", "error", "ok", "error", "ok"]
    assert [r.index for r in results] == list(range(5))


def test_params_not_mutated_by_seed_injection():
    task = SweepTask(name="t", params={"x": 2})
    run_sweep(square, [task], workers=1)
    assert task.params == {"x": 2}  # seed went into a copy


def test_progress_callback_sees_every_result():
    seen = []
    run_sweep(square, _tasks(4), workers=1, on_progress=seen.append)
    assert sorted(r.index for r in seen) == list(range(4))


def test_obs_counters_track_completions():
    obs = MetricsRegistry()
    run_sweep(fail_on_odd, _tasks(4), workers=1, obs=obs)
    counter = obs.counter("sweep.tasks_completed", ("status",))
    assert counter.get(labels=("ok",)) == 2
    assert counter.get(labels=("error",)) == 2
    done = [e for e in obs.events if e.kind == "sweep.task_done"]
    assert len(done) == 4


def test_empty_sweep():
    assert run_sweep(square, [], workers=4) == []


# ----------------------------------------------------------------------
# save_results / to_json
# ----------------------------------------------------------------------

def test_save_results_structure(tmp_path):
    results = run_sweep(fail_on_odd, _tasks(3), workers=1, base_seed=5)
    out = tmp_path / "sweep.json"
    save_results(str(out), results, sweep_name="demo", extra={"ranks": 8})
    doc = json.loads(out.read_text())
    assert doc["sweep"] == "demo"
    assert doc["tasks"] == 3
    assert doc["ok"] == 2
    assert doc["errors"] == 1
    assert doc["ranks"] == 8
    assert [r["index"] for r in doc["results"]] == [0, 1, 2]
    assert doc["results"][0]["value"] == 0
    assert doc["results"][1]["status"] == "error"
    assert "traceback" in doc["results"][1]
    assert "value" not in doc["results"][1]
    assert doc["results"][2]["seed"] == task_seed(5, 2, "t2")


def test_to_json_handles_structured_values(tmp_path):
    results = run_sweep(structured, _tasks(2), workers=1)
    out = tmp_path / "sweep.json"
    save_results(str(out), results)
    doc = json.loads(out.read_text())
    assert doc["results"][1]["value"] == {"rate": 0.5, "pair": [1, "name"]}


def test_to_json_reprs_unserialisable_values():
    res = SweepResult(index=0, name="t", status="ok", value=object())
    encoded = res.to_json()
    assert isinstance(encoded["value"], str)
    json.dumps(encoded)  # must not raise
