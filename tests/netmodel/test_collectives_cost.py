"""Prediction-vs-simulation tests for the collective cost model."""

import pytest

from repro.apps.base import RankProgram
from repro.errors import ConfigError
from repro.netmodel import CollectiveCost
from repro.simmpi import TimingModel, World

TIMING = TimingModel(latency=2e-6, bandwidth=1e9, send_overhead=3e-7)


def measure(nprocs, body):
    """Global span of the operation: latest exit minus earliest entry.

    Per-rank dt is meaningless for asymmetric roles (a bcast root exits
    after its buffered sends, microseconds before the deepest leaf), so
    the collective's latency is the cross-rank envelope."""
    class P(RankProgram):
        def run(self, api):
            yield from api.barrier()       # roughly align entry
            self.state["t0"] = yield api.now()
            yield from body(api)
            self.state["t1"] = yield api.now()

    world = World(nprocs, P, timing=TIMING, copy_payloads=False)
    world.launch()
    world.run()
    return (max(p.state["t1"] for p in world.programs)
            - min(p.state["t0"] for p in world.programs))


SIZE = 800  # 100 float64s


@pytest.mark.parametrize("nprocs", [2, 4, 8])
@pytest.mark.parametrize("name", ["bcast", "allreduce", "scan", "alltoall"])
def test_predictions_track_simulation(nprocs, name):
    cost = CollectiveCost(TIMING, nprocs)
    payload = [0.0] * 100

    def body(api):
        if name == "bcast":
            yield from api.bcast(payload if api.rank == 0 else None, root=0)
        elif name == "allreduce":
            yield from api.allreduce(1.0)
        elif name == "scan":
            yield from api.scan(1.0)
        elif name == "alltoall":
            yield from api.alltoall([api.rank] * api.size)

    size = SIZE if name == "bcast" else 8
    predicted = cost.predict(name, size)
    measured = measure(nprocs, body)
    # the measured envelope includes the aligning barrier's exit skew
    # (roughly one tree depth of small hops)
    skew = cost.bcast(8)
    assert predicted * 0.4 <= measured <= (predicted + skew) * 1.6, (
        f"{name} P={nprocs}: predicted {predicted:.2e} (+skew {skew:.2e}), "
        f"measured {measured:.2e}"
    )


def test_tree_collectives_scale_logarithmically():
    cost64 = CollectiveCost(TIMING, 64)
    cost8 = CollectiveCost(TIMING, 8)
    assert cost64.bcast(8) / cost8.bcast(8) == pytest.approx(2.0)


def test_linear_collectives_scale_linearly():
    cost64 = CollectiveCost(TIMING, 64)
    cost8 = CollectiveCost(TIMING, 8)
    assert cost64.scan(8) / cost8.scan(8) == pytest.approx(63 / 7)


def test_single_rank_free():
    cost = CollectiveCost(TIMING, 1)
    assert cost.bcast(8) == 0.0
    assert cost.alltoall(8) == 0.0


def test_unknown_collective_rejected():
    with pytest.raises(ConfigError):
        CollectiveCost(TIMING, 4).predict("allgatherv")


def test_invalid_nprocs_rejected():
    with pytest.raises(ConfigError):
        CollectiveCost(TIMING, 0)
