"""Tests for the analytic performance model (Fig. 6 shapes)."""

import pytest

from repro.errors import ConfigError
from repro.netmodel import MODES, PerfModel, timing_model_for
from repro.netmodel import calibration as cal


@pytest.fixture
def model():
    return PerfModel()


def test_modes_enumeration():
    assert MODES == ("native", "protocol-nolog", "protocol-log")


def test_unknown_mode_rejected(model):
    with pytest.raises(ConfigError):
        model.one_way_time(8, "bogus")
    with pytest.raises(ConfigError):
        timing_model_for("bogus")


def test_small_message_latency_overhead_about_15_percent(model):
    """The paper: ~0.5 us, around 15 % added latency on small messages."""
    overhead = model.latency_overhead(8, "protocol-nolog")
    assert 0.10 < overhead < 0.25
    # logging adds nothing measurable on top for tiny messages
    log_overhead = model.latency_overhead(8, "protocol-log")
    assert log_overhead == pytest.approx(overhead, abs=0.01)


def test_large_message_nolog_overhead_negligible(model):
    """Fig. 6: without logging, acknowledging every message costs almost
    nothing at large sizes."""
    overhead = model.latency_overhead(8 << 20, "protocol-nolog")
    assert overhead < 0.01


def test_large_message_logging_cuts_bandwidth(model):
    """Fig. 6: the extra copy visibly caps large-message bandwidth."""
    native = model.bandwidth_mbps(8 << 20, "native")
    logged = model.bandwidth_mbps(8 << 20, "protocol-log")
    assert logged < 0.8 * native
    nolog = model.bandwidth_mbps(8 << 20, "protocol-nolog")
    assert nolog == pytest.approx(native, rel=0.02)


def test_native_peak_bandwidth_matches_testbed(model):
    """~9.5 Gb/s Myri-10G asymptote."""
    peak = model.bandwidth_mbps(8 << 20, "native")
    assert 8000 < peak < 9600


def test_latency_monotone_in_size(model):
    for mode in MODES:
        times = [model.one_way_time(1 << k, mode) for k in range(0, 24, 2)]
        assert times == sorted(times)


def test_ordering_native_fastest(model):
    for size in (1, 1024, 1 << 16, 8 << 20):
        t_native = model.one_way_time(size, "native")
        t_nolog = model.one_way_time(size, "protocol-nolog")
        t_log = model.one_way_time(size, "protocol-log")
        assert t_native <= t_nolog <= t_log


def test_series_covers_all_modes(model):
    series = model.series([1, 1024])
    assert set(series) == set(MODES)
    assert set(series["native"]) == {1, 1024}


def test_timing_model_for_mode_parameters():
    native = timing_model_for("native")
    nolog = timing_model_for("protocol-nolog")
    logged = timing_model_for("protocol-log")
    assert nolog.latency == pytest.approx(native.latency + cal.PIGGYBACK_OVERHEAD)
    assert logged.per_byte_overhead > 0
    assert native.per_byte_overhead == 0


def test_timing_model_logged_fraction_scales_copy_cost():
    full = timing_model_for("protocol-log", logged_fraction=1.0)
    half = timing_model_for("protocol-log", logged_fraction=0.5)
    assert half.per_byte_overhead == pytest.approx(full.per_byte_overhead / 2)


def test_eager_threshold_ack_step(model):
    below = model.one_way_time(cal.EAGER_THRESHOLD, "protocol-nolog")
    above = model.one_way_time(cal.EAGER_THRESHOLD + 1, "protocol-nolog")
    size_cost = 1 / model.bandwidth
    assert above - below > size_cost  # the residual ack cost kicks in
