"""Per-rule unit tests for the determinism linter.

Each rule gets a true-positive, a true-negative and (where interesting) a
``# repro: noqa[...]`` suppression, all via :func:`lint_source` on string
fixtures.  Paths matter: a path outside the ``repro`` package tree is
"unknown location" and gets every rule, while package paths exercise the
scoping (obs/ exempt from RPD002, only core/simmpi/sweep get RPD003).
"""

import textwrap

from repro.lint import PARSE_ERROR_CODE, RULE_CODES, RULES, lint_source, module_parts

#: strict default — outside the repro tree, every rule applies
ANY = "scratch/fixture.py"
CORE = "src/repro/core/protocol.py"
OBS = "src/repro/obs/export.py"
ANALYSIS = "src/repro/analysis/tables.py"


def codes(source, path=ANY, **kw):
    return [f.code for f in lint_source(textwrap.dedent(source), path=path, **kw)]


# ----------------------------------------------------------------------
# Catalog sanity
# ----------------------------------------------------------------------

def test_catalog_codes_unique_and_stable():
    assert len(RULE_CODES) == len(RULES) == 14
    assert sorted(RULE_CODES) == (
        [f"RPD00{i}" for i in range(1, 8)] + [f"SD10{i}" for i in range(7)]
    )
    assert PARSE_ERROR_CODE == "RPD000"


def test_module_parts():
    assert module_parts("src/repro/core/protocol.py") == ("core", "protocol.py")
    assert module_parts("a\\repro\\obs\\x.py") == ("obs", "x.py")
    assert module_parts("elsewhere/script.py") is None


# ----------------------------------------------------------------------
# RPD001 unseeded-rng
# ----------------------------------------------------------------------

def test_rpd001_module_level_random():
    assert codes("""
        import random
        x = random.random()
    """) == ["RPD001"]


def test_rpd001_numpy_global_and_aliases():
    assert codes("""
        import numpy as np
        import numpy.random as npr
        a = np.random.rand(3)
        b = npr.randint(10)
    """) == ["RPD001", "RPD001"]


def test_rpd001_from_import():
    assert codes("""
        from random import randint
        x = randint(0, 9)
    """) == ["RPD001"]


def test_rpd001_seeded_constructions_clean():
    assert codes("""
        import random
        import numpy as np
        rng = random.Random(42)
        x = rng.random()
        g = np.random.default_rng(7)
        y = g.integers(10)
    """) == []


# ----------------------------------------------------------------------
# RPD002 wall-clock-read
# ----------------------------------------------------------------------

def test_rpd002_time_and_datetime():
    assert codes("""
        import time
        import datetime
        t = time.perf_counter()
        u = time.time()
        d = datetime.datetime.now()
    """) == ["RPD002"] * 3


def test_rpd002_from_import_alias():
    assert codes("""
        from time import monotonic as mono
        t = mono()
    """) == ["RPD002"]


def test_rpd002_exempt_in_obs():
    src = """
        import time
        t = time.time()
    """
    assert codes(src, path=OBS) == []
    assert codes(src, path=CORE) == ["RPD002"]


# ----------------------------------------------------------------------
# RPD003 unordered-iteration
# ----------------------------------------------------------------------

def test_rpd003_set_iteration_in_core():
    assert codes("""
        def f(s: set):
            for x in s | {1}:
                print(x)
    """, path=CORE) == ["RPD003"]


def test_rpd003_tracked_set_variable_and_materialisers():
    assert codes("""
        pending = {1, 2, 3}
        order = list(pending)
        for p in pending:
            pass
    """, path=CORE) == ["RPD003", "RPD003"]


def test_rpd003_popitem():
    assert codes("""
        d = {1: 2}
        k, v = d.popitem()
    """, path=CORE) == ["RPD003"]


def test_rpd003_sorted_is_clean_and_scope_limited():
    src = """
        pending = {1, 2, 3}
        for p in sorted(pending):
            pass
    """
    assert codes(src, path=CORE) == []
    # set iteration is allowed outside the order-sensitive packages
    bad = """
        for x in {1, 2}:
            pass
    """
    assert codes(bad, path=ANALYSIS) == []
    assert codes(bad, path=CORE) == ["RPD003"]


# ----------------------------------------------------------------------
# RPD004 id-ordering
# ----------------------------------------------------------------------

def test_rpd004_sort_key_and_comparison():
    assert codes("""
        xs = [object(), object()]
        xs.sort(key=id)
        first = min(xs, key=id)
        flag = id(xs[0]) < id(xs[1])
    """) == ["RPD004"] * 3


def test_rpd004_identity_equality_is_fine():
    assert codes("""
        a, b = object(), object()
        same = id(a) == id(b)
    """) == []


# ----------------------------------------------------------------------
# RPD005 float-equality
# ----------------------------------------------------------------------

def test_rpd005_float_literal_equality():
    assert codes("""
        def f(t):
            return t == 0.5
    """) == ["RPD005"]


def test_rpd005_clockish_names():
    assert codes("""
        def f(now, deadline):
            return now != deadline
    """) == ["RPD005"]


def test_rpd005_integer_logical_clocks_clean():
    assert codes("""
        def f(epoch, phase):
            return epoch == 3 and phase != 0
    """) == []


# ----------------------------------------------------------------------
# RPD006 mutable-default
# ----------------------------------------------------------------------

def test_rpd006_mutable_defaults():
    assert codes("""
        def f(xs=[], m={}, s=set()):
            pass
    """) == ["RPD006"] * 3


def test_rpd006_immutable_defaults_clean():
    assert codes("""
        def f(xs=(), m=None, s=frozenset(), *, k=0):
            pass
    """) == []


# ----------------------------------------------------------------------
# RPD007 bare-except
# ----------------------------------------------------------------------

def test_rpd007_bare_except():
    assert codes("""
        try:
            pass
        except:
            pass
    """) == ["RPD007"]


def test_rpd007_typed_except_clean():
    assert codes("""
        try:
            pass
        except Exception:
            pass
    """) == []


# ----------------------------------------------------------------------
# Suppressions, select/ignore, parse errors
# ----------------------------------------------------------------------

def test_noqa_specific_code():
    assert codes("""
        import time
        t = time.time()  # repro: noqa[RPD002]
    """) == []


def test_noqa_blanket_and_wrong_code():
    assert codes("""
        import time
        t = time.time()  # repro: noqa
    """) == []
    assert codes("""
        import time
        t = time.time()  # repro: noqa[RPD001]
    """) == ["RPD002"]


def test_plain_flake8_noqa_does_not_suppress():
    """Only the namespaced form counts; `# noqa` belongs to other tools."""
    assert codes("""
        import time
        t = time.time()  # noqa
    """) == ["RPD002"]


def test_select_and_ignore():
    src = """
        import time
        t = time.time()
        try:
            pass
        except:
            pass
    """
    assert codes(src, select=frozenset({"RPD007"})) == ["RPD007"]
    assert codes(src, ignore=frozenset({"RPD007"})) == ["RPD002"]


def test_syntax_error_becomes_parse_finding():
    found = lint_source("def f(:\n", path=ANY)
    assert [f.code for f in found] == [PARSE_ERROR_CODE]


def test_findings_sorted_and_renderable():
    found = lint_source(textwrap.dedent("""
        import time
        b = time.time()
        a = time.time()
    """), path=ANY)
    assert [f.line for f in found] == sorted(f.line for f in found)
    for f in found:
        assert f.render().startswith(f"{ANY}:{f.line}:")
        assert set(f.to_json()) == {"path", "line", "col", "code", "message"}
