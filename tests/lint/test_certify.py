"""Certification pipeline: the differential delivery-order verifier
agrees with the static verdicts on every shipped kernel, catches a
planted order-dependent kernel, and the registry + campaign gates behave.
"""

import json
import os

import pytest

from repro import apps
from repro.apps.base import RankProgram
from repro.core.controller import build_ft_world
from repro.errors import ConfigError
from repro.lint.certify import (
    CHAOS_KERNEL_CLASSES,
    KERNEL_RUNS,
    OK_VERDICTS,
    REGISTRY_VERSION,
    CertRun,
    build_registry,
    chaos_pool_classes,
    check_campaign_certification,
    current_kernel_digest,
    dynamic_verify,
    load_registry,
    registry_entry,
    render_registry_text,
    save_registry,
)
from repro.simmpi.api import ANY_SOURCE
from repro.simmpi.trace import send_witness_chains

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
APPS = os.path.join(REPO, "src", "repro", "apps")


# ----------------------------------------------------------------------
# Dynamic differential verification
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kernel", sorted(KERNEL_RUNS))
def test_dynamic_verifier_agrees_with_static(kernel):
    """Every shipped kernel's witness chains survive adversarial delivery
    schedules — the dynamic ground truth matches the static PROVEN_SD."""
    verdict = dynamic_verify(kernel, schedules=3)
    assert verdict.deterministic, verdict.detail
    assert verdict.kernel == kernel


class OrderEcho(RankProgram):
    """Deliberately NOT send-deterministic: rank 0 echoes ANY_SOURCE
    arrivals back in arrival order, so its send sequence depends on the
    delivery schedule."""

    def run(self, api):  # pragma: no cover - exercised via dynamic_verify
        if self.rank == 0:
            for _ in range(self.size - 1):
                val, status = yield api.recv(ANY_SOURCE, with_status=True)
                yield api.send(status.source, val + 1.0)
        else:
            yield api.send(0, float(self.rank))
            yield api.recv(0)


def test_dynamic_verifier_catches_order_dependence():
    KERNEL_RUNS["OrderEcho"] = CertRun(4, lambda r, s: OrderEcho(r, s))
    try:
        verdict = dynamic_verify("OrderEcho", schedules=6)
    finally:
        del KERNEL_RUNS["OrderEcho"]
    assert not verdict.deterministic
    assert "changed the send sequence" in verdict.detail


def test_dynamic_verify_unknown_kernel_is_config_error():
    with pytest.raises(ConfigError, match="no dynamic-verification config"):
        dynamic_verify("NoSuchKernel")


def test_witness_chains_are_per_rank_and_reproducible():
    run = KERNEL_RUNS["Stencil1D"]

    def chains():
        world, _ = build_ft_world(run.nprocs, run.factory, network_seed=11)
        world.launch()
        world.run()
        return send_witness_chains(world.tracer)

    first, second = chains(), chains()
    assert len(first) == run.nprocs
    assert first == second  # same schedule -> bit-identical witness


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def registry():
    return build_registry([APPS])


def test_registry_shape_and_verdicts(registry):
    assert registry["v"] == REGISTRY_VERSION
    assert registry["errors"] == []
    assert registry["noqa_findings"] == []
    assert set(KERNEL_RUNS) <= set(registry["kernels"])
    for name, entry in registry["kernels"].items():
        assert entry["verdict"] in OK_VERDICTS, (name, entry["verdict"])
        assert entry["static"] == entry["verdict"]
        assert entry["dynamic"] is None  # static-only build


def test_registry_save_load_round_trip(registry, tmp_path):
    path = str(tmp_path / "sub" / "certification.json")
    save_registry(registry, path)
    loaded = load_registry(path)
    assert loaded == json.loads(json.dumps(registry))  # JSON-clean
    entry = registry_entry(loaded, "Stencil1D")
    assert entry is not None and entry["verdict"] in OK_VERDICTS
    assert registry_entry(loaded, "NoSuchKernel") is None
    assert registry_entry(None, "Stencil1D") is None


def test_load_registry_rejects_garbage(tmp_path):
    assert load_registry(str(tmp_path / "absent.json")) is None
    bad = tmp_path / "bad.json"
    bad.write_text("not json{", encoding="utf-8")
    assert load_registry(str(bad)) is None
    wrong = tmp_path / "wrong.json"
    wrong.write_text(json.dumps({"v": REGISTRY_VERSION + 1, "kernels": {}}),
                     encoding="utf-8")
    assert load_registry(str(wrong)) is None


def test_live_digest_matches_registry_digest(registry):
    """current_kernel_digest (from class objects) and analyze_paths (from
    files) must agree, or every gate would cry stale."""
    for name in ("Stencil1D", "ReduceTreeKernel", "PingPong"):
        entry = registry_entry(registry, name)
        assert current_kernel_digest(getattr(apps, name)) == entry["digest"]


def test_render_registry_text(registry):
    text = render_registry_text(registry)
    assert "Stencil1D" in text
    n = len(registry["kernels"])
    assert f"{n} kernel(s) analyzed, {n} certified send-deterministic" in text


# ----------------------------------------------------------------------
# Campaign gates
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def registry_path(registry, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cert") / "certification.json")
    save_registry(registry, path)
    return path


def test_gate_passes_on_fresh_registry(registry_path):
    warnings = check_campaign_certification(
        [apps.Stencil1D, apps.PingPong, "ReduceTreeKernel"],
        registry_path=registry_path)
    assert warnings == []


def test_gate_warns_without_registry(tmp_path):
    warnings = check_campaign_certification(
        [apps.Stencil1D], registry_path=str(tmp_path / "none.json"))
    assert len(warnings) == 1
    assert "no certification registry" in warnings[0]
    assert "Stencil1D" in warnings[0]


def test_gate_warns_on_uncertified_kernel(registry_path):
    warnings = check_campaign_certification(
        ["NotARealKernel"], registry_path=registry_path)
    assert len(warnings) == 1
    assert "no entry" in warnings[0]


def test_gate_warns_on_stale_digest(registry, tmp_path):
    doc = json.loads(json.dumps(registry))
    doc["kernels"]["Stencil1D"]["digest"] = "0" * 32
    path = str(tmp_path / "stale.json")
    save_registry(doc, path)
    warnings = check_campaign_certification([apps.Stencil1D],
                                            registry_path=path)
    assert len(warnings) == 1
    assert "changed since certification" in warnings[0]
    # a bare name skips the digest check: verdict-only
    assert check_campaign_certification(["Stencil1D"],
                                        registry_path=path) == []


def test_gate_warns_on_violation_verdict(registry, tmp_path):
    doc = json.loads(json.dumps(registry))
    doc["kernels"]["Stencil1D"]["verdict"] = "VIOLATION"
    path = str(tmp_path / "bad.json")
    save_registry(doc, path)
    warnings = check_campaign_certification([apps.Stencil1D],
                                            registry_path=path)
    assert len(warnings) == 1
    assert "certified VIOLATION" in warnings[0]


def test_gate_strict_raises(tmp_path):
    with pytest.raises(ConfigError, match="--strict-sd"):
        check_campaign_certification(
            [apps.Stencil1D], registry_path=str(tmp_path / "none.json"),
            strict=True)


def test_chaos_pool_classes_resolve():
    classes = chaos_pool_classes(sorted(CHAOS_KERNEL_CLASSES))
    assert apps.Stencil1D in classes and apps.PingPong in classes
    assert chaos_pool_classes(["not-a-pool"]) == []
