"""Batch runner + CLI: the repo is lint-clean, a seeded fixture trips
every rule, and `repro lint` speaks the documented exit codes."""

import json
import os
import subprocess
import sys
import textwrap

from repro.lint import (
    RULE_CODES,
    iter_python_files,
    lint_paths,
    list_rules_text,
    render_json,
    render_text,
)

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO, "src")

#: one violation per rule; lives outside the repro tree, so every rule is
#: in scope (strict default for unknown paths)
DIRTY = textwrap.dedent("""\
    import random
    import time

    x = random.random()
    t = time.time()
    for item in {1, 2, 3}:
        pass
    order = sorted([object(), object()], key=id)

    def close(now, log=[]):
        return now == 0.5

    try:
        pass
    except:
        pass

    class BadKernel(RankProgram):
        def run(self, api):
            acc = yield api.recv()
            if acc > 0:
                yield api.send(1, acc)
            yield api.send(random.randrange(2), 0)
            for k in {1, 2}:
                yield api.send(1, k)
            yield api.send(1, time.time())
            yield api.send(1, id(api))
            yield api.send(0, acc)  # repro: noqa[SD101]
""")


def _cli(*argv, cwd=REPO):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        cwd=cwd, env=env, capture_output=True, text=True,
    )


# ----------------------------------------------------------------------
# Acceptance: the repo itself is clean
# ----------------------------------------------------------------------

def test_repo_src_is_lint_clean():
    report = lint_paths([os.path.join(SRC, "repro")])
    assert report.findings == [], render_text(report)
    assert report.errors == []
    assert report.exit_code == 0
    assert report.files_checked > 50  # the walk really covered the package


# ----------------------------------------------------------------------
# Acceptance: a seeded fixture trips every rule and exits nonzero
# ----------------------------------------------------------------------

def test_seeded_fixture_trips_every_rule(tmp_path):
    fixture = tmp_path / "dirty.py"
    fixture.write_text(DIRTY)
    report = lint_paths([str(fixture)])
    assert report.exit_code == 1
    assert {f.code for f in report.findings} == set(RULE_CODES)


def test_cli_exits_nonzero_on_findings(tmp_path):
    fixture = tmp_path / "dirty.py"
    fixture.write_text(DIRTY)
    proc = _cli(str(fixture))
    assert proc.returncode == 1
    for code in RULE_CODES:
        assert code in proc.stdout


def test_cli_clean_run_exit_zero(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("VALUE = 1\n")
    proc = _cli(str(clean))
    assert proc.returncode == 0
    assert "1 files checked, 0 findings" in proc.stdout


def test_cli_json_output(tmp_path):
    fixture = tmp_path / "dirty.py"
    fixture.write_text(DIRTY)
    proc = _cli("--format", "json", str(fixture))
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    assert doc["exit_code"] == 1
    assert doc["files_checked"] == 1
    assert {f["code"] for f in doc["findings"]} == set(RULE_CODES)
    for f in doc["findings"]:
        assert set(f) == {"path", "line", "col", "code", "message"}


def test_cli_list_rules():
    proc = _cli("--list-rules")
    assert proc.returncode == 0
    for code, rule in RULE_CODES.items():
        assert f"{code} {rule.name}" in proc.stdout
    assert proc.stdout.strip() == list_rules_text().strip()


def test_cli_select_and_ignore(tmp_path):
    fixture = tmp_path / "dirty.py"
    fixture.write_text(DIRTY)
    proc = _cli("--select", "RPD007", str(fixture))
    assert proc.returncode == 1
    assert "RPD007" in proc.stdout and "RPD001" not in proc.stdout
    every = ",".join(sorted(RULE_CODES))
    proc = _cli("--ignore", every, str(fixture))
    assert proc.returncode == 0
    # repeatable form composes with the comma form
    proc = _cli("--select", "RPD001,RPD002", "--select", "RPD007", str(fixture))
    assert proc.returncode == 1
    assert {"RPD001", "RPD002", "RPD007"} == {
        line.split()[1] for line in proc.stdout.splitlines()
        if " RPD" in line
    }


# ----------------------------------------------------------------------
# Usage errors -> exit 2
# ----------------------------------------------------------------------

def test_unknown_rule_code_exit_2(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("VALUE = 1\n")
    proc = _cli("--select", "RPD999", str(clean))
    assert proc.returncode == 2
    assert "unknown rule code" in proc.stdout + proc.stderr


def test_missing_path_exit_2(tmp_path):
    proc = _cli(str(tmp_path / "no_such_dir"))
    assert proc.returncode == 2


# ----------------------------------------------------------------------
# Runner mechanics
# ----------------------------------------------------------------------

def test_iter_python_files_sorted_dedup_and_skips(tmp_path):
    (tmp_path / "b.py").write_text("")
    (tmp_path / "a.py").write_text("")
    (tmp_path / "notes.txt").write_text("")
    cache = tmp_path / "__pycache__"
    cache.mkdir()
    (cache / "a.cpython-311.pyc").write_text("")
    (cache / "stale.py").write_text("")
    files, errors = iter_python_files([str(tmp_path), str(tmp_path / "a.py")])
    assert errors == []
    assert [os.path.basename(f) for f in files] == ["a.py", "b.py"]


def test_parse_error_reported_not_fatal(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n")
    (tmp_path / "fine.py").write_text("VALUE = 1\n")
    report = lint_paths([str(tmp_path)])
    assert report.files_checked == 2
    assert [f.code for f in report.findings] == ["RPD000"]
    assert report.exit_code == 1


def test_render_json_stable_shape(tmp_path):
    (tmp_path / "clean.py").write_text("VALUE = 1\n")
    report = lint_paths([str(tmp_path)])
    doc = json.loads(render_json(report))
    assert list(sorted(doc)) == ["errors", "exit_code", "files_checked", "findings", "v"]
    assert doc["v"] == 1
