"""Runtime sanitizer: env gating, cached-None wiring, per-invariant
negative tests, and the acceptance run proving every invariant executes
at least once under ``REPRO_SANITIZE=1`` on a full failure + recovery
cycle."""

import pytest

from repro.apps import Stencil2D
from repro.core import ProtocolConfig, build_ft_world
from repro.core.clustering import block_clusters
from repro.errors import InvariantViolation
from repro.lint.sanitize import (
    AUDIT_INTERVAL,
    ENV_VAR,
    INVARIANTS,
    Sanitizer,
    sanitize_enabled,
    sanitizer_for,
)
from repro.obs import MetricsRegistry


# ----------------------------------------------------------------------
# Gating
# ----------------------------------------------------------------------

@pytest.mark.parametrize("value,expected", [
    ("1", True), ("true", True), ("yes", True), ("ON", True),
    ("0", False), ("false", False), ("no", False), ("off", False),
    ("", False),
])
def test_env_gating(monkeypatch, value, expected):
    monkeypatch.setenv(ENV_VAR, value)
    assert sanitize_enabled() is expected
    assert (sanitizer_for() is not None) is expected


def test_unset_env_means_disabled(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert sanitize_enabled() is False
    assert sanitizer_for() is None


def test_override_beats_environment(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "0")
    assert sanitize_enabled(override=True) is True
    assert isinstance(sanitizer_for(override=True), Sanitizer)
    monkeypatch.setenv(ENV_VAR, "1")
    assert sanitizer_for(override=False) is None


def test_components_cache_none_when_disabled(monkeypatch):
    """The hot paths must see literal None (cached-instrument pattern)."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    world, ctl = _build()
    assert world.engine._san is None
    assert all(p.san is None for p in ctl.protocols)


# ----------------------------------------------------------------------
# Per-invariant negative tests (direct method calls with bad inputs)
# ----------------------------------------------------------------------

def _raises(invariant):
    return pytest.raises(InvariantViolation, match=rf"sanitizer\[{invariant}\]")


def test_logged_cross_epoch_violations():
    san = Sanitizer()
    san.logged_cross_epoch(0, 1, 2, True)  # genuine crossing: fine
    with _raises("logged_cross_epoch"):
        san.logged_cross_epoch(0, 2, 2, True)  # not a crossing
    with _raises("logged_cross_epoch"):
        san.logged_cross_epoch(0, 1, 2, False)  # logging disabled


def test_spe_non_logged_violation():
    san = Sanitizer()
    san.spe_non_logged(0, 1, 2, 2, True)  # same-epoch: belongs in SPE
    san.spe_non_logged(0, 1, 1, 2, False)  # crossing but logging off: ok
    with _raises("spe_non_logged"):
        san.spe_non_logged(0, 1, 1, 2, True)  # crossing escaped the log


def test_phase_lamport_violation():
    san = Sanitizer()
    san.phase_lamport(0, 1, 2, 2, False)  # max(1, 2) = 2
    san.phase_lamport(0, 1, 3, 2, True)   # max(1, 2+1) = 3
    with _raises("phase_lamport"):
        san.phase_lamport(0, 1, 5, 2, False)  # overshoot
    with _raises("phase_lamport"):
        san.phase_lamport(0, 3, 2, 1, False)  # moved backwards


def test_spe_table_ordered_violations():
    san = Sanitizer()
    san.spe_table_ordered(0, {1: (0, {1: 1}), 2: (7, {2: 3})})
    with _raises("spe_table_ordered"):
        san.spe_table_ordered(0, {1: (10, {1: 1}), 2: (5, {1: 1})})
    with _raises("spe_table_ordered"):
        san.spe_table_ordered(0, {1: (0, {2: 0})})  # epoch 0 never received


def test_rl_fixpoint_violation():
    san = Sanitizer()
    rl = {0: (2, 5), 1: (1, 0)}
    san.rl_fixpoint_stable(rl, lambda seeds: dict(rl))  # true fix-point
    with _raises("rl_fixpoint_stable"):
        san.rl_fixpoint_stable(rl, lambda seeds: {0: (1, 3), 1: (1, 0)})


def test_rl_monotone_violation():
    san = Sanitizer()
    san.rl_monotone({0: (2, 5)}, {0: 2}, {})
    san.rl_monotone({0: (2, 5)}, {0: 1}, {0: 2})  # failed-rank bound wins
    with _raises("rl_monotone"):
        san.rl_monotone({0: (3, 5)}, {0: 2}, {})


def test_engine_pending_audit_violation():
    san = Sanitizer()
    san.engine_pending_audit(4, 4)
    with _raises("engine_pending_audit"):
        san.engine_pending_audit(5, 6)


def test_counts_land_in_checks_and_registry():
    obs = MetricsRegistry()
    san = Sanitizer(obs)
    san.engine_pending_audit(1, 1)
    san.engine_pending_audit(2, 2)
    assert san.checks == {"engine_pending_audit": 2}
    counter = obs.counter("sanitize.checks", ("invariant",))
    assert counter.get(("engine_pending_audit",)) == 2


def test_registry_free_sanitizer_still_counts():
    san = Sanitizer(None)
    san.engine_pending_audit(1, 1)
    assert san.checks["engine_pending_audit"] == 1


# ----------------------------------------------------------------------
# Acceptance: full failure + recovery under REPRO_SANITIZE=1
# ----------------------------------------------------------------------

def _build(obs=None, fail_at=None):
    cfg = ProtocolConfig(
        checkpoint_interval=3e-5,
        cluster_of=block_clusters(8, 2),
        cluster_stagger=5e-6,
        rank_stagger=1e-6,
    )
    world, ctl = build_ft_world(
        8, lambda r, s: Stencil2D(r, s, niters=30, block=3), cfg, obs=obs
    )
    if fail_at is not None:
        ctl.inject_failure(fail_at, 7)
        ctl.arm()
    return world, ctl


def test_full_run_every_invariant_executes(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "1")
    obs = MetricsRegistry()
    world, ctl = _build(obs=obs, fail_at=7e-5)
    world.launch()
    world.run()
    assert len(ctl.recovery_reports) >= 1  # recovery actually happened
    assert world.engine.events_dispatched >= AUDIT_INTERVAL  # audits fired
    counter = obs.counter("sanitize.checks", ("invariant",))
    executed = {name: counter.get((name,)) for name in INVARIANTS}
    missing = [name for name, n in executed.items() if n < 1]
    assert not missing, f"invariants never exercised: {missing} ({executed})"


def test_sanitized_run_is_execution_transparent(monkeypatch):
    """The sanitizer observes; it must not perturb the execution."""
    def signature(world):
        return (
            world.tracer.send_sequences(dedup=False),
            world.engine.now,
            world.engine.events_dispatched,
        )

    monkeypatch.delenv(ENV_VAR, raising=False)
    off, _ = _build(fail_at=7e-5)
    off.launch()
    off.run()
    monkeypatch.setenv(ENV_VAR, "1")
    on, _ = _build(fail_at=7e-5)
    on.launch()
    on.run()
    assert signature(on) == signature(off)


# ----------------------------------------------------------------------
# send_witness: the send-determinism invariant
# ----------------------------------------------------------------------

def test_send_witness_first_emission_registers():
    san = Sanitizer()
    san.send_witness(0, 3, dst=1, tag=7, size=64, digest="abc")
    assert san.checks["send_witness"] == 1


def test_send_witness_matching_replay_passes():
    san = Sanitizer()
    san.send_witness(0, 3, dst=1, tag=7, size=64, digest="abc")
    san.send_witness(0, 3, dst=1, tag=7, size=64, digest="abc")  # replay
    assert san.checks["send_witness"] == 2


def test_send_witness_envelope_mismatch_raises():
    san = Sanitizer()
    san.send_witness(0, 3, dst=1, tag=7, size=64, digest="abc")
    with _raises("send_witness"):
        san.send_witness(0, 3, dst=2, tag=7, size=64, digest="abc")


def test_send_witness_payload_mismatch_raises():
    san = Sanitizer()
    san.send_witness(0, 3, dst=1, tag=7, size=64, digest="abc")
    with _raises("send_witness"):
        san.send_witness(0, 3, dst=1, tag=7, size=64, digest="OTHER")


def test_send_witness_none_digest_is_tolerated_then_tightened():
    san = Sanitizer()
    # replay from a log without a payload digest: envelope-only check
    san.send_witness(0, 3, dst=1, tag=7, size=64, digest=None)
    san.send_witness(0, 3, dst=1, tag=7, size=64, digest="abc")  # tightens
    with _raises("send_witness"):
        san.send_witness(0, 3, dst=1, tag=7, size=64, digest="xyz")


def test_send_witness_is_per_rank_and_per_date():
    san = Sanitizer()
    san.send_witness(0, 3, dst=1, tag=7, size=64, digest="abc")
    # same date on another rank, different envelope: fine
    san.send_witness(1, 3, dst=0, tag=7, size=64, digest="zzz")
    # another date on the same rank: fine
    san.send_witness(0, 4, dst=2, tag=9, size=8, digest="qqq")
    assert san.checks["send_witness"] == 3
