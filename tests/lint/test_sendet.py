"""Send-determinism certifier: every planted violation family is caught
with a source->sink evidence path, deterministic shapes are proven, and
the shipped kernels certify clean."""

import os
import textwrap

from repro.lint import VERDICTS, analyze_paths, analyze_sources

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
APPS = os.path.join(REPO, "src", "repro", "apps")

HEADER = "from repro.apps.base import RankProgram\n\n"


def analyze(body: str):
    """Analyze one fixture kernel; return its KernelReport."""
    src = HEADER + textwrap.dedent(body)
    result = analyze_sources({"fixture.py": src})
    assert not result.errors, result.errors
    assert len(result.reports) == 1
    return result.reports[0]


def codes(report):
    return sorted({f.code for f in report.findings})


# ----------------------------------------------------------------------
# Planted violations: one fixture per SD rule, each with evidence path
# ----------------------------------------------------------------------
def test_sd101_arrival_order_payload():
    report = analyze("""\
        import random
        import time

        class ArrivalSum(RankProgram):
            def run(self, api):
                acc = yield api.recv()
                yield api.send(1, acc)
        """)
    assert report.verdict == "VIOLATION"
    assert codes(report) == ["SD101"]
    msg = report.findings[0].message
    assert "recv(ANY_SOURCE)" in msg
    assert "->" in msg  # evidence path, source -> sink
    assert "api.send payload" in msg


def test_sd102_arrival_order_control():
    report = analyze("""\
        class OrderBranch(RankProgram):
            def run(self, api):
                val = yield api.recv()
                if val > 0:
                    yield api.send(1, 1.0)
        """)
    assert report.verdict == "VIOLATION"
    assert "SD102" in codes(report)
    msg = next(f.message for f in report.findings if f.code == "SD102")
    assert "dominated by arrival order" in msg
    assert "recv(ANY_SOURCE)" in msg and "->" in msg


def test_sd103_unseeded_rng_destination():
    report = analyze("""\
        import random

        class RngDestination(RankProgram):
            def run(self, api):
                dst = random.randrange(self.size)
                yield api.send(dst, 0.0)
        """)
    assert report.verdict == "VIOLATION"
    assert codes(report) == ["SD103"]
    msg = report.findings[0].message
    assert "unseeded randomness" in msg
    assert "random.randrange()" in msg and "->" in msg


def test_sd104_set_iteration():
    report = analyze("""\
        class SetLoop(RankProgram):
            def run(self, api):
                for peer in {1, 2, 3}:
                    yield api.send(peer, 0.5)
        """)
    assert report.verdict == "VIOLATION"
    assert codes(report) == ["SD104"]
    assert "unordered set" in report.findings[0].message


def test_sd104_set_stored_in_state():
    # set-ness tracked through self.state across methods
    report = analyze("""\
        class SetIterState(RankProgram):
            def __init__(self, rank, size):
                super().__init__(rank, size)
                self.state["peers"] = {1, 2, 3}

            def run(self, api):
                for peer in self.state["peers"]:
                    yield api.send(peer, 0.5)
        """)
    assert report.verdict == "VIOLATION"
    assert codes(report) == ["SD104"]


def test_sd104_set_stored_on_attribute():
    report = analyze("""\
        class AttrSetIter(RankProgram):
            def __init__(self, rank, size):
                super().__init__(rank, size)
                self.peers = set(range(size))

            def run(self, api):
                for peer in self.peers:
                    yield api.send(peer, 1.0)
        """)
    assert report.verdict == "VIOLATION"
    assert codes(report) == ["SD104"]


def test_sd105_wall_clock_payload():
    report = analyze("""\
        import time

        class WallClockPayload(RankProgram):
            def run(self, api):
                yield api.send(1, time.time())
        """)
    assert report.verdict == "VIOLATION"
    assert codes(report) == ["SD105"]
    msg = report.findings[0].message
    assert "clock reading" in msg and "time.time()" in msg


def test_sd106_address_payload():
    report = analyze("""\
        class AddrPayload(RankProgram):
            def run(self, api):
                yield api.send(1, id(api))
        """)
    assert report.verdict == "VIOLATION"
    assert codes(report) == ["SD106"]
    assert "id()" in report.findings[0].message


# ----------------------------------------------------------------------
# Deterministic shapes must NOT be flagged
# ----------------------------------------------------------------------
def test_sorted_combine_is_proven():
    # the paper's canonical SD pattern: arrival order is erased by a
    # commutative/sorted combine before anything reaches a send
    report = analyze("""\
        class SortedCombine(RankProgram):
            def run(self, api):
                if self.rank == 0:
                    parts = []
                    for _ in range(self.size - 1):
                        parts.append((yield api.recv()))
                    yield api.send(0, sum(sorted(parts)))
                else:
                    yield api.send(0, float(self.rank))
        """)
    assert report.verdict == "PROVEN_SD"
    assert report.findings == []


def test_list_in_state_is_proven():
    # lists are ordered: storing one in state must not poison iteration
    report = analyze("""\
        class ListIterState(RankProgram):
            def __init__(self, rank, size):
                super().__init__(rank, size)
                self.state["peers"] = [1, 2, 3]

            def run(self, api):
                for peer in self.state["peers"]:
                    yield api.send(peer, 0.5)
        """)
    assert report.verdict == "PROVEN_SD"
    assert report.findings == []


def test_sorted_set_iteration_is_proven():
    report = analyze("""\
        class SortedSetLoop(RankProgram):
            def run(self, api):
                for peer in sorted({1, 2, 3}):
                    yield api.send(peer, 0.5)
        """)
    assert report.verdict == "PROVEN_SD"


def test_seeded_rng_is_proven():
    report = analyze("""\
        import random

        class SeededRng(RankProgram):
            def run(self, api):
                rng = random.Random(self.rank)
                yield api.send((self.rank + 1) % self.size, rng.random())
        """)
    assert report.verdict == "PROVEN_SD"
    assert report.findings == []


# ----------------------------------------------------------------------
# noqa: justification required for the SD family
# ----------------------------------------------------------------------
def test_justified_noqa_downgrades_to_conditional():
    report = analyze("""\
        import time

        class Justified(RankProgram):
            def run(self, api):
                yield api.send(1, time.time())  # repro: noqa[SD105]: benchmark timestamp, receiver ignores value
        """)
    assert report.verdict == "CONDITIONAL"
    assert report.findings == []
    assert len(report.suppressed) == 1
    code, _line, reason = report.suppressed[0]
    assert code == "SD105"
    assert "benchmark timestamp" in reason


def test_bare_sd_noqa_is_sd100_and_finding_kept():
    src = HEADER + textwrap.dedent("""\
        import time

        class Bare(RankProgram):
            def run(self, api):
                yield api.send(1, time.time())  # repro: noqa[SD105]
        """)
    result = analyze_sources({"fixture.py": src})
    report = result.reports[0]
    # the unjustified marker neither suppresses nor certifies
    assert report.verdict == "VIOLATION"
    assert codes(report) == ["SD105"]
    assert [f.code for f in result.noqa_findings] == ["SD100"]
    assert "justification" in result.noqa_findings[0].message


# ----------------------------------------------------------------------
# The shipped kernels certify clean (no false positives)
# ----------------------------------------------------------------------
def test_shipped_kernels_all_certified():
    result = analyze_paths([APPS])
    assert not result.errors, result.errors
    names = {r.name for r in result.reports}
    assert {"Stencil1D", "Stencil2D", "CGKernel", "LUKernel", "FTKernel",
            "ISKernel", "MGKernel", "BTKernel", "SPKernel", "ADIKernel",
            "ReduceTreeKernel", "PingPong"} <= names
    for report in result.reports:
        assert report.verdict in ("PROVEN_SD", "CONDITIONAL"), (
            report.name, report.verdict,
            [f.message for f in report.findings])
        assert report.findings == [], (report.name,
                                       [f.message for f in report.findings])
    assert result.noqa_findings == []


def test_reports_carry_digest_and_valid_verdicts():
    result = analyze_paths([APPS])
    for report in result.reports:
        assert report.verdict in VERDICTS
        assert len(report.digest) == 32  # blake2b-16 hex
        assert report.path.endswith(".py")
        assert report.line > 0


def test_digest_tracks_kernel_source():
    base = """\
        class Digested(RankProgram):
            def run(self, api):
                yield api.send(1, {payload})
        """
    a = analyze(base.format(payload="1.0"))
    b = analyze(base.format(payload="2.0"))
    assert a.digest != b.digest
    again = analyze(base.format(payload="1.0"))
    assert a.digest == again.digest
