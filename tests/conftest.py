"""Shared fixtures and helpers for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.base import RankProgram
from repro.apps.stencil import Stencil1D, Stencil2D
from repro.core import ProtocolConfig, build_ft_world
from repro.simmpi import World


def run_failure_free(nprocs, factory, config=None, **kw):
    """Run under the paper's protocol without failures; return (world, ctl)."""
    world, controller = build_ft_world(nprocs, factory, config, **kw)
    world.launch()
    world.run()
    return world, controller


def run_with_failures(nprocs, factory, failures, config=None, **kw):
    """Run with failures (list of (time, rank)); return (world, controller)."""
    world, controller = build_ft_world(nprocs, factory, config, **kw)
    for time, rank in failures:
        controller.inject_failure(time, rank)
    controller.arm()
    world.launch()
    world.run()
    return world, controller


def assert_valid_execution(ref_world, world):
    """The paper's validity criterion (Definition 1), checked end-to-end:

    * every rank's logical send sequence equals the failure-free one;
    * every rank's final application state equals the failure-free one.
    """
    ref_seqs = ref_world.tracer.logical_send_sequences()
    seqs = world.tracer.logical_send_sequences()
    for rank, (a, b) in enumerate(zip(ref_seqs, seqs)):
        assert a == b, (
            f"rank {rank}: send sequence diverged (lens {len(a)} vs {len(b)})"
        )
    for rank, (p_ref, p) in enumerate(zip(ref_world.programs, world.programs)):
        ref_res, res = p_ref.result(), p.result()
        np.testing.assert_equal(_normalize(ref_res), _normalize(res),
                                err_msg=f"rank {rank}: result diverged")


def _normalize(value):
    if isinstance(value, dict):
        return {k: _normalize(v) for k, v in value.items()}
    if isinstance(value, np.ndarray):
        return np.round(value, 12)
    if isinstance(value, float):
        return round(value, 12)
    if isinstance(value, list):
        return [_normalize(v) for v in value]
    return value


@pytest.fixture
def stencil1d_factory():
    def factory(rank, size):
        return Stencil1D(rank, size, niters=30, cells=4)

    return factory


@pytest.fixture
def stencil2d_factory():
    def factory(rank, size):
        return Stencil2D(rank, size, niters=25, block=3)

    return factory


@pytest.fixture
def default_config():
    return ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=3e-6)


class CountingProgram(RankProgram):
    """Minimal deterministic program used in substrate unit tests: rank 0
    sends ``count`` integers to rank 1, which sums them."""

    def __init__(self, rank, size, count=5):
        super().__init__(rank, size)
        self.state = {"i": 0, "count": count, "total": 0}

    def run(self, api):
        st = self.state
        if api.rank == 0:
            while st["i"] < st["count"]:
                yield api.send(1, st["i"], tag=1)
                st["i"] += 1
        elif api.rank == 1:
            while st["i"] < st["count"]:
                v = yield api.recv(0, tag=1)
                st["total"] += v
                st["i"] += 1
