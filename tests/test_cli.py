"""CLI smoke tests (argument parsing + each command end to end)."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_kernel():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["pattern", "ZZ"])


def test_demo_command(capsys):
    assert main(["demo", "--ranks", "8", "--clusters", "2",
                 "--fail-rank", "6"]) == 0
    out = capsys.readouterr().out
    assert "rolled back" in out
    assert "validity" in out


def test_table1_command(capsys):
    assert main(["table1", "--kernels", "CG", "--ranks", "16",
                 "--clusters", "4", "--niters", "4"]) == 0
    out = capsys.readouterr().out
    assert "%log" in out and "theoretical" in out


def test_table1_command_parallel_output_identical(capsys):
    argv = ["table1", "--kernels", "CG", "--ranks", "16",
            "--clusters", "4", "--niters", "4"]
    assert main(argv) == 0
    sequential = capsys.readouterr().out
    assert main(argv + ["--workers", "2"]) == 0
    parallel = capsys.readouterr().out
    assert parallel == sequential


def test_sweep_command_failures(tmp_path, capsys):
    import json

    out = tmp_path / "sweep.json"
    assert main(["sweep", "--scenario", "failures", "--ranks", "8",
                 "--clusters", "2", "--niters", "20", "--runs", "3",
                 "--out", str(out)]) == 0
    stdout = capsys.readouterr().out
    assert "3/3 runs ok" in stdout
    assert "validity violations: none" in stdout
    doc = json.loads(out.read_text())
    assert doc["sweep"] == "failures"
    assert doc["tasks"] == 3 and doc["ok"] == 3 and doc["errors"] == 0
    for res in doc["results"]:
        assert res["status"] == "ok"
        assert res["value"]["valid"] is True


def test_sweep_command_seed_reproducible(tmp_path):
    import json

    outs = []
    for name in ("a.json", "b.json"):
        out = tmp_path / name
        assert main(["sweep", "--scenario", "failures", "--runs", "2",
                     "--niters", "20", "--base-seed", "9",
                     "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        # durations are host wall-clock; everything else must match
        for res in doc["results"]:
            res.pop("duration_s")
        outs.append(doc)
    assert outs[0] == outs[1]


def test_fig6_command(capsys):
    assert main(["fig6"]) == 0
    out = capsys.readouterr().out
    assert "lat_native_us" in out


def test_pattern_command(capsys):
    assert main(["pattern", "CG", "--ranks", "16", "--clusters", "4"]) == 0
    out = capsys.readouterr().out
    assert "locality" in out


def test_domino_command(capsys):
    assert main(["domino", "--ranks", "8"]) == 0
    out = capsys.readouterr().out
    assert "rolled back" in out


# ----------------------------------------------------------------------
# Time-resolved telemetry (PR 8): --timeseries, --stream, repro report
# ----------------------------------------------------------------------
def test_table1_timeseries_identical_across_workers(tmp_path, capsys):
    outs, dumps = [], []
    for i, workers in enumerate(("1", "2")):
        ts_out = tmp_path / f"ts{i}.jsonl"
        assert main(["table1", "--kernels", "CG", "--ranks", "8",
                     "--clusters", "2", "--niters", "4",
                     "--workers", workers, "--timeseries",
                     "--timeseries-out", str(ts_out)]) == 0
        outs.append(capsys.readouterr().out)
        dumps.append(ts_out.read_bytes())
    assert outs[0] == outs[1]
    assert "timeseries:" in outs[0]
    assert dumps[0] == dumps[1]  # byte-identical JSONL for any -N


def test_table1_stream_events(tmp_path, capsys):
    import json

    path = tmp_path / "stream.jsonl"
    assert main(["table1", "--kernels", "CG", "--ranks", "8",
                 "--clusters", "2", "--niters", "4",
                 "--stream", str(path)]) == 0
    capsys.readouterr()
    evs = [json.loads(line) for line in path.read_text().splitlines()]
    kinds = [e["kind"] for e in evs]
    assert kinds == ["campaign_begin", "task_done", "campaign_end"]
    assert evs[0]["campaign"] == "table1"
    assert evs[1]["status"] == "ok"
    assert evs[2]["ok"] is True


def test_obs_text_format(capsys):
    assert main(["obs", "--ranks", "4", "--clusters", "2",
                 "--format", "text", "--timeseries"]) == 0
    out = capsys.readouterr().out
    assert "counter" in out and "histogram" in out
    assert "p50=" in out
    assert "timeseries interval=" in out


def test_obs_timeseries_out_requires_flag(tmp_path, capsys):
    path = tmp_path / "ts.jsonl"
    assert main(["obs", "--ranks", "4", "--clusters", "2",
                 "--timeseries-out", str(path)]) == 2
    capsys.readouterr()


def test_report_command(tmp_path, capsys):
    import json

    out = tmp_path / "dash.html"
    assert main(["report", "--out", str(out), "--ranks", "4",
                 "--clusters", "2"]) == 0
    stdout = capsys.readouterr().out
    assert "report ->" in stdout
    html = out.read_text(encoding="utf-8")
    assert html.count("<svg") >= 4
    for needle in ("<script src=", "<link ", "@import", "url("):
        assert needle not in html


def test_report_from_timeseries_dump(tmp_path, capsys):
    ts = tmp_path / "ts.jsonl"
    assert main(["obs", "--ranks", "4", "--clusters", "2",
                 "--timeseries", "--timeseries-out", str(ts),
                 "--out", str(tmp_path / "m.jsonl")]) == 0
    out = tmp_path / "dash.html"
    assert main(["report", "--out", str(out),
                 "--timeseries", str(ts)]) == 0
    capsys.readouterr()
    html = out.read_text(encoding="utf-8")
    assert html.count("<svg") >= 4
    assert "In-flight" in html
