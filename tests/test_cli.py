"""CLI smoke tests (argument parsing + each command end to end)."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_kernel():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["pattern", "ZZ"])


def test_demo_command(capsys):
    assert main(["demo", "--ranks", "8", "--clusters", "2",
                 "--fail-rank", "6"]) == 0
    out = capsys.readouterr().out
    assert "rolled back" in out
    assert "validity" in out


def test_table1_command(capsys):
    assert main(["table1", "--kernels", "CG", "--ranks", "16",
                 "--clusters", "4", "--niters", "4"]) == 0
    out = capsys.readouterr().out
    assert "%log" in out and "theoretical" in out


def test_fig6_command(capsys):
    assert main(["fig6"]) == 0
    out = capsys.readouterr().out
    assert "lat_native_us" in out


def test_pattern_command(capsys):
    assert main(["pattern", "CG", "--ranks", "16", "--clusters", "4"]) == 0
    out = capsys.readouterr().out
    assert "locality" in out


def test_domino_command(capsys):
    assert main(["domino", "--ranks", "8"]) == 0
    out = capsys.readouterr().out
    assert "rolled back" in out
