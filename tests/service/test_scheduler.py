"""Work-stealing scheduler: leases, steals, hard-crash recovery."""

import os
import time

from repro.obs import MetricsRegistry
from repro.service import WorkStealingScheduler


# Worker functions must live at module level so they pickle into workers.

def double(payload):
    return payload * 2


def slow_zero(payload):
    if payload == 0:
        time.sleep(0.5)
    return payload


def crash_on_boom(payload):
    if payload == "boom":
        time.sleep(0.3)  # let innocent tasks drain first
        os._exit(1)  # hard death: no exception crosses the pipe
    return payload


def crash_once(payload):
    """Crashes the pool on first sight of its flag file's absence, then
    succeeds — models an innocent task caught in a dying pool."""
    path, value = payload
    if not os.path.exists(path):
        with open(path, "w"):
            pass
        os._exit(1)
    return value


def _payloads(values):
    return list(enumerate(values))


def test_all_tasks_complete_in_results_map():
    with WorkStealingScheduler(2) as sched:
        outcome = sched.run(double, _payloads(range(7)))
    assert outcome.results == {i: 2 * i for i in range(7)}
    assert outcome.lost == []
    assert outcome.leases == 7


def test_empty_run():
    with WorkStealingScheduler(3) as sched:
        outcome = sched.run(double, [])
    assert outcome.results == {} and outcome.leases == 0


def test_on_result_fires_per_completion():
    seen = []
    with WorkStealingScheduler(2) as sched:
        sched.run(double, _payloads(range(5)), on_result=seen.append)
    assert sorted(seen) == [0, 2, 4, 6, 8]


def test_idle_worker_steals_from_busy_victim():
    """Slot 0's first task sleeps; slot 1 drains its own deque and then
    steals slot 0's tail instead of idling behind the block split."""
    obs = MetricsRegistry()
    with WorkStealingScheduler(2, obs=obs) as sched:
        outcome = sched.run(slow_zero, _payloads(range(6)))
    assert outcome.results == {i: i for i in range(6)}
    assert outcome.steals >= 1
    assert obs.counter("service.steals").get() == outcome.steals
    assert obs.counter("service.leases").get() == outcome.leases == 6


def test_hard_crash_loses_only_the_culprit():
    """A worker dying without returning breaks the pool; the scheduler
    rebuilds it, retries, and after the deterministic second death
    reports exactly the culprit as lost — innocents all complete."""
    values = ["a", "b", "boom", "c", "d"]
    obs = MetricsRegistry()
    with WorkStealingScheduler(2, obs=obs) as sched:
        outcome = sched.run(crash_on_boom, _payloads(values))
    assert outcome.lost == [2]
    assert outcome.rebuilds >= 1
    assert {i: v for i, v in enumerate(values) if v != "boom"} \
        == outcome.results
    assert obs.counter("service.tasks_lost").get() == 1


def test_crash_once_task_recovers_on_retry(tmp_path):
    flag = str(tmp_path / "crashed-once")
    with WorkStealingScheduler(1) as sched:
        outcome = sched.run(crash_once, [(0, (flag, "recovered"))])
    assert outcome.results == {0: "recovered"}
    assert outcome.lost == []
    assert outcome.rebuilds == 1


def test_scheduler_reusable_across_runs():
    """The campaign service keeps one scheduler alive across jobs; the
    pool must survive consecutive runs (and a crash in between)."""
    with WorkStealingScheduler(2) as sched:
        first = sched.run(double, _payloads(range(3)))
        crash = sched.run(crash_on_boom, _payloads(["x", "boom"]))
        second = sched.run(double, _payloads(range(4)))
    assert first.results == {0: 0, 1: 2, 2: 4}
    assert crash.lost == [1] and crash.results == {0: "x"}
    assert second.results == {i: 2 * i for i in range(4)}
