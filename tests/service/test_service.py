"""Campaign service end-to-end: job queue, wire protocol, cache reuse."""

import asyncio
import threading

import pytest

from repro.errors import ConfigError
from repro.service import (
    CampaignService,
    ResultCache,
    ServiceClient,
    run_campaign_job,
    validate_spec,
)


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------

def test_validate_spec_rejects_unknown_kind_and_fields():
    with pytest.raises(ConfigError, match="unknown campaign kind"):
        validate_spec({"kind": "nope"})
    with pytest.raises(ConfigError, match="unknown spec field"):
        validate_spec({"kind": "selftest", "bogus": 1})
    assert validate_spec({"kind": "selftest", "tasks": 3})["tasks"] == 3


# ----------------------------------------------------------------------
# job runner (no server)
# ----------------------------------------------------------------------

def test_run_campaign_job_selftest_summary_and_digests():
    cache = ResultCache()
    events = []
    cold = run_campaign_job({"kind": "selftest", "tasks": 4}, workers=1,
                            cache=cache, on_event=events.append)
    assert cold["summary"]["tasks"] == 4
    assert cold["summary"]["ok"] == 4 and cold["summary"]["errors"] == 0
    assert cold["summary"]["cache"] == {"hits": 0, "misses": 4,
                                        "stores": 4, "unkeyable": 0}
    assert [e["index"] for e in events] == [0, 1, 2, 3]
    assert not any(e["cached"] for e in events)

    events.clear()
    warm = run_campaign_job({"kind": "selftest", "tasks": 4}, workers=1,
                            cache=cache, on_event=events.append)
    assert warm["summary"]["cache"] == {"hits": 4, "misses": 0,
                                        "stores": 0, "unkeyable": 0}
    assert all(e["cached"] for e in events)
    # byte-identity, asserted through the content digests and documents
    assert warm["summary"]["results_digest"] == \
        cold["summary"]["results_digest"]
    assert warm["summary"]["obs_digest"] == cold["summary"]["obs_digest"]
    assert warm["results"] == cold["results"]
    assert warm["obs"] == cold["obs"]


# ----------------------------------------------------------------------
# resident service over a unix socket
# ----------------------------------------------------------------------

@pytest.fixture
def service(tmp_path):
    sock = str(tmp_path / "svc.sock")
    holder = {}
    ready = threading.Event()

    def runner():
        # the service object owns asyncio primitives, so it must be
        # created on the loop thread
        svc = CampaignService(workers=1, cache=ResultCache())
        holder["svc"] = svc
        asyncio.run(svc.serve(socket_path=sock, ready=ready))

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert ready.wait(15), "service did not come up"
    yield sock
    try:
        with ServiceClient(sock, timeout=15) as client:
            client.shutdown()
    except (OSError, ConfigError):
        pass  # already stopped by the test
    thread.join(timeout=30)
    assert not thread.is_alive()


def test_ping_and_stats(service):
    with ServiceClient(service, timeout=30) as client:
        assert client.ping()
        stats = client.stats()["stats"]
    assert stats["workers"] == 1
    assert stats["jobs"]["submitted"] == 0
    assert stats["cache"]["hits"] == 0


def test_submit_twice_second_run_all_cache_hits(service):
    events = []
    with ServiceClient(service, timeout=60) as client:
        cold = client.submit({"kind": "selftest", "tasks": 5},
                             on_event=events.append)
        warm = client.submit({"kind": "selftest", "tasks": 5},
                             include_results=True)
        stats = client.stats()["stats"]
    assert cold["ok"] and warm["ok"]
    assert cold["summary"]["cache"]["misses"] == 5
    assert len([e for e in events if e.get("kind") == "task_done"]) == 5
    assert warm["summary"]["cache"] == {"hits": 5, "misses": 0,
                                        "stores": 0, "unkeyable": 0}
    assert warm["summary"]["results_digest"] == \
        cold["summary"]["results_digest"]
    assert warm["summary"]["obs_digest"] == cold["summary"]["obs_digest"]
    assert warm["results"]["tasks"] == 5  # include_results ships the doc
    assert stats["jobs"]["done"] == 2
    assert stats["cache"] == {"hits": 5, "misses": 5, "stores": 5,
                              "unkeyable": 0, "entries_memory": 5}


def test_no_wait_submit_then_poll_status_and_result(service):
    with ServiceClient(service, timeout=60) as client:
        reply = client.submit({"kind": "selftest", "tasks": 2}, wait=False)
        job = reply["job"]
        assert job.startswith("job-")
        for _ in range(200):
            brief = client.status(job)
            if brief["state"] in ("done", "failed"):
                break
        assert brief["state"] == "done"
        doc = client.result(job)
        assert doc["results"]["tasks"] == 2
        listing = client.status()
        assert [j["job"] for j in listing["jobs"]] == [job]


def test_bad_spec_rejected_without_killing_connection(service):
    with ServiceClient(service, timeout=30) as client:
        reply = client.submit({"kind": "nope"})
        assert not reply.get("ok")
        assert "unknown campaign kind" in reply["error"]
        assert client.ping()  # connection still serviceable


def test_unknown_op_and_bad_json_are_protocol_errors(service):
    with ServiceClient(service, timeout=30) as client:
        reply = client.request("frobnicate")
        assert not reply["ok"] and "unknown op" in reply["error"]
        client._fh.write(b"{not json\n")
        client._fh.flush()
        line = client._fh.readline()
        assert b"bad JSON" in line
        assert client.ping()


def test_service_pool_job_with_two_workers(tmp_path):
    """One heavier check: a real pooled job through the thread-safe
    (forkserver/spawn) service start method, warm resubmission included."""
    sock = str(tmp_path / "pool.sock")
    ready = threading.Event()

    def runner():
        svc = CampaignService(workers=2, cache=ResultCache())
        asyncio.run(svc.serve(socket_path=sock, ready=ready))

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert ready.wait(15)
    try:
        with ServiceClient(sock, timeout=180) as client:
            cold = client.submit({"kind": "selftest", "tasks": 6})
            warm = client.submit({"kind": "selftest", "tasks": 6})
            stats = client.stats()["stats"]
        assert cold["ok"] and warm["ok"]
        assert cold["summary"]["leases_total"] == 6  # pooled, not inline
        assert warm["summary"]["cache"]["hits"] == 6
        assert warm["summary"]["results_digest"] == \
            cold["summary"]["results_digest"]
        assert warm["summary"]["obs_digest"] == cold["summary"]["obs_digest"]
        assert stats["mp_method"] in ("forkserver", "spawn")
    finally:
        with ServiceClient(sock, timeout=15) as client:
            client.shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive()
