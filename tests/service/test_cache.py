"""Content-addressed result cache: keys, invalidation, storage."""

import pickle

import pytest

from repro.campaigns import selftest_cell, table1_cell
from repro.service import CacheUnkeyable, ResultCache, cache_key, canonical_params
from repro.sweep import SweepResult
from repro.sweep.executor import mp_context


# ----------------------------------------------------------------------
# canonical params
# ----------------------------------------------------------------------

def test_canonical_params_sorted_and_compact():
    assert canonical_params({"b": 2, "a": [1, None]}) == '{"a":[1,null],"b":2}'


def test_canonical_params_excludes_injected_entries():
    """``seed`` and ``obs`` are injected by the executor — the seed is a
    separate key component, and the registry is per-run machinery."""
    a = canonical_params({"x": 1})
    b = canonical_params({"x": 1, "seed": 42, "obs": object()})
    assert a == b


def test_canonical_params_refuses_ambiguity():
    with pytest.raises(CacheUnkeyable):
        canonical_params({1: "a", "1": "b"})  # colliding stringified keys
    with pytest.raises(CacheUnkeyable):
        canonical_params({"x": object()})  # repr() is not content-stable


# ----------------------------------------------------------------------
# cache keys
# ----------------------------------------------------------------------

def test_cache_key_sensitive_to_every_component():
    base = cache_key(selftest_cell, {"i": 1}, seed=7)
    assert cache_key(selftest_cell, {"i": 1}, seed=7) == base  # stable
    assert cache_key(selftest_cell, {"i": 2}, seed=7) != base
    assert cache_key(selftest_cell, {"i": 1}, seed=8) != base
    assert cache_key(selftest_cell, {"i": 1}, seed=7,
                     collect_obs=True) != base
    assert cache_key(selftest_cell, {"i": 1}, seed=7,
                     timeseries=0.5) != base
    assert cache_key(table1_cell, {"i": 1}, seed=7) != base  # code digest


def test_cache_key_sensitive_to_sanitizer_arming(monkeypatch):
    from repro.lint.sanitize import ENV_VAR

    monkeypatch.delenv(ENV_VAR, raising=False)
    off = cache_key(selftest_cell, {"i": 1}, seed=7)
    monkeypatch.setenv(ENV_VAR, "1")
    on = cache_key(selftest_cell, {"i": 1}, seed=7)
    assert on != off


def test_cache_key_covers_kernel_dependency():
    """``table1_cell`` results depend on the named kernel class: different
    kernels must address differently even with otherwise equal params."""
    cg = cache_key(table1_cell, {"kernel": "CG", "ranks": 8}, seed=1)
    ft = cache_key(table1_cell, {"kernel": "FT", "ranks": 8}, seed=1)
    assert cg != ft


def _spawned_key(_):
    # runs in a child process: same inputs must address identically
    return cache_key(selftest_cell, {"i": 3, "w": [1, 2]}, seed=99,
                     collect_obs=True)


@pytest.mark.parametrize("method", ["fork", "spawn"])
def test_cache_key_is_start_method_invariant(method):
    """Pure content hashing: a cache filled by a fork pool must serve a
    spawn pool (and vice versa), so keys computed in fork/spawn children
    and in the parent all agree."""
    import multiprocessing

    if method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"start method {method} unavailable")
    parent = _spawned_key(None)
    ctx = mp_context(method)
    with ctx.Pool(1) as pool:
        child = pool.map(_spawned_key, [None])[0]
    assert child == parent


# ----------------------------------------------------------------------
# storage
# ----------------------------------------------------------------------

def _result(value):
    return SweepResult(index=0, name="t", status="ok", value=value,
                       duration=0.25, seed=1)


def test_memory_round_trip_returns_fresh_copies():
    cache = ResultCache()
    key = cache_key(selftest_cell, {"i": 0}, seed=0)
    assert cache.get(key) is None  # cold
    cache.put(key, _result({"a": [1, 2]}))
    first = cache.get(key)
    first.value["a"].append(3)  # caller mutation must not corrupt store
    second = cache.get(key)
    assert second.value == {"a": [1, 2]}
    assert cache.stats()["hits"] == 2
    assert cache.stats()["misses"] == 1


def test_disk_round_trip_survives_new_instance(tmp_path):
    key = cache_key(selftest_cell, {"i": 5}, seed=5)
    writer = ResultCache(str(tmp_path / "cache"))
    writer.put(key, _result(123))
    reader = ResultCache(str(tmp_path / "cache"))  # fresh process stand-in
    hit = reader.get(key)
    assert hit is not None and hit.value == 123 and hit.duration == 0.25


def test_corrupt_disk_entry_is_a_miss(tmp_path):
    key = cache_key(selftest_cell, {"i": 6}, seed=6)
    cache = ResultCache(str(tmp_path / "cache"))
    cache.put(key, _result(1))
    cache._memory.clear()
    path = cache._file_for(key)
    with open(path, "wb") as fh:
        fh.write(b"not a pickle")
    assert cache.get(key) is None
    assert cache.stats()["misses"] == 1


def test_unkeyable_tasks_bypass_cache():
    cache = ResultCache()
    key = cache.key_for(selftest_cell, {"x": object()}, seed=0)
    assert key is None
    assert cache.stats()["unkeyable"] == 1
    assert cache.get(None) is None  # counted as a miss, never a crash
    cache.put(None, _result(1))  # no-op
    assert cache.stats()["stores"] == 0


def test_stored_entries_are_pickled_blobs():
    """Entries are stored serialized, not as live objects — the disk and
    memory layers share one representation."""
    cache = ResultCache()
    key = cache_key(selftest_cell, {"i": 9}, seed=9)
    cache.put(key, _result(9))
    assert isinstance(cache._memory[key], bytes)
    assert pickle.loads(cache._memory[key]).value == 9
