"""Bit-reproducibility across configurations that must not change behavior.

The correctness methodology of this repo leans on comparing executions
message by message (failure-free vs recovered, obs on vs off, repeated
runs).  These tests pin the invariants the hot-path work depends on:
instrumentation, zero-copy payload handling and the slim event queue are
all *observationally* transparent — identical tracer sequences, identical
final virtual time, identical event count.
"""

import numpy as np

from repro.apps import Stencil2D
from repro.core import ProtocolConfig, build_ft_world
from repro.core.clustering import block_clusters
from repro.obs import MetricsRegistry
from repro.simmpi import World
from repro.simmpi.network import TimingModel


def _config():
    return ProtocolConfig(
        checkpoint_interval=3e-5,
        cluster_of=block_clusters(8, 2),
        cluster_stagger=5e-6,
        rank_stagger=1e-6,
    )


def _factory(r, s):
    return Stencil2D(r, s, niters=30, block=3)


def _signature(world):
    """Everything an execution 'said': sends, deliveries, clock, events."""
    return (
        world.tracer.send_sequences(dedup=False),
        world.tracer.deliver_sequences(),
        world.engine.now,
        world.engine.events_dispatched,
    )


def _run_protocol(obs=None, timing=None, network_seed=0, fail_at=None):
    world, ctl = build_ft_world(
        8, _factory, _config(), obs=obs, timing=timing,
        network_seed=network_seed,
    )
    if fail_at is not None:
        ctl.inject_failure(fail_at, 7)
        ctl.arm()
    world.launch()
    world.run()
    return world, ctl


def test_observability_does_not_change_execution():
    """Instrumented and uninstrumented runs are the same execution."""
    off, _ = _run_protocol(obs=None)
    on, _ = _run_protocol(obs=MetricsRegistry())
    assert _signature(on) == _signature(off)


def test_repeated_runs_bit_identical():
    a, _ = _run_protocol()
    b, _ = _run_protocol()
    assert _signature(a) == _signature(b)


def test_jittered_runs_reproducible_per_seed():
    """Jitter explores interleavings but stays a pure function of the seed."""
    timing = TimingModel(jitter=0.3)
    a, _ = _run_protocol(timing=timing, network_seed=7)
    b, _ = _run_protocol(timing=timing, network_seed=7)
    c, _ = _run_protocol(timing=timing, network_seed=8)
    assert _signature(a) == _signature(b)
    assert _signature(a) != _signature(c)


def test_failure_recovery_reproducible():
    """The full failure + recovery pipeline replays identically."""
    a, ca = _run_protocol(fail_at=7e-5)
    b, cb = _run_protocol(fail_at=7e-5)
    assert _signature(a) == _signature(b)
    assert len(ca.recovery_reports) == len(cb.recovery_reports)
    for ra, rb in zip(ca.recovery_reports, cb.recovery_reports):
        assert sorted(ra.rolled_back) == sorted(rb.rolled_back)


def test_recovered_run_matches_failure_free_logically():
    """Validity (Section III): the recovered execution's logical send
    sequences and results equal the failure-free ones."""
    ff, _ = _run_protocol()
    rec, ctl = _run_protocol(fail_at=7e-5)
    assert len(ctl.recovery_reports) >= 1
    assert (
        rec.tracer.logical_send_sequences()
        == ff.tracer.logical_send_sequences()
    )
    for r in range(8):
        np.testing.assert_allclose(
            ff.programs[r].result(), rec.programs[r].result()
        )


# ----------------------------------------------------------------------
# Zero-copy payload semantics
# ----------------------------------------------------------------------

class _Probe:
    """Two-rank program exposing the exact payload objects exchanged."""

    def __init__(self, rank, size, payload_factory, count=3):
        self.rank, self.size = rank, size
        self.sent = []
        self.received = []
        self._make = payload_factory
        self._count = count

    def run(self, api):
        if self.rank == 0:
            for _ in range(self._count):
                buf = self._make()
                self.sent.append(buf)
                yield api.send(1, buf, tag=0)
                yield api.compute(1e-6)
        else:
            for _ in range(self._count):
                self.received.append((yield api.recv(0, tag=0)))

    def snapshot(self):
        return {}

    def restore(self, state):
        pass

    def result(self):
        return np.zeros(1)


def _probe_world(payload_factory, **world_kw):
    world = World(2, lambda r, s: _Probe(r, s, payload_factory), **world_kw)
    world.launch()
    world.run()
    return world.programs[0].sent, world.programs[1].received


def test_immutable_payloads_share_identity_end_to_end():
    """bytes/str/tuple payloads travel the wire without a single copy."""
    sent, received = _probe_world(lambda: ("round", b"data", 42))
    for s, r in zip(sent, received):
        assert r is s


def test_mutable_payloads_share_identity_by_default():
    """Zero-copy default: the receiver gets the sender's array object."""
    sent, received = _probe_world(lambda: np.arange(4.0))
    for s, r in zip(sent, received):
        assert r is s


def test_copy_payloads_opt_in_copies_mutables_only():
    """copy_payloads=True restores defensive copies for mutable payloads
    while immutables still travel zero-copy."""
    sent, received = _probe_world(lambda: np.arange(4.0), copy_payloads=True)
    for s, r in zip(sent, received):
        assert r is not s
        np.testing.assert_array_equal(r, s)
    sent, received = _probe_world(lambda: (1, 2.5, "x"), copy_payloads=True)
    for s, r in zip(sent, received):
        assert r is s


def test_logged_payload_isolated_from_sender_buffer():
    """Copy-on-log: once a payload enters the sender-based log, mutating
    the application buffer must not corrupt the logged copy."""
    # per-rank clusters + staggered checkpoints force epoch-crossing
    # messages, i.e. actual log entries (epoch_send < epoch_recv)
    cfg = ProtocolConfig(
        checkpoint_interval=4e-6,
        cluster_of=block_clusters(2, 2),
        cluster_stagger=2e-6,
        rank_stagger=1e-6,
        retain_payloads=True,
    )
    world, ctl = build_ft_world(
        2, lambda r, s: _Probe(r, s, lambda: np.ones(4), count=30), cfg
    )
    world.launch()
    world.run()
    proto = ctl.protocols[0]
    entries = [e for e in list(proto.state.non_ack) + list(proto.state.logs)
               if e.payload is not None]
    assert entries, "workload produced no logged/in-flight entries"
    # mutate every application-side buffer after the fact
    for buf in world.programs[0].sent:
        buf[:] = -1.0
    for entry in entries:
        np.testing.assert_array_equal(entry.payload, np.ones(4))


def test_zero_copy_keeps_network_sizes():
    """payload_nbytes fast paths: sizes (and thus the timing model input)
    are unchanged by the zero-copy rework."""
    from repro.simmpi.message import Envelope, payload_nbytes

    samples = [
        7, 3.14, True, None, b"abcd", "hello", "héllo",
        (1, 2.0, "x"), [1, 2, 3], {"date": 4, "epoch_send": 1,
                                   "epoch_recv": 2, "dup": False},
        np.zeros(16), {"nested": {"a": (1, b"zz")}},
    ]
    for payload in samples:
        env = Envelope(src=0, dst=1, tag=0, payload=payload)
        assert env.size == payload_nbytes(payload) > 0
    assert payload_nbytes("hello") == 5
    assert payload_nbytes("héllo") == len("héllo".encode())
    assert payload_nbytes(np.zeros(16)) == 128
