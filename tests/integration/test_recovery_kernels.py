"""End-to-end recovery for every NAS-pattern kernel (Theorem 1 at workload
scale): a failure mid-run must reproduce the failure-free results and send
sequences."""

import pytest

from repro.apps import BTKernel, CGKernel, FTKernel, LUKernel, MGKernel, SPKernel
from repro.core import ProtocolConfig

from ..conftest import assert_valid_execution, run_failure_free, run_with_failures

CASES = [
    ("CG", CGKernel, 16, dict(niters=12, block=4)),
    ("MG", MGKernel, 8, dict(niters=6, levels=2, block=4)),
    ("FT", FTKernel, 8, dict(niters=6, slab=2)),
    ("LU", LUKernel, 8, dict(niters=5, nblocks=2, block=4)),
    ("BT", BTKernel, 9, dict(niters=6, block=4)),
    ("SP", SPKernel, 9, dict(niters=4, block=3)),
]


def config():
    return ProtocolConfig(checkpoint_interval=5e-5, rank_stagger=4e-6)


@pytest.mark.parametrize("name,cls,nprocs,kw", CASES, ids=[c[0] for c in CASES])
def test_kernel_recovers_from_mid_run_failure(name, cls, nprocs, kw):
    factory = lambda r, s: cls(r, s, **kw)
    ref, _ = run_failure_free(nprocs, factory, config())
    mid = ref.engine.now / 2
    world, ctl = run_with_failures(nprocs, factory, [(mid, nprocs // 2)], config())
    assert_valid_execution(ref, world)
    assert len(ctl.recovery_reports) == 1


@pytest.mark.parametrize("name,cls,nprocs,kw", CASES[:3], ids=[c[0] for c in CASES[:3]])
def test_kernel_recovers_from_early_failure(name, cls, nprocs, kw):
    factory = lambda r, s: cls(r, s, **kw)
    ref, _ = run_failure_free(nprocs, factory, config())
    world, _ = run_with_failures(nprocs, factory, [(ref.engine.now / 10, 0)], config())
    assert_valid_execution(ref, world)


def test_cg_converges_across_failure():
    factory = lambda r, s: CGKernel(r, s, niters=15, block=4)
    world, _ = run_with_failures(16, factory, [(2e-4, 7)], config())
    hist = world.programs[0].result()["res_history"]
    assert hist[-1] < hist[0] * 1e-8
