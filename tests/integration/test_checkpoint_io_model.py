"""Checkpoint I/O cost model: writes stall processes; shared storage
serialises concurrent writers (Section I's burst argument, quantified)."""

import numpy as np
import pytest

from repro.apps.stencil import Stencil1D
from repro.baselines import CLConfig, build_cl_world
from repro.core import ProtocolConfig, build_ft_world

from ..conftest import assert_valid_execution, run_failure_free, run_with_failures


def factory(rank, size):
    return Stencil1D(rank, size, niters=20, cells=4)


def test_write_cost_extends_runtime():
    base = ProtocolConfig(checkpoint_interval=3e-5, rank_stagger=2e-6)
    costly = ProtocolConfig(checkpoint_interval=3e-5, rank_stagger=2e-6,
                            checkpoint_size_bytes=10_000,
                            storage_bandwidth=1e9)
    w0, _ = run_failure_free(4, factory, base)
    w1, c1 = run_failure_free(4, factory, costly)
    assert w1.engine.now > w0.engine.now
    assert c1.checkpoint_write_time > 0


def test_shared_storage_serialises_writers():
    kw = dict(checkpoint_interval=3e-5, rank_stagger=0.0,
              checkpoint_size_bytes=50_000, storage_bandwidth=1e9)
    _, shared = run_failure_free(4, factory, ProtocolConfig(**kw,
                                                            shared_storage=True))
    _, dedicated = run_failure_free(4, factory, ProtocolConfig(
        **kw, shared_storage=False))
    # simultaneous checkpoint times + shared device -> queueing delay
    assert shared.checkpoint_write_time > dedicated.checkpoint_write_time


def test_staggering_avoids_the_queue():
    kw = dict(checkpoint_interval=3e-5, checkpoint_size_bytes=50_000,
              storage_bandwidth=1e9, shared_storage=True)
    _, burst = run_failure_free(4, factory, ProtocolConfig(**kw,
                                                           rank_stagger=0.0))
    _, staggered = run_failure_free(4, factory, ProtocolConfig(
        **kw, rank_stagger=8e-6))
    assert staggered.checkpoint_write_time < burst.checkpoint_write_time


def test_recovery_still_valid_with_io_costs():
    cfg = ProtocolConfig(checkpoint_interval=3e-5, rank_stagger=2e-6,
                         checkpoint_size_bytes=10_000)
    ref, _ = run_failure_free(6, factory, cfg)
    world, _ = run_with_failures(6, factory, [(ref.engine.now / 2, 2)], cfg)
    assert_valid_execution(ref, world)


def test_coordinated_burst_time_scales_with_ranks():
    def burst_for(nprocs):
        world, ctl = build_cl_world(
            nprocs, factory,
            CLConfig(snapshot_interval=4e-5, snapshot_size_bytes=50_000,
                     storage_bandwidth=1e9),
        )
        world.launch()
        world.run()
        rounds = len(ctl.completed_rounds)
        return ctl.io_burst_time / max(1, rounds)

    assert burst_for(8) > 1.5 * burst_for(4)


def test_coordinated_with_io_still_recovers():
    world, ctl = build_cl_world(
        6, factory,
        CLConfig(snapshot_interval=4e-5, snapshot_size_bytes=20_000),
    )
    ctl.inject_failure(9e-5, 3)
    ctl.arm()
    world.launch()
    world.run()
    ref = run_failure_free(6, factory, ProtocolConfig())[0]
    for r in range(6):
        np.testing.assert_allclose(ref.programs[r].result(),
                                   world.programs[r].result())
