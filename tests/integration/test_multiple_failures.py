"""Multiple failures: concurrent (same instant) and cascading (across
recovery rounds).  The paper's Theorem 1 covers concurrent failures; the
cross-round case exercises the phase-remap extension documented in
DESIGN.md."""

import pytest

from repro.core import ProtocolConfig

from ..conftest import assert_valid_execution, run_failure_free, run_with_failures


def test_two_concurrent_failures(stencil1d_factory, default_config):
    ref, _ = run_failure_free(6, stencil1d_factory, default_config)
    world, ctl = run_with_failures(
        6, stencil1d_factory, [(6e-5, 1), (6e-5, 4)], default_config
    )
    assert_valid_execution(ref, world)
    assert len(ctl.recovery_reports) == 1
    assert ctl.recovery_reports[0].failed == [1, 4]


def test_three_concurrent_failures(stencil1d_factory, default_config):
    ref, _ = run_failure_free(6, stencil1d_factory, default_config)
    world, ctl = run_with_failures(
        6, stencil1d_factory, [(6e-5, 0), (6e-5, 2), (6e-5, 5)], default_config
    )
    assert_valid_execution(ref, world)
    assert ctl.recovery_reports[0].failed == [0, 2, 5]


def test_sequential_failures_two_rounds(stencil1d_factory, default_config):
    ref, _ = run_failure_free(6, stencil1d_factory, default_config)
    world, ctl = run_with_failures(
        6, stencil1d_factory, [(5e-5, 1), (1.1e-4, 4)], default_config
    )
    assert_valid_execution(ref, world)
    assert len(ctl.recovery_reports) == 2
    assert ctl.recovery_reports[0].failed == [1]
    assert ctl.recovery_reports[1].failed == [4]


def test_same_rank_fails_twice(stencil1d_factory, default_config):
    ref, _ = run_failure_free(6, stencil1d_factory, default_config)
    world, ctl = run_with_failures(
        6, stencil1d_factory, [(5e-5, 2), (1.1e-4, 2)], default_config
    )
    assert_valid_execution(ref, world)
    assert len(ctl.recovery_reports) == 2


def test_failure_during_recovery_is_queued(stencil1d_factory, default_config):
    """A failure landing while a round is in flight must wait for the round
    to settle, then recover correctly."""
    ref, _ = run_failure_free(6, stencil1d_factory, default_config)
    world, ctl = run_with_failures(
        6, stencil1d_factory, [(6e-5, 1), (6.2e-5, 4)], default_config
    )
    assert_valid_execution(ref, world)
    assert len(ctl.recovery_reports) == 2


@pytest.mark.parametrize("pair", [(0, 1), (2, 3), (0, 5)])
def test_concurrent_pairs_2d(stencil2d_factory, default_config, pair):
    ref, _ = run_failure_free(8, stencil2d_factory, default_config)
    world, _ = run_with_failures(
        8, stencil2d_factory, [(7e-5, pair[0]), (7e-5, pair[1])], default_config
    )
    assert_valid_execution(ref, world)


def test_many_sequential_failures(stencil1d_factory):
    cfg = ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=3e-6)
    ref, _ = run_failure_free(6, stencil1d_factory, cfg)
    failures = [(4e-5, 0), (8e-5, 3), (1.2e-4, 5), (1.6e-4, 1)]
    world, ctl = run_with_failures(6, stencil1d_factory, failures, cfg)
    assert_valid_execution(ref, world)
    assert len(ctl.recovery_reports) == 4
