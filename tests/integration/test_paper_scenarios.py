"""Scripted replays of the paper's worked examples (Figs. 1 and 2) and of
the corner cases the text calls out."""

import numpy as np
import pytest

from repro.apps.base import RankProgram
from repro.core import ProtocolConfig, build_ft_world
from repro.core.protocol import Status


class Fig1Program(RankProgram):
    """Fig. 1: P1 fails; m8/m9 senders (P0, P2, in epoch 2) roll back;
    P3 keeps orphan m10; P4's cross-epoch m7 is replayed from its log."""

    def __init__(self, rank, size):
        super().__init__(rank, size)
        self.state = {"step": 0, "inbox": []}

    def run(self, api):
        st = self.state
        if api.rank == 4:
            if st["step"] <= 0:
                yield api.send(3, "m7", tag=7)   # epoch 1 -> P3's epoch 2
                st["step"] = 1
        elif api.rank == 3:
            if st["step"] <= 0:
                yield api.checkpoint()
                st["step"] = 1
            if st["step"] <= 1:
                yield api.compute(5e-6)
                st["inbox"].append((yield api.recv(4, tag=7)))
                st["step"] = 2
            if st["step"] <= 2:
                st["inbox"].append((yield api.recv(1, tag=10)))
                st["step"] = 3
        elif api.rank == 1:
            if st["step"] <= 0:
                yield api.checkpoint()           # H1^2
                st["step"] = 1
            if st["step"] <= 1:
                st["inbox"].append((yield api.recv(0, tag=8)))
                st["inbox"].append((yield api.recv(2, tag=9)))
                st["step"] = 2
            if st["step"] <= 2:
                yield api.send(3, "m10", tag=10)
                yield api.compute(3e-5)          # failure lands here
                st["step"] = 3
        elif api.rank in (0, 2):
            if st["step"] <= 0:
                yield api.checkpoint()           # H^2 at the senders too
                yield api.compute(4e-6)
                tag = 8 if api.rank == 0 else 9
                yield api.send(1, f"m{tag}", tag=tag)
                st["step"] = 1


class _Fig1Fixture:
    def __init__(self):
        self.world, self.controller = build_ft_world(5, Fig1Program,
                                                     ProtocolConfig())
        self.controller.inject_failure(2.0e-5, 1)
        self.controller.arm()
        self.world.launch()
        self.world.run()


@pytest.fixture(scope="module")
def fig1():
    return _Fig1Fixture()


def test_fig1_rollback_set(fig1):
    rolled = set(fig1.controller.recovery_reports[0].rolled_back)
    assert rolled == {0, 1, 2}


def test_fig1_orphan_receiver_not_rolled_back(fig1):
    assert 3 not in fig1.controller.recovery_reports[0].rolled_back
    assert fig1.world.programs[3].state["inbox"] == ["m7", "m10"]


def test_fig1_logged_sender_not_rolled_back(fig1):
    assert 4 not in fig1.controller.recovery_reports[0].rolled_back
    assert fig1.controller.protocols[4].messages_logged == 1
    lm = fig1.controller.protocols[4].state.logs[0]
    assert lm.payload == "m7" and lm.epoch_send < lm.epoch_recv


def test_fig1_rolled_back_messages_resent_and_suppressed(fig1):
    # P1 re-received m8/m9 after its restore, P3 suppressed the duplicate m10
    assert fig1.world.programs[1].state["inbox"] == ["m8", "m9"]
    suppressed = sum(p.messages_suppressed for p in fig1.controller.protocols)
    assert suppressed >= 1


def test_fig1_everyone_running_afterwards(fig1):
    assert all(p.status is Status.RUNNING for p in fig1.controller.protocols)


# ----------------------------------------------------------------------
# Fig. 2 — the causality problem phases solve
# ----------------------------------------------------------------------
class Fig2Program(RankProgram):
    """Fig. 2's shape: P2 fails after receiving a chain of messages, some
    logged (m0, m2) and some to-be-re-executed; recovery must deliver the
    replayed logged messages without violating the order their causal
    predecessors induce.  P2's reception order is recorded and compared
    against the failure-free run."""

    def __init__(self, rank, size):
        super().__init__(rank, size)
        self.state = {"step": 0, "log": []}

    def run(self, api):
        st = self.state
        if api.rank == 0:
            if st["step"] <= 0:
                yield api.send(2, "m0", tag=20)      # will be logged
                st["step"] = 1
            if st["step"] <= 1:
                yield api.send(1, "m1", tag=21)      # orphan-to-be path
                st["step"] = 2
        elif api.rank == 1:
            if st["step"] <= 0:
                st["log"].append((yield api.recv(0, tag=21)))
                st["step"] = 1
            if st["step"] <= 1:
                yield api.send(2, "m2", tag=22)      # depends on m1; logged
                st["step"] = 2
        elif api.rank == 2:
            if st["step"] <= 0:
                yield api.checkpoint()                # epoch 2 begins
                st["step"] = 1
            if st["step"] <= 1:
                st["log"].append((yield api.recv(0, tag=20)))
                st["log"].append((yield api.recv(1, tag=22)))
                st["log"].append((yield api.recv(3, tag=23)))
                yield api.compute(4e-5)               # failure lands here
                st["step"] = 2
        elif api.rank == 3:
            if st["step"] <= 0:
                yield api.compute(8e-6)
                yield api.send(2, "m6", tag=23)
                st["step"] = 1


def test_fig2_recovery_preserves_reception_content():
    ref_world, _ = build_ft_world(4, Fig2Program, ProtocolConfig())
    ref_world.launch()
    ref_world.run()
    ref_log = ref_world.programs[2].state["log"]

    world, ctl = build_ft_world(4, Fig2Program, ProtocolConfig())
    ctl.inject_failure(3.0e-5, 2)
    ctl.arm()
    world.launch()
    world.run()
    assert world.programs[2].state["log"] == ref_log
    # m0 and m2 were logged (epoch 1 -> epoch 2 crossings)
    logged_payloads = {
        lm.payload
        for proto in ctl.protocols
        for lm in proto.state.logs
    }
    assert {"m0", "m2"} <= logged_payloads
    # P2 restarted alone or nearly: senders of logged messages kept running
    rolled = set(ctl.recovery_reports[0].rolled_back)
    assert 2 in rolled
    assert 0 not in rolled and 1 not in rolled


def test_fig2_phases_ordered_replay():
    """The phase machinery notified multiple phases in increasing order."""
    world, ctl = build_ft_world(4, Fig2Program, ProtocolConfig())
    ctl.inject_failure(3.0e-5, 2)
    ctl.arm()
    world.launch()
    world.run()
    rep = ctl.recovery_reports[0]
    assert rep.phases_notified >= 2


# ----------------------------------------------------------------------
# The NonAck-in-checkpoint necessity (DESIGN.md §7)
# ----------------------------------------------------------------------
class InFlightLoss(RankProgram):
    """Rank 0 checkpoints, sends m to rank 1, then both fail while m is in
    flight: m must be recoverable from rank 0's checkpointed NonAck."""

    def __init__(self, rank, size):
        super().__init__(rank, size)
        self.state = {"step": 0, "got": None}

    def run(self, api):
        st = self.state
        if api.rank == 0:
            if st["step"] <= 0:
                yield api.checkpoint()
                st["step"] = 1
            if st["step"] <= 1:
                yield api.send(1, "precious", tag=1)
                st["step"] = 2
            if st["step"] <= 2:
                yield api.compute(1e-4)
                st["step"] = 3
        else:
            if st["step"] <= 0:
                yield api.compute(2e-5)  # not yet receiving: m stays in flight
                st["step"] = 1
            if st["step"] <= 1:
                st["got"] = yield api.recv(0, tag=1)
                st["step"] = 2


def test_inflight_message_survives_double_failure():
    """Without NonAck in the checkpoint this deadlocks: the send happened
    after rank 0's checkpoint... here it happens *after*, so re-execution
    covers it; the stronger case (send before checkpoint) follows."""
    world, ctl = build_ft_world(2, InFlightLoss, ProtocolConfig())
    ctl.inject_concurrent_failures(1e-5, [0, 1])
    ctl.arm()
    world.launch()
    world.run()
    assert world.programs[1].state["got"] == "precious"


class InFlightLossPreCkpt(RankProgram):
    """The hard case: the send precedes the sender's checkpoint, so
    re-execution does NOT regenerate it; only the checkpointed NonAck can."""

    def __init__(self, rank, size):
        super().__init__(rank, size)
        self.state = {"step": 0, "got": None}

    def run(self, api):
        st = self.state
        if api.rank == 0:
            if st["step"] <= 0:
                yield api.send(1, "precious", tag=1)
                yield api.checkpoint()
                st["step"] = 1
            if st["step"] <= 1:
                yield api.compute(1e-4)
                st["step"] = 2
        else:
            if st["step"] <= 0:
                yield api.compute(2e-5)
                st["step"] = 1
            if st["step"] <= 1:
                st["got"] = yield api.recv(0, tag=1)
                st["step"] = 2


def test_pre_checkpoint_inflight_message_survives_receiver_failure():
    world, ctl = build_ft_world(2, InFlightLossPreCkpt, ProtocolConfig())
    # rank 1 dies while m is STILL IN FLIGHT (network latency ~2.5 us, the
    # failure fires at 1.5 us); rank 0 does NOT re-execute the send (it
    # checkpointed after it): only the NonAck replay can cover it
    ctl.inject_failure(1.5e-6, 1)
    ctl.arm()
    world.launch()
    world.run()
    assert world.programs[1].state["got"] == "precious"
    replayed = sum(p.messages_replayed for p in ctl.protocols)
    assert replayed >= 1
