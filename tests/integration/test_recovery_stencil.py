"""End-to-end recovery on stencil workloads: the paper's validity criterion
(Theorem 1) checked against failure-free executions."""

import pytest

from repro.core import ProtocolConfig
from repro.core.protocol import Status

from ..conftest import assert_valid_execution, run_failure_free, run_with_failures


@pytest.mark.parametrize("fail_rank", [0, 2, 5])
def test_single_failure_any_rank(stencil1d_factory, default_config, fail_rank):
    ref, _ = run_failure_free(6, stencil1d_factory, default_config)
    world, ctl = run_with_failures(
        6, stencil1d_factory, [(6e-5, fail_rank)], default_config
    )
    assert_valid_execution(ref, world)
    assert len(ctl.recovery_reports) == 1
    assert ctl.recovery_reports[0].failed == [fail_rank]


@pytest.mark.parametrize("fail_time", [1e-5, 4e-5, 9e-5, 1.3e-4])
def test_single_failure_various_times(stencil1d_factory, default_config, fail_time):
    ref, _ = run_failure_free(6, stencil1d_factory, default_config)
    world, _ = run_with_failures(
        6, stencil1d_factory, [(fail_time, 1)], default_config
    )
    assert_valid_execution(ref, world)


def test_failure_before_any_checkpoint(stencil1d_factory):
    """A failure before the first periodic checkpoint restarts the failed
    rank from its initial (implicit) checkpoint."""
    cfg = ProtocolConfig(checkpoint_interval=1e-3)  # never fires in this run
    ref, _ = run_failure_free(4, stencil1d_factory, cfg)
    world, ctl = run_with_failures(4, stencil1d_factory, [(3e-5, 2)], cfg)
    assert_valid_execution(ref, world)
    rl = ctl.recovery_reports[0].recovery_line
    assert rl[2][0] == 1  # restarted at the initial epoch


def test_failure_after_completion_of_some_ranks(stencil1d_factory, default_config):
    """Failures can arrive when parts of the application already finished;
    finished ranks may be rolled back and must re-finish."""
    ref, _ = run_failure_free(6, stencil1d_factory, default_config)
    # run to near-completion first, then fail: use a late failure time
    world, ctl = run_with_failures(
        6, stencil1d_factory, [(1.45e-4, 3)], default_config
    )
    assert_valid_execution(ref, world)


def test_2d_stencil_recovery(stencil2d_factory, default_config):
    ref, _ = run_failure_free(8, stencil2d_factory, default_config)
    world, _ = run_with_failures(8, stencil2d_factory, [(7e-5, 5)], default_config)
    assert_valid_execution(ref, world)


def test_statuses_return_to_running(stencil1d_factory, default_config):
    world, ctl = run_with_failures(
        6, stencil1d_factory, [(6e-5, 2)], default_config
    )
    assert all(p.status is Status.RUNNING for p in ctl.protocols)
    assert not ctl.recovery.active


def test_recovery_report_contents(stencil1d_factory, default_config):
    world, ctl = run_with_failures(
        6, stencil1d_factory, [(6e-5, 2)], default_config
    )
    rep = ctl.recovery_reports[0]
    assert rep.round_no == 1
    assert rep.failed == [2]
    assert rep.rolled_back == sorted(rep.recovery_line)
    assert rep.finished_at >= rep.started_at
    assert rep.phases_notified >= 1


def test_duplicates_were_suppressed(stencil1d_factory):
    """Recovery re-sends messages whose receivers kept them: the receivers
    must suppress them.  Needs partial rollback (clusters) so re-executing
    ranks re-send inter-cluster messages to peers that never rolled back."""
    cfg = ProtocolConfig(checkpoint_interval=2e-5, cluster_of=[0, 0, 0, 1, 1, 1],
                         cluster_stagger=4e-6, rank_stagger=1e-6)
    world, ctl = run_with_failures(6, stencil1d_factory, [(6e-5, 4)], cfg)
    rolled = set(ctl.recovery_reports[0].rolled_back)
    assert rolled != set(range(6))  # partial rollback happened
    suppressed = sum(p.messages_suppressed for p in ctl.protocols)
    assert suppressed > 0


def test_restart_delay_is_honoured(stencil1d_factory):
    cfg = ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=3e-6,
                         restart_delay=5e-5)
    ref, _ = run_failure_free(6, stencil1d_factory, cfg)
    world, ctl = run_with_failures(6, stencil1d_factory, [(6e-5, 2)], cfg)
    assert_valid_execution(ref, world)
    rep = ctl.recovery_reports[0]
    assert rep.finished_at - rep.started_at >= 5e-5


def test_failure_after_all_ranks_finished(stencil1d_factory, default_config):
    """A failure landing after the application completed rolls the failed
    rank (and its dependents) back; they re-execute to completion again."""
    ref, _ = run_failure_free(6, stencil1d_factory, default_config)
    world, ctl = run_with_failures(
        6, stencil1d_factory, [(ref.engine.now * 1.5, 2)], default_config
    )
    assert_valid_execution(ref, world)
    assert world.all_done
    assert len(ctl.recovery_reports) == 1


def test_failure_exactly_at_checkpoint_time(stencil1d_factory):
    """Failures colliding with checkpoint instants must not corrupt the
    store (the checkpoint either completed or never happened)."""
    cfg = ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=0.0)
    ref, _ = run_failure_free(6, stencil1d_factory, cfg)
    world, ctl = run_with_failures(6, stencil1d_factory, [(4e-5, 3)], cfg)
    assert_valid_execution(ref, world)
