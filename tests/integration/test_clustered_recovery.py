"""Clustering + staggered epochs (Section V-E-3): failures roll back only
the failed cluster and clusters at higher epochs; messages flowing up-epoch
are logged."""

import numpy as np
import pytest

from repro.apps.stencil import Stencil2D
from repro.core import ProtocolConfig

from ..conftest import assert_valid_execution, run_failure_free, run_with_failures


def factory(rank, size):
    return Stencil2D(rank, size, niters=40, block=3)


CLUSTERS = [0, 0, 0, 0, 1, 1, 1, 1]


def clustered_config():
    return ProtocolConfig(
        checkpoint_interval=3e-5,
        cluster_of=CLUSTERS,
        cluster_stagger=5e-6,
        rank_stagger=1e-6,
    )


def test_initial_epochs_separated_by_two():
    world, ctl = run_failure_free(8, factory, clustered_config())
    # epochs advanced during the run but cluster-1 stays 2 ahead modulo
    # checkpoint staggering; check the *initial* assignment instead
    assert ctl.initial_epoch(0) == 1
    assert ctl.initial_epoch(4) == 3


def test_failure_in_high_epoch_cluster_spares_low_cluster():
    """The paper's asymmetry: messages from the lower-epoch cluster to the
    higher one are logged, so a failure in the high cluster never drags the
    low cluster back."""
    ref, _ = run_failure_free(8, factory, clustered_config())
    world, ctl = run_with_failures(8, factory, [(9e-5, 6)], clustered_config())
    assert_valid_execution(ref, world)
    rolled = set(ctl.recovery_reports[0].rolled_back)
    assert rolled <= {4, 5, 6, 7}
    assert 6 in rolled


def test_failure_in_low_epoch_cluster_rolls_everyone():
    """...and conversely, the lowest-epoch cluster's failure rolls back all
    clusters at higher epochs (here: everyone)."""
    ref, _ = run_failure_free(8, factory, clustered_config())
    world, ctl = run_with_failures(8, factory, [(9e-5, 1)], clustered_config())
    assert_valid_execution(ref, world)
    rolled = set(ctl.recovery_reports[0].rolled_back)
    assert rolled == set(range(8))


def test_inter_cluster_messages_logged():
    world, ctl = run_failure_free(8, factory, clustered_config())
    stats = ctl.logging_stats()
    assert stats["messages_logged"] > 0
    assert stats["log_fraction"] < 0.5
    # up-epoch senders are cluster-0 ranks (plus intra-cluster epoch skew)
    cluster0_logged = sum(ctl.protocols[r].messages_logged for r in range(4))
    assert cluster0_logged > 0


def test_unclustered_logs_less_but_rolls_more():
    """Without clustering everything sits at the same epoch: almost nothing
    is logged, but a failure rolls back (almost) everyone — the trade-off
    Table I quantifies."""
    plain = ProtocolConfig(checkpoint_interval=3e-5, rank_stagger=1e-6)
    world_p, ctl_p = run_with_failures(8, factory, [(9e-5, 6)], plain)
    world_c, ctl_c = run_with_failures(8, factory, [(9e-5, 6)], clustered_config())
    rolled_plain = len(ctl_p.recovery_reports[0].rolled_back)
    rolled_clustered = len(ctl_c.recovery_reports[0].rolled_back)
    assert rolled_clustered <= rolled_plain
    assert ctl_c.logging_stats()["messages_logged"] >= ctl_p.logging_stats()[
        "messages_logged"
    ]


def test_four_clusters_partial_rollback():
    clusters = [0, 0, 1, 1, 2, 2, 3, 3]
    cfg = ProtocolConfig(checkpoint_interval=3e-5, cluster_of=clusters,
                         cluster_stagger=4e-6, rank_stagger=1e-6)
    ref, _ = run_failure_free(8, factory, cfg)
    # fail in the highest-epoch cluster (cluster 3 -> ranks 6,7)
    world, ctl = run_with_failures(8, factory, [(9e-5, 7)], cfg)
    assert_valid_execution(ref, world)
    rolled = set(ctl.recovery_reports[0].rolled_back)
    assert rolled <= {6, 7}
