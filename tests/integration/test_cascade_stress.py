"""Cascaded-failure stress tests: Poisson failure arrivals over a long run.

The paper proves single-recovery correctness; repeated recoveries stress
every cross-branch staleness documented in DESIGN.md §7 (orphan phase
skew, stale reception epochs, replays purged in flight by the *next*
failure).  Each scenario asserts the full validity criterion: logical
send sequences — including payload digests, which catch silent state
corruption that contracting numerics would wash out of final results —
and final states equal to the failure-free run.
"""

import random

import numpy as np
import pytest

from repro.apps import Stencil2D
from repro.core import ProtocolConfig, build_ft_world
from repro.core.clustering import block_clusters

NPROCS = 8


def factory(rank, size):
    return Stencil2D(rank, size, niters=60, block=3)


def config():
    return ProtocolConfig(
        checkpoint_interval=3e-5,
        cluster_of=block_clusters(NPROCS, 4),
        cluster_stagger=5e-6,
        rank_stagger=5e-7,
        stall_timeout=1e-4,
    )


@pytest.fixture(scope="module")
def reference():
    world, _ = build_ft_world(NPROCS, factory, config())
    world.launch()
    duration = world.run()
    return {
        "results": [p.result().copy() for p in world.programs],
        "seqs": world.tracer.logical_send_sequences(),
        "duration": duration,
    }


@pytest.mark.parametrize("seed", range(8))
def test_poisson_failure_cascade(reference, seed):
    rng = random.Random(seed)
    world, ctl = build_ft_world(NPROCS, factory, config())
    t = 0.0
    for _ in range(rng.randrange(2, 9)):
        t += rng.expovariate(1.0 / 1.2e-4)
        ctl.inject_failure(t, rng.randrange(NPROCS))
    ctl.arm()
    world.launch()
    world.run()
    # full validity: the digest comparison inside logical_send_sequences
    # raises on any same-date content divergence
    assert reference["seqs"] == world.tracer.logical_send_sequences()
    for ref, prog in zip(reference["results"], world.programs):
        np.testing.assert_allclose(ref, prog.result())
    assert len(ctl.recovery_reports) >= 1


def test_rapid_fire_same_rank(reference):
    """The same rank dying repeatedly in quick succession."""
    world, ctl = build_ft_world(NPROCS, factory, config())
    for i in range(5):
        ctl.inject_failure(5e-5 + i * 6e-5, 6)
    ctl.arm()
    world.launch()
    world.run()
    assert reference["seqs"] == world.tracer.logical_send_sequences()
    for ref, prog in zip(reference["results"], world.programs):
        np.testing.assert_allclose(ref, prog.result())
    # a failure landing in the narrow window where the rank is already
    # dead (killed, restore pending) is skipped by the injector
    assert 4 <= len(ctl.recovery_reports) <= 5


def test_alternating_cluster_failures(reference):
    """Failures ping-ponging between the lowest- and highest-epoch
    clusters (worst case for cross-branch epoch skew)."""
    world, ctl = build_ft_world(NPROCS, factory, config())
    for i, rank in enumerate([0, 7, 1, 6, 2]):
        ctl.inject_failure(6e-5 + i * 7e-5, rank)
    ctl.arm()
    world.launch()
    world.run()
    assert reference["seqs"] == world.tracer.logical_send_sequences()
    for ref, prog in zip(reference["results"], world.programs):
        np.testing.assert_allclose(ref, prog.result())


def test_replay_purged_in_flight_regression(reference):
    """Regression for DESIGN.md §7.2's hardest case: a failure arriving
    while the previous round's replays are still in flight purges them;
    the re-entered NonAck coverage of the following round must re-send
    them (found by fuzzing: two failures ~5 us apart)."""
    world, ctl = build_ft_world(NPROCS, factory, config())
    ctl.inject_failure(1.70e-4, 6)
    ctl.inject_failure(1.75e-4, 7)
    ctl.inject_failure(2.37e-4, 4)
    ctl.arm()
    world.launch()
    world.run()
    assert reference["seqs"] == world.tracer.logical_send_sequences()
    for ref, prog in zip(reference["results"], world.programs):
        np.testing.assert_allclose(ref, prog.result())


def test_cascade_with_anonymous_receives():
    """Cascaded failures through an ANY_SOURCE workload: the hardest
    combination for replay ordering (anonymous matching + phase skew)."""
    import random

    from repro.apps import ReduceTreeKernel

    def rt_factory(r, s):
        return ReduceTreeKernel(r, s, niters=20)

    cfg = ProtocolConfig(checkpoint_interval=3e-5,
                         cluster_of=block_clusters(NPROCS, 4),
                         cluster_stagger=5e-6, rank_stagger=5e-7,
                         stall_timeout=1e-4)
    ref, _ctl = None, None
    world0, _ = build_ft_world(NPROCS, rt_factory, cfg)
    world0.launch()
    world0.run()
    ref_totals = [p.result() for p in world0.programs]
    ref_seqs = world0.tracer.logical_send_sequences()
    for seed in range(4):
        rng = random.Random(100 + seed)
        world, ctl = build_ft_world(NPROCS, rt_factory, cfg)
        t = 0.0
        for _ in range(rng.randrange(2, 6)):
            t += rng.expovariate(1.0 / 1.5e-4)
            ctl.inject_failure(t, rng.randrange(NPROCS))
        ctl.arm()
        world.launch()
        world.run()
        assert ref_seqs == world.tracer.logical_send_sequences()
        for a, p in zip(ref_totals, world.programs):
            np.testing.assert_allclose(a, p.result())
