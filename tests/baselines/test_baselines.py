"""Tests for the comparison protocols: coordinated checkpointing,
pessimistic message logging, plain uncoordinated (domino), and CIC."""

import numpy as np
import pytest

from repro.apps.stencil import Stencil1D
from repro.baselines import (
    CICConfig,
    CLConfig,
    PMLConfig,
    build_cic_world,
    build_cl_world,
    build_pml_world,
    run_domino_analysis,
)
from repro.simmpi import World


def factory(rank, size):
    return Stencil1D(rank, size, niters=25, cells=4)


@pytest.fixture(scope="module")
def reference():
    world = World(6, factory)
    world.launch()
    world.run()
    return [p.result().copy() for p in world.programs]


# ----------------------------------------------------------------------
# Coordinated checkpointing (global restart)
# ----------------------------------------------------------------------
def test_cl_failure_free_rounds_complete(reference):
    world, ctl = build_cl_world(6, factory, CLConfig(snapshot_interval=2e-5))
    world.launch()
    world.run()
    assert ctl.completed_rounds
    assert ctl.global_restarts == 0
    for r, p in enumerate(world.programs):
        np.testing.assert_allclose(reference[r], p.result())


@pytest.mark.parametrize("fail_time", [3e-5, 6e-5, 1.0e-4])
def test_cl_recovers_with_global_restart(reference, fail_time):
    world, ctl = build_cl_world(6, factory, CLConfig(snapshot_interval=2e-5))
    ctl.inject_failure(fail_time, 3)
    ctl.arm()
    world.launch()
    world.run()
    assert ctl.global_restarts == 1
    assert ctl.rolled_back_history == [6]  # every process rolled back
    for r, p in enumerate(world.programs):
        np.testing.assert_allclose(reference[r], p.result())


def test_cl_failure_before_first_round_restarts_from_scratch(reference):
    world, ctl = build_cl_world(6, factory, CLConfig(snapshot_interval=1.0))
    ctl.inject_failure(3e-5, 1)
    ctl.arm()
    world.launch()
    world.run()
    assert ctl.completed_rounds in ([], [0]) or ctl.completed_rounds == []
    for r, p in enumerate(world.programs):
        np.testing.assert_allclose(reference[r], p.result())


def test_cl_two_failures(reference):
    world, ctl = build_cl_world(6, factory, CLConfig(snapshot_interval=2e-5))
    ctl.inject_failure(5e-5, 0)
    ctl.inject_failure(1.1e-4, 5)
    ctl.arm()
    world.launch()
    world.run()
    assert ctl.global_restarts == 2
    for r, p in enumerate(world.programs):
        np.testing.assert_allclose(reference[r], p.result())


# ----------------------------------------------------------------------
# Pessimistic sender-based message logging
# ----------------------------------------------------------------------
def test_pml_logs_everything(reference):
    world, ctl = build_pml_world(6, factory, PMLConfig(checkpoint_interval=2e-5))
    world.launch()
    world.run()
    stats = ctl.logging_stats()
    assert stats["log_fraction"] == 1.0


@pytest.mark.parametrize("fail_rank", [0, 3, 5])
def test_pml_restarts_only_failed_rank(reference, fail_rank):
    world, ctl = build_pml_world(
        6, factory, PMLConfig(checkpoint_interval=2e-5, rank_stagger=1e-6)
    )
    ctl.inject_failure(6e-5, fail_rank)
    ctl.arm()
    world.launch()
    world.run()
    assert ctl.rolled_back_history == [1]
    for r, p in enumerate(world.programs):
        np.testing.assert_allclose(reference[r], p.result())


def test_pml_failure_before_checkpoint(reference):
    world, ctl = build_pml_world(6, factory, PMLConfig(checkpoint_interval=1.0))
    ctl.inject_failure(4e-5, 2)
    ctl.arm()
    world.launch()
    world.run()
    for r, p in enumerate(world.programs):
        np.testing.assert_allclose(reference[r], p.result())


def test_pml_replays_in_determinant_order(reference):
    world, ctl = build_pml_world(
        6, factory, PMLConfig(checkpoint_interval=2e-5, rank_stagger=1e-6)
    )
    ctl.inject_failure(8e-5, 1)
    ctl.arm()
    world.launch()
    world.run()
    hook = ctl.hooks[1]
    assert not hook.replaying
    assert hook._replay_plan == []
    # determinants are per-source monotone
    per_src = {}
    for src, seq in hook.determinants:
        assert seq > per_src.get(src, 0)
        per_src[src] = seq


# ----------------------------------------------------------------------
# Plain uncoordinated: the domino effect (Section V-E-2)
# ----------------------------------------------------------------------
def test_domino_rolls_most_processes_back():
    stats = run_domino_analysis(
        6, factory, checkpoint_interval=2e-5, sample_interval=3e-5, jitter=0.5
    )
    assert stats.mean_rolled_back_fraction > 0.75
    assert stats.restart_from_beginning_fraction > 0.5


def test_domino_vs_protocol_with_logging():
    """The protocol's whole point: with the epoch-logging rule enabled and
    clustering, strictly fewer processes roll back than plain
    uncoordinated checkpointing on the same workload."""
    from repro.analysis.rollback import SpeSampler, rollback_analysis
    from repro.core import ProtocolConfig, build_ft_world

    cfg = ProtocolConfig(checkpoint_interval=2e-5, cluster_of=[0, 0, 0, 1, 1, 1],
                         cluster_stagger=4e-6, rank_stagger=1e-6,
                         lightweight=True)
    world, ctl = build_ft_world(6, factory, cfg)
    sampler = SpeSampler(ctl, 3e-5)
    sampler.arm()
    world.launch()
    world.run()
    protocol_stats = rollback_analysis(sampler.snapshots, 6)

    domino = run_domino_analysis(6, factory, checkpoint_interval=2e-5,
                                 sample_interval=3e-5, jitter=0.5)
    assert protocol_stats.mean_fraction < domino.mean_rolled_back_fraction


# ----------------------------------------------------------------------
# Communication-induced checkpointing
# ----------------------------------------------------------------------
def test_cic_counts_forced_checkpoints():
    world, ctl = build_cic_world(
        6, factory, CICConfig(checkpoint_interval=2e-5, rank_stagger=4e-6)
    )
    world.launch()
    world.run()
    stats = ctl.stats()
    assert stats["basic_checkpoints"] > 0
    assert stats["forced_checkpoints"] > 0
    assert stats["amplification"] > 1.5  # the related-work complaint


def test_cic_indices_propagate():
    world, ctl = build_cic_world(
        6, factory, CICConfig(checkpoint_interval=2e-5, rank_stagger=4e-6)
    )
    world.launch()
    world.run()
    indices = [h.index for h in ctl.hooks]
    # staggered basic checkpoints force everyone close to the max: a rank
    # only lags by whatever it has not heard about since its last receive
    assert max(indices) - min(indices) <= 4
    assert min(indices) > 0
