"""Tests for subcommunicators (row/column collectives)."""

import numpy as np
import pytest

from repro.apps.base import RankProgram
from repro.core import ProtocolConfig
from repro.errors import ConfigError
from repro.simmpi import SubComm, World, split_by_color

from ..conftest import assert_valid_execution, run_failure_free, run_with_failures


class RowReduce(RankProgram):
    """4x2 grid; each row allreduces its ranks' values, then a world
    allreduce cross-checks."""

    ROWS = 4

    def __init__(self, rank, size, niters=6):
        super().__init__(rank, size)
        self.state = {"it": 0, "niters": niters, "row_sums": [], "world": []}

    def run(self, api):
        cols = api.size // self.ROWS
        colors = [r // cols for r in range(api.size)]
        row = split_by_color(api, colors[api.rank], colors)
        st = self.state
        while st["it"] < st["niters"]:
            v = api.rank + 10 * st["it"]
            st["row_sums"].append((yield from row.allreduce(v)))
            st["world"].append((yield from api.allreduce(v)))
            st["it"] += 1
            yield api.maybe_checkpoint()


def expected_row_sum(rank, size, it, rows=4):
    cols = size // rows
    row = rank // cols
    return sum(r + 10 * it for r in range(row * cols, (row + 1) * cols))


def test_row_allreduce_values():
    world = World(8, RowReduce)
    world.launch()
    world.run()
    for rank, p in enumerate(world.programs):
        for it, got in enumerate(p.state["row_sums"]):
            assert got == expected_row_sum(rank, 8, it)
        for it, got in enumerate(p.state["world"]):
            assert got == sum(r + 10 * it for r in range(8))


def test_subcomm_rank_translation():
    api_like = World(8, RowReduce).apis[5]
    sub = SubComm(api_like, [4, 5, 6, 7])
    assert sub.rank == 1 and sub.size == 4
    assert sub.world_rank(0) == 4


def test_subcomm_validations():
    api = World(8, RowReduce).apis[0]
    with pytest.raises(ConfigError):
        SubComm(api, [])
    with pytest.raises(ConfigError):
        SubComm(api, [0, 0, 1])
    with pytest.raises(ConfigError):
        SubComm(api, [1, 2])          # rank 0 not a member
    with pytest.raises(ConfigError):
        SubComm(api, [0, 99])
    with pytest.raises(ConfigError):
        split_by_color(api, 1, [0] * 8)   # caller's color mismatch
    with pytest.raises(ConfigError):
        split_by_color(api, 0, [0] * 4)   # short map


def test_disjoint_subcomms_do_not_crosstalk():
    class TwoRows(RankProgram):
        def __init__(self, rank, size):
            super().__init__(rank, size)
            self.state = {"vals": []}

        def run(self, api):
            colors = [0, 0, 0, 0, 1, 1, 1, 1]
            sub = split_by_color(api, colors[api.rank], colors)
            for i in range(5):
                self.state["vals"].append((yield from sub.allreduce(api.rank)))

    world = World(8, TwoRows)
    world.launch()
    world.run()
    for rank, p in enumerate(world.programs):
        expected = sum(range(4)) if rank < 4 else sum(range(4, 8))
        assert p.state["vals"] == [expected] * 5


def test_subcomm_recovery():
    """Subcommunicator traffic replays correctly across a failure (the
    parent tag counter is checkpointed, so re-executed sub-collectives
    reuse their original tags)."""
    cfg = ProtocolConfig(checkpoint_interval=3e-5, rank_stagger=2e-6)
    factory = lambda r, s: RowReduce(r, s, niters=10)
    ref, _ = run_failure_free(8, factory, cfg)
    world, ctl = run_with_failures(8, factory, [(ref.engine.now / 2, 5)], cfg)
    assert_valid_execution(ref, world)
    assert len(ctl.recovery_reports) == 1
