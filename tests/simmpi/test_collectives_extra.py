"""Tests for the extended collectives: scan, reduce_scatter, sendrecv."""

import numpy as np
import pytest

from repro.apps.base import RankProgram
from repro.simmpi import World

SIZES = [1, 2, 3, 5, 8]


class ExtraColl(RankProgram):
    def __init__(self, rank, size):
        super().__init__(rank, size)
        self.state = {"res": {}}

    def run(self, api):
        res = self.state["res"]
        res["scan"] = yield from api.scan(api.rank + 1)
        res["scan_max"] = yield from api.scan(api.rank, op=max)
        res["rs"] = yield from api.reduce_scatter(
            [api.rank * 10 + j for j in range(api.size)]
        )
        nxt = (api.rank + 1) % api.size
        prv = (api.rank - 1) % api.size
        res["sr"] = yield from api.sendrecv(nxt, api.rank, prv, tag=4)


@pytest.fixture(params=SIZES)
def world(request):
    w = World(request.param, ExtraColl)
    w.launch()
    w.run()
    return w


def test_scan_inclusive_prefix(world):
    for rank, p in enumerate(world.programs):
        assert p.state["res"]["scan"] == sum(range(1, rank + 2))


def test_scan_custom_op(world):
    for rank, p in enumerate(world.programs):
        assert p.state["res"]["scan_max"] == rank


def test_reduce_scatter_elementwise(world):
    n = world.nprocs
    for rank, p in enumerate(world.programs):
        expected = sum(r * 10 + rank for r in range(n))
        assert p.state["res"]["rs"] == expected


def test_sendrecv_ring(world):
    n = world.nprocs
    for rank, p in enumerate(world.programs):
        assert p.state["res"]["sr"] == (rank - 1) % n


def test_reduce_scatter_arity_check():
    class Bad(RankProgram):
        def run(self, api):
            yield from api.reduce_scatter([1])

    w = World(3, Bad)
    w.launch()
    with pytest.raises(ValueError):
        w.run()


def test_scan_non_commutative_order():
    """The linear pipeline preserves left-to-right application order."""
    class P(RankProgram):
        def __init__(self, rank, size):
            super().__init__(rank, size)
            self.state = {"s": None}

        def run(self, api):
            self.state["s"] = yield from api.scan(str(api.rank),
                                                  op=lambda a, b: a + b)

    w = World(5, P)
    w.launch()
    w.run()
    assert w.programs[4].state["s"] == "01234"
