"""Unit tests for the tracer: sequences, digests, matrices, dedup."""

import numpy as np
import pytest

from repro.errors import SendDeterminismError
from repro.simmpi.message import Envelope
from repro.simmpi.trace import SendRecord, Tracer, payload_digest


def env(src, dst, payload=1, tag=0, date=None):
    e = Envelope(src=src, dst=dst, tag=tag, payload=payload)
    if date is not None:
        e.meta["date"] = date
    return e


def test_payload_digest_numpy_content_sensitive():
    a = np.arange(4.0)
    b = np.arange(4.0)
    c = np.arange(4.0) + 1
    assert payload_digest(a) == payload_digest(b)
    assert payload_digest(a) != payload_digest(c)


def test_payload_digest_shape_sensitive():
    a = np.zeros((2, 3))
    b = np.zeros((3, 2))
    assert payload_digest(a) != payload_digest(b)


def test_payload_digest_containers():
    assert payload_digest([1, 2]) == payload_digest([1, 2])
    assert payload_digest({"a": 1}) == payload_digest({"a": 1})
    assert payload_digest((1,)) != payload_digest((2,))


def test_payload_digest_unhashable_fallback():
    class Weird:
        __hash__ = None

        def __repr__(self):
            return "weird"

    assert payload_digest(Weird()) == payload_digest(Weird())


def test_send_record_equality_and_same_message():
    a = SendRecord.of(env(0, 1, payload=5, date=3))
    b = SendRecord.of(env(0, 1, payload=5, date=9))
    assert a != b            # dates differ
    assert a.same_message(b)  # contents identical


def test_comm_matrix_counts_and_bytes():
    t = Tracer(3)
    t.on_app_send(env(0, 1, payload=np.zeros(10)), 0.0)
    t.on_app_send(env(0, 1, payload=np.zeros(10)), 0.0)
    t.on_app_send(env(2, 0, payload=np.zeros(5)), 0.0)
    m = t.comm_matrix()
    assert m[0, 1] == 2 and m[2, 0] == 1 and m.sum() == 3
    b = t.comm_matrix("bytes")
    assert b[0, 1] == 160 and b[2, 0] == 40


def test_comm_matrix_unknown_weight():
    with pytest.raises(ValueError):
        Tracer(2).comm_matrix("volume")


def test_replay_dup_not_counted_in_matrix():
    t = Tracer(2)
    e = env(0, 1, date=1)
    e.meta["replayed"] = True
    t.on_app_send(e, 0.0, is_replay_dup=True)
    assert t.comm_matrix().sum() == 0
    assert len(t.send_sequences(dedup=False)[0]) == 1
    assert len(t.send_sequences(dedup=True)[0]) == 0


def test_logical_sequences_collapse_by_date():
    t = Tracer(2)
    t.on_app_send(env(0, 1, payload=7, date=1), 0.0)
    t.on_app_send(env(0, 1, payload=8, date=2), 0.0)
    t.on_app_send(env(0, 1, payload=7, date=1), 0.0)  # re-execution re-send
    seq = t.logical_send_sequences()[0]
    assert [r.date for r in seq] == [1, 2]


def test_logical_sequences_detect_content_divergence():
    t = Tracer(2)
    t.on_app_send(env(0, 1, payload=7, date=1), 0.0)
    t.on_app_send(env(0, 1, payload=999, date=1), 0.0)  # same date, new content
    with pytest.raises(SendDeterminismError):
        t.logical_send_sequences()


def test_logical_sequences_without_dates_pass_through():
    t = Tracer(1)
    t.on_app_send(env(0, 0, payload=1), 0.0)
    t.on_app_send(env(0, 0, payload=1), 0.0)
    assert len(t.logical_send_sequences()[0]) == 2


def test_deliver_sequences():
    t = Tracer(2)
    t.on_app_deliver(env(0, 1, payload=b"abc", tag=4), 1.0)
    assert t.deliver_sequences()[1] == [(0, 4, 3)]


def test_event_recording_toggle():
    t = Tracer(2, record_events=True)
    t.on_app_send(env(0, 1), 0.5)
    t.on_mark("checkpoint", 0, 0.6, (2,))
    kinds = [e.kind for e in t.events]
    assert kinds == ["send", "checkpoint"]
    t2 = Tracer(2, record_events=False)
    t2.on_app_send(env(0, 1), 0.5)
    assert t2.events == []
