"""Unit tests for grid topologies."""

import math

import pytest

from repro.errors import ConfigError
from repro.simmpi.topology import (
    CartGrid,
    balanced_dims,
    hypercube_neighbors,
    is_power_of_two,
)


def test_is_power_of_two():
    assert all(is_power_of_two(1 << k) for k in range(10))
    assert not any(is_power_of_two(n) for n in [0, 3, 5, 6, 7, 9, 12, -4])


@pytest.mark.parametrize("n,d", [(64, 3), (128, 3), (256, 3), (16, 2), (36, 2),
                                 (7, 2), (12, 3), (1, 1)])
def test_balanced_dims_product_and_balance(n, d):
    dims = balanced_dims(n, d)
    assert math.prod(dims) == n
    assert len(dims) == d
    # near-balanced: max/min ratio bounded by the largest prime factor
    assert max(dims) <= n


def test_balanced_dims_cube_for_64():
    assert balanced_dims(64, 3) == (4, 4, 4)


def test_balanced_dims_invalid():
    with pytest.raises(ConfigError):
        balanced_dims(0, 2)
    with pytest.raises(ConfigError):
        balanced_dims(4, 0)


def test_cart_coords_roundtrip():
    g = CartGrid((3, 4, 5))
    for rank in range(g.size):
        assert g.rank_of(g.coords(rank)) == rank


def test_cart_row_major_order():
    g = CartGrid((2, 3))
    assert g.coords(0) == (0, 0)
    assert g.coords(1) == (0, 1)
    assert g.coords(3) == (1, 0)


def test_shift_periodic_wraps():
    g = CartGrid((4,), periodic=True)
    assert g.shift(0, 0, -1) == 3
    assert g.shift(3, 0, +1) == 0


def test_shift_nonperiodic_boundary_none():
    g = CartGrid((4,), periodic=False)
    assert g.shift(0, 0, -1) is None
    assert g.shift(3, 0, +1) is None
    assert g.shift(1, 0, +1) == 2


def test_neighbors_unique():
    g = CartGrid((2, 2), periodic=True)
    n = g.neighbors(0)
    assert len(n) == len(set(n))
    assert 0 not in n


def test_neighbors_interior_count():
    g = CartGrid((5, 5), periodic=False)
    assert len(g.neighbors(12)) == 4  # interior
    assert len(g.neighbors(0)) == 2   # corner


def test_invalid_rank_and_coords():
    g = CartGrid((2, 2))
    with pytest.raises(ConfigError):
        g.coords(4)
    with pytest.raises(ConfigError):
        g.rank_of((2, 0))
    with pytest.raises(ConfigError):
        g.rank_of((0,))


def test_invalid_dims():
    with pytest.raises(ConfigError):
        CartGrid((0, 2))
    with pytest.raises(ConfigError):
        CartGrid(())


def test_hypercube_neighbors():
    n = hypercube_neighbors(0, 8)
    assert sorted(n) == [1, 2, 4]
    n5 = hypercube_neighbors(5, 8)
    assert sorted(n5) == [1, 4, 7]


def test_hypercube_requires_power_of_two():
    with pytest.raises(ConfigError):
        hypercube_neighbors(0, 6)
