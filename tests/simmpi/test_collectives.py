"""Unit tests for the collective operations (all algorithms, odd sizes)."""

import numpy as np
import pytest

from repro.apps.base import RankProgram
from repro.simmpi import World

SIZES = [1, 2, 3, 4, 5, 7, 8]


class CollectiveProgram(RankProgram):
    """Runs every collective once and records results for assertions."""

    def __init__(self, rank, size):
        super().__init__(rank, size)
        self.state = {"res": {}}

    def run(self, api):
        res = self.state["res"]
        res["bcast"] = yield from api.bcast(
            {"root": "data"} if api.rank == 0 else None, root=0
        )
        res["reduce"] = yield from api.reduce(api.rank + 1, root=0)
        res["allreduce"] = yield from api.allreduce(api.rank + 1)
        res["gather"] = yield from api.gather(api.rank ** 2, root=0)
        res["scatter"] = yield from api.scatter(
            [i * 3 for i in range(api.size)] if api.rank == 0 else None, root=0
        )
        res["allgather"] = yield from api.allgather(chr(ord("a") + api.rank % 26))
        res["alltoall"] = yield from api.alltoall(
            [api.rank * 100 + j for j in range(api.size)]
        )
        yield from api.barrier()


@pytest.fixture(params=SIZES)
def collective_world(request):
    world = World(request.param, CollectiveProgram)
    world.launch()
    world.run()
    return world


def results(world):
    return [p.state["res"] for p in world.programs]


def test_bcast_delivers_root_value(collective_world):
    for res in results(collective_world):
        assert res["bcast"] == {"root": "data"}


def test_reduce_sums_at_root(collective_world):
    n = collective_world.nprocs
    expected = n * (n + 1) // 2
    for rank, res in enumerate(results(collective_world)):
        assert res["reduce"] == (expected if rank == 0 else None)


def test_allreduce_everywhere(collective_world):
    n = collective_world.nprocs
    expected = n * (n + 1) // 2
    for res in results(collective_world):
        assert res["allreduce"] == expected


def test_gather_in_rank_order(collective_world):
    n = collective_world.nprocs
    for rank, res in enumerate(results(collective_world)):
        if rank == 0:
            assert res["gather"] == [i ** 2 for i in range(n)]
        else:
            assert res["gather"] is None


def test_scatter_slices(collective_world):
    for rank, res in enumerate(results(collective_world)):
        assert res["scatter"] == rank * 3


def test_allgather_everywhere(collective_world):
    n = collective_world.nprocs
    expected = [chr(ord("a") + r % 26) for r in range(n)]
    for res in results(collective_world):
        assert res["allgather"] == expected


def test_alltoall_transposes(collective_world):
    n = collective_world.nprocs
    for rank, res in enumerate(results(collective_world)):
        assert res["alltoall"] == [s * 100 + rank for s in range(n)]


def test_reduce_with_numpy_payloads():
    class P(RankProgram):
        def __init__(self, rank, size):
            super().__init__(rank, size)
            self.state = {"total": None}

        def run(self, api):
            v = np.full(4, float(api.rank))
            self.state["total"] = yield from api.allreduce(v)

    world = World(6, P)
    world.launch()
    world.run()
    for p in world.programs:
        np.testing.assert_array_equal(p.state["total"], np.full(4, 15.0))


def test_reduce_custom_op():
    class P(RankProgram):
        def __init__(self, rank, size):
            super().__init__(rank, size)
            self.state = {"m": None}

        def run(self, api):
            self.state["m"] = yield from api.allreduce(api.rank, op=max)

    world = World(5, P)
    world.launch()
    world.run()
    assert all(p.state["m"] == 4 for p in world.programs)


def test_nonzero_root_bcast_and_reduce():
    class P(RankProgram):
        def __init__(self, rank, size):
            super().__init__(rank, size)
            self.state = {"b": None, "r": None}

        def run(self, api):
            self.state["b"] = yield from api.bcast(
                "v" if api.rank == 3 else None, root=3
            )
            self.state["r"] = yield from api.reduce(1, root=3)

    world = World(6, P)
    world.launch()
    world.run()
    assert all(p.state["b"] == "v" for p in world.programs)
    assert world.programs[3].state["r"] == 6


def test_scatter_requires_full_list():
    class P(RankProgram):
        def run(self, api):
            yield from api.scatter([1], root=0)

    world = World(3, P)
    world.launch()
    with pytest.raises(ValueError):
        world.run()


def test_alltoall_requires_per_rank_values():
    class P(RankProgram):
        def run(self, api):
            yield from api.alltoall([1])

    world = World(3, P)
    world.launch()
    with pytest.raises(ValueError):
        world.run()


def test_back_to_back_collectives_do_not_crosstalk():
    class P(RankProgram):
        def __init__(self, rank, size):
            super().__init__(rank, size)
            self.state = {"vals": []}

        def run(self, api):
            for i in range(10):
                v = yield from api.allreduce(i)
                self.state["vals"].append(v)

    world = World(4, P)
    world.launch()
    world.run()
    for p in world.programs:
        assert p.state["vals"] == [4 * i for i in range(10)]
