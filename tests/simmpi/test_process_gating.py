"""Unit tests for the protocol gating paths in Proc: send gating with
blocking and non-blocking sends, pause/unpause with pending resumes."""

from repro.apps.base import RankProgram
from repro.simmpi import World
from repro.simmpi.process import ProtocolHook


class GateHook(ProtocolHook):
    """A hook whose send permission can be toggled from the test."""

    allowed = True

    def send_allowed(self) -> bool:
        return GateHook.allowed


class Sender(RankProgram):
    def __init__(self, rank, size):
        super().__init__(rank, size)
        self.state = {"sent": 0, "got": []}

    def run(self, api):
        if api.rank == 0:
            for i in range(3):
                yield api.send(1, i, tag=0)
                self.state["sent"] += 1
        else:
            for _ in range(3):
                self.state["got"].append((yield api.recv(0, tag=0)))


def test_gated_blocking_send_waits_for_permission():
    GateHook.allowed = False
    world = World(2, Sender, hook_factory=lambda r: GateHook())
    world.launch()
    world.engine.run(until=1e-3)
    assert world.programs[0].state["sent"] == 0
    assert world.procs[0].blocked_on == "send-gate"
    GateHook.allowed = True
    world.procs[0].retry_gated_sends()
    world.run()
    assert world.programs[1].state["got"] == [0, 1, 2]


class IsendBurst(RankProgram):
    def __init__(self, rank, size):
        super().__init__(rank, size)
        self.state = {"got": []}

    def run(self, api):
        if api.rank == 0:
            reqs = []
            for i in range(4):
                reqs.append((yield api.isend(1, i, tag=0)))
            yield api.waitall(reqs)
        else:
            for _ in range(4):
                self.state["got"].append((yield api.recv(0, tag=0)))


def test_gated_isends_queue_in_order():
    GateHook.allowed = False
    world = World(2, IsendBurst, hook_factory=lambda r: GateHook())
    world.launch()
    world.engine.run(until=1e-3)
    assert world.programs[1].state["got"] == []
    GateHook.allowed = True
    world.procs[0].retry_gated_sends()
    world.run()
    assert world.programs[1].state["got"] == [0, 1, 2, 3]  # FIFO preserved


def test_unpause_flushes_pending_recv_value():
    class P(RankProgram):
        def __init__(self, rank, size):
            super().__init__(rank, size)
            self.state = {"got": None}

        def run(self, api):
            if api.rank == 0:
                yield api.send(1, "late", tag=0)
            else:
                self.state["got"] = yield api.recv(0, tag=0)

    world = World(2, P)
    world.procs[1].pause()
    world.launch()
    world.engine.run(until=1e-3)
    # delivered and matched while paused, but the program never resumed
    assert world.programs[1].state["got"] is None
    world.procs[1].unpause()
    world.run()
    assert world.programs[1].state["got"] == "late"


def test_stale_incarnation_resume_dropped():
    class P(RankProgram):
        def __init__(self, rank, size):
            super().__init__(rank, size)
            self.state = {"steps": 0}

        def run(self, api):
            while self.state["steps"] < 3:
                yield api.compute(1e-5)
                self.state["steps"] += 1

    world = World(1, P)
    world.launch()
    world.engine.run(until=1.5e-5)  # mid-run, one resume in flight
    world.procs[0].reincarnate()
    world.programs[0].restore({"steps": 0})
    world.procs[0].start(world.programs[0].run(world.apis[0]))
    world.run()
    # the stale resume of the old incarnation must not double-advance
    assert world.programs[0].state["steps"] == 3
