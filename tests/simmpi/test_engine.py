"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.simmpi.engine import Engine


def test_initial_clock_zero():
    assert Engine().now == 0.0


def test_events_run_in_time_order():
    eng = Engine()
    order = []
    eng.schedule(3e-6, lambda: order.append("c"))
    eng.schedule(1e-6, lambda: order.append("a"))
    eng.schedule(2e-6, lambda: order.append("b"))
    eng.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_run_fifo():
    eng = Engine()
    order = []
    for i in range(10):
        eng.schedule(1e-6, lambda i=i: order.append(i))
    eng.run()
    assert order == list(range(10))


def test_clock_advances_to_event_time():
    eng = Engine()
    seen = []
    eng.schedule(5e-6, lambda: seen.append(eng.now))
    eng.run()
    assert seen == [5e-6]
    assert eng.now == 5e-6


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Engine().schedule(-1.0, lambda: None)


def test_cancelled_event_skipped():
    eng = Engine()
    fired = []
    handle = eng.schedule(1e-6, lambda: fired.append("x"))
    handle.cancel()
    eng.run()
    assert fired == []
    assert handle.cancelled


def test_cancel_twice_is_noop():
    eng = Engine()
    handle = eng.schedule(1e-6, lambda: None)
    handle.cancel()
    handle.cancel()
    eng.run()


def test_schedule_at_absolute_time():
    eng = Engine()
    seen = []
    eng.schedule_at(7e-6, lambda: seen.append(eng.now))
    eng.run()
    assert seen == [7e-6]


def test_schedule_at_past_runs_now():
    eng = Engine()
    eng.schedule(5e-6, lambda: eng.schedule_at(1e-6, lambda: None))
    eng.run()  # must not raise "time went backwards"
    assert eng.now == 5e-6


def test_events_can_schedule_events():
    eng = Engine()
    order = []

    def first():
        order.append("first")
        eng.schedule(1e-6, lambda: order.append("second"))

    eng.schedule(1e-6, first)
    eng.run()
    assert order == ["first", "second"]
    assert eng.now == pytest.approx(2e-6)


def test_run_until_stops_clock():
    eng = Engine()
    fired = []
    eng.schedule(1e-6, lambda: fired.append(1))
    eng.schedule(10e-6, lambda: fired.append(2))
    eng.run(until=5e-6)
    assert fired == [1]
    assert eng.now == 5e-6
    eng.run()
    assert fired == [1, 2]


def test_run_max_events():
    eng = Engine()
    fired = []
    for i in range(5):
        eng.schedule(1e-6 * (i + 1), lambda i=i: fired.append(i))
    eng.run(max_events=2)
    assert fired == [0, 1]


def test_pending_counts_non_cancelled():
    eng = Engine()
    h1 = eng.schedule(1e-6, lambda: None)
    eng.schedule(2e-6, lambda: None)
    assert eng.pending == 2
    h1.cancel()
    assert eng.pending == 1


def test_events_dispatched_counter():
    eng = Engine()
    for i in range(4):
        eng.schedule(1e-6, lambda: None)
    eng.run()
    assert eng.events_dispatched == 4


def test_reentrant_run_rejected():
    eng = Engine()

    def reenter():
        with pytest.raises(SimulationError):
            eng.run()

    eng.schedule(1e-6, reenter)
    eng.run()


def test_call_soon_runs_at_current_time():
    eng = Engine()
    times = []
    eng.schedule(3e-6, lambda: eng.call_soon(lambda: times.append(eng.now)))
    eng.run()
    assert times == [3e-6]


def test_determinism_across_runs():
    def build():
        eng = Engine()
        order = []
        for i in range(50):
            eng.schedule((i * 7919 % 13) * 1e-7, lambda i=i: order.append(i))
        eng.run()
        return order

    assert build() == build()


# ----------------------------------------------------------------------
# Regressions: run(until=...) clock semantics when the queue drains early
# ----------------------------------------------------------------------
def test_run_until_clock_lands_on_horizon_after_drain():
    # the queue draining below the horizon used to leave the clock at the
    # last event's time instead of advancing it to `until`
    eng = Engine()
    eng.schedule(1e-6, lambda: None)
    eng.run(until=5e-6)
    assert eng.now == 5e-6


def test_run_until_on_empty_queue_advances_clock():
    eng = Engine()
    eng.run(until=3e-6)
    assert eng.now == 3e-6
    eng.run(until=2e-6)  # an earlier horizon never moves the clock back
    assert eng.now == 3e-6


def test_periodic_sampling_across_drained_queue():
    # back-to-back run(until=...) calls give evenly spaced sampling points
    # even when the workload finishes well before the last horizon
    eng = Engine()
    eng.schedule(1e-6, lambda: None)
    for horizon in (1e-5, 2e-5, 3e-5):
        eng.run(until=horizon)
        assert eng.now == horizon


# ----------------------------------------------------------------------
# Regressions: the live `pending` counter
# ----------------------------------------------------------------------
def test_cancel_after_dispatch_keeps_pending_consistent():
    eng = Engine()
    handle = eng.schedule(1e-6, lambda: None)
    eng.schedule(2e-6, lambda: None)
    eng.run(max_events=1)
    assert eng.pending == 1
    handle.cancel()  # already ran: must not decrement a second time
    assert eng.pending == 1
    eng.run()
    assert eng.pending == 0


def test_pending_counts_schedule_at_in_past():
    eng = Engine()
    fired = []

    def inner():
        eng.schedule_at(1e-6, lambda: fired.append("late"))
        assert eng.pending == 1  # the clamped-to-now event is pending

    eng.schedule(5e-6, inner)
    eng.run()
    assert fired == ["late"]
    assert eng.pending == 0


def test_pending_through_interleaved_cancel_and_dispatch():
    eng = Engine()
    handles = [eng.schedule(i * 1e-6, lambda: None) for i in range(1, 7)]
    assert eng.pending == 6
    handles[0].cancel()
    handles[3].cancel()
    assert eng.pending == 4
    eng.run(max_events=2)
    assert eng.pending == 2
    handles[3].cancel()  # cancelling twice stays a no-op
    assert eng.pending == 2
    eng.run()
    assert eng.pending == 0


# ----------------------------------------------------------------------
# Cancelled-entry compaction (queue garbage must stay bounded)
# ----------------------------------------------------------------------

def test_queue_garbage_tracks_cancellations():
    eng = Engine()
    handles = [eng.schedule((i + 1) * 1e-6, lambda: None) for i in range(10)]
    for h in handles[:4]:
        h.cancel()
    assert eng.queue_garbage == 4
    assert eng.pending == 6
    eng.run()
    assert eng.queue_garbage == 0
    assert eng.pending == 0


def test_mass_cancellation_triggers_compaction():
    """Cancelling most of a large queue rebuilds the heap instead of
    letting dead entries accumulate (the unbounded-growth fix)."""
    eng = Engine()
    keep = eng.schedule(1.0, lambda: None)
    doomed = [eng.schedule(2.0 + i * 1e-6, lambda: None) for i in range(200)]
    for h in doomed:
        h.cancel()
    assert eng.compactions >= 1
    # physical queue shrank to (close to) the live entries
    assert len(eng._queue) <= eng.pending + eng.queue_garbage
    assert eng.pending == 1
    keep.cancel()
    assert eng.pending == 0


def test_no_compaction_below_minimum():
    """Tiny queues never pay a rebuild (cost would dominate)."""
    eng = Engine()
    handles = [eng.schedule((i + 1) * 1e-6, lambda: None) for i in range(10)]
    for h in handles:
        h.cancel()
    assert eng.compactions == 0
    eng.run()
    assert eng.pending == 0


def test_compaction_during_run_keeps_queue_identity():
    """Regression: run() caches the queue list, so a compaction fired from
    inside a callback must rebuild it in place — rebinding the attribute
    silently detached the loop from future events and corrupted the
    pending/cancelled counters."""
    eng = Engine()
    order = []
    doomed = []

    def purge_and_continue():
        order.append("purge")
        for h in doomed:
            h.cancel()
        # scheduled AFTER the compaction the cancellations just triggered:
        # it must still be seen by the already-running dispatch loop
        eng.schedule(1e-6, lambda: order.append("after"))

    eng.schedule(1e-6, purge_and_continue)
    doomed.extend(eng.schedule(5.0 + i * 1e-6, lambda: None) for i in range(300))
    eng.run()
    assert order == ["purge", "after"]
    assert eng.compactions >= 1
    assert eng.pending == 0
    assert eng.queue_garbage == 0


def test_cancelled_events_do_not_dispatch_after_compaction():
    eng = Engine()
    fired = []
    handles = [
        eng.schedule((i + 1) * 1e-6, (lambda i=i: fired.append(i)))
        for i in range(150)
    ]
    for h in handles[::2]:
        h.cancel()
    eng.run()
    assert fired == list(range(1, 150, 2))
