"""Unit tests for process operations (send/recv/isend/irecv/compute/...)."""

import numpy as np
import pytest

from repro.apps.base import RankProgram
from repro.errors import DeadlockError, SimulationError
from repro.simmpi import ANY_SOURCE, ANY_TAG, World
from repro.simmpi.process import Status


class Script(RankProgram):
    """Runs a rank-indexed generator function from ``bodies``."""

    bodies = {}

    def __init__(self, rank, size):
        super().__init__(rank, size)
        self.state = {"out": []}

    def run(self, api):
        body = self.bodies.get(api.rank)
        if body is None:
            return
            yield  # pragma: no cover
        yield from body(api, self.state["out"])


def run_script(nprocs, bodies, **kw):
    cls = type("S", (Script,), {"bodies": bodies})
    world = World(nprocs, cls, **kw)
    world.launch()
    world.run()
    return world


def test_blocking_send_recv():
    def p0(api, out):
        yield api.send(1, "hello", tag=3)

    def p1(api, out):
        msg = yield api.recv(0, tag=3)
        out.append(msg)

    w = run_script(2, {0: p0, 1: p1})
    assert w.programs[1].state["out"] == ["hello"]


def test_any_source_any_tag():
    def sender(api, out):
        yield api.send(2, api.rank * 10, tag=api.rank)

    def p2(api, out):
        a = yield api.recv(ANY_SOURCE, ANY_TAG)
        b = yield api.recv(ANY_SOURCE, ANY_TAG)
        out.extend(sorted([a, b]))

    w = run_script(3, {0: sender, 1: sender, 2: p2})
    assert w.programs[2].state["out"] == [0, 10]


def test_recv_with_status():
    def p0(api, out):
        yield api.send(1, b"xyz", tag=9)

    def p1(api, out):
        payload, status = yield api.recv(0, tag=9, with_status=True)
        out.append((payload, status.source, status.tag, status.size))

    w = run_script(2, {0: p0, 1: p1})
    assert w.programs[1].state["out"] == [(b"xyz", 0, 9, 3)]


def test_tag_matching_skips_unexpected():
    def p0(api, out):
        yield api.send(1, "first", tag=1)
        yield api.send(1, "second", tag=2)

    def p1(api, out):
        b = yield api.recv(0, tag=2)
        a = yield api.recv(0, tag=1)
        out.extend([a, b])

    w = run_script(2, {0: p0, 1: p1})
    assert w.programs[1].state["out"] == ["first", "second"]


def test_isend_irecv_waitall():
    def p0(api, out):
        reqs = []
        for i in range(4):
            reqs.append((yield api.isend(1, i, tag=i)))
        yield api.waitall(reqs)

    def p1(api, out):
        reqs = []
        for i in range(4):
            reqs.append((yield api.irecv(0, tag=i)))
        values = yield api.waitall(reqs)
        out.extend(values)

    w = run_script(2, {0: p0, 1: p1})
    assert w.programs[1].state["out"] == [0, 1, 2, 3]


def test_wait_single_request():
    def p0(api, out):
        yield api.send(1, 42, tag=0)

    def p1(api, out):
        req = yield api.irecv(0, tag=0)
        value = yield api.wait(req)
        out.append(value)

    w = run_script(2, {0: p0, 1: p1})
    assert w.programs[1].state["out"] == [42]


def test_compute_advances_clock():
    def p0(api, out):
        t0 = yield api.now()
        yield api.compute(1e-3)
        t1 = yield api.now()
        out.append(t1 - t0)

    w = run_script(1, {0: p0})
    assert w.programs[0].state["out"][0] == pytest.approx(1e-3)


def test_negative_compute_rejected():
    def p0(api, out):
        yield api.compute(-1.0)

    with pytest.raises(SimulationError):
        run_script(1, {0: p0})


def test_deadlock_detection_reports_blocked():
    def p0(api, out):
        yield api.recv(1, tag=0)  # never sent

    def p1(api, out):
        return
        yield

    with pytest.raises(DeadlockError) as exc:
        run_script(2, {0: p0, 1: p1})
    assert 0 in exc.value.blocked
    assert "recv" in exc.value.blocked[0]


def test_negative_app_tag_rejected():
    def p0(api, out):
        yield api.send(1, 1, tag=-2_000_000)

    def p1(api, out):
        yield api.recv(0, tag=-2_000_000)

    with pytest.raises(SimulationError):
        run_script(2, {0: p0, 1: p1})


def test_unexpected_queue_buffers_early_messages():
    def p0(api, out):
        for i in range(5):
            yield api.send(1, i, tag=0)

    def p1(api, out):
        yield api.compute(1e-3)  # let the messages pile up
        for _ in range(5):
            out.append((yield api.recv(0, tag=0)))

    w = run_script(2, {0: p0, 1: p1})
    assert w.programs[1].state["out"] == list(range(5))


def test_payload_copied_on_send_when_opted_in():
    # defensive mode for buffer-recycling programs: mutable payloads are
    # copied at send time, so post-send mutation is invisible downstream
    def p0(api, out):
        buf = np.zeros(4)
        yield api.send(1, buf, tag=0)
        buf[:] = 99.0  # mutate after send: receiver must not see it

    def p1(api, out):
        data = yield api.recv(0, tag=0)
        out.append(data.copy())

    w = run_script(2, {0: p0, 1: p1}, copy_payloads=True)
    np.testing.assert_array_equal(w.programs[1].state["out"][0], np.zeros(4))


def test_payload_zero_copy_by_default():
    # the default is zero-copy: the receiver observes the sender's buffer
    # object itself, so programs must hand fresh buffers to send() (all the
    # bundled apps do); the FT layer copies on log entry, not on send
    def p0(api, out):
        buf = np.zeros(4)
        out.append(buf)
        yield api.send(1, buf, tag=0)

    def p1(api, out):
        data = yield api.recv(0, tag=0)
        out.append(data)

    w = run_script(2, {0: p0, 1: p1})
    sent = w.programs[0].state["out"][0]
    received = w.programs[1].state["out"][0]
    assert received is sent


def test_message_counters():
    def p0(api, out):
        yield api.send(1, 1, tag=0)
        yield api.send(1, 2, tag=0)

    def p1(api, out):
        yield api.recv(0, tag=0)
        yield api.recv(0, tag=0)

    w = run_script(2, {0: p0, 1: p1})
    assert w.procs[0].app_messages_sent == 2
    assert w.procs[1].app_messages_received == 2


def test_forced_checkpoint_with_posted_recv_rejected():
    def p0(api, out):
        yield api.irecv(1, tag=0)
        yield api.checkpoint()

    def p1(api, out):
        yield api.compute(1.0)
        yield api.send(0, 1, tag=0)

    with pytest.raises(SimulationError):
        run_script(2, {0: p0, 1: p1})


def test_maybe_checkpoint_defaults_to_not_taken():
    def p0(api, out):
        taken = yield api.maybe_checkpoint()
        out.append(taken)

    w = run_script(1, {0: p0})
    assert w.programs[0].state["out"] == [False]


def test_forced_checkpoint_returns_true():
    def p0(api, out):
        taken = yield api.checkpoint()
        out.append(taken)

    w = run_script(1, {0: p0})
    assert w.programs[0].state["out"] == [True]


def test_pause_defers_execution():
    world_holder = {}

    def p0(api, out):
        yield api.compute(1e-6)
        out.append("ran")

    cls = type("S", (Script,), {"bodies": {0: p0}})
    world = World(1, cls)
    world_holder["w"] = world
    world.procs[0].pause()
    world.launch()
    world.engine.run(until=1.0)
    assert world.programs[0].state["out"] == []
    world.procs[0].unpause()
    world.run()
    assert world.programs[0].state["out"] == ["ran"]


def test_reincarnate_clears_queues():
    def p0(api, out):
        yield api.send(1, 1, tag=0)

    def p1(api, out):
        yield api.compute(1.0)

    cls = type("S", (Script,), {"bodies": {0: p0, 1: p1}})
    world = World(2, cls)
    world.launch()
    world.run()
    proc = world.procs[1]
    assert len(proc.unexpected) == 1
    inc = proc.incarnation
    proc.reincarnate()
    assert len(proc.unexpected) == 0
    assert proc.incarnation == inc + 1


def test_world_requires_at_least_one_rank():
    with pytest.raises(SimulationError):
        World(0, lambda r, s: None)
