"""Unit tests for the FIFO network and timing model."""

import pytest

from repro.errors import SimulationError
from repro.simmpi.engine import Engine
from repro.simmpi.message import Envelope
from repro.simmpi.network import Network, TimingModel


def make_net(timing=None, ranks=(0, 1, 2)):
    eng = Engine()
    net = Network(eng, timing)
    inboxes = {r: [] for r in ranks}
    for r in ranks:
        net.attach(r, lambda env, r=r: inboxes[r].append(env))
    return eng, net, inboxes


def env(src, dst, size=8, tag=0):
    return Envelope(src=src, dst=dst, tag=tag, payload=b"x" * size, size=size)


def test_basic_delivery():
    eng, net, inboxes = make_net()
    net.transmit(env(0, 1))
    eng.run()
    assert len(inboxes[1]) == 1


def test_transit_time_latency_plus_bandwidth():
    tm = TimingModel(latency=1e-6, bandwidth=1e9)
    assert tm.transit_time(0) == pytest.approx(1e-6)
    assert tm.transit_time(1000) == pytest.approx(2e-6)


def test_sender_cpu_time():
    tm = TimingModel(send_overhead=1e-7, per_byte_overhead=1e-9)
    assert tm.sender_cpu_time(100) == pytest.approx(1e-7 + 1e-7)


def test_fifo_within_channel_despite_sizes():
    # A large (slow) message followed by a tiny one on the same channel must
    # not be overtaken.
    eng, net, inboxes = make_net(TimingModel(latency=1e-6, bandwidth=1e6))
    big = env(0, 1, size=10_000, tag=1)
    small = env(0, 1, size=1, tag=2)
    net.transmit(big)
    net.transmit(small)
    eng.run()
    assert [e.tag for e in inboxes[1]] == [1, 2]


def test_cross_channel_reordering_allowed():
    # different channels: a later small message from another sender may
    # arrive first
    eng, net, inboxes = make_net(TimingModel(latency=1e-6, bandwidth=1e6))
    net.transmit(env(0, 2, size=100_000, tag=1))
    net.transmit(env(1, 2, size=1, tag=2))
    eng.run()
    assert [e.tag for e in inboxes[2]] == [2, 1]


def test_unknown_destination_rejected():
    eng, net, _ = make_net()
    with pytest.raises(SimulationError):
        net.transmit(env(0, 99))


def test_purge_inbound_drops_in_flight():
    eng, net, inboxes = make_net()
    net.transmit(env(0, 1))
    net.transmit(env(0, 1))
    assert net.purge_inbound(1) == 2
    eng.run()
    assert inboxes[1] == []
    assert net.messages_dropped == 2


def test_purge_all():
    eng, net, inboxes = make_net()
    net.transmit(env(0, 1))
    net.transmit(env(1, 2))
    assert net.purge_all() == 2
    eng.run()
    assert inboxes[1] == [] and inboxes[2] == []


def test_in_flight_count():
    eng, net, _ = make_net()
    net.transmit(env(0, 1))
    net.transmit(env(0, 2))
    assert net.in_flight_count() == 2
    assert net.in_flight_count(1) == 1
    eng.run()
    assert net.in_flight_count() == 0


def test_counters():
    eng, net, _ = make_net()
    net.transmit(env(0, 1, size=100))
    net.transmit(env(0, 2, size=50))
    eng.run()
    assert net.messages_sent == 2
    assert net.messages_delivered == 2
    assert net.bytes_sent == 150


def test_jitter_is_deterministic_per_seed():
    def arrivals(seed):
        eng = Engine()
        net = Network(eng, TimingModel(latency=1e-6, bandwidth=1e9, jitter=0.5),
                      seed=seed)
        times = []
        net.attach(1, lambda e: times.append(eng.now))
        for _ in range(10):
            net.transmit(env(0, 1))
        eng.run()
        return times

    assert arrivals(7) == arrivals(7)
    assert arrivals(7) != arrivals(8)


def test_zero_latency_model_works():
    eng, net, inboxes = make_net(TimingModel(latency=0.0, bandwidth=1e12,
                                             send_overhead=0.0))
    net.transmit(env(0, 1))
    eng.run()
    assert len(inboxes[1]) == 1


# ----------------------------------------------------------------------
# Regressions: uid-indexed in-flight tracking
# ----------------------------------------------------------------------
def test_in_flight_indexed_by_uid():
    # in-flight envelopes are a uid-keyed dict so a delivery removes its
    # own entry in O(1) instead of rebuilding the destination's list
    eng, net, _ = make_net()
    e1, e2 = env(0, 1), env(0, 1)
    net.transmit(e1)
    net.transmit(e2)
    assert set(net._in_flight[1]) == {e1.uid, e2.uid}
    eng.run(max_events=1)
    assert set(net._in_flight[1]) == {e2.uid}
    eng.run()
    assert net._in_flight[1] == {}


def test_purge_after_partial_delivery():
    eng, net, inboxes = make_net()
    for tag in (1, 2, 3):
        net.transmit(env(0, 1, tag=tag))
    eng.run(max_events=1)
    assert [e.tag for e in inboxes[1]] == [1]
    assert net.purge_inbound(1) == 2
    eng.run()
    assert [e.tag for e in inboxes[1]] == [1]
    assert net.messages_dropped == 2
    assert net.in_flight_count(1) == 0


# ----------------------------------------------------------------------
# Regression: FIFO tie-break at large virtual times
# ----------------------------------------------------------------------
def test_fifo_strict_at_large_virtual_time():
    # the old `prev + 1e-12` epsilon is absorbed by float rounding once
    # the clock is large, collapsing a channel's arrivals onto a single
    # instant; nextafter always yields a strictly later representable time
    eng = Engine(start_time=1e9)
    net = Network(eng, TimingModel(latency=0.0, bandwidth=1e12,
                                   send_overhead=0.0))
    order, times = [], []
    net.attach(1, lambda e: (order.append(e.tag), times.append(eng.now)))
    for tag in range(5):
        net.transmit(env(0, 1, size=1, tag=tag))
    eng.run()
    assert order == [0, 1, 2, 3, 4]
    assert all(b > a for a, b in zip(times, times[1:])), times
