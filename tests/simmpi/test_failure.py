"""Unit tests for the failure injector."""

import pytest

from repro.apps.base import RankProgram
from repro.errors import ConfigError
from repro.simmpi import World
from repro.simmpi.failure import FailureInjector


class Idle(RankProgram):
    def run(self, api):
        yield api.compute(1.0)


def make_world(n=4):
    world = World(n, Idle)
    world.launch()
    return world


def test_failure_fires_at_time():
    world = make_world()
    seen = []
    inj = FailureInjector(world, lambda ranks: seen.append((world.engine.now, ranks)))
    inj.at(0.5, 2)
    inj.arm()
    world.engine.run(until=2.0)
    assert seen == [(0.5, [2])]
    assert [e.rank for e in inj.fired] == [2]


def test_concurrent_failures_batched():
    world = make_world()
    seen = []
    inj = FailureInjector(world, lambda ranks: seen.append(list(ranks)))
    inj.concurrent(0.5, [3, 1])
    inj.arm()
    world.engine.run(until=2.0)
    assert seen == [[1, 3]]  # sorted, single batch


def test_duplicate_rank_same_time_deduped():
    world = make_world()
    seen = []
    inj = FailureInjector(world, lambda ranks: seen.append(list(ranks)))
    inj.at(0.5, 1)
    inj.at(0.5, 1)
    inj.arm()
    world.engine.run(until=2.0)
    assert seen == [[1]]


def test_dead_rank_not_refailed():
    world = make_world()
    calls = []

    def handler(ranks):
        calls.append(list(ranks))
        for r in ranks:
            world.procs[r].kill()

    inj = FailureInjector(world, handler)
    inj.at(0.4, 2)
    inj.at(0.6, 2)  # already dead by then
    inj.arm()
    world.engine.run(until=2.0)
    assert calls == [[2]]


def test_out_of_range_rank_rejected():
    world = make_world()
    inj = FailureInjector(world, lambda ranks: None)
    with pytest.raises(ConfigError):
        inj.at(0.5, 99)


def test_kill_purges_inbound():
    world = make_world(2)
    # schedule a message in flight to rank 1, then kill rank 1 before arrival
    from repro.simmpi.message import Envelope

    world.engine.schedule(0.0, lambda: world.network.transmit(
        Envelope(src=0, dst=1, tag=0, payload=1)))
    world.engine.schedule(1e-9, lambda: world.procs[1].kill())
    world.engine.run(until=1.0)
    assert world.network.messages_dropped >= 1
    assert not world.procs[1].alive


def test_after_sends_deterministic_placement():
    """after_sends kills the rank right after its Nth application send,
    regardless of the timing model."""
    from repro.apps.stencil import Stencil1D
    from repro.core import ProtocolConfig, build_ft_world

    killed_at = []

    def run():
        world, ctl = build_ft_world(
            4, lambda r, s: Stencil1D(r, s, niters=10, cells=3),
            ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=2e-6),
        )
        assert ctl.injector is not None
        ctl.injector.after_sends(2, 7)
        world.launch()
        world.run()
        killed_at.append(tuple(e.rank for e in ctl.injector.fired))
        return world

    world = run()
    assert killed_at[-1] == (2,)
    assert world.all_done


def test_after_sends_validations():
    world = make_world(2)
    inj = FailureInjector(world, lambda ranks: None)
    with pytest.raises(ConfigError):
        inj.after_sends(9, 1)
    with pytest.raises(ConfigError):
        inj.after_sends(0, 0)


def test_near_equal_times_grouped_into_one_round():
    """Failure times that differ by float-arithmetic noise (a few ulps)
    are one concurrent round — exact equality is not required."""
    world = make_world()
    seen = []
    inj = FailureInjector(world, lambda ranks: seen.append(list(ranks)))
    base = 0.1 + 0.2  # 0.30000000000000004
    inj.at(base, 1)
    inj.at((base * 3.0) / 3.0, 3)  # intended-equal, lands ulps away
    inj.arm()
    world.engine.run(until=2.0)
    assert seen == [[1, 3]]


def test_distinct_times_stay_separate_rounds():
    world = make_world()
    seen = []
    inj = FailureInjector(world, lambda ranks: seen.append(list(ranks)))
    inj.at(0.5, 1)
    inj.at(0.5 + 1e-6, 3)  # a real gap, far above the quantum
    inj.arm()
    world.engine.run(until=2.0)
    assert seen == [[1], [3]]


def test_concurrent_recovery_line_accounts_for_both_ranks():
    """Regression: two kills within the quantum must reach the controller
    as ONE batch, so the recovery line of that single round accounts for
    both ranks (exact-float batching used to split them into two rounds)."""
    from repro.apps.stencil import Stencil1D
    from repro.core import ProtocolConfig, build_ft_world

    world, ctl = build_ft_world(
        4, lambda r, s: Stencil1D(r, s, niters=12, cells=3),
        ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=2e-6),
    )
    assert ctl.injector is not None
    t = 4.5e-5
    ctl.injector.at(t, 1)
    ctl.injector.at((t * 3.0) / 3.0 + 1e-16, 3)  # arithmetic noise
    ctl.injector.arm()
    world.launch()
    world.run()
    assert len(ctl.recovery_reports) == 1
    report = ctl.recovery_reports[0]
    assert sorted(report.failed) == [1, 3]
    assert set(report.recovery_line) >= {1, 3}
    assert world.all_done


def test_after_sends_tap_restored_after_firing():
    """The transmit_app wrapper must be uninstalled once every tap fired
    (the old implementation leaked it for the rest of the run)."""
    from repro.apps.stencil import Stencil1D
    from repro.core import ProtocolConfig, build_ft_world

    world, ctl = build_ft_world(
        4, lambda r, s: Stencil1D(r, s, niters=10, cells=3),
        ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=2e-6),
    )
    assert ctl.injector is not None
    original = world.transmit_app
    ctl.injector.after_sends(2, 5)
    assert world.transmit_app != original  # tap installed
    world.launch()
    world.run()
    # bound-method access creates a fresh object per read: compare ==
    assert world.transmit_app == original  # tap removed after firing
    assert [e.rank for e in ctl.injector.fired] == [2]


def test_multiple_after_sends_taps_compose():
    """Several (rank, nsends) taps ride one shared wrapper and each fires
    independently."""
    from repro.apps.stencil import Stencil1D
    from repro.core import ProtocolConfig, build_ft_world

    world, ctl = build_ft_world(
        4, lambda r, s: Stencil1D(r, s, niters=14, cells=3),
        ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=2e-6),
    )
    assert ctl.injector is not None
    original = world.transmit_app
    ctl.injector.after_sends(1, 4)
    ctl.injector.after_sends(2, 9)
    world.launch()
    world.run()
    assert sorted(e.rank for e in ctl.injector.fired) == [1, 2]
    assert world.transmit_app == original  # both fired -> uninstalled
    assert world.all_done


def test_after_sends_fires_at_exact_send_count():
    """The kill lands right after the Nth send, not one message later
    (off-by-one regression: the counter increments after transmit)."""
    world = make_world()
    counts = []

    class CountingHandler:
        def __call__(self, ranks):
            counts.append(world.procs[ranks[0]].app_messages_sent)

    # drive sends through a real app world instead
    from repro.apps.stencil import Stencil1D
    from repro.core import ProtocolConfig, build_ft_world

    world2, ctl = build_ft_world(
        4, lambda r, s: Stencil1D(r, s, niters=10, cells=3),
        ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=2e-6),
    )
    assert ctl.injector is not None
    fired_counts = []
    orig_fire = ctl.injector._fire

    def spy(ranks, time):
        fired_counts.append(world2.procs[ranks[0]].app_messages_sent)
        orig_fire(ranks, time)

    ctl.injector._fire = spy
    ctl.injector.after_sends(2, 6)
    world2.launch()
    world2.run()
    assert fired_counts == [6]
