"""Unit tests for envelopes and payload sizing."""

import numpy as np

from repro.simmpi.message import (
    ANY_SOURCE,
    ANY_TAG,
    COLLECTIVE_TAG_BASE,
    CONTROL_TAG_BASE,
    Envelope,
    payload_nbytes,
)


def test_wildcards_are_negative():
    assert ANY_SOURCE < 0 and ANY_TAG < 0


def test_payload_nbytes_numpy():
    arr = np.zeros(100, dtype=np.float64)
    assert payload_nbytes(arr) == 800


def test_payload_nbytes_bytes():
    assert payload_nbytes(b"abcd") == 4


def test_payload_nbytes_scalars():
    assert payload_nbytes(3) == 8
    assert payload_nbytes(3.5) == 8
    assert payload_nbytes(None) == 8
    assert payload_nbytes(True) == 8


def test_payload_nbytes_str():
    assert payload_nbytes("hello") == 5


def test_payload_nbytes_containers_nest():
    assert payload_nbytes([1, 2]) == 16 + 16
    assert payload_nbytes({"a": 1}) == 16 + 1 + 8


def test_payload_nbytes_fallback():
    class Thing:
        pass

    assert payload_nbytes(Thing()) == 64


def test_envelope_size_defaults_to_payload():
    env = Envelope(src=0, dst=1, tag=0, payload=np.zeros(10))
    assert env.size == 80


def test_envelope_explicit_size_kept():
    env = Envelope(src=0, dst=1, tag=0, payload=b"", size=4096)
    assert env.size == 4096


def test_envelope_uids_unique_and_increasing():
    a = Envelope(src=0, dst=1, tag=0, payload=1)
    b = Envelope(src=0, dst=1, tag=0, payload=1)
    assert b.uid > a.uid


def test_tag_classification():
    app = Envelope(src=0, dst=1, tag=5, payload=1)
    coll = Envelope(src=0, dst=1, tag=COLLECTIVE_TAG_BASE - 3, payload=1)
    ctl = Envelope(src=0, dst=1, tag=CONTROL_TAG_BASE - 1, payload=1)
    assert not app.is_control and not app.is_collective
    assert coll.is_collective and not coll.is_control
    assert ctl.is_control and not ctl.is_collective


def test_describe_mentions_endpoints():
    env = Envelope(src=2, dst=7, tag=9, payload=1)
    s = env.describe()
    assert "2->7" in s and "tag=9" in s
