"""Unit tests for World-level behaviour not covered elsewhere."""

import pytest

from repro.apps.base import RankProgram
from repro.errors import DeadlockError, ReproError, SimulationError
from repro.simmpi import World
from repro.simmpi.message import CONTROL_TAG_BASE, Envelope


class Quick(RankProgram):
    def run(self, api):
        yield api.compute(1e-6)


def test_on_all_done_callback():
    world = World(3, Quick)
    fired = []
    world.on_all_done = lambda: fired.append(world.engine.now)
    world.launch()
    world.run()
    assert fired == [1e-6]


def test_all_done_flag():
    world = World(2, Quick)
    assert not world.all_done
    world.launch()
    world.run()
    assert world.all_done


def test_note_rank_restarted_rearms_completion():
    world = World(1, Quick)
    world.launch()
    world.run()
    assert world.all_done
    world.note_rank_restarted()
    proc = world.procs[0]
    proc.reincarnate()
    world.programs[0].restore({})
    proc.start(world.programs[0].run(world.apis[0]))
    world.run()
    assert world.all_done


def test_transmit_control_requires_control_tag():
    world = World(2, Quick)
    with pytest.raises(SimulationError):
        world.transmit_control(Envelope(src=0, dst=1, tag=5, payload={}))
    world.transmit_control(
        Envelope(src=0, dst=1, tag=CONTROL_TAG_BASE - 1, payload={})
    )


def test_run_until_leaves_programs_unfinished():
    class Slow(RankProgram):
        def run(self, api):
            yield api.compute(1.0)

    world = World(2, Slow)
    world.launch()
    world.run(until=0.5, expect_completion=False)
    assert not world.all_done
    world.run_until_quiescent()
    assert world.all_done


def test_record_events_toggle():
    world = World(2, EchoPair, record_events=True)
    world.launch()
    world.run()
    kinds = {e.kind for e in world.tracer.events}
    assert "send" in kinds and "deliver" in kinds


class EchoPair(RankProgram):
    def run(self, api):
        if api.rank == 0:
            yield api.send(1, "x", tag=0)
        else:
            yield api.recv(0, tag=0)


def test_error_hierarchy():
    assert issubclass(DeadlockError, SimulationError)
    assert issubclass(SimulationError, ReproError)
    err = DeadlockError("stuck", {0: "recv"})
    assert err.blocked == {0: "recv"}
    assert DeadlockError("stuck").blocked == {}
