"""Tests for the NAS-pattern kernels: determinism, restartability, numeric
sanity, and the communication-pattern shapes Table I / Fig. 8 depend on."""

import numpy as np
import pytest

from repro.apps import (
    BTKernel,
    CGKernel,
    FTKernel,
    LUKernel,
    MGKernel,
    SPKernel,
    Stencil1D,
    Stencil2D,
    TABLE1_KERNELS,
    cg_grid,
)
from repro.errors import ConfigError
from repro.simmpi import World

KERNELS = [
    ("CG", CGKernel, 16, dict(niters=8, block=4)),
    ("MG", MGKernel, 8, dict(niters=4, levels=2, block=4)),
    ("FT", FTKernel, 8, dict(niters=4, slab=2)),
    ("LU", LUKernel, 8, dict(niters=4, nblocks=2, block=4)),
    ("BT", BTKernel, 9, dict(niters=4, block=4)),
    ("SP", SPKernel, 9, dict(niters=3, block=3)),
    ("ST1", Stencil1D, 6, dict(niters=8, cells=4)),
    ("ST2", Stencil2D, 8, dict(niters=6, block=3)),
]
IDS = [k[0] for k in KERNELS]


def run_world(cls, nprocs, kw):
    world = World(nprocs, lambda r, s: cls(r, s, **kw))
    world.launch()
    world.run()
    return world


@pytest.mark.parametrize("name,cls,nprocs,kw", KERNELS, ids=IDS)
def test_kernel_completes(name, cls, nprocs, kw):
    world = run_world(cls, nprocs, kw)
    assert world.all_done
    assert world.tracer.total_app_messages() > 0


@pytest.mark.parametrize("name,cls,nprocs,kw", KERNELS, ids=IDS)
def test_kernel_deterministic_across_runs(name, cls, nprocs, kw):
    a = run_world(cls, nprocs, kw)
    b = run_world(cls, nprocs, kw)
    assert a.tracer.send_sequences() == b.tracer.send_sequences()
    for pa, pb in zip(a.programs, b.programs):
        np.testing.assert_equal(pa.result(), pb.result())


@pytest.mark.parametrize("name,cls,nprocs,kw", KERNELS, ids=IDS)
def test_kernel_snapshot_restore_roundtrip(name, cls, nprocs, kw):
    """Restartability contract: snapshot mid-run state, restore it into a
    fresh program, and re-run every rank — the outcome must match."""
    ref = run_world(cls, nprocs, kw)

    # capture snapshots partway: run a world for half the iterations by
    # snapshotting fresh programs, mutating nothing
    programs = [cls(r, nprocs, **kw) for r in range(nprocs)]
    snaps = [p.snapshot() for p in programs]
    restored = [cls(r, nprocs, **kw) for r in range(nprocs)]
    for p, s in zip(restored, snaps):
        p.restore(s)
    world = World(nprocs, lambda r, s: restored[r])
    world.launch()
    world.run()
    for pa, pb in zip(ref.programs, restored):
        np.testing.assert_equal(pa.result(), pb.result())


def test_snapshot_is_deep():
    p = Stencil1D(0, 4, niters=3, cells=4)
    snap = p.snapshot()
    p.state["u"][:] = 123.0
    q = Stencil1D(0, 4, niters=3, cells=4)
    q.restore(snap)
    assert not np.allclose(q.state["u"], 123.0)


def test_cg_grid_shapes():
    assert cg_grid(16) == (4, 4)
    assert cg_grid(64) == (8, 8)
    assert cg_grid(128) == (8, 16)
    assert cg_grid(256) == (16, 16)
    with pytest.raises(ConfigError):
        cg_grid(48)


def test_cg_converges_on_square_grid():
    world = run_world(CGKernel, 16, dict(niters=15, block=4))
    hist = world.programs[0].result()["res_history"]
    assert hist[-1] < hist[0] * 1e-10


def test_cg_residual_consistent_across_ranks():
    world = run_world(CGKernel, 16, dict(niters=6, block=4))
    rhos = [p.result()["rho"] for p in world.programs]
    assert max(rhos) - min(rhos) < 1e-12


def test_cg_rectangular_grid_runs_pattern_mode():
    world = run_world(CGKernel, 8, dict(niters=5, block=4))
    assert world.all_done
    assert not world.programs[0].exact


def test_stencil1d_converges_to_mean():
    world = run_world(Stencil1D, 6, dict(niters=600, cells=4))
    mean = (6 - 1) / 2.0
    for p in world.programs:
        np.testing.assert_allclose(p.result(), mean, atol=1e-3)


def test_stencil2d_conserves_mean():
    world = run_world(Stencil2D, 8, dict(niters=30, block=3))
    total = sum(float(p.result().sum()) for p in world.programs)
    expected = sum(r * 9 for r in range(8))
    assert total == pytest.approx(expected, rel=1e-9)


def test_ft_checksum_identical_on_all_ranks():
    world = run_world(FTKernel, 8, dict(niters=4, slab=2))
    sums = {p.result()["checksum"] for p in world.programs}
    assert len(sums) == 1


def test_table1_kernel_registry():
    assert set(TABLE1_KERNELS) == {"MG", "LU", "FT", "CG", "BT"}


# ----------------------------------------------------------------------
# Communication-pattern shapes (what Fig. 8 / Table I rely on)
# ----------------------------------------------------------------------
def comm_matrix(cls, nprocs, kw):
    return run_world(cls, nprocs, kw).tracer.comm_matrix()


def test_ft_pattern_is_dense_all_to_all():
    m = comm_matrix(FTKernel, 8, dict(niters=3, slab=2))
    off_diag = m + 0
    np.fill_diagonal(off_diag, 1)
    assert (off_diag > 0).all()


def test_lu_pattern_is_sparse_neighbors():
    m = comm_matrix(LUKernel, 16, dict(niters=3, nblocks=2, block=4))
    fill = (m > 0).sum() / (16 * 15)
    assert fill < 0.5  # nearest-neighbour, not all-to-all


def test_cg_pattern_heavier_in_row_blocks():
    m = comm_matrix(CGKernel, 16, dict(niters=4, block=4))
    # butterfly partners live inside the 4-wide row blocks
    intra = sum(
        m[i, j] for i in range(16) for j in range(16) if i // 4 == j // 4
    )
    assert intra > 0.4 * m.sum()


def test_mg_pattern_touches_multiple_strides():
    m = comm_matrix(MGKernel, 8, dict(niters=2, levels=3, block=4))
    partners = {(i, j) for i in range(8) for j in range(8) if m[i, j] > 0}
    degrees = {i: sum(1 for a, b in partners if a == i) for i in range(8)}
    assert min(degrees.values()) >= 2


def test_sp_sends_more_messages_than_bt():
    m_bt = comm_matrix(BTKernel, 9, dict(niters=3, block=4))
    m_sp = comm_matrix(SPKernel, 9, dict(niters=3, block=4))
    assert m_sp.sum() > m_bt.sum()


def test_stencil_requires_two_ranks():
    with pytest.raises(ConfigError):
        Stencil1D(0, 1)
