"""Tests for the IS (bucket sort) extension kernel."""

import numpy as np
import pytest

from repro.apps import ISKernel
from repro.core import ProtocolConfig
from repro.simmpi import TimingModel, World

from ..conftest import assert_valid_execution, run_failure_free, run_with_failures


def factory(rank, size):
    return ISKernel(rank, size, niters=4, keys_per_rank=32, max_key=1 << 10)


def test_is_runs_and_buckets_correctly():
    world = World(8, factory)
    world.launch()
    world.run()  # internal asserts verify bucket counts vs global histogram
    checks = {p.result()["checksum"] for p in world.programs}
    assert len(checks) == 1


def test_is_checksum_preserves_key_mass():
    """Iteration 0's checksum equals the sum of every rank's initial keys
    (redistribution moves keys, never creates or destroys them)."""
    world = World(4, factory)
    total0 = sum(int(ISKernel(r, 4, niters=4, keys_per_rank=32,
                              max_key=1 << 10).state["keys"].sum())
                 for r in range(4))
    world.launch()
    world.run()
    # run one-iteration instance to read the first checksum
    w1 = World(4, lambda r, s: ISKernel(r, s, niters=1, keys_per_rank=32,
                                        max_key=1 << 10))
    w1.launch()
    w1.run()
    assert w1.programs[0].result()["checksum"] == total0


def test_is_send_deterministic_under_jitter():
    def seqs(seed):
        world = World(8, factory,
                      timing=TimingModel(latency=2e-6, bandwidth=1e9, jitter=0.7),
                      network_seed=seed)
        world.launch()
        world.run()
        return world.tracer.send_sequences()

    assert seqs(3) == seqs(77)


def test_is_recovers_from_failure():
    cfg = ProtocolConfig(checkpoint_interval=5e-5, rank_stagger=3e-6)
    ref, _ = run_failure_free(8, factory, cfg)
    world, ctl = run_with_failures(8, factory, [(ref.engine.now / 2, 3)], cfg)
    assert_valid_execution(ref, world)
    assert len(ctl.recovery_reports) == 1


def test_is_alltoall_dense_pattern():
    world = World(8, factory)
    world.launch()
    world.run()
    m = world.tracer.comm_matrix()
    off = m + np.eye(8, dtype=np.int64)
    assert (off > 0).all()  # every pair exchanged something
