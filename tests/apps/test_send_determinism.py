"""Send-determinism verification under network perturbation.

The paper's entire premise (Section II): for a fixed configuration, each
process emits the same message sequence in any correct execution,
regardless of how non-causally-related deliveries interleave.  We verify
the property for every kernel by re-running it under different network
jitter seeds (which reorder cross-channel deliveries) and comparing the
recorded per-rank send sequences exactly.
"""

import pytest

from repro.apps import (
    BTKernel,
    CGKernel,
    FTKernel,
    LUKernel,
    MGKernel,
    SPKernel,
    Stencil1D,
    Stencil2D,
)
from repro.simmpi import TimingModel, World

KERNELS = [
    ("CG", CGKernel, 16, dict(niters=6, block=4)),
    ("MG", MGKernel, 8, dict(niters=3, levels=2, block=4)),
    ("FT", FTKernel, 8, dict(niters=3, slab=2)),
    ("LU", LUKernel, 8, dict(niters=3, nblocks=2, block=4)),
    ("BT", BTKernel, 9, dict(niters=3, block=4)),
    ("SP", SPKernel, 9, dict(niters=2, block=3)),
    ("ST1", Stencil1D, 6, dict(niters=6, cells=4)),
    ("ST2", Stencil2D, 8, dict(niters=4, block=3)),
]


def sequences(cls, nprocs, kw, seed):
    world = World(
        nprocs,
        lambda r, s: cls(r, s, **kw),
        timing=TimingModel(latency=2e-6, bandwidth=1e9, jitter=0.8),
        network_seed=seed,
    )
    world.launch()
    world.run()
    return world.tracer.send_sequences()


@pytest.mark.parametrize("name,cls,nprocs,kw", KERNELS, ids=[k[0] for k in KERNELS])
def test_send_sequences_invariant_under_jitter(name, cls, nprocs, kw):
    a = sequences(cls, nprocs, kw, seed=1)
    b = sequences(cls, nprocs, kw, seed=99)
    assert a == b, f"{name}: send sequences depend on delivery interleaving"


def test_jitter_actually_changes_delivery_order():
    """Sanity: the perturbation is real — delivery interleavings differ
    across seeds even though send sequences do not."""
    def deliveries(seed):
        world = World(
            8,
            lambda r, s: Stencil2D(r, s, niters=4, block=3),
            timing=TimingModel(latency=2e-6, bandwidth=1e9, jitter=0.8),
            network_seed=seed,
        )
        world.launch()
        world.run()
        return world.tracer.deliver_sequences()

    assert deliveries(1) != deliveries(99)
