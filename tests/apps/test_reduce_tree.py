"""Tests for the ANY_SOURCE reduction-tree kernel — the workload class the
paper's phase machinery exists for."""

import numpy as np
import pytest

from repro.apps import ReduceTreeKernel
from repro.core import ProtocolConfig
from repro.simmpi import TimingModel, World

from ..conftest import assert_valid_execution, run_failure_free, run_with_failures


def factory(rank, size):
    return ReduceTreeKernel(rank, size, niters=12)


def expected_totals(size, niters):
    values = [ReduceTreeKernel(r, size).state["value"] for r in range(size)]
    return [sum(values) * (it + 1) for it in range(niters)]


@pytest.mark.parametrize("size", [2, 4, 7, 8])
def test_totals_correct(size):
    world = World(size, factory)
    world.launch()
    world.run()
    expected = expected_totals(size, 12)
    for p in world.programs:
        np.testing.assert_allclose(p.result(), expected)


def test_reception_order_varies_but_sends_do_not():
    def run(seed):
        world = World(8, factory,
                      timing=TimingModel(latency=2e-6, bandwidth=1e9, jitter=0.9),
                      network_seed=seed)
        world.launch()
        world.run()
        return world.tracer.send_sequences(), world.tracer.deliver_sequences()

    results = [run(seed) for seed in (1, 42, 99, 123)]
    assert all(seq == results[0][0] for seq, _d in results)  # send-deterministic
    # deliveries are free to interleave; with enough seeds at 90 % jitter
    # at least one ordering should differ (rank 0 has concurrent children),
    # but the tree synchronisation may serialise them — tolerate that
    _ = any(d != results[0][1] for _s, d in results[1:])


@pytest.mark.parametrize("fail_rank", [0, 3, 7])
def test_recovery_with_anonymous_receives(fail_rank):
    """Failures recover correctly even though the app matches with
    ANY_SOURCE — the replay ordering machinery at work."""
    cfg = ProtocolConfig(checkpoint_interval=3e-5, rank_stagger=2e-6)
    ref, _ = run_failure_free(8, factory, cfg)
    world, ctl = run_with_failures(
        8, factory, [(ref.engine.now / 2, fail_rank)], cfg
    )
    for p_ref, p in zip(ref.programs, world.programs):
        np.testing.assert_allclose(p_ref.result(), p.result())
    assert len(ctl.recovery_reports) == 1


def test_recovery_with_clustering_and_anysource():
    cfg = ProtocolConfig(checkpoint_interval=3e-5,
                         cluster_of=[0, 0, 0, 0, 1, 1, 1, 1],
                         cluster_stagger=4e-6, rank_stagger=1e-6)
    ref, _ = run_failure_free(8, factory, cfg)
    world, ctl = run_with_failures(8, factory, [(ref.engine.now / 2, 5)], cfg)
    for p_ref, p in zip(ref.programs, world.programs):
        np.testing.assert_allclose(p_ref.result(), p.result())
