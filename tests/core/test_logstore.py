"""Tests for the Fig. 5 acknowledgement optimization (core.logstore).

Includes a step-by-step replay of the paper's Fig. 5 channel example:
small messages m1, m2 copied by default; m3's piggyback (ssn=2) lets the
sender drop them; m4 is the first logged message of the epoch and is
acknowledged explicitly; m5 is marked already logged and needs no ack.
"""

import pytest

from repro.core.logstore import (
    ChannelMessage,
    ReceiverChannel,
    SenderChannel,
)
from repro.errors import ProtocolError


def make_pair(eager=1024):
    return SenderChannel(eager_threshold=eager), ReceiverChannel(eager_threshold=eager)


def test_small_messages_do_not_block():
    sender, _ = make_pair()
    msg, blocking = sender.send(64, payload=b"x")
    assert not blocking
    assert sender.stats.copies_made == 1
    assert len(sender.retained) == 1


def test_large_messages_block_for_ack():
    sender, _ = make_pair()
    msg, blocking = sender.send(1 << 20)
    assert blocking
    assert len(sender.awaiting_ack) == 1
    assert sender.stats.copies_made == 0  # no default copy for large


def test_fig5_example():
    """The exact message sequence of the paper's Fig. 5."""
    sender, receiver = make_pair()
    # m1, m2: small, copied by default, no ack
    m1, b1 = sender.send(64)
    m2, b2 = sender.send(64)
    assert not b1 and not b2
    assert receiver.deliver(m1) is None
    assert receiver.deliver(m2) is None
    assert sender.stats.copies_made == 2

    # P2 sends m3 back, piggybacking ssn=2: sender drops m1, m2 copies
    piggy_ssn, piggy_epoch = receiver.piggyback()
    assert piggy_ssn == 2
    sender.on_piggyback(piggy_ssn, piggy_epoch)
    assert sender.retained == []
    assert sender.stats.copies_dropped == 2
    assert sender.log == []  # nothing crossed epochs

    # the receiver checkpoints: subsequent messages cross epochs
    receiver.advance_epoch()

    # m4: first message that has to be logged -> explicit ack
    m4, b4 = sender.send(64)
    ack = receiver.deliver(m4)
    assert ack is not None
    ssn, epoch_recv = ack
    sender.on_explicit_ack(ssn, epoch_recv)
    assert [entry[0] for entry in sender.log] == [m4.ssn]

    # m5: marked already logged, no acknowledgement at either end
    m5, b5 = sender.send(64)
    assert m5.already_logged
    assert not b5
    assert receiver.deliver(m5) is None
    assert [entry[0] for entry in sender.log] == [m4.ssn, m5.ssn]


def test_already_logged_mode_ends_at_sender_epoch_change():
    sender, receiver = make_pair()
    receiver.advance_epoch()
    m1, _ = sender.send(64)
    ack = receiver.deliver(m1)
    sender.on_explicit_ack(*ack)
    m2, _ = sender.send(64)
    assert m2.already_logged
    sender.advance_epoch()
    receiver.deliver(m2)
    m3, _ = sender.send(64)
    assert not m3.already_logged  # epoch changed: back to normal handling


def test_large_message_skips_ack_when_already_logged():
    sender, receiver = make_pair()
    receiver.advance_epoch()
    m1, _ = sender.send(64)
    sender.on_explicit_ack(*receiver.deliver(m1))
    big, blocking = sender.send(1 << 20)
    assert big.already_logged and not blocking
    assert receiver.deliver(big) is None


def test_explicit_ack_for_large_message_without_crossing():
    sender, receiver = make_pair()
    big, blocking = sender.send(1 << 20)
    assert blocking
    ack = receiver.deliver(big)
    assert ack is not None
    sender.on_explicit_ack(*ack)
    assert sender.log == []  # same epoch: confirmed, not logged
    assert sender.confirmed[0][0] == big.ssn


def test_one_explicit_log_ack_per_channel_epoch():
    sender, receiver = make_pair()
    receiver.advance_epoch()
    m1, _ = sender.send(64)
    assert receiver.deliver(m1) is not None
    # before the ack returns, more small sends are still default copies;
    # their fate resolves via piggyback, with conservative logging
    m2, _ = sender.send(64)
    assert receiver.deliver(m2) is None  # no second explicit log-ack
    sender.on_explicit_ack(m1.ssn, 2)
    sender.on_piggyback(*receiver.piggyback())
    logged_ssns = [entry[0] for entry in sender.log]
    assert m1.ssn in logged_ssns and m2.ssn in logged_ssns


def test_ack_request_threshold():
    sender, _ = make_pair()
    sender.max_unacked = 4
    for _ in range(5):
        sender.send(64)
    assert sender.needs_ack_request()
    sender.make_ack_request()
    assert sender.stats.ack_requests == 1
    sender.on_piggyback(5, 1)
    assert not sender.needs_ack_request()


def test_piggyback_conservative_logging_on_epoch_skew():
    """A piggyback from a later receiver epoch logs the retained copies:
    extra logging is always safe, dropping them would not be."""
    sender, receiver = make_pair()
    m1, _ = sender.send(64)
    receiver.deliver(m1)
    receiver.advance_epoch()
    sender.on_piggyback(*receiver.piggyback())
    assert [entry[0] for entry in sender.log] == [m1.ssn]
    assert sender.stats.copies_dropped == 0


def test_receiver_detects_fifo_violation():
    _, receiver = make_pair()
    with pytest.raises(ProtocolError):
        receiver.deliver(ChannelMessage(ssn=5, size=8, epoch_send=1))


def test_unknown_explicit_ack_rejected():
    sender, _ = make_pair()
    with pytest.raises(ProtocolError):
        sender.on_explicit_ack(3, 1)


def test_ack_traffic_reduction_vs_explicit_per_message():
    """The point of Fig. 5: across a bidirectional exchange of small
    messages within one epoch, the optimized channel sends (almost) no
    acknowledgements, versus one per message for the naive scheme."""
    sender, receiver = make_pair()
    n = 200
    for _ in range(n):
        msg, _ = sender.send(64)
        ack = receiver.deliver(msg)
        assert ack is None
        # reverse traffic every few messages carries the piggyback
        if msg.ssn % 5 == 0:
            sender.on_piggyback(*receiver.piggyback())
    assert receiver.stats.explicit_acks == 0
    assert sender.unconfirmed <= 5
    naive_acks = n
    assert receiver.stats.explicit_acks < 0.05 * naive_acks


def test_logging_decisions_match_simple_protocol():
    """The optimized channel reaches the same logged-set as the simulated
    protocol's per-message acknowledgements: messages sent in epoch e and
    received in epoch e' are logged iff e < e'."""
    sender, receiver = make_pair()
    outcomes = {}
    script = [  # (sender_ckpt_before, receiver_ckpt_before)
        (False, False), (False, True), (True, False), (False, False),
        (False, True), (False, False),
    ]
    for s_ck, r_ck in script:
        if s_ck:
            sender.advance_epoch()
        if r_ck:
            receiver.advance_epoch()
        msg, _ = sender.send(64)
        ack = receiver.deliver(msg)
        if ack is not None:
            sender.on_explicit_ack(*ack)
        outcomes[msg.ssn] = msg.epoch_send < receiver.epoch
        sender.on_piggyback(*receiver.piggyback())
    logged = {entry[0] for entry in sender.log}
    for ssn, should_log in outcomes.items():
        assert (ssn in logged) == should_log, f"ssn {ssn}"


def test_piggyback_after_explicit_ack_same_range():
    """A piggyback that arrives after the explicit ack already resolved the
    same ssn range must be harmless: no crash, no duplicate log entries."""
    sender, receiver = make_pair()
    receiver.advance_epoch()
    m1, _ = sender.send(64)
    ack = receiver.deliver(m1)
    assert ack is not None
    sender.on_explicit_ack(*ack)          # logs m1, opens logged mode
    assert [entry[0] for entry in sender.log] == [m1.ssn]

    # a delayed piggyback covering the same ssn finds nothing retained
    sender.on_piggyback(*receiver.piggyback())
    assert [entry[0] for entry in sender.log] == [m1.ssn]
    assert sender.confirmed == []

    # subsequent traffic in logged mode stays single-logged too
    m2, _ = sender.send(64)
    assert m2.already_logged
    assert receiver.deliver(m2) is None
    sender.on_piggyback(*receiver.piggyback())
    assert [entry[0] for entry in sender.log] == [m1.ssn, m2.ssn]
    assert sender.retained == []


def test_epoch_crossing_with_mixed_eager_and_rendezvous_sizes():
    """Interleave small (eager) and large (rendezvous) messages across a
    receiver checkpoint; the logged set must follow the epoch rule
    (logged iff epoch_send < epoch_recv) regardless of size class."""
    sender, receiver = make_pair()

    # same epoch, large: rendezvous ack confirms without logging
    big1, blocking = sender.send(1 << 20)
    assert blocking
    ack = receiver.deliver(big1)
    assert ack is not None
    sender.on_explicit_ack(*ack)
    assert sender.log == []
    assert sender.confirmed[0][0] == big1.ssn

    receiver.advance_epoch()

    # small message crosses the epoch: first-logged explicit ack
    m2, b2 = sender.send(64)
    assert not b2
    ack = receiver.deliver(m2)
    assert ack is not None
    assert receiver.stats.explicit_acks == 2
    sender.on_explicit_ack(*ack)
    assert [entry[0] for entry in sender.log] == [m2.ssn]

    # large message in logged mode: straight to the log, no rendezvous wait
    big3, b3 = sender.send(1 << 20)
    assert big3.already_logged and not b3
    assert receiver.deliver(big3) is None
    assert receiver.stats.explicit_acks == 2  # no further acks needed

    # every logging decision matches the epoch-crossing rule
    logged = {entry[0] for entry in sender.log}
    assert logged == {m2.ssn, big3.ssn}
    for ssn, epoch_send, epoch_recv, _payload, _size in sender.log:
        assert epoch_send < epoch_recv
    for ssn, epoch_send, epoch_recv in sender.confirmed:
        assert epoch_send >= epoch_recv
