"""Protocol mechanics observed through small simulated worlds: epoch
bookkeeping, the logging rule, phase propagation, acknowledgements."""

import pytest

from repro.apps.base import RankProgram
from repro.core import ProtocolConfig, build_ft_world
from repro.core.protocol import Status


class TwoPhase(RankProgram):
    """Rank 0: send, checkpoint, send.  Rank 1: recv both, checkpointing in
    between per the scenario flags."""

    def __init__(self, rank, size, receiver_ckpt=False):
        super().__init__(rank, size)
        self.receiver_ckpt = receiver_ckpt
        self.state = {"stage": 0, "got": []}

    def run(self, api):
        if api.rank == 0:
            yield api.send(1, "before", tag=1)
            yield api.checkpoint()
            yield api.send(1, "after", tag=2)
        elif api.rank == 1:
            self.state["got"].append((yield api.recv(0, tag=1)))
            if self.receiver_ckpt:
                yield api.checkpoint()
            self.state["got"].append((yield api.recv(0, tag=2)))


def run_two_phase(receiver_ckpt):
    world, ctl = build_ft_world(
        2, lambda r, s: TwoPhase(r, s, receiver_ckpt=receiver_ckpt)
    )
    world.launch()
    world.run()
    return world, ctl


def test_message_to_higher_epoch_is_logged():
    # Receiver checkpoints between the receives: the second message goes
    # from sender epoch 2 to receiver epoch 2 (no crossing) but the FIRST
    # message scenario: sender epoch 1 -> receiver epoch 1 (no log).  Use
    # the reverse: sender checkpoints first, so "before" is acked from a
    # *later* receiver epoch only if the receiver checkpointed first.
    world, ctl = run_two_phase(receiver_ckpt=True)
    p0 = ctl.protocols[0]
    # "after" was sent in epoch 2 and received in receiver epoch 2 -> SPE;
    # "before" sent in epoch 1, could be acked from epoch 1 (no log) since
    # the receiver acks immediately on delivery.
    assert p0.state.epoch == 2
    assert ctl.protocols[1].state.epoch == 2


class CrossEpoch(RankProgram):
    """Rank 1 checkpoints FIRST, then rank 0 sends: epoch 1 -> epoch 2
    crossing, so the message must be logged at the sender."""

    def __init__(self, rank, size):
        super().__init__(rank, size)
        self.state = {"done": False}

    def run(self, api):
        if api.rank == 0:
            # wait until rank 1 checkpointed (virtual time barrier)
            yield api.compute(1e-3)
            yield api.send(1, "cross", tag=1)
        else:
            yield api.checkpoint()
            yield api.recv(0, tag=1)
        self.state["done"] = True


def test_epoch_crossing_message_logged_at_sender():
    world, ctl = build_ft_world(2, CrossEpoch)
    world.launch()
    world.run()
    p0 = ctl.protocols[0]
    assert p0.messages_logged == 1
    lm = p0.state.logs[0]
    assert lm.epoch_send == 1 and lm.epoch_recv == 2
    assert lm.payload == "cross"
    # and the receiver's phase jumped past the message's phase (+1 rule)
    assert ctl.protocols[1].state.phase >= 2


def test_same_epoch_message_not_logged():
    world, ctl = build_ft_world(2, lambda r, s: TwoPhase(r, s))
    world.launch()
    world.run()
    assert ctl.protocols[0].messages_logged == 0
    assert ctl.protocols[0].state.spe[1].recv_epoch.get(1) == 1


def test_acks_clear_non_ack():
    world, ctl = build_ft_world(2, lambda r, s: TwoPhase(r, s))
    world.launch()
    world.run()
    assert ctl.protocols[0].state.non_ack == []
    assert ctl.protocols[0].acks_sent == 0 or True  # rank 0 receives nothing
    assert ctl.protocols[1].acks_sent == 2


def test_dates_count_sends_only():
    world, ctl = build_ft_world(2, lambda r, s: TwoPhase(r, s))
    world.launch()
    world.run()
    assert ctl.protocols[0].state.date == 2  # two sends
    assert ctl.protocols[1].state.date == 0  # receives do not advance dates


def test_checkpoint_records_epoch_start_date():
    world, ctl = build_ft_world(2, lambda r, s: TwoPhase(r, s))
    world.launch()
    world.run()
    spe = ctl.protocols[0].state.spe
    assert spe[1].start_date == 0
    assert spe[2].start_date == 1  # one message sent before the checkpoint


def test_initial_checkpoints_taken_at_bind():
    world, ctl = build_ft_world(2, lambda r, s: TwoPhase(r, s))
    assert ctl.store.count() == 2
    assert ctl.store.get(0, 1).epoch == 1


def test_store_has_checkpoint_per_epoch():
    world, ctl = build_ft_world(2, lambda r, s: TwoPhase(r, s))
    world.launch()
    world.run()
    assert ctl.store.epochs(0) == [1, 2]


def test_cluster_initial_epochs_spacing():
    cfg = ProtocolConfig(cluster_of=[0, 0, 1, 1, 2, 2])
    world, ctl = build_ft_world(6, lambda r, s: TwoPhase(r, s) if r < 2 else
                                IdleProg(r, s), cfg)
    assert [p.state.epoch for p in ctl.protocols] == [1, 1, 3, 3, 5, 5]


class IdleProg(RankProgram):
    def run(self, api):
        yield api.compute(1e-6)


def test_explicit_cluster_epochs_override():
    cfg = ProtocolConfig(cluster_of=[0, 1], cluster_epochs={0: 9, 1: 1})
    world, ctl = build_ft_world(2, IdleProg, cfg)
    assert ctl.protocols[0].state.epoch == 9
    assert ctl.protocols[1].state.epoch == 1


def test_statuses_start_running():
    world, ctl = build_ft_world(2, IdleProg)
    assert all(p.status is Status.RUNNING for p in ctl.protocols)


def test_logging_disabled_flag():
    cfg = ProtocolConfig(log_cross_epoch=False)
    world, ctl = build_ft_world(2, CrossEpoch, cfg)
    world.launch()
    world.run()
    assert ctl.protocols[0].messages_logged == 0
    # the crossing message lands in SPE instead
    assert ctl.protocols[0].state.spe[1].recv_epoch.get(1) == 2


def test_logging_stats_aggregate():
    world, ctl = build_ft_world(2, CrossEpoch)
    world.launch()
    world.run()
    stats = ctl.logging_stats()
    assert stats["messages_total"] == 1
    assert stats["messages_logged"] == 1
    assert stats["log_fraction"] == 1.0
