"""Unit tests for the per-process protocol state (Fig. 3 local variables)."""

import pytest

from repro.core.state import EpochRecord, LoggedMessage, PendingAck, ProtocolState


def test_initial_state():
    st = ProtocolState.initial()
    assert st.date == 0 and st.epoch == 1 and st.phase == 1
    assert st.spe[1].start_date == 0
    assert st.rpp == {} and st.non_ack == [] and st.logs == []


def test_initial_state_cluster_epoch():
    st = ProtocolState.initial(initial_epoch=5)
    assert st.epoch == 5
    assert 5 in st.spe


def test_next_date_monotonic():
    st = ProtocolState.initial()
    assert [st.next_date() for _ in range(3)] == [1, 2, 3]


def test_begin_epoch_bumps_epoch_and_phase():
    st = ProtocolState.initial()
    st.date = 7
    st.begin_epoch()
    assert st.epoch == 2 and st.phase == 2
    assert st.spe[2].start_date == 7


def test_record_rpp_tracks_watermark():
    st = ProtocolState.initial()
    st.record_rpp(src=3, date=5)
    assert st.rpp[1][3] == 5
    assert st.last_date_from[3] == 5
    assert st.is_duplicate(3, 5)
    assert st.is_duplicate(3, 4)
    assert not st.is_duplicate(3, 6)


def test_record_rpp_rejects_non_monotonic():
    st = ProtocolState.initial()
    st.record_rpp(src=3, date=5)
    with pytest.raises(AssertionError):
        st.record_rpp(src=3, date=5)


def test_record_rpp_per_phase_buckets():
    st = ProtocolState.initial()
    st.record_rpp(src=2, date=1)
    st.phase = 4
    st.record_rpp(src=2, date=2)
    assert st.rpp == {1: {2: 1}, 4: {2: 2}}


def test_record_spe_keeps_max_recv_epoch():
    st = ProtocolState.initial()
    st.record_spe(dst=1, epoch_send=1, epoch_recv=2)
    st.record_spe(dst=1, epoch_send=1, epoch_recv=1)
    assert st.spe[1].recv_epoch[1] == 2


def test_record_spe_recreates_missing_epoch():
    st = ProtocolState.initial()
    st.record_spe(dst=1, epoch_send=99, epoch_recv=99)
    assert st.spe[99].recv_epoch[1] == 99


def test_checkpoint_copy_is_deep():
    st = ProtocolState.initial()
    st.non_ack.append(PendingAck(dst=1, tag=0, payload=[1, 2], size=8, date=1,
                                 epoch_send=1, phase_send=1))
    copy = st.checkpoint_copy()
    copy.non_ack[0].payload.append(3)
    assert st.non_ack[0].payload == [1, 2]


def test_spe_export_plain_data():
    st = ProtocolState.initial()
    st.record_spe(dst=2, epoch_send=1, epoch_recv=1)
    exp = st.spe_export()
    assert exp == {1: (0, {2: 1})}
    # mutating the export must not touch the state
    exp[1][1][2] = 99
    assert st.spe[1].recv_epoch[2] == 1


def test_logged_counters():
    st = ProtocolState.initial()
    st.logs.append(LoggedMessage(dst=1, tag=0, payload=b"abc", size=3, date=1,
                                 epoch_send=1, phase_send=1, epoch_recv=2))
    st.logs.append(LoggedMessage(dst=2, tag=0, payload=b"x", size=1, date=2,
                                 epoch_send=1, phase_send=1, epoch_recv=3))
    assert st.logged_message_count() == 2
    assert st.logged_bytes() == 4


def test_epoch_record_defaults():
    rec = EpochRecord(start_date=9)
    assert rec.start_date == 9 and rec.recv_epoch == {}
