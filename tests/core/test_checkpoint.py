"""Unit tests for the checkpoint store and schedules."""

import pytest

from repro.core.checkpoint import Checkpoint, CheckpointSchedule, CheckpointStore
from repro.core.state import ProtocolState
from repro.errors import CheckpointError


def ckpt(rank, epoch, time=0.0):
    return Checkpoint(rank=rank, epoch=epoch, time=time, app_state={"e": epoch},
                      coll_seq=0, unexpected=[], proto=ProtocolState.initial(epoch))


def test_add_get_latest():
    store = CheckpointStore(2)
    store.add(ckpt(0, 1))
    store.add(ckpt(0, 2))
    assert store.get(0, 1).epoch == 1
    assert store.latest(0).epoch == 2
    assert store.epochs(0) == [1, 2]
    assert store.count() == 2


def test_duplicate_epoch_rejected():
    store = CheckpointStore(1)
    store.add(ckpt(0, 1))
    with pytest.raises(CheckpointError):
        store.add(ckpt(0, 1))


def test_missing_checkpoint_raises():
    store = CheckpointStore(1)
    with pytest.raises(CheckpointError):
        store.get(0, 3)
    with pytest.raises(CheckpointError):
        store.latest(0)


def test_has():
    store = CheckpointStore(1)
    store.add(ckpt(0, 2))
    assert store.has(0, 2) and not store.has(0, 1)


def test_collect_garbage_below_bound():
    store = CheckpointStore(2)
    for e in (1, 2, 3):
        store.add(ckpt(0, e))
        store.add(ckpt(1, e))
    removed = store.collect_garbage({0: 3, 1: 2})
    assert removed == 3
    assert store.epochs(0) == [3]
    assert store.epochs(1) == [2, 3]
    assert store.checkpoints_collected == 3


def test_discard_above():
    store = CheckpointStore(1)
    for e in (1, 2, 3, 4):
        store.add(ckpt(0, e))
    assert store.discard_above(0, 2) == 2
    assert store.epochs(0) == [1, 2]


def test_checkpoint_date_property():
    c = ckpt(0, 1)
    c.proto.date = 42
    assert c.date == 42


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
def test_schedule_periodic():
    s = CheckpointSchedule(interval=10.0)
    assert not s.due(5.0)
    assert s.due(10.0)
    s.mark_taken(10.0)
    assert not s.due(15.0)
    assert s.due(20.0)


def test_schedule_offset_staggers_first():
    s = CheckpointSchedule(interval=10.0, offset=7.0)
    assert not s.due(12.0)
    assert s.due(17.0)


def test_schedule_jitter_deterministic_and_bounded():
    periods = []
    for seed in (1, 1, 2):
        s = CheckpointSchedule(interval=10.0, jitter=0.5, seed=seed)
        periods.append(s._next_due)
    assert periods[0] == periods[1]
    assert periods[0] != periods[2]
    assert 5.0 <= periods[0] <= 15.0


def test_schedule_max_checkpoints():
    s = CheckpointSchedule(interval=1.0, max_checkpoints=2)
    assert s.due(1.0)
    s.mark_taken(1.0)
    assert s.due(2.0)
    s.mark_taken(2.0)
    assert not s.due(100.0)


def test_schedule_never():
    s = CheckpointSchedule.never()
    assert not s.due(1e12)
