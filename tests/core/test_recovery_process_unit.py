"""Unit tests for the recovery process's message handling (Fig. 4) driven
directly, without a full world."""

import pytest

from repro.core.protocol import CTL
from repro.core.recovery import RecoveryProcess
from repro.errors import ProtocolError
from repro.simmpi.message import Envelope


class StubController:
    """Captures the recovery process's outbound broadcasts."""

    def __init__(self, nprocs):
        self.nprocs = nprocs
        self.broadcasts = []
        self.completed = []
        self.now = 0.0

    def broadcast_control(self, tag, payload):
        self.broadcasts.append((tag, dict(payload)))

    def on_recovery_complete(self, report):
        self.completed.append(report)


def ctl_env(src, tag, payload):
    return Envelope(src=src, dst=99, tag=tag, payload=payload)


def spe(epochs):
    return {e: (0, {}) for e in epochs}


def make_recovery(nprocs=3):
    stub = StubController(nprocs)
    rp = RecoveryProcess(stub)
    return stub, rp


def start_round(rp, failed=(0,), round_no=1):
    rp.begin_round(round_no, list(failed), now=0.0)


def test_round_cannot_start_twice():
    stub, rp = make_recovery()
    start_round(rp)
    with pytest.raises(ProtocolError):
        rp.begin_round(2, [1], now=0.0)


def test_stale_round_traffic_ignored():
    stub, rp = make_recovery()
    start_round(rp, round_no=2)
    rp.receive(ctl_env(0, CTL.ROLLBACK, {"epoch": 1, "date": 0, "round": 1}))
    assert rp._rollback_notices == {}


def test_line_computed_after_all_inputs():
    stub, rp = make_recovery(nprocs=2)
    start_round(rp, failed=(0,))
    rp.receive(ctl_env(0, CTL.ROLLBACK, {"epoch": 2, "date": 5, "round": 1}))
    assert not rp._rl_sent
    rp.receive(ctl_env(0, CTL.SPE_UPLOAD,
                       {"spe": spe([1, 2]), "epoch": 2, "date": 5, "round": 1}))
    assert not rp._rl_sent  # still waiting for rank 1's SPE
    rp.receive(ctl_env(1, CTL.SPE_UPLOAD,
                       {"spe": spe([1]), "epoch": 1, "date": 0, "round": 1}))
    assert rp._rl_sent
    tags = [t for t, _p in stub.broadcasts]
    assert CTL.RECOVERY_LINE in tags


def notif(status="Blocked", phase=1, orph=(), logs=()):
    return {
        "status": status,
        "phase": phase,
        "orph_entries": list(orph),
        "log_phases": list(logs),
        "round": 1,
    }


def drive_to_notifications(stub, rp, notifs):
    start_round(rp, failed=(0,))
    rp.receive(ctl_env(0, CTL.ROLLBACK, {"epoch": 2, "date": 5, "round": 1}))
    for rank in range(stub.nprocs):
        rp.receive(ctl_env(rank, CTL.SPE_UPLOAD,
                           {"spe": spe([1, 2]), "epoch": 2, "date": 5,
                            "round": 1}))
    for rank, n in enumerate(notifs):
        rp.receive(ctl_env(rank, CTL.ORPHAN_NOTIF, n))


def ready_phases(stub):
    return [p["phase"] for t, p in stub.broadcasts if t == CTL.READY_PHASE]


def test_no_orphans_notifies_everything_and_finishes():
    stub, rp = make_recovery(nprocs=3)
    drive_to_notifications(stub, rp, [
        notif("RolledBack", phase=3),
        notif("Blocked", phase=4),
        notif("Blocked", phase=2),
    ])
    assert ready_phases(stub) == list(range(0, 5))
    assert not rp.active
    assert stub.completed


def test_orphan_blocks_higher_phases():
    stub, rp = make_recovery(nprocs=3)
    drive_to_notifications(stub, rp, [
        notif("RolledBack", phase=2),
        notif("Blocked", phase=4, orph=[(3, 0)]),  # orphan from rank 0 at ph 3
        notif("Blocked", phase=4),
    ])
    assert ready_phases(stub) == [0, 1, 2]  # blocked at 3
    rp.receive(ctl_env(1, CTL.NO_ORPHAN, {"phase": 3, "sender": 0, "round": 1}))
    assert ready_phases(stub) == [0, 1, 2, 3, 4]
    assert not rp.active


def test_orphan_phase_remap_to_sender_registration():
    """An orphan recorded at phase 1 whose sender registered at phase 5 is
    lifted to phase 5 (the cross-branch deadlock fix)."""
    stub, rp = make_recovery(nprocs=3)
    drive_to_notifications(stub, rp, [
        notif("RolledBack", phase=5),           # sender rank 0
        notif("Blocked", phase=6, orph=[(1, 0)]),  # stale bucket 1
        notif("Blocked", phase=2),
    ])
    # phases 0..4 must be released (the orphan sits at eff phase 5), which
    # releases the rank-0 sender (registered 5 -> ReadyPhase(4))
    assert ready_phases(stub) == [0, 1, 2, 3, 4]
    rp.receive(ctl_env(1, CTL.NO_ORPHAN, {"phase": 1, "sender": 0, "round": 1}))
    assert not rp.active


def test_unexpected_no_orphan_rejected():
    stub, rp = make_recovery(nprocs=3)
    drive_to_notifications(stub, rp, [
        notif("RolledBack", phase=2),
        notif("Blocked", phase=4, orph=[(3, 0)]),  # keeps the round active
        notif("Blocked", phase=2),
    ])
    assert rp.active
    with pytest.raises(ProtocolError):
        rp.receive(ctl_env(1, CTL.NO_ORPHAN,
                           {"phase": 9, "sender": 0, "round": 1}))


def test_unknown_tag_rejected():
    stub, rp = make_recovery()
    start_round(rp)
    with pytest.raises(ProtocolError):
        rp.receive(ctl_env(0, CTL.ACK, {"round": 1}))


def test_report_records_line_and_phases():
    stub, rp = make_recovery(nprocs=3)
    drive_to_notifications(stub, rp, [
        notif("RolledBack", phase=2),
        notif("Blocked", phase=2),
        notif("Blocked", phase=2),
    ])
    report = stub.completed[0]
    assert report.failed == [0]
    assert 0 in report.recovery_line
    assert report.phases_notified == len(ready_phases(stub))
