"""Garbage collection (Section III-A-4): checkpoints and logs below the
smallest current epoch can be deleted, and recovery still works after."""

import numpy as np

from repro.apps.stencil import Stencil1D
from repro.core import ProtocolConfig, build_ft_world


def factory(rank, size):
    return Stencil1D(rank, size, niters=40, cells=4)


def cfg():
    return ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=2e-6)


def test_gc_removes_old_checkpoints_and_logs():
    world, ctl = build_ft_world(6, factory, cfg())
    world.launch()
    world.run()
    before = ctl.store.count()
    report = ctl.collect_garbage()
    assert report["min_epoch"] == min(p.state.epoch for p in ctl.protocols)
    assert ctl.store.count() == before - report["checkpoints_removed"]
    # every surviving checkpoint is at or above the bound
    for rank in range(6):
        assert all(e >= report["min_epoch"] for e in ctl.store.epochs(rank))
    for proto in ctl.protocols:
        assert all(lm.epoch_recv >= report["min_epoch"] for lm in proto.state.logs)


def test_gc_keeps_epochs_needed_for_recovery():
    """After GC, inject a failure: recovery must still find every checkpoint
    the recovery line asks for (the paper's safety argument: nobody ever
    rolls below the smallest current epoch)."""
    world, ctl = build_ft_world(6, factory, cfg())
    # run half the app, GC, then fail
    world.engine.schedule_at(5e-5, lambda: ctl.collect_garbage())
    ctl.inject_failure(8e-5, 3)
    ctl.arm()
    world.launch()
    world.run()

    ref_world, _ = build_ft_world(6, factory, cfg())
    ref_world.launch()
    ref_world.run()
    for r in range(6):
        np.testing.assert_allclose(
            ref_world.programs[r].result(), world.programs[r].result()
        )


def test_gc_counts_accumulate():
    world, ctl = build_ft_world(4, factory, cfg())
    world.launch()
    world.run()
    r1 = ctl.collect_garbage()
    r2 = ctl.collect_garbage()
    assert r2["checkpoints_removed"] == 0  # idempotent
    assert ctl.store.checkpoints_collected == r1["checkpoints_removed"]
