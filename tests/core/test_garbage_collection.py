"""Garbage collection (Section III-A-4): checkpoints and logs below the
smallest current epoch can be deleted, and recovery still works after."""

import numpy as np

from repro.apps.stencil import Stencil1D
from repro.core import ProtocolConfig, build_ft_world


def factory(rank, size):
    return Stencil1D(rank, size, niters=40, cells=4)


def cfg():
    return ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=2e-6)


def test_gc_removes_old_checkpoints_and_logs():
    world, ctl = build_ft_world(6, factory, cfg())
    world.launch()
    world.run()
    before = ctl.store.count()
    report = ctl.collect_garbage()
    assert report["min_epoch"] == min(p.state.epoch for p in ctl.protocols)
    assert ctl.store.count() == before - report["checkpoints_removed"]
    # every surviving checkpoint is at or above the bound
    for rank in range(6):
        assert all(e >= report["min_epoch"] for e in ctl.store.epochs(rank))
    for proto in ctl.protocols:
        assert all(lm.epoch_recv >= report["min_epoch"] for lm in proto.state.logs)


def test_gc_keeps_epochs_needed_for_recovery():
    """After GC, inject a failure: recovery must still find every checkpoint
    the recovery line asks for (the paper's safety argument: nobody ever
    rolls below the smallest current epoch)."""
    world, ctl = build_ft_world(6, factory, cfg())
    # run half the app, GC, then fail
    world.engine.schedule_at(5e-5, lambda: ctl.collect_garbage())
    ctl.inject_failure(8e-5, 3)
    ctl.arm()
    world.launch()
    world.run()

    ref_world, _ = build_ft_world(6, factory, cfg())
    ref_world.launch()
    ref_world.run()
    for r in range(6):
        np.testing.assert_allclose(
            ref_world.programs[r].result(), world.programs[r].result()
        )


def test_gc_counts_accumulate():
    world, ctl = build_ft_world(4, factory, cfg())
    world.launch()
    world.run()
    r1 = ctl.collect_garbage()
    r2 = ctl.collect_garbage()
    assert r2["checkpoints_removed"] == 0  # idempotent
    assert ctl.store.checkpoints_collected == r1["checkpoints_removed"]


def test_gc_mid_round_raises():
    """Regression (chaos-derived): GC during an in-flight recovery round
    sees the transient epochs of the abandoned branch — the min-epoch
    bound is unsafe, so the call must be refused."""
    import pytest

    from repro.errors import ProtocolError

    world, ctl = build_ft_world(6, factory, cfg())
    ref_world, _ = build_ft_world(6, factory, cfg())
    ref_world.launch()
    ref_world.run()
    horizon = ref_world.engine.now

    seen = {}

    def poke():
        if ctl._round_in_progress:
            with pytest.raises(ProtocolError, match="in flight"):
                ctl.collect_garbage()
            seen["mid_round"] = True
        else:
            world.engine.schedule(5e-7, poke)

    ctl.inject_failure(horizon / 2, 3)
    ctl.arm()
    world.engine.schedule_at(horizon / 2, poke)
    world.launch()
    world.run()
    assert seen.get("mid_round")
    assert world.all_done


def test_gc_deferred_runs_after_settle():
    """defer=True parks the GC while a round (and everything queued
    behind it) is in flight and runs it exactly once after settle."""
    world, ctl = build_ft_world(6, factory, cfg())
    ref_world, _ = build_ft_world(6, factory, cfg())
    ref_world.launch()
    ref_world.run()
    horizon = ref_world.engine.now

    deferred = {}

    def poke():
        if ctl._round_in_progress:
            assert ctl.collect_garbage(defer=True) is None
            assert ctl._gc_deferred
            deferred["parked"] = True
        else:
            world.engine.schedule(5e-7, poke)

    ctl.inject_failure(horizon / 2, 2)
    ctl.arm()
    world.engine.schedule_at(horizon / 2, poke)
    world.launch()
    world.run()
    assert deferred.get("parked")
    assert not ctl._gc_deferred  # executed at settle
    assert world.all_done
    # recovery after the deferred GC stayed valid
    for p_ref, p in zip(ref_world.programs, world.programs):
        np.testing.assert_allclose(p_ref.result(), p.result())


def test_gc_refused_without_cross_epoch_logging():
    """Without epoch-crossing logging the domino is unbounded, so no
    min-epoch reclamation bound exists (found by chaos fuzzing: a
    post-GC failure needed a reclaimed checkpoint)."""
    import pytest

    from repro.errors import ProtocolError

    world, ctl = build_ft_world(
        6, factory,
        ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=2e-6,
                       log_cross_epoch=False),
    )
    world.launch()
    world.run()
    with pytest.raises(ProtocolError, match="unsound"):
        ctl.collect_garbage()
