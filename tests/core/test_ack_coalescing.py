"""Acknowledgement coalescing (``ProtocolConfig.ack_batch``).

The logging decision (Fig. 3: log iff ``epoch_send < epoch_recv``) uses
the *reception* epoch latched when the receiver delivered the message, so
it is invariant under ack batching — these tests pin that equivalence plus
the flush machinery around it.
"""

import numpy as np
import pytest

from repro.apps import Stencil2D
from repro.core import ProtocolConfig, build_ft_world
from repro.core.clustering import block_clusters


def _config(batch, **kw):
    return ProtocolConfig(
        checkpoint_interval=3e-5,
        cluster_of=block_clusters(8, 2),
        cluster_stagger=5e-6,
        rank_stagger=1e-6,
        ack_batch=batch,
        **kw,
    )


def _run(batch, niters=40, fail_at=None, fail_rank=7):
    world, ctl = build_ft_world(
        8, lambda r, s: Stencil2D(r, s, niters=niters, block=3), _config(batch)
    )
    if fail_at is not None:
        ctl.inject_failure(fail_at, fail_rank)
        ctl.arm()
    world.launch()
    world.run()
    return world, ctl


@pytest.fixture(scope="module")
def reference():
    world, ctl = _run(batch=1)
    return {
        "sends": world.tracer.send_sequences(dedup=True),
        "logical": world.tracer.logical_send_sequences(),
        "stats": ctl.logging_stats(),
        "results": [p.result().copy() for p in world.programs],
    }


@pytest.mark.parametrize("batch", [2, 4, 16])
def test_logging_decision_invariant_under_batching(reference, batch):
    """%log (the paper's Table I column) must not move with ack_batch."""
    world, ctl = _run(batch)
    stats = ctl.logging_stats()
    assert stats["messages_logged"] == reference["stats"]["messages_logged"]
    assert stats["log_fraction"] == pytest.approx(
        reference["stats"]["log_fraction"]
    )
    assert world.tracer.send_sequences(dedup=True) == reference["sends"]


@pytest.mark.parametrize("batch", [2, 8])
def test_recovery_valid_under_batching(reference, batch):
    """A failure mid-run still recovers to the failure-free execution."""
    world, ctl = _run(batch, fail_at=7e-5)
    assert len(ctl.recovery_reports) >= 1
    assert world.tracer.logical_send_sequences() == reference["logical"]
    for ref, prog in zip(reference["results"], world.programs):
        np.testing.assert_allclose(ref, prog.result())


def test_batched_acks_reduce_control_messages():
    """The point of coalescing: fewer ack envelopes on the wire."""
    w1, c1 = _run(batch=1)
    w8, c8 = _run(batch=8)
    assert w8.network.messages_sent < w1.network.messages_sent
    total_piggy = sum(pr.acks_piggybacked for pr in c8.protocols)
    total_flushes = sum(pr.ack_flushes for pr in c8.protocols)
    assert total_piggy + total_flushes > 0
    # every owed ack was resolved by the end of the run
    for pr in c8.protocols:
        assert not pr._pending_acks
        assert not pr.state.non_ack


def test_default_batch_is_eager_one_ack_per_message():
    """ack_batch=1 (the default) must stay the paper's protocol: acks are
    sent immediately and nothing ever enters the batching machinery."""
    world, ctl = _run(batch=1, niters=10)
    for pr in ctl.protocols:
        assert pr.acks_piggybacked == 0
        assert pr.ack_flushes == 0
        assert not pr._pending_acks
        assert not pr._ack_timers


def test_timeout_flushes_idle_channel():
    """A one-way channel (receiver never sends back) still resolves its
    acks via the virtual-time flush timer."""
    # rank 0 streams to rank 1; rank 1 never sends an app message back, so
    # piggybacking alone would strand the acks forever
    class OneWay:
        def __init__(self, rank, size):
            self.rank, self.size = rank, size

        def run(self, api):
            if self.rank == 0:
                for i in range(6):
                    yield api.send(1, float(i), tag=0)
                    yield api.compute(1e-6)
            else:
                for _ in range(6):
                    yield api.recv(0, tag=0)

        def snapshot(self):
            return {}

        def restore(self, state):
            pass

        def result(self):
            return np.zeros(1)

    cfg = ProtocolConfig(checkpoint_interval=1e-2, ack_batch=64,
                         ack_flush_timeout=5e-6)
    world, ctl = build_ft_world(2, lambda r, s: OneWay(r, s), cfg)
    world.launch()
    world.run()
    # all six sends acknowledged (non_ack drained) without a full batch
    assert not ctl.protocols[0].state.non_ack
    assert ctl.protocols[1].ack_flushes >= 1


def test_ack_batch_exercises_engine_compaction():
    """Heavy timer cancellation (every piggyback cancels a timer) drives
    the engine's lazy compaction; the run must stay correct through it."""
    world, ctl = _run(batch=4, niters=60)
    assert world.engine.compactions >= 1
    assert world.engine.queue_garbage == 0
    assert world.all_done
