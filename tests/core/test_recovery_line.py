"""Unit tests for the recovery-line fix-point (Fig. 4 lines 6-16),
including the paper's Fig. 1 scenario."""

import pytest

from repro.core.recovery import compute_recovery_line
from repro.errors import ProtocolError


def spe(entries, start_dates=None):
    """Build an SPE export: ``{epoch: (start_date, {peer: recv_epoch})}``."""
    start_dates = start_dates or {}
    return {
        epoch: (start_dates.get(epoch, 0), dict(peers))
        for epoch, peers in entries.items()
    }


def test_failed_process_alone_when_no_dependencies():
    tables = {0: spe({1: {}}), 1: spe({1: {}})}
    rl = compute_recovery_line(tables, {0: 1})
    assert rl == {0: (1, 0)}


def test_direct_dependency_pulls_sender():
    # rank 1 sent a non-logged message from epoch 2 that rank 0 received in
    # epoch 2; rank 0 restarts at epoch 2 -> rank 1 must roll back to 2.
    tables = {
        0: spe({1: {}, 2: {}}),
        1: spe({1: {}, 2: {0: 2}}, start_dates={2: 17}),
    }
    rl = compute_recovery_line(tables, {0: 2})
    assert rl[0] == (2, 0)
    assert rl[1] == (2, 17)


def test_reception_below_restart_epoch_is_safe():
    # rank 1's message was received by rank 0 in epoch 1 < restart epoch 2:
    # the reception survives, no rollback for rank 1.
    tables = {
        0: spe({1: {}, 2: {}}),
        1: spe({1: {0: 1}, 2: {}}),
    }
    rl = compute_recovery_line(tables, {0: 2})
    assert 1 not in rl


def test_cascade_two_hops():
    # 2 sent to 1 (received in 1's epoch 3); 1 restarts at 3 after pulling
    # by 0's failure; 2 must roll to its sending epoch 2 -> which then pulls 3.
    tables = {
        0: spe({4: {}}),
        1: spe({3: {0: 4}}),
        2: spe({2: {1: 3}}),
        3: spe({1: {2: 2}}),
    }
    rl = compute_recovery_line(tables, {0: 4})
    assert rl[1] == (3, 0)
    assert rl[2] == (2, 0)
    assert rl[3] == (1, 0)


def test_logging_breaks_propagation_fig1():
    """The paper's Fig. 1: P1 fails and restarts at epoch 2; P0 and P2 sent
    it messages (m8, m9) received in epoch 2 -> they roll back.  P4's m7 to
    P3 crossed epochs and was logged -> absent from SPE -> P4 (and P3, which
    only has the orphan m10) stay up."""
    tables = {
        0: spe({2: {1: 2}}, start_dates={2: 10}),
        1: spe({2: {3: 2}}, start_dates={2: 12}),  # m10 -> orphan at P3
        2: spe({2: {1: 2}}, start_dates={2: 14}),
        3: spe({2: {}}),
        4: spe({1: {}, 2: {}}),  # m7 logged, not in SPE
    }
    rl = compute_recovery_line(tables, {1: 2})
    assert set(rl) == {0, 1, 2}
    assert rl[0] == (2, 10) and rl[2] == (2, 14)


def test_multiple_concurrent_failures_union():
    tables = {
        0: spe({2: {}}),
        1: spe({2: {}}),
        2: spe({2: {0: 2}}),   # depends on 0's rollback
        3: spe({2: {1: 2}}),   # depends on 1's rollback
    }
    rl = compute_recovery_line(tables, {0: 2, 1: 2})
    assert set(rl) == {0, 1, 2, 3}


def test_min_epoch_wins_on_repeated_updates():
    # rank 1 sent from epochs 3 and 2 to rank 0 (both rolled back);
    # it must restart at the smaller epoch.
    tables = {
        0: spe({2: {}}),
        1: spe({2: {0: 3}, 3: {0: 2}}),
    }
    rl = compute_recovery_line(tables, {0: 2})
    assert rl[1][0] == 2


def test_failed_rank_can_be_forced_deeper():
    # failed rank 0 restarts at 3, but it sent from epoch 2 a message that
    # rank 1 (itself pulled back to 2) received in epoch 2 -> 0 goes to 2.
    tables = {
        0: spe({2: {1: 2}, 3: {}}),
        1: spe({2: {0: 3}}),
    }
    rl = compute_recovery_line(tables, {0: 3})
    assert rl[0][0] == 2
    assert rl[1][0] == 2


def test_dates_come_from_spe_start_dates():
    tables = {
        0: spe({2: {}}, start_dates={2: 55}),
        1: spe({1: {0: 2}}, start_dates={1: 7}),
    }
    rl = compute_recovery_line(tables, {0: 2})
    assert rl[0] == (2, 55)
    assert rl[1] == (1, 7)


def test_missing_epoch_in_spe_raises():
    tables = {0: spe({2: {}})}
    with pytest.raises(ProtocolError):
        compute_recovery_line(tables, {0: 1})


def test_no_failures_no_rollback():
    tables = {0: spe({1: {1: 1}}), 1: spe({1: {0: 1}})}
    assert compute_recovery_line(tables, {}) == {}


def test_monotone_more_failures_never_shrink_line():
    tables = {
        0: spe({2: {1: 2}}),
        1: spe({2: {2: 2}}),
        2: spe({2: {}}),
    }
    rl_one = compute_recovery_line(tables, {2: 2})
    rl_two = compute_recovery_line(tables, {2: 2, 1: 2})
    assert set(rl_one) <= set(rl_two)
    for rank, (e, _) in rl_one.items():
        assert rl_two[rank][0] <= e
