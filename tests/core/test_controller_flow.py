"""Controller and recovery-process flow tests: drain, settle, rounds,
watchdog, lightweight-mode guards."""

import pytest

from repro.apps.stencil import Stencil1D
from repro.core import ProtocolConfig, build_ft_world
from repro.core.controller import FTController
from repro.core.protocol import Status
from repro.errors import ProtocolError


def factory(rank, size):
    return Stencil1D(rank, size, niters=25, cells=4)


def test_cluster_map_length_validated():
    with pytest.raises(ProtocolError):
        FTController(4, ProtocolConfig(cluster_of=[0, 1]))


def test_lightweight_restore_rejected():
    world, ctl = build_ft_world(4, factory, ProtocolConfig(lightweight=True))
    with pytest.raises(ProtocolError):
        ctl.restore_rank(0, 1)


def test_lightweight_skips_checkpoint_storage():
    cfg = ProtocolConfig(checkpoint_interval=2e-5, lightweight=True)
    world, ctl = build_ft_world(4, factory, cfg)
    world.launch()
    world.run()
    assert ctl.store.checkpoints_taken > 0
    assert ctl.store.count() == 0  # counted but not stored


def test_retain_payloads_off_keeps_counts():
    cfg = ProtocolConfig(lightweight=True, retain_payloads=False,
                         checkpoint_interval=2e-5, rank_stagger=2e-6)
    world, ctl = build_ft_world(4, factory, cfg)
    world.launch()
    world.run()
    stats = ctl.logging_stats()
    assert stats["messages_total"] > 0
    for proto in ctl.protocols:
        for lm in proto.state.logs:
            assert lm.payload is None
            assert lm.size > 0


def test_recovery_round_numbers_monotone():
    cfg = ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=3e-6)
    world, ctl = build_ft_world(6, factory, cfg)
    ctl.inject_failure(4e-5, 1)
    ctl.inject_failure(9e-5, 4)
    ctl.arm()
    world.launch()
    world.run()
    rounds = [r.round_no for r in ctl.recovery_reports]
    assert rounds == sorted(rounds) == list(dict.fromkeys(rounds))


def test_failed_rank_restored_to_latest_checkpoint():
    cfg = ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=3e-6)
    world, ctl = build_ft_world(6, factory, cfg)
    ctl.inject_failure(7e-5, 2)
    ctl.arm()
    world.launch()
    world.run()
    rl = ctl.recovery_reports[0].recovery_line
    # the failed rank restarted at (or below) its last checkpoint epoch
    assert rl[2][0] >= 1


def test_recovery_report_timing():
    cfg = ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=3e-6)
    world, ctl = build_ft_world(6, factory, cfg)
    ctl.inject_failure(6e-5, 3)
    ctl.arm()
    world.launch()
    world.run()
    rep = ctl.recovery_reports[0]
    assert rep.started_at >= 6e-5
    assert rep.finished_at > rep.started_at


def test_no_watchdog_interventions_on_single_failures():
    cfg = ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=3e-6)
    world, ctl = build_ft_world(6, factory, cfg)
    ctl.inject_failure(6e-5, 0)
    ctl.arm()
    world.launch()
    world.run()
    assert ctl.stall_flushes == 0
    assert ctl.stall_releases == 0


def test_statuses_and_queues_clean_after_recovery():
    cfg = ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=3e-6)
    world, ctl = build_ft_world(6, factory, cfg)
    ctl.inject_failure(6e-5, 3)
    ctl.arm()
    world.launch()
    world.run()
    for proto in ctl.protocols:
        assert proto.status is Status.RUNNING
        assert proto.replay_logged == {}
        assert proto.replay_nonack == {}
        assert proto.orph_count == {} or all(
            v == 0 for v in proto.orph_count.values()
        )
    assert not ctl.recovery.active
    assert world.network.in_flight_count() == 0


def test_injector_requires_arming():
    cfg = ProtocolConfig(checkpoint_interval=2e-5)
    world, ctl = build_ft_world(4, factory, cfg)
    ctl.inject_failure(5e-5, 1)
    # never armed: the run completes failure-free
    world.launch()
    world.run()
    assert ctl.recovery_reports == []


def test_epoch_monotone_per_rank():
    cfg = ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=3e-6)
    world, ctl = build_ft_world(4, factory, cfg)
    world.launch()
    world.run()
    for proto in ctl.protocols:
        epochs = sorted(proto.state.spe)
        assert proto.state.epoch == epochs[-1]
        assert epochs == list(range(epochs[0], epochs[-1] + 1))
