"""Unit tests for process clustering and epoch assignment (Sec. V-E-3)."""

import numpy as np
import pytest

from repro.core.clustering import (
    Clustering,
    block_clusters,
    cluster_epochs,
    modularity_clusters,
    spectral_clusters,
)
from repro.errors import ConfigError


def block_diag_matrix(nprocs=16, nclusters=4, intra=100, inter=1):
    """Synthetic traffic: heavy intra-block, light ring between blocks."""
    m = np.full((nprocs, nprocs), 0, dtype=np.int64)
    per = nprocs // nclusters
    for i in range(nprocs):
        for j in range(nprocs):
            if i == j:
                continue
            m[i, j] = intra if i // per == j // per else inter
    return m


def test_block_clusters_contiguous():
    assert block_clusters(8, 4) == [0, 0, 1, 1, 2, 2, 3, 3]


def test_block_clusters_validations():
    with pytest.raises(ConfigError):
        block_clusters(8, 3)
    with pytest.raises(ConfigError):
        block_clusters(8, 0)
    with pytest.raises(ConfigError):
        block_clusters(4, 8)


def test_modularity_recovers_block_structure():
    m = block_diag_matrix(16, 4)
    clusters = modularity_clusters(m, 4)
    assert max(clusters) + 1 == 4
    # ranks in the same block must land in the same cluster
    for block in range(4):
        members = {clusters[r] for r in range(block * 4, block * 4 + 4)}
        assert len(members) == 1


def test_spectral_recovers_block_structure():
    m = block_diag_matrix(16, 4)
    clusters = spectral_clusters(m, 4)
    for block in range(4):
        members = {clusters[r] for r in range(block * 4, block * 4 + 4)}
        assert len(members) == 1


def test_spectral_requires_power_of_two():
    with pytest.raises(ConfigError):
        spectral_clusters(block_diag_matrix(), 3)


def test_cluster_epochs_spacing_two():
    epochs = cluster_epochs([0, 0, 1, 1, 2, 2])
    assert epochs == {0: 1, 1: 3, 2: 5}
    diffs = np.diff(sorted(epochs.values()))
    assert (diffs >= 2).all()


def test_cluster_epochs_with_order():
    epochs = cluster_epochs([0, 0, 1, 1], order=[1, 0])
    assert epochs == {1: 1, 0: 3}


def test_cluster_epochs_invalid_order():
    with pytest.raises(ConfigError):
        cluster_epochs([0, 1], order=[0, 0])


def test_locality_isolation_metrics():
    m = block_diag_matrix(16, 4, intra=100, inter=0)
    c = Clustering(block_clusters(16, 4), m)
    assert c.locality() == pytest.approx(1.0)
    assert c.isolation() == pytest.approx(0.0)
    m2 = block_diag_matrix(16, 4, intra=1, inter=1)
    c2 = Clustering(block_clusters(16, 4), m2)
    assert 0 < c2.locality() < 1


def test_cluster_matrix_aggregates():
    m = block_diag_matrix(8, 2, intra=10, inter=1)
    c = Clustering(block_clusters(8, 2), m)
    cm = c.cluster_matrix()
    assert cm.shape == (2, 2)
    assert cm[0, 0] == 10 * 12  # 4*3 ordered intra pairs
    assert cm[0, 1] == 16       # 4*4 ordered inter pairs


def test_predicted_log_fraction_counts_up_epoch_traffic():
    # asymmetric traffic: cluster 0 -> 1 heavy, 1 -> 0 none
    m = np.zeros((4, 4), dtype=np.int64)
    m[0, 2] = m[1, 3] = 10  # cluster 0 (ranks 0,1) to cluster 1 (ranks 2,3)
    c = Clustering([0, 0, 1, 1], m)
    assert c.predicted_log_fraction() == pytest.approx(1.0)
    reversed_order = Clustering([0, 0, 1, 1], m, epoch_order=[1, 0])
    assert reversed_order.predicted_log_fraction() == pytest.approx(0.0)


def test_reconfigure_epochs_bounds_logging_by_half():
    """Section V-E-3's 50 % argument: if the 'up-epoch' messages exceed
    half, reversing the epoch ordering logs the other set instead."""
    rng = np.random.default_rng(3)
    m = rng.integers(0, 20, size=(8, 8))
    np.fill_diagonal(m, 0)
    c = Clustering(block_clusters(8, 4), m)
    best = c.reconfigure_epochs()
    assert best.predicted_log_fraction() <= 0.5 + 1e-9
    assert best.predicted_log_fraction() <= c.predicted_log_fraction()


def test_initial_epochs_follow_order():
    m = block_diag_matrix(8, 2)
    c = Clustering(block_clusters(8, 2), m, epoch_order=[1, 0])
    assert c.initial_epochs() == {1: 1, 0: 3}


def test_members():
    c = Clustering([0, 1, 0, 1], np.zeros((4, 4)))
    assert c.members(0) == [0, 2]
    assert c.members(1) == [1, 3]


def test_mismatched_sizes_rejected():
    with pytest.raises(ConfigError):
        Clustering([0, 1], np.zeros((3, 3)))


def test_balanced_partition_sizes():
    m = block_diag_matrix(16, 4)
    for fn in (modularity_clusters, spectral_clusters):
        clusters = fn(m, 4)
        sizes = [clusters.count(c) for c in range(4)]
        assert max(sizes) - min(sizes) <= 4
