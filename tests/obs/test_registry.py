"""Unit tests for the metrics registry (counters, gauges, histograms,
spans, trace stream, null registry)."""

import pytest

from repro.errors import SimulationError
from repro.obs import (
    DEPTH_BUCKETS,
    MetricsRegistry,
    NULL_OBS,
    NullRegistry,
)


def test_counter_unlabelled():
    reg = MetricsRegistry()
    c = reg.counter("a")
    c.inc()
    c.inc(2.5)
    assert c.total == 3.5
    assert reg.counter("a") is c  # idempotent by name


def test_counter_labelled():
    reg = MetricsRegistry()
    c = reg.counter("channel.msgs", ("src", "dst"))
    c.inc(labels=(0, 1))
    c.inc(labels=(0, 1))
    c.inc(labels=(1, 0))
    assert c.get((0, 1)) == 2
    assert c.get((1, 0)) == 1
    assert c.total == 3


def test_counter_label_mismatch_rejected():
    reg = MetricsRegistry()
    reg.counter("x", ("a",))
    with pytest.raises(SimulationError):
        reg.counter("x", ("b",))


def test_instrument_type_clash_rejected():
    reg = MetricsRegistry()
    reg.counter("m")
    with pytest.raises(SimulationError):
        reg.gauge("m")


def test_gauge_high_water():
    reg = MetricsRegistry()
    g = reg.gauge("depth")
    g.inc(5)
    g.dec(3)
    g.inc(1)
    assert g.value == 3
    assert g.high_water == 5


def test_histogram_buckets_and_stats():
    reg = MetricsRegistry()
    h = reg.histogram("h", (1.0, 10.0, 100.0))
    for v in (0.5, 1.0, 5.0, 50.0, 500.0):
        h.observe(v)
    # bucket edges are inclusive upper bounds; last bucket is overflow
    assert h.counts == [2, 1, 1, 1]
    assert h.count == 5
    assert h.sum == pytest.approx(556.5)
    assert h.min == 0.5 and h.max == 500.0
    assert h.mean == pytest.approx(556.5 / 5)


def test_histogram_rejects_unsorted_bounds():
    reg = MetricsRegistry()
    with pytest.raises(SimulationError):
        reg.histogram("bad", (3.0, 1.0))


def test_depth_buckets_strictly_increasing():
    assert list(DEPTH_BUCKETS) == sorted(set(DEPTH_BUCKETS))


def test_span_uses_virtual_clock():
    t = {"now": 1.0}
    reg = MetricsRegistry(clock=lambda: t["now"])
    with reg.span("phase", rank=3):
        t["now"] = 4.0
    h = reg.histogram("phase.duration_s")
    assert h.count == 1
    assert h.sum == pytest.approx(3.0)
    spans = [r for r in reg.events if r.kind == "span"]
    assert spans[0].fields["name"] == "phase"
    assert spans[0].fields["rank"] == 3
    assert spans[0].fields["duration"] == pytest.approx(3.0)


def test_trace_stream_bounded():
    reg = MetricsRegistry(trace_capacity=3)
    for i in range(5):
        reg.event("tick", i=i)
    assert len(reg.events) == 3
    assert [r.fields["i"] for r in reg.events] == [2, 3, 4]
    assert reg.events_dropped == 2


def test_null_registry_is_inert():
    null = NullRegistry()
    assert not null.enabled
    c = null.counter("anything", ("a", "b"))
    c.inc()
    c.inc(5, labels=("x", "y"))
    null.gauge("g").set(3)
    null.histogram("h").observe(1.0)
    null.event("kind", x=1)
    with null.span("s"):
        pass
    assert list(null.instruments()) == []
    assert null.get_counter_total("anything") == 0.0
    assert len(null.events) == 0
    assert NULL_OBS.enabled is False


def test_bind_clock_stamps_events():
    reg = MetricsRegistry()
    reg.event("before")  # no clock yet: time 0
    reg.bind_clock(lambda: 42.0)
    reg.event("after")
    times = [r.time for r in reg.events]
    assert times == [0.0, 42.0]


def test_histogram_bounds_mismatch_rejected():
    # re-registration with different bounds must fail loudly, like
    # counter() label mismatches — not silently keep the first bounds
    reg = MetricsRegistry()
    reg.histogram("h", (1.0, 10.0))
    with pytest.raises(SimulationError):
        reg.histogram("h", (1.0, 10.0, 100.0))
    # same bounds (even as ints) re-register fine
    assert reg.histogram("h", (1, 10)).bounds == (1.0, 10.0)


def test_null_registries_share_no_state():
    a, b = NullRegistry(), NullRegistry()
    a.event("kind", x=1)
    assert len(a.events) == 0
    assert len(b.events) == 0
    # the events sentinel is immutable — nothing can leak between instances
    assert not hasattr(a.events, "append")
    a.flight.record(0, "send")
    assert b.flight.total_records == 0


def test_snapshot_merge_counters_gauges_histograms():
    def build():
        reg = MetricsRegistry()
        reg.counter("c", ("k",)).inc(2, labels=("x",))
        g = reg.gauge("g")
        g.inc(5)
        g.dec(2)
        reg.histogram("h", (1.0, 10.0)).observe(3.0)
        reg.event("e", i=1)
        return reg

    a, b = build(), build()
    merged = MetricsRegistry()
    merged.merge(a.snapshot())
    merged.merge(b.snapshot())
    assert merged.counter("c", ("k",)).get(("x",)) == 4
    assert merged.gauge("g").value == 6
    # per-worker high waters were 5 each, but the merged aggregate value
    # (6) exceeds both — high_water clamps so high_water >= value holds
    assert merged.gauge("g").high_water == 6
    h = merged.histogram("h", (1.0, 10.0))
    assert h.count == 2 and h.sum == pytest.approx(6.0)
    assert h.min == 3.0 and h.max == 3.0
    assert len(merged.events) == 2


def test_counter_slot_resolution():
    reg = MetricsRegistry()
    c = reg.counter("hot", ("k",))
    cell = c.slot(("x",))
    assert c.slot(("x",)) is cell  # idempotent: one cell per series
    cell.n += 2.0
    cell.inc(0.5)
    assert c.get(("x",)) == 2.5
    assert c.total == 2.5
    assert c.values == {("x",): 2.5}
    # registry one-step registration resolves the same cell
    assert reg.counter_slot("hot", ("k",), ("x",)) is cell


def test_counter_label_arity_rejected():
    reg = MetricsRegistry()
    c = reg.counter("c", ("src", "dst"))
    with pytest.raises(SimulationError):
        c.slot((1,))
    with pytest.raises(SimulationError):
        c.inc(labels=(1, 2, 3))
    with pytest.raises(SimulationError):
        reg.counter("plain").inc(labels=("oops",))
    # the failed resolutions must not have created phantom series
    assert c.values == {}


def test_merged_gauge_high_water_never_below_value():
    # N workers each peak at 5 then settle at 3: the merged aggregate
    # value (9) exceeds every per-worker high water, so the clamp keeps
    # the high_water >= value invariant
    def worker():
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.inc(5)
        g.dec(2)
        return reg.snapshot()

    merged = MetricsRegistry()
    for _ in range(3):
        merged.merge(worker())
    g = merged.gauge("depth")
    assert g.value == 9
    assert g.high_water == 9
    assert g.high_water >= g.value


def test_merge_respects_trace_capacity():
    # a counted drop must skip the append: the merged stream never grows
    # past capacity, and never silently evicts an earlier merged event
    src = MetricsRegistry()
    for i in range(4):
        src.event("tick", i=i)
    snap = src.snapshot()
    dst = MetricsRegistry(trace_capacity=3)
    dst.merge(snap)
    assert len(dst.events) == 3
    assert [r.fields["i"] for r in dst.events] == [0, 1, 2]  # earliest kept
    assert dst.events_dropped == 1
    # a second merge drops everything, and drop accounting accumulates
    dst.merge(snap)
    assert len(dst.events) == 3
    assert [r.fields["i"] for r in dst.events] == [0, 1, 2]
    assert dst.events_dropped == 5


def test_merge_accumulates_source_drop_counts():
    src = MetricsRegistry(trace_capacity=2)
    for i in range(5):
        src.event("tick", i=i)
    assert src.events_dropped == 3
    dst = MetricsRegistry()
    dst.merge(src.snapshot())
    assert len(dst.events) == 2
    assert dst.events_dropped == 3


def test_empty_histogram_min_max_survive_merge():
    # min=inf/max=-inf sentinels must propagate through snapshot/merge
    # without poisoning a populated histogram on the other side
    empty = MetricsRegistry()
    empty.histogram("h", (1.0, 10.0))
    full = MetricsRegistry()
    full.histogram("h", (1.0, 10.0)).observe(3.0)

    merged = MetricsRegistry()
    merged.merge(empty.snapshot())
    merged.merge(full.snapshot())
    h = merged.histogram("h", (1.0, 10.0))
    assert h.count == 1
    assert h.min == 3.0 and h.max == 3.0

    still_empty = MetricsRegistry()
    still_empty.merge(empty.snapshot())
    e = still_empty.histogram("h", (1.0, 10.0))
    assert e.count == 0
    assert e.min == float("inf") and e.max == float("-inf")


def test_empty_histogram_exports_none_min_max_after_merge():
    from repro.obs import metric_rows

    merged = MetricsRegistry()
    src = MetricsRegistry()
    src.histogram("h", (1.0, 10.0))
    merged.merge(src.snapshot())
    row = next(r for r in metric_rows(merged) if r["metric"] == "h")
    assert row["count"] == 0
    assert row["min"] is None and row["max"] is None


def test_histogram_sampling_records_every_nth():
    reg = MetricsRegistry(hist_sample=3)
    s = reg.sampled_histogram("h", (10.0, 100.0))
    for v in range(1, 10):  # 1..9: samples land on 1, 4, 7
        s.observe(float(v))
    h = reg.histogram("h", (10.0, 100.0))
    assert h.count == 3
    assert h.sum == pytest.approx(1.0 + 4.0 + 7.0)
    # interval 1 hands back the bare histogram — the exact path is free
    exact = reg.sampled_histogram("h2", (10.0, 100.0), interval=1)
    assert exact is reg.histogram("h2", (10.0, 100.0))
    with pytest.raises(SimulationError):
        MetricsRegistry(hist_sample=0)


def test_span_sampling_records_every_nth():
    t = {"now": 0.0}
    reg = MetricsRegistry(clock=lambda: t["now"], span_sample=2)
    for i in range(4):  # spans 1 and 3 sampled
        with reg.span("phase"):
            t["now"] += 1.0
    h = reg.histogram("phase.duration_s")
    assert h.count == 2
    assert len([r for r in reg.events if r.kind == "span"]) == 2


def test_merge_rejects_histogram_bounds_clash():
    a = MetricsRegistry()
    a.histogram("h", (1.0,)).observe(0.5)
    b = MetricsRegistry()
    b.histogram("h", (2.0,)).observe(0.5)
    b_snap = b.snapshot()
    with pytest.raises(SimulationError):
        a.merge(b_snap)
