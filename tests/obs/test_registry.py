"""Unit tests for the metrics registry (counters, gauges, histograms,
spans, trace stream, null registry)."""

import pytest

from repro.errors import SimulationError
from repro.obs import (
    DEPTH_BUCKETS,
    MetricsRegistry,
    NULL_OBS,
    NullRegistry,
)


def test_counter_unlabelled():
    reg = MetricsRegistry()
    c = reg.counter("a")
    c.inc()
    c.inc(2.5)
    assert c.total == 3.5
    assert reg.counter("a") is c  # idempotent by name


def test_counter_labelled():
    reg = MetricsRegistry()
    c = reg.counter("channel.msgs", ("src", "dst"))
    c.inc(labels=(0, 1))
    c.inc(labels=(0, 1))
    c.inc(labels=(1, 0))
    assert c.get((0, 1)) == 2
    assert c.get((1, 0)) == 1
    assert c.total == 3


def test_counter_label_mismatch_rejected():
    reg = MetricsRegistry()
    reg.counter("x", ("a",))
    with pytest.raises(SimulationError):
        reg.counter("x", ("b",))


def test_instrument_type_clash_rejected():
    reg = MetricsRegistry()
    reg.counter("m")
    with pytest.raises(SimulationError):
        reg.gauge("m")


def test_gauge_high_water():
    reg = MetricsRegistry()
    g = reg.gauge("depth")
    g.inc(5)
    g.dec(3)
    g.inc(1)
    assert g.value == 3
    assert g.high_water == 5


def test_histogram_buckets_and_stats():
    reg = MetricsRegistry()
    h = reg.histogram("h", (1.0, 10.0, 100.0))
    for v in (0.5, 1.0, 5.0, 50.0, 500.0):
        h.observe(v)
    # bucket edges are inclusive upper bounds; last bucket is overflow
    assert h.counts == [2, 1, 1, 1]
    assert h.count == 5
    assert h.sum == pytest.approx(556.5)
    assert h.min == 0.5 and h.max == 500.0
    assert h.mean == pytest.approx(556.5 / 5)


def test_histogram_rejects_unsorted_bounds():
    reg = MetricsRegistry()
    with pytest.raises(SimulationError):
        reg.histogram("bad", (3.0, 1.0))


def test_depth_buckets_strictly_increasing():
    assert list(DEPTH_BUCKETS) == sorted(set(DEPTH_BUCKETS))


def test_span_uses_virtual_clock():
    t = {"now": 1.0}
    reg = MetricsRegistry(clock=lambda: t["now"])
    with reg.span("phase", rank=3):
        t["now"] = 4.0
    h = reg.histogram("phase.duration_s")
    assert h.count == 1
    assert h.sum == pytest.approx(3.0)
    spans = [r for r in reg.events if r.kind == "span"]
    assert spans[0].fields["name"] == "phase"
    assert spans[0].fields["rank"] == 3
    assert spans[0].fields["duration"] == pytest.approx(3.0)


def test_trace_stream_bounded():
    reg = MetricsRegistry(trace_capacity=3)
    for i in range(5):
        reg.event("tick", i=i)
    assert len(reg.events) == 3
    assert [r.fields["i"] for r in reg.events] == [2, 3, 4]
    assert reg.events_dropped == 2


def test_null_registry_is_inert():
    null = NullRegistry()
    assert not null.enabled
    c = null.counter("anything", ("a", "b"))
    c.inc()
    c.inc(5, labels=("x", "y"))
    null.gauge("g").set(3)
    null.histogram("h").observe(1.0)
    null.event("kind", x=1)
    with null.span("s"):
        pass
    assert list(null.instruments()) == []
    assert null.get_counter_total("anything") == 0.0
    assert len(null.events) == 0
    assert NULL_OBS.enabled is False


def test_bind_clock_stamps_events():
    reg = MetricsRegistry()
    reg.event("before")  # no clock yet: time 0
    reg.bind_clock(lambda: 42.0)
    reg.event("after")
    times = [r.time for r in reg.events]
    assert times == [0.0, 42.0]
