"""Unit tests for the metrics registry (counters, gauges, histograms,
spans, trace stream, null registry)."""

import pytest

from repro.errors import SimulationError
from repro.obs import (
    DEPTH_BUCKETS,
    MetricsRegistry,
    NULL_OBS,
    NullRegistry,
)


def test_counter_unlabelled():
    reg = MetricsRegistry()
    c = reg.counter("a")
    c.inc()
    c.inc(2.5)
    assert c.total == 3.5
    assert reg.counter("a") is c  # idempotent by name


def test_counter_labelled():
    reg = MetricsRegistry()
    c = reg.counter("channel.msgs", ("src", "dst"))
    c.inc(labels=(0, 1))
    c.inc(labels=(0, 1))
    c.inc(labels=(1, 0))
    assert c.get((0, 1)) == 2
    assert c.get((1, 0)) == 1
    assert c.total == 3


def test_counter_label_mismatch_rejected():
    reg = MetricsRegistry()
    reg.counter("x", ("a",))
    with pytest.raises(SimulationError):
        reg.counter("x", ("b",))


def test_instrument_type_clash_rejected():
    reg = MetricsRegistry()
    reg.counter("m")
    with pytest.raises(SimulationError):
        reg.gauge("m")


def test_gauge_high_water():
    reg = MetricsRegistry()
    g = reg.gauge("depth")
    g.inc(5)
    g.dec(3)
    g.inc(1)
    assert g.value == 3
    assert g.high_water == 5


def test_histogram_buckets_and_stats():
    reg = MetricsRegistry()
    h = reg.histogram("h", (1.0, 10.0, 100.0))
    for v in (0.5, 1.0, 5.0, 50.0, 500.0):
        h.observe(v)
    # bucket edges are inclusive upper bounds; last bucket is overflow
    assert h.counts == [2, 1, 1, 1]
    assert h.count == 5
    assert h.sum == pytest.approx(556.5)
    assert h.min == 0.5 and h.max == 500.0
    assert h.mean == pytest.approx(556.5 / 5)


def test_histogram_rejects_unsorted_bounds():
    reg = MetricsRegistry()
    with pytest.raises(SimulationError):
        reg.histogram("bad", (3.0, 1.0))


def test_depth_buckets_strictly_increasing():
    assert list(DEPTH_BUCKETS) == sorted(set(DEPTH_BUCKETS))


def test_span_uses_virtual_clock():
    t = {"now": 1.0}
    reg = MetricsRegistry(clock=lambda: t["now"])
    with reg.span("phase", rank=3):
        t["now"] = 4.0
    h = reg.histogram("phase.duration_s")
    assert h.count == 1
    assert h.sum == pytest.approx(3.0)
    spans = [r for r in reg.events if r.kind == "span"]
    assert spans[0].fields["name"] == "phase"
    assert spans[0].fields["rank"] == 3
    assert spans[0].fields["duration"] == pytest.approx(3.0)


def test_trace_stream_bounded():
    reg = MetricsRegistry(trace_capacity=3)
    for i in range(5):
        reg.event("tick", i=i)
    assert len(reg.events) == 3
    assert [r.fields["i"] for r in reg.events] == [2, 3, 4]
    assert reg.events_dropped == 2


def test_null_registry_is_inert():
    null = NullRegistry()
    assert not null.enabled
    c = null.counter("anything", ("a", "b"))
    c.inc()
    c.inc(5, labels=("x", "y"))
    null.gauge("g").set(3)
    null.histogram("h").observe(1.0)
    null.event("kind", x=1)
    with null.span("s"):
        pass
    assert list(null.instruments()) == []
    assert null.get_counter_total("anything") == 0.0
    assert len(null.events) == 0
    assert NULL_OBS.enabled is False


def test_bind_clock_stamps_events():
    reg = MetricsRegistry()
    reg.event("before")  # no clock yet: time 0
    reg.bind_clock(lambda: 42.0)
    reg.event("after")
    times = [r.time for r in reg.events]
    assert times == [0.0, 42.0]


def test_histogram_bounds_mismatch_rejected():
    # re-registration with different bounds must fail loudly, like
    # counter() label mismatches — not silently keep the first bounds
    reg = MetricsRegistry()
    reg.histogram("h", (1.0, 10.0))
    with pytest.raises(SimulationError):
        reg.histogram("h", (1.0, 10.0, 100.0))
    # same bounds (even as ints) re-register fine
    assert reg.histogram("h", (1, 10)).bounds == (1.0, 10.0)


def test_null_registries_share_no_state():
    a, b = NullRegistry(), NullRegistry()
    a.event("kind", x=1)
    assert len(a.events) == 0
    assert len(b.events) == 0
    # the events sentinel is immutable — nothing can leak between instances
    assert not hasattr(a.events, "append")
    a.flight.record(0, "send")
    assert b.flight.total_records == 0


def test_snapshot_merge_counters_gauges_histograms():
    def build():
        reg = MetricsRegistry()
        reg.counter("c", ("k",)).inc(2, labels=("x",))
        g = reg.gauge("g")
        g.inc(5)
        g.dec(2)
        reg.histogram("h", (1.0, 10.0)).observe(3.0)
        reg.event("e", i=1)
        return reg

    a, b = build(), build()
    merged = MetricsRegistry()
    merged.merge(a.snapshot())
    merged.merge(b.snapshot())
    assert merged.counter("c", ("k",)).get(("x",)) == 4
    assert merged.gauge("g").value == 6
    assert merged.gauge("g").high_water == 5  # max, not sum
    h = merged.histogram("h", (1.0, 10.0))
    assert h.count == 2 and h.sum == pytest.approx(6.0)
    assert h.min == 3.0 and h.max == 3.0
    assert len(merged.events) == 2


def test_merge_rejects_histogram_bounds_clash():
    a = MetricsRegistry()
    a.histogram("h", (1.0,)).observe(0.5)
    b = MetricsRegistry()
    b.histogram("h", (2.0,)).observe(0.5)
    b_snap = b.snapshot()
    with pytest.raises(SimulationError):
        a.merge(b_snap)
