"""End-to-end wiring: one registry threaded through engine, network,
protocol, log store and recovery, without perturbing the simulation."""

import numpy as np
import pytest

from repro.apps.stencil import Stencil2D
from repro.core import ProtocolConfig, build_ft_world
from repro.core.logstore import ReceiverChannel, SenderChannel
from repro.obs import MetricsRegistry, metric_rows
from repro.simmpi import World


def factory(rank, size):
    return Stencil2D(rank, size, niters=25, block=3)


def config():
    return ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=3e-6)


def run_instrumented(with_failure=True):
    obs = MetricsRegistry()
    world, controller = build_ft_world(6, factory, config(), obs=obs)
    if with_failure:
        controller.inject_failure(4e-5, 3)
        controller.arm()
    world.launch()
    world.run()
    return world, controller, obs


def test_every_layer_reports():
    _world, _controller, obs = run_instrumented()
    names = {row["metric"] for row in metric_rows(obs)}
    # engine
    assert "engine.events_dispatched" in names
    assert "engine.queue_depth" in names
    # network
    assert "network.channel.messages" in names
    assert "network.channel.bytes" in names
    assert "network.in_flight" in names
    assert "network.messages_dropped" in names  # the kill purged inbound
    # protocol / logging
    assert "protocol.messages_logged" in names
    assert "protocol.acks_sent" in names
    # checkpoint / recovery
    assert "checkpoint.stored" in names
    assert "recovery.restores" in names
    assert "recovery.rounds" in names
    assert "recovery.round_duration_s" in names


def test_engine_counters_match_legacy_counters():
    world, controller, obs = run_instrumented()
    assert obs.get_counter_total("engine.events_dispatched") == (
        world.engine.events_dispatched
    )
    chan = obs.counter("network.channel.messages", ("src", "dst"))
    assert chan.total == world.network.messages_sent
    byte_chan = obs.counter("network.channel.bytes", ("src", "dst"))
    assert byte_chan.total == world.network.bytes_sent
    logged = obs.counter("protocol.messages_logged", ("epoch",))
    assert logged.total == sum(p.messages_logged for p in controller.protocols)
    log_bytes = obs.counter("protocol.log_bytes", ("epoch",))
    assert log_bytes.total == sum(p.bytes_logged for p in controller.protocols)
    acks = obs.counter("protocol.acks_sent", ("dup",))
    assert acks.total == sum(p.acks_sent for p in controller.protocols)


def test_recovery_round_duration_from_report():
    _world, controller, obs = run_instrumented()
    report = controller.recovery_reports[0]
    h = obs.histogram("recovery.round_duration_s")
    assert h.count == len(controller.recovery_reports)
    assert h.sum == pytest.approx(sum(
        r.finished_at - r.started_at for r in controller.recovery_reports
    ))
    assert obs.get_counter_total("recovery.rollbacks") >= len(report.rolled_back)


def test_trace_stream_records_failure_and_recovery():
    _world, _controller, obs = run_instrumented()
    kinds = [r.kind for r in obs.events]
    for expected in ("checkpoint", "failure", "network.purge",
                     "recovery.round_begin", "restore", "recovery.round_end"):
        assert expected in kinds, f"missing trace kind {expected}"
    begin = next(r for r in obs.events if r.kind == "recovery.round_begin")
    end = next(r for r in obs.events if r.kind == "recovery.round_end")
    assert begin.fields["round"] == end.fields["round"] == 1
    assert begin.time <= end.time
    # events are stamped with the virtual clock, in nondecreasing order
    times = [r.time for r in obs.events]
    assert times == sorted(times)


def test_instrumentation_does_not_perturb_the_simulation():
    """Bit-reproducibility: an instrumented run and a bare run produce the
    same virtual timeline, message count and numerical results."""
    ref_world, ref_ctl = build_ft_world(6, factory, config())
    ref_world.launch()
    ref_world.run()

    obs = MetricsRegistry()
    world, _ctl = build_ft_world(6, factory, config(), obs=obs)
    world.launch()
    world.run()

    assert world.engine.now == ref_world.engine.now
    assert world.engine.events_dispatched == ref_world.engine.events_dispatched
    assert world.network.messages_sent == ref_world.network.messages_sent
    for rank in range(6):
        np.testing.assert_array_equal(
            ref_world.programs[rank].result(), world.programs[rank].result()
        )


def test_plain_world_accepts_registry():
    obs = MetricsRegistry()
    world = World(4, lambda r, s: Stencil2D(r, s, niters=10, block=2), obs=obs)
    world.launch()
    world.run()
    assert obs.get_counter_total("engine.events_dispatched") > 0
    # no protocol attached: no logging metrics
    names = {row["metric"] for row in metric_rows(obs)}
    assert "protocol.messages_logged" not in names


def test_logstore_channels_report():
    obs = MetricsRegistry()
    sender = SenderChannel(obs=obs)
    receiver = ReceiverChannel(obs=obs)
    m1, _ = sender.send(64, payload=b"a")
    receiver.deliver(m1)
    receiver.advance_epoch()
    m2, _ = sender.send(64, payload=b"b")
    ack = receiver.deliver(m2)
    assert ack is not None
    sender.on_explicit_ack(*ack)
    sender.on_piggyback(*receiver.piggyback())
    names = {row["metric"] for row in metric_rows(obs)}
    assert {"logstore.messages_logged", "logstore.log_bytes",
            "logstore.explicit_acks", "logstore.piggybacks_applied",
            "logstore.recv_explicit_acks"} <= names
    assert obs.get_counter_total("logstore.explicit_acks") == 1
    assert obs.get_counter_total("logstore.piggybacks_applied") == 1
