"""Flight recorder: ring-buffer semantics, snapshot/merge, protocol wiring,
and the zero-perturbation guarantee when disabled."""

import numpy as np

from repro.apps.stencil import Stencil2D
from repro.core import ProtocolConfig, build_ft_world
from repro.obs import (
    FlightKind,
    FlightRecorder,
    MetricsRegistry,
    NULL_FLIGHT,
    NullFlightRecorder,
    RECORD_FIELDS,
    record_to_dict,
)


def factory(rank, size):
    return Stencil2D(rank, size, niters=25, block=3)


def config():
    return ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=3e-6)


def run_instrumented(with_failure=True, **registry_kwargs):
    obs = MetricsRegistry(**registry_kwargs)
    world, controller = build_ft_world(6, factory, config(), obs=obs)
    if with_failure:
        controller.inject_failure(4e-5, 3)
        controller.arm()
    world.launch()
    world.run()
    return world, controller, obs


# ----------------------------------------------------------------------
# Unit: ring buffer + drop accounting
# ----------------------------------------------------------------------
def test_ring_buffer_drops_oldest_and_counts():
    fr = FlightRecorder(capacity=4)
    for i in range(10):
        fr.record(0, FlightKind.SEND, uid=i)
    recs = list(fr.records(rank=0))
    assert len(recs) == 4
    assert [r[4] for r in recs] == [6, 7, 8, 9]  # oldest dropped first
    assert fr.dropped[0] == 6
    assert fr.total_records == 4
    assert fr.total_dropped == 6


def test_records_filter_by_rank_and_kind_in_time_order():
    fr = FlightRecorder(capacity=16)
    times = iter([3.0, 1.0, 2.0])
    fr.bind_clock(lambda: next(times))
    fr.record(1, FlightKind.SEND, uid=10)
    fr.record(0, FlightKind.DELIVER, uid=10)
    fr.record(0, FlightKind.SEND, uid=11)
    assert [r[4] for r in fr.records(kind=FlightKind.SEND)] == [11, 10]
    assert [r[0] for r in fr.records()] == [1.0, 2.0, 3.0]  # global merge
    assert fr.ranks() == [0, 1]


def test_record_to_dict_layout():
    fr = FlightRecorder(capacity=4)
    fr.record(2, FlightKind.LOG, peer=5, uid=7, epoch_send=3, epoch_recv=4,
              phase=2, cause_uid=1, extra="x")
    d = record_to_dict(next(fr.records(rank=2)))
    assert set(d) == set(RECORD_FIELDS)
    assert (d["rank"], d["peer"], d["uid"]) == (2, 5, 7)
    assert (d["epoch_send"], d["epoch_recv"]) == (3, 4)
    # None extra is elided
    fr.record(2, FlightKind.ACK)
    d2 = record_to_dict(list(fr.records(rank=2))[-1])
    assert "extra" not in d2


# ----------------------------------------------------------------------
# Unit: snapshot / merge
# ----------------------------------------------------------------------
def test_snapshot_merge_roundtrip():
    a = FlightRecorder(capacity=8)
    a.record(0, FlightKind.SEND, uid=1)
    a.record(1, FlightKind.DELIVER, uid=1)
    b = FlightRecorder(capacity=8)
    b.merge(a.snapshot())
    assert list(b.records()) == list(a.records())
    assert b.dropped == a.dropped


def test_merge_accepts_string_rank_keys_and_counts_overflow():
    a = FlightRecorder(capacity=2)
    snap = {
        "capacity": 2,
        "dropped": {"0": 3},
        "records": {"0": [(0.0, "send", 0, 1, i, 0, 0, 0, 0, None)
                          for i in range(4)]},
    }
    a.merge(snap)
    assert a.dropped[0] == 3 + 2  # carried drops + 2 overflowed on merge
    assert [r[4] for r in a.records(rank=0)] == [2, 3]
    a.merge({})  # empty snapshot is a no-op
    assert a.total_records == 2


def test_null_flight_is_stateless():
    n1 = NullFlightRecorder()
    n1.record(0, FlightKind.SEND, uid=1)
    assert list(n1.records()) == []
    assert n1.total_records == 0 and n1.total_dropped == 0
    assert n1.snapshot() == {}
    assert not NULL_FLIGHT.enabled
    NULL_FLIGHT.record(5, FlightKind.FAILURE)
    assert NULL_FLIGHT.dropped == {}


# ----------------------------------------------------------------------
# Integration: protocol wiring
# ----------------------------------------------------------------------
def test_failure_run_records_every_lifecycle_kind():
    _world, controller, obs = run_instrumented()
    kinds = {rec[1] for rec in obs.flight.records()}
    expected = {
        FlightKind.SEND, FlightKind.DELIVER, FlightKind.ACK,
        FlightKind.CONFIRM, FlightKind.LOG, FlightKind.CHECKPOINT,
        FlightKind.EPOCH, FlightKind.FAILURE, FlightKind.SPE,
        FlightKind.RL_STEP, FlightKind.RL_FIXED, FlightKind.ROLLBACK,
        FlightKind.RESTORE, FlightKind.REPLAY, FlightKind.RUNNING,
        FlightKind.SUPPRESS,
    }
    assert expected <= kinds, f"missing kinds: {expected - kinds}"
    # rl records live on the coordinator pseudo-rank's lane
    coord = controller.recovery_rank
    assert any(rec[2] == coord for rec in obs.flight.records(kind=FlightKind.RL_FIXED))


def test_send_and_deliver_share_uid():
    _world, _controller, obs = run_instrumented(with_failure=False)
    sent = {rec[4] for rec in obs.flight.records(kind=FlightKind.SEND)}
    delivered = {rec[4] for rec in obs.flight.records(kind=FlightKind.DELIVER)}
    assert delivered  # something was delivered
    assert delivered <= sent  # every delivery traces back to a recorded send


def test_registry_snapshot_carries_flight_and_merge_restores_it():
    _world, _controller, obs = run_instrumented()
    snap = obs.snapshot()
    assert snap["flight"]["records"]
    other = MetricsRegistry()
    other.merge(snap)
    assert other.flight.total_records == obs.flight.total_records
    assert other.flight.dropped == obs.flight.dropped


def test_flight_capacity_zero_is_null_and_bit_identical():
    # flight disabled: same simulation results as a fully uninstrumented run
    obs = MetricsRegistry(flight_capacity=0)
    assert obs.flight is NULL_FLIGHT
    world, controller = build_ft_world(6, factory, config(), obs=obs)
    controller.inject_failure(4e-5, 3)
    controller.arm()
    world.launch()
    world.run()
    ref_world, ref_controller = build_ft_world(6, factory, config())
    ref_controller.inject_failure(4e-5, 3)
    ref_controller.arm()
    ref_world.launch()
    ref_world.run()
    for r in range(6):
        assert np.allclose(world.programs[r].result(),
                           ref_world.programs[r].result())
    assert (world.tracer.logical_send_sequences()
            == ref_world.tracer.logical_send_sequences())
    assert world.engine.now == ref_world.engine.now


def test_flight_enabled_does_not_perturb_results():
    world, _c, _obs = run_instrumented()
    ref_world, ref_c = build_ft_world(6, factory, config())
    ref_c.inject_failure(4e-5, 3)
    ref_c.arm()
    ref_world.launch()
    ref_world.run()
    for r in range(6):
        assert np.allclose(world.programs[r].result(),
                           ref_world.programs[r].result())
    assert world.engine.now == ref_world.engine.now
