"""Time-series recorder: grid sampling, ring accounting, snapshot/merge,
engine integration, and the central determinism contracts — arming the
recorder (or changing its interval) never perturbs protocol event order,
and merged series are byte-identical for any worker count."""

import json

import pytest

from repro.apps import Stencil2D
from repro.core import ProtocolConfig, build_ft_world
from repro.core.clustering import block_clusters
from repro.errors import SimulationError
from repro.obs import (
    DEFAULT_TIMESERIES_INTERVAL,
    MetricsRegistry,
    TimeSeriesRecorder,
    dump_flight,
    dump_metrics,
    dump_timeseries,
)
from repro.simmpi.engine import Engine
from repro.sweep import SweepTask, run_sweep


class FakeEngine:
    def __init__(self, now=0.0):
        self.now = now


# ----------------------------------------------------------------------
# Recorder unit behaviour
# ----------------------------------------------------------------------
def test_interval_must_be_positive():
    for bad in (0.0, -1e-6):
        with pytest.raises(SimulationError):
            TimeSeriesRecorder(bad)


def test_duplicate_series_name_raises():
    ts = TimeSeriesRecorder(1.0)
    ts.probe("x", lambda: 0.0)
    with pytest.raises(SimulationError):
        ts.probe("x", lambda: 1.0)
    with pytest.raises(SimulationError):
        ts.probe("y", lambda: 0.0, kind="rate")


def test_grid_sampling_and_counter_deltas():
    ts = TimeSeriesRecorder(1.0)
    state = {"v": 0.0}
    ts.probe("g", lambda: state["v"])
    ts.probe("c", lambda: state["v"] * 10, kind="counter")
    ts.bind_engine(FakeEngine())
    state["v"] = 1.0
    ts.sample_through(2.5)  # boundaries 1.0 and 2.0
    state["v"] = 4.0
    ts.sample_through(4.0)  # boundaries 3.0 and 4.0
    g, c = ts.series["g"], ts.series["c"]
    assert list(g.t) == [1.0, 2.0, 3.0, 4.0]
    assert list(g.v) == [1.0, 1.0, 4.0, 4.0]
    assert list(c.v) == [10.0, 10.0, 40.0, 40.0]
    assert list(c.d) == [10.0, 0.0, 30.0, 0.0]
    assert ts.samples_taken == 4
    assert g.dropped == 0


def test_ring_eviction_counts_drops():
    ts = TimeSeriesRecorder(1.0, capacity=3)
    ts.probe("g", lambda: 7.0)
    ts.bind_engine(FakeEngine())
    ts.sample_through(10.0)
    s = ts.series["g"]
    assert len(s.t) == 3 and s.appended == 10 and s.dropped == 7
    assert list(s.t) == [8.0, 9.0, 10.0]


def test_bind_engine_first_wins():
    ts = TimeSeriesRecorder(1.0)
    e1, e2 = FakeEngine(), FakeEngine()
    assert ts.bind_engine(e1) is True
    assert ts.bind_engine(e2) is False  # second world stays out
    assert ts.bind_engine(e1) is True  # idempotent for the owner
    assert ts.engine is e1


def test_snapshot_merge_roundtrip():
    def make(offset):
        ts = TimeSeriesRecorder(1.0)
        ts.probe("g", lambda: float(offset))
        ts.probe("c", lambda: float(offset), kind="counter")
        ts.bind_engine(FakeEngine())
        ts.sample_through(2.0)
        return ts

    sink = TimeSeriesRecorder(1.0, capacity=None)
    sink.merge(make(1).snapshot())
    sink.merge(make(2).snapshot())
    g = sink.series["g"]
    assert list(g.t) == [1.0, 2.0, 1.0, 2.0]  # concatenated, task order
    assert list(g.v) == [1.0, 1.0, 2.0, 2.0]
    assert list(sink.series["c"].d) == [1.0, 0.0, 2.0, 0.0]
    assert sink.samples_taken == 4


def test_merge_interval_mismatch_raises():
    a, b = TimeSeriesRecorder(1.0), TimeSeriesRecorder(2.0)
    a.probe("g", lambda: 0.0)
    a.bind_engine(FakeEngine())
    with pytest.raises(SimulationError):
        b.merge(a.snapshot())


def test_merge_kind_mismatch_raises():
    a = TimeSeriesRecorder(1.0)
    a.probe("x", lambda: 0.0)
    b = TimeSeriesRecorder(1.0)
    b.probe("x", lambda: 0.0, kind="counter")
    with pytest.raises(SimulationError):
        b.merge(a.snapshot())


def test_registry_merge_autocreates_unbounded_sink():
    worker = MetricsRegistry(timeseries_interval=1.0,
                             timeseries_capacity=2)
    worker.timeseries.probe("g", lambda: 1.0)
    worker.timeseries.bind_engine(FakeEngine())
    worker.timeseries.sample_through(5.0)
    parent = MetricsRegistry()  # no recorder until a snapshot arrives
    assert parent.timeseries is None
    parent.merge(worker.snapshot())
    parent.merge(worker.snapshot())
    sink = parent.timeseries
    assert sink is not None and sink.capacity is None
    # worker ring kept 2 points per snapshot; the sink keeps all of them
    assert len(sink.series["g"].t) == 4


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
def _count_engine(interval, *, run_slices=None, until=None):
    reg = MetricsRegistry(timeseries_interval=interval)
    engine = Engine(obs=reg)
    state = {"n": 0}

    def tick():
        state["n"] += 1
        if state["n"] < 12:
            engine.schedule_at(engine.now + 3e-6, tick)

    engine.schedule_at(3e-6, tick)
    if run_slices:
        for u in run_slices:
            engine.run(until=u)
    else:
        engine.run(until=until)
    return reg


def test_engine_samples_on_grid():
    reg = _count_engine(1e-5)
    ts = reg.timeseries
    disp = ts.series["engine.events_dispatched"]
    # events at 3,6,9..36 us; grid boundaries 10,20,30 us all crossed.
    # (The 10th event's accumulated float time lands a hair *below* the
    # multiplied 3e-5 grid point, so the third sample already sees it —
    # deterministic float semantics, identical on every run.)
    assert list(disp.t) == [k * 1e-5 for k in (1, 2, 3)]
    assert [int(v) for v in disp.v] == [3, 6, 10]
    assert "engine.pending" in ts.series


def test_run_slices_match_one_shot():
    # same horizon reached in one run() or four: identical samples (the
    # drained-queue branch keeps sampling through idle time to the horizon)
    one = _count_engine(1e-5, until=5e-5).timeseries.snapshot()
    sliced = _count_engine(
        1e-5, run_slices=[1.5e-5, 2e-5, 3.7e-5, 5e-5]
    ).timeseries.snapshot()
    assert one == sliced


def test_sampler_never_perturbs_protocol_order():
    """The boundary hook consumes no sequence numbers: the final registry
    of an instrumented run is byte-identical with the recorder on or off,
    and for any interval."""

    def run(interval):
        nprocs = 8
        config = ProtocolConfig(
            checkpoint_interval=3e-5,
            cluster_of=block_clusters(nprocs, 2),
            cluster_stagger=5e-6, rank_stagger=1e-6,
        )
        factory = lambda r, s: Stencil2D(r, s, niters=20, block=3)
        reg = MetricsRegistry(timeseries_interval=interval)
        world, controller = build_ft_world(nprocs, factory, config, obs=reg)
        controller.inject_failure(2e-4, nprocs - 1)
        controller.arm()
        world.launch()
        world.run()
        return reg

    def normalized_flight(reg):
        # message uids come from a process-global counter, so consecutive
        # worlds in one process see a constant offset; subtract it to
        # compare the streams structurally
        recs = [json.loads(line)
                for line in dump_flight(reg, "jsonl").splitlines()]
        uids = [r["uid"] for r in recs if r.get("uid", 0) > 0]
        off = min(uids) - 1 if uids else 0
        for r in recs:
            for key in ("uid", "cause_uid"):
                if r.get(key, 0) > 0:
                    r[key] -= off
        return recs

    baseline = run(None)
    on = run(DEFAULT_TIMESERIES_INTERVAL)
    coarse = run(7e-5)
    base_metrics = dump_metrics(baseline, "jsonl")
    base_flight = normalized_flight(baseline)
    for reg in (on, coarse):
        assert dump_metrics(reg, "jsonl") == base_metrics
        assert normalized_flight(reg) == base_flight
    # and the recorder did actually record something
    assert on.timeseries.samples_taken > 0
    held = on.timeseries.series["log.bytes_held"]
    assert max(held.v) > 0


# ----------------------------------------------------------------------
# Worker byte-identity (the --workers N contract)
# ----------------------------------------------------------------------
def _ts_task(params):
    """Module-level (picklable): tiny instrumented protocol run."""
    nprocs = 4
    config = ProtocolConfig(
        checkpoint_interval=3e-5,
        cluster_of=block_clusters(nprocs, 2),
        cluster_stagger=5e-6, rank_stagger=1e-6,
    )
    factory = lambda r, s: Stencil2D(r, s, niters=4 + params["n"], block=3)
    world, _ = build_ft_world(nprocs, factory, config, obs=params["obs"])
    world.launch()
    world.run()
    return {"n": params["n"]}


def test_workers_byte_identical_series():
    def run(workers):
        parent = MetricsRegistry()
        tasks = [SweepTask(name=f"t{i}", params={"n": i}) for i in range(4)]
        results = run_sweep(_ts_task, tasks, workers=workers,
                            obs=parent, collect_obs=True, timeseries=1e-5)
        assert all(r.ok for r in results)
        return dump_timeseries(parent, "jsonl")

    seq = run(1)
    par = run(4)
    assert seq == par
    rows = [json.loads(line) for line in seq.splitlines()]
    assert any(r["series"] == "network.in_flight" for r in rows)
