"""Recovery-line explainability: the explained line must equal the
solver's output exactly, and every rolled-back rank must be attributed to
a concrete non-logged message."""

import pytest

from repro.apps.stencil import Stencil2D
from repro.core import ProtocolConfig, build_ft_world
from repro.core.recovery import RecoveryLineSolver, compute_recovery_line
from repro.obs import (
    FlightKind,
    FlightRecorder,
    MetricsRegistry,
    explain_recovery_line,
    explain_report,
)


# ----------------------------------------------------------------------
# Synthetic fix-points
# ----------------------------------------------------------------------
def spe(entries):
    """epoch -> (start_date, {peer: recv_epoch})"""
    return {e: (d, dict(pp)) for e, (d, pp) in entries.items()}


def test_single_edge_chain():
    # rank 0 sent non-logged from epoch 1, received by rank 1 in epoch 2;
    # rank 1 fails back to epoch 2 -> rank 0 must restart at epoch 1.
    tables = {
        0: spe({1: (0, {1: 2}), 2: (10, {})}),
        1: spe({1: (0, {}), 2: (12, {})}),
    }
    failed = {1: 2}
    ex = explain_recovery_line(tables, failed)
    assert ex.recovery_line == compute_recovery_line(tables, failed)
    assert ex.recovery_line[0] == (1, 0)
    r0 = ex.ranks[0]
    assert not r0.failed
    assert r0.edge.receiver == 1 and r0.edge.epoch_send == 1
    assert r0.chain == (0, 1)
    r1 = ex.ranks[1]
    assert r1.failed and r1.edge is None


def test_transitive_chain_reaches_failed_rank():
    # 2 -> 1 -> 0(failed): each sender forced by the next receiver
    tables = {
        0: spe({1: (0, {}), 2: (10, {})}),
        1: spe({1: (0, {0: 1}), 2: (11, {})}),
        2: spe({1: (0, {1: 1}), 2: (12, {})}),
    }
    failed = {0: 1}
    ex = explain_recovery_line(tables, failed)
    assert set(ex.recovery_line) == {0, 1, 2}
    assert ex.ranks[2].chain[0] == 2
    assert ex.ranks[2].chain[-1] == 0  # terminates at the failed process
    assert ex.ranks[1].chain == (1, 0)


def test_uid_resolution_from_flight_confirms():
    tables = {
        0: spe({1: (0, {1: 2}), 2: (10, {})}),
        1: spe({1: (0, {}), 2: (12, {})}),
    }
    fr = FlightRecorder(capacity=16)
    # two confirms on the channel; only the epoch-matching one is a witness
    fr.record(0, FlightKind.CONFIRM, peer=1, uid=41, epoch_send=1, epoch_recv=1)
    fr.record(0, FlightKind.CONFIRM, peer=1, uid=42, epoch_send=1, epoch_recv=2)
    ex = explain_recovery_line(tables, {1: 2}, flight=fr)
    assert ex.ranks[0].edge.uid == 42
    # snapshot form resolves identically
    ex2 = explain_recovery_line(tables, {1: 2}, flight=fr.snapshot())
    assert ex2.ranks[0].edge.uid == 42


def test_no_flight_leaves_uid_unresolved():
    tables = {
        0: spe({1: (0, {1: 2}), 2: (10, {})}),
        1: spe({1: (0, {}), 2: (12, {})}),
    }
    ex = explain_recovery_line(tables, {1: 2})
    assert ex.ranks[0].edge.uid is None
    assert "uid=?" in ex.ranks[0].describe()


def test_format_mentions_every_rank():
    tables = {
        0: spe({1: (0, {1: 2}), 2: (10, {})}),
        1: spe({1: (0, {}), 2: (12, {})}),
    }
    text = explain_recovery_line(tables, {1: 2}).format()
    assert "rank 0" in text and "rank 1" in text
    assert "failed" in text and "non-logged message" in text


# ----------------------------------------------------------------------
# Integration: a real failure scenario
# ----------------------------------------------------------------------
def run_failure(nprocs=8):
    config = ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=3e-6)
    factory = lambda r, s: Stencil2D(r, s, niters=25, block=3)
    obs = MetricsRegistry()
    world, controller = build_ft_world(nprocs, factory, config, obs=obs)
    controller.inject_failure(4e-5, nprocs - 1)
    controller.arm()
    world.launch()
    world.run()
    return controller, obs


def test_explained_line_equals_solver_exactly():
    controller, obs = run_failure()
    report = controller.recovery_reports[0]
    ex = explain_report(report, flight=obs.flight)
    solver_line = RecoveryLineSolver(report.spe_tables).solve(
        report.failed_restarts
    )
    assert ex.recovery_line == solver_line == report.recovery_line


def test_every_rolled_back_rank_gets_concrete_message():
    controller, obs = run_failure()
    report = controller.recovery_reports[0]
    assert len(report.rolled_back) >= 2  # failure plus forced rollbacks
    ex = explain_report(report, flight=obs.flight)
    for rank in report.rolled_back:
        rexp = ex.ranks[rank]
        if rexp.failed:
            continue
        edge = rexp.edge
        assert edge is not None, f"rank {rank} unexplained"
        # a concrete non-logged message (uid, epoch_send, epoch_recv)
        assert edge.uid is not None and edge.uid > 0
        assert edge.epoch_send >= 1 and edge.epoch_recv >= edge.receiver_bound
        # the chain bottoms out at a failed process
        assert rexp.chain[-1] in report.failed_restarts


def test_explain_report_rejects_empty_tables():
    controller, obs = run_failure()
    report = controller.recovery_reports[0]
    report.spe_tables = {}
    with pytest.raises(ValueError):
        explain_report(report, flight=obs.flight)
