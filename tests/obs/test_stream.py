"""Live JSONL progress stream: event schema, sinks, and the campaign
integration (one ``task_done`` per trial between begin/end markers)."""

import io
import json

from repro.chaos import run_campaign
from repro.obs.stream import (
    STREAM_SCHEMA_VERSION,
    ProgressStream,
    snapshot_counter_totals,
    stream_progress,
)
from repro.sweep import SweepResult


def events_of(buf: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in buf.getvalue().splitlines()]


def test_emit_schema():
    buf = io.StringIO()
    stream = ProgressStream(buf)
    stream.emit("campaign_begin", campaign="x", tasks=3)
    stream.emit("task_done", index=0)
    evs = events_of(buf)
    assert [e["kind"] for e in evs] == ["campaign_begin", "task_done"]
    assert [e["seq"] for e in evs] == [1, 2]
    for e in evs:
        assert e["v"] == STREAM_SCHEMA_VERSION
        assert e["elapsed_s"] >= 0
        # keys are sorted so the stream is diff-friendly
        assert list(json.loads(json.dumps(e)).keys()) == sorted(e.keys())


def test_open_stderr_and_file(tmp_path, capsys):
    err = ProgressStream.open("-")
    err.emit("task_done", index=1)
    err.close()  # must not close sys.stderr
    assert json.loads(capsys.readouterr().err)["index"] == 1

    path = tmp_path / "stream.jsonl"
    with ProgressStream.open(str(path)) as fs:
        fs.emit("task_done", index=2)
    assert json.loads(path.read_text())["index"] == 2


def test_stream_progress_fields():
    buf = io.StringIO()
    stream = ProgressStream(buf)
    seen = []
    cb = stream_progress(stream, total=2, inner=seen.append)
    ok = SweepResult(index=0, name="a", status="ok", duration=0.25,
                     value={"passed": True})
    bad = SweepResult(index=1, name="b", status="error", error="boom",
                      duration=0.5)
    cb(ok)
    cb(bad)
    evs = events_of(buf)
    assert evs[0]["status"] == "ok" and evs[0]["passed"] is True
    assert evs[0]["done"] == 1 and evs[0]["total"] == 2
    assert evs[0]["duration_s"] == 0.25
    assert evs[1]["status"] == "error" and evs[1]["error"] == "boom"
    assert evs[1]["done"] == 2
    assert seen == [ok, bad]  # inner callback still chained


def test_snapshot_counter_totals():
    snap = {"instruments": {
        "network.messages_delivered": {
            "type": "counter", "values": [((0,), 3.0), ((1,), 4.0)]},
        "some.gauge": {"type": "gauge", "values": []},
    }}
    assert snapshot_counter_totals(snap) == {
        "network.messages_delivered": 7.0}
    assert snapshot_counter_totals(None) == {}


def test_chaos_campaign_streams_events():
    buf = io.StringIO()
    report = run_campaign(3, seed=7, stream=ProgressStream(buf))
    evs = events_of(buf)
    kinds = [e["kind"] for e in evs]
    assert kinds[0] == "campaign_begin" and kinds[-1] == "campaign_end"
    dones = [e for e in evs if e["kind"] == "task_done"]
    assert len(dones) == 3
    assert sorted(e["index"] for e in dones) == [0, 1, 2]
    assert all("passed" in e for e in dones)
    end = evs[-1]
    assert end["ok"] == report.ok
    assert end["passed"] == report.passed
