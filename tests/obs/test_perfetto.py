"""Perfetto/Chrome trace-event export: schema validity, one lane per
rank, and flow pairing by message uid."""

import json

from repro.apps.stencil import Stencil2D
from repro.core import ProtocolConfig, build_ft_world
from repro.obs import MetricsRegistry, dump_perfetto, perfetto_trace

NPROCS = 6


def run_failure():
    config = ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=3e-6)
    factory = lambda r, s: Stencil2D(r, s, niters=25, block=3)
    obs = MetricsRegistry()
    world, controller = build_ft_world(NPROCS, factory, config, obs=obs)
    controller.inject_failure(4e-5, 3)
    controller.arm()
    world.launch()
    world.run()
    return controller, obs


def test_schema_valid_chrome_trace_events():
    _controller, obs = run_failure()
    trace = perfetto_trace(obs, nprocs=NPROCS)
    events = trace["traceEvents"]
    assert events
    for e in events:
        assert e["ph"] in {"X", "i", "s", "f"}
        assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
        assert e["pid"] == e["tid"]  # one lane per rank
        assert e["ts"] >= 0
        assert e["name"]
        if e["ph"] == "X":
            assert e["dur"] >= 0
        if e["ph"] == "i":
            assert e["s"] == "t"
        if e["ph"] in {"s", "f"}:
            assert e["id"] > 0
    # timestamps are sorted (stable rendering in viewers)
    ts = [e["ts"] for e in events]
    assert ts == sorted(ts)


def test_lanes_and_spans_per_rank():
    controller, obs = run_failure()
    events = perfetto_trace(obs, nprocs=NPROCS)["traceEvents"]
    lanes = {e["pid"] for e in events}
    assert set(range(NPROCS)) <= lanes  # every rank has a lane
    spans = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in spans} == {"compute", "recovery"}
    # rolled-back ranks show a recovery span
    rolled = set(controller.recovery_reports[0].rolled_back)
    recovery_lanes = {e["pid"] for e in spans if e["name"] == "recovery"}
    assert rolled <= recovery_lanes
    instants = {e["name"] for e in events if e["ph"] == "i"}
    assert "checkpoint" in instants and "failure" in instants


def test_flow_events_paired_by_uid():
    _controller, obs = run_failure()
    events = perfetto_trace(obs)["traceEvents"]
    starts = {e["id"]: e for e in events if e["ph"] == "s"}
    finishes = {e["id"]: e for e in events if e["ph"] == "f"}
    assert starts
    assert set(starts) == set(finishes)  # every arrow has both ends
    for uid, s in starts.items():
        f = finishes[uid]
        assert f["ts"] >= s["ts"]  # delivery never precedes the send
        assert f.get("bp") == "e"


def test_dump_perfetto_writes_loadable_json(tmp_path):
    _controller, obs = run_failure()
    out = tmp_path / "run.trace.json"
    n = dump_perfetto(obs, str(out), nprocs=NPROCS)
    doc = json.loads(out.read_text())
    assert len(doc["traceEvents"]) == n > 0


def test_exporter_accepts_snapshot_and_empty_sources():
    _controller, obs = run_failure()
    from_reg = perfetto_trace(obs)["traceEvents"]
    from_snap = perfetto_trace(obs.flight.snapshot())["traceEvents"]
    assert len(from_reg) == len(from_snap)
    assert perfetto_trace(MetricsRegistry())["traceEvents"] == []
