"""Exporter tests: flat row schema, JSON-lines and CSV round-trips."""

import csv
import io
import json

from repro.obs import (
    MetricsRegistry,
    dump_events,
    dump_metrics,
    event_rows,
    metric_rows,
    to_csv,
    to_jsonl,
)


def populated_registry():
    reg = MetricsRegistry(clock=lambda: 1.5)
    reg.counter("c.plain").inc(2)
    reg.counter("c.labelled", ("src", "dst")).inc(labels=(0, 1))
    reg.gauge("g").set(7)
    reg.histogram("h", (1.0, 2.0)).observe(1.5)
    reg.event("checkpoint", rank=0, epoch=3)
    return reg


def test_metric_rows_schema():
    rows = metric_rows(populated_registry())
    by_name = {}
    for row in rows:
        by_name.setdefault(row["metric"], []).append(row)
    assert by_name["c.plain"][0]["value"] == 2.0
    assert by_name["c.labelled"][0]["labels"] == {"src": 0, "dst": 1}
    assert by_name["g"][0]["high_water"] == 7
    hist = by_name["h"][0]
    assert hist["count"] == 1
    assert hist["bucket_counts"] == [0, 1, 0]
    # rows come out sorted by metric name
    assert [r["metric"] for r in rows] == sorted(r["metric"] for r in rows)


def test_registered_but_unused_counter_still_exported():
    reg = MetricsRegistry()
    reg.counter("touched.never")
    rows = metric_rows(reg)
    assert rows == [{"metric": "touched.never", "type": "counter",
                     "labels": {}, "value": 0.0}]


def test_jsonl_round_trip():
    text = dump_metrics(populated_registry(), "jsonl")
    parsed = [json.loads(line) for line in text.splitlines()]
    assert len(parsed) == 4
    assert all("metric" in row and "type" in row for row in parsed)


def test_csv_has_union_header_and_parses():
    text = dump_metrics(populated_registry(), "csv")
    rows = list(csv.DictReader(io.StringIO(text)))
    assert len(rows) == 4
    hist = next(r for r in rows if r["metric"] == "h")
    # list cells are JSON-encoded in place
    assert json.loads(hist["bucket_counts"]) == [0, 1, 0]
    labelled = next(r for r in rows if r["metric"] == "c.labelled")
    assert json.loads(labelled["labels"]) == {"src": 0, "dst": 1}


def test_event_rows_and_dump():
    reg = populated_registry()
    rows = event_rows(reg)
    assert rows == [{"time": 1.5, "kind": "checkpoint", "rank": 0, "epoch": 3}]
    parsed = json.loads(dump_events(reg, "jsonl").strip())
    assert parsed["kind"] == "checkpoint"
    csv_text = dump_events(reg, "csv")
    assert "kind" in csv_text.splitlines()[0]


def test_empty_exports():
    reg = MetricsRegistry()
    assert to_jsonl([]) == ""
    assert to_csv([]) == ""
    assert dump_metrics(reg) == ""
    assert dump_events(reg) == ""
