"""Exporter tests: flat row schema, JSON-lines and CSV round-trips."""

import csv
import io
import json

from repro.obs import (
    MetricsRegistry,
    dump_events,
    dump_metrics,
    event_rows,
    metric_rows,
    to_csv,
    to_jsonl,
)


def populated_registry():
    reg = MetricsRegistry(clock=lambda: 1.5)
    reg.counter("c.plain").inc(2)
    reg.counter("c.labelled", ("src", "dst")).inc(labels=(0, 1))
    reg.gauge("g").set(7)
    reg.histogram("h", (1.0, 2.0)).observe(1.5)
    reg.event("checkpoint", rank=0, epoch=3)
    return reg


def test_metric_rows_schema():
    rows = metric_rows(populated_registry())
    by_name = {}
    for row in rows:
        by_name.setdefault(row["metric"], []).append(row)
    assert by_name["c.plain"][0]["value"] == 2.0
    assert by_name["c.labelled"][0]["labels"] == {"src": 0, "dst": 1}
    assert by_name["g"][0]["high_water"] == 7
    hist = by_name["h"][0]
    assert hist["count"] == 1
    assert hist["bucket_counts"] == [0, 1, 0]
    # rows come out sorted by metric name
    assert [r["metric"] for r in rows] == sorted(r["metric"] for r in rows)


def test_registered_but_unused_counter_still_exported():
    reg = MetricsRegistry()
    reg.counter("touched.never")
    rows = metric_rows(reg)
    assert rows == [{"metric": "touched.never", "type": "counter",
                     "labels": {}, "value": 0.0}]


def test_jsonl_round_trip():
    text = dump_metrics(populated_registry(), "jsonl")
    parsed = [json.loads(line) for line in text.splitlines()]
    assert len(parsed) == 4
    assert all("metric" in row and "type" in row for row in parsed)


def test_csv_has_union_header_and_parses():
    text = dump_metrics(populated_registry(), "csv")
    rows = list(csv.DictReader(io.StringIO(text)))
    assert len(rows) == 4
    hist = next(r for r in rows if r["metric"] == "h")
    # list cells are JSON-encoded in place
    assert json.loads(hist["bucket_counts"]) == [0, 1, 0]
    labelled = next(r for r in rows if r["metric"] == "c.labelled")
    assert json.loads(labelled["labels"]) == {"src": 0, "dst": 1}


def test_event_rows_and_dump():
    reg = populated_registry()
    rows = event_rows(reg)
    assert rows == [{"time": 1.5, "kind": "checkpoint", "rank": 0, "epoch": 3}]
    parsed = json.loads(dump_events(reg, "jsonl").strip())
    assert parsed["kind"] == "checkpoint"
    csv_text = dump_events(reg, "csv")
    assert "kind" in csv_text.splitlines()[0]


def test_empty_exports():
    reg = MetricsRegistry()
    assert to_jsonl([]) == ""
    assert to_csv([]) == ""
    assert dump_metrics(reg) == ""
    assert dump_events(reg) == ""


# ----------------------------------------------------------------------
# Quantile estimates (PR 8)
# ----------------------------------------------------------------------
def test_histogram_quantiles_known_distribution():
    from repro.obs import histogram_quantile

    reg = MetricsRegistry(hist_sample=1)  # record every observation
    h = reg.histogram("lat", (10.0, 20.0, 30.0))
    for v in range(1, 101):  # 1..100, uniform across 0-100
        h.observe(float(v))
    p50 = histogram_quantile(h, 0.50)
    p95 = histogram_quantile(h, 0.95)
    p99 = histogram_quantile(h, 0.99)
    # everything past the last bound lands in the overflow bucket
    # [30, max]; interpolation keeps the order statistics monotone and
    # inside the observed range
    assert p50 is not None and 30.0 <= p50 <= 100.0
    assert p95 is not None and p50 <= p95 <= 100.0
    assert p99 is not None and p95 <= p99 <= 100.0

    tight = reg.histogram("tight", tuple(float(b) for b in range(0, 110, 10)))
    for v in range(1, 101):
        tight.observe(float(v))
    assert abs(histogram_quantile(tight, 0.50) - 50.0) <= 10.0
    assert abs(histogram_quantile(tight, 0.95) - 95.0) <= 10.0


def test_histogram_quantile_empty_and_single():
    from repro.obs import histogram_quantile

    reg = MetricsRegistry(hist_sample=1)
    empty = reg.histogram("empty", (1.0,))
    assert histogram_quantile(empty, 0.5) is None
    single = reg.histogram("single", (10.0,))
    single.observe(4.0)
    # one observation: every quantile is that observation
    assert histogram_quantile(single, 0.5) == 4.0
    assert histogram_quantile(single, 0.99) == 4.0


def test_metric_rows_carry_quantile_columns():
    rows = metric_rows(populated_registry())
    hist = next(r for r in rows if r["type"] == "histogram")
    for key in ("p50", "p95", "p99"):
        assert key in hist
        assert hist[key] is not None


# ----------------------------------------------------------------------
# CSV label-column order (PR 8 regression: sort by label value, not
# insertion order, so merge order can't reshuffle rows)
# ----------------------------------------------------------------------
def test_labelled_rows_sorted_numerically():
    reg = MetricsRegistry()
    c = reg.counter("c", ("rank",))
    for rank in (10, 2, 1):  # insertion order descending-ish
        c.inc(labels=(rank,))
    rows = [r for r in metric_rows(reg) if r["metric"] == "c"]
    assert [r["labels"]["rank"] for r in rows] == [1, 2, 10]


def test_csv_rows_invariant_under_merge_order():
    def make(ranks):
        reg = MetricsRegistry()
        c = reg.counter("m", ("rank",))
        for rank in ranks:
            c.inc(labels=(rank,))
        return reg

    a = MetricsRegistry()
    a.merge(make([3, 1]).snapshot())
    a.merge(make([2]).snapshot())
    b = MetricsRegistry()
    b.merge(make([2]).snapshot())
    b.merge(make([3, 1]).snapshot())
    assert dump_metrics(a, "csv") == dump_metrics(b, "csv")
    assert dump_metrics(a, "jsonl") == dump_metrics(b, "jsonl")


def test_mixed_label_types_sort_stably():
    reg = MetricsRegistry()
    c = reg.counter("mix", ("k",))
    for k in ("b", 2, "a", 10, 1):
        c.inc(labels=(k,))
    rows = [r["labels"]["k"] for r in metric_rows(reg) if r["metric"] == "mix"]
    # numbers first (numeric order), then strings (lexicographic)
    assert rows == [1, 2, 10, "a", "b"]


# ----------------------------------------------------------------------
# Text view and time-series rows (PR 8)
# ----------------------------------------------------------------------
def test_dump_text_summary():
    from repro.obs import dump_text

    text = dump_text(populated_registry())
    assert "c.plain" in text and "= 2" in text
    assert "p50=" in text and "p95=" in text and "p99=" in text
    assert "1-in-" in text  # sampling caveat is stated, not implied


def test_timeseries_rows_and_dump():
    from repro.obs import MetricsRegistry, dump_timeseries, timeseries_rows

    class FakeEngine:
        now = 0.0

    reg = MetricsRegistry(timeseries_interval=1.0)
    ts = reg.timeseries
    ts.probe("g", lambda: 5.0)
    ts.probe("c", lambda: 2.0, kind="counter")
    ts.bind_engine(FakeEngine())
    ts.sample_through(2.0)
    rows = timeseries_rows(reg)
    assert [r["series"] for r in rows] == ["g", "c"]
    g = rows[0]
    assert g["kind"] == "gauge" and g["t"] == [1.0, 2.0]
    assert "d" in rows[1] and rows[1]["d"] == [2.0, 0.0]
    lines = dump_timeseries(reg, "jsonl").splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0])["series"] == "g"
    # no recorder -> empty dump
    assert dump_timeseries(MetricsRegistry(), "jsonl") == ""
