"""HTML dashboard: chart generation, self-containment, and the section
renderers for sweep/chaos/benchmark documents."""

from repro.obs import MetricsRegistry, render_report, timeseries_rows, write_report
from repro.obs.report import svg_bar_chart, svg_line_chart


def _instrumented_rows():
    """Time-series rows from a real (tiny) instrumented failure run."""
    from repro.apps import Stencil2D
    from repro.core import ProtocolConfig, build_ft_world
    from repro.core.clustering import block_clusters

    nprocs = 4
    config = ProtocolConfig(
        checkpoint_interval=3e-5,
        cluster_of=block_clusters(nprocs, 2),
        cluster_stagger=5e-6, rank_stagger=1e-6,
    )
    factory = lambda r, s: Stencil2D(r, s, niters=20, block=3)
    reg = MetricsRegistry(timeseries_interval=1e-5)
    world, controller = build_ft_world(nprocs, factory, config, obs=reg)
    controller.inject_failure(2e-4, nprocs - 1)
    controller.arm()
    world.launch()
    world.run()
    return timeseries_rows(reg)


SWEEP_DOC = {
    "sweep": "failures", "tasks": 2, "ok": 1, "errors": 1,
    "results": [
        {"index": 0, "name": "a", "status": "ok", "duration_s": 0.5,
         "value": {"valid": True}},
        {"index": 1, "name": "b", "status": "error", "duration_s": 0.1,
         "error": "RuntimeError: boom"},
    ],
}

CHAOS_DOC = {
    "seed": 3, "trials": 5, "workers": 1, "passed": 4, "failed": 1,
    "errors": 0, "ok": False,
    "oracle_failures": {"validity": 1},
    "failure_index": [{"index": 2, "seed": 9, "oracles": ["validity"]}],
    "failures": [], "shrunk": [],
}

BENCH = {
    "BENCH_throughput": {"engine_events_per_s": 1.5e6,
                         "instrumentation_null_factor": 1.01},
    "BENCH_scale": {"sizes": {
        "256": {"events_per_s": 1e6, "wall_s": 1.0},
        "1024": {"events_per_s": 9e5, "wall_s": 5.0},
        "4096": {"events_per_s": 8e5, "wall_s": 22.0},
    }},
}


def test_report_has_at_least_four_series_charts():
    html, n_charts = render_report(timeseries=_instrumented_rows())
    assert n_charts >= 4
    assert html.count("<svg") >= 4
    for name in ("In-flight", "Logged bytes", "Non-acked", "Recovery-line"):
        assert name in html


def test_report_is_self_contained():
    html, _ = render_report(
        timeseries=_instrumented_rows(), sweep=SWEEP_DOC,
        chaos=CHAOS_DOC, bench=BENCH,
    )
    # a single HTML file: no external scripts, stylesheets or resources
    # (the SVG xmlns URL is declarative, not a fetch)
    for needle in ("<script src=", "<link ", "@import", "url(",
                   "fetch(", "XMLHttpRequest"):
        assert needle not in html
    assert html.startswith("<!DOCTYPE html>")


def test_report_sections():
    html, _ = render_report(
        timeseries=_instrumented_rows(), sweep=SWEEP_DOC,
        chaos=CHAOS_DOC, bench=BENCH, title="t", subtitle="s",
    )
    assert "Sweep" in html and "Chaos campaign" in html
    assert "Benchmarks" in html
    assert "RuntimeError: boom" not in html  # error text stays in the JSON
    assert "validity" in html  # oracle failure named
    assert "Throughput vs scale" in html


def test_report_empty_inputs():
    html, n_charts = render_report()
    assert n_charts == 0
    assert "nothing to render" in html


def test_write_report(tmp_path):
    path = tmp_path / "dash.html"
    html, _ = render_report(timeseries=_instrumented_rows())
    write_report(str(path), html)
    assert path.read_text(encoding="utf-8") == html


def test_line_chart_handles_empty_and_restarts():
    empty = svg_line_chart("c0", "Empty", [], [])
    assert "no data" in empty
    # merged multi-task series restart the x axis; the polyline must split
    x = [1.0, 2.0, 3.0, 1.0, 2.0, 3.0]
    chart = svg_line_chart(
        "c1", "Restarts", x,
        [{"name": "s", "y": [1, 2, 3, 4, 5, 6], "slot": 1}],
        y_label="v",
    )
    assert chart.count("<polyline") >= 2


def test_bar_chart_escapes_labels():
    chart = svg_bar_chart(
        "b1", "Bars", [("<script>", 2.0, None), ("ok", 1.0, "critical")],
        value_fmt=lambda v: f"{v:.0f}",
    )
    assert "<script>" not in chart
    assert "&lt;script&gt;" in chart
