"""Delta-debugging shrinker: minimization power and reproducer emission."""

import dataclasses

import pytest

from repro.chaos.schedule import generate_schedule
from repro.chaos.shrink import reproducer_source, shrink_schedule
from repro.chaos.trial import run_trial_schedule


def _seeded_bug_schedule(bug="ack_drop"):
    """A generated schedule that fails under a reintroduced ack-drop bug."""
    for seed in range(8):
        sched = dataclasses.replace(generate_schedule(seed), bug=bug)
        result = run_trial_schedule(sched)
        if not result.passed:
            return sched, result
    raise AssertionError(f"no failing seed found for {bug!r}")


def test_shrinker_reduces_synthetic_bug_to_two_events_or_fewer():
    """The acceptance bar: a seeded synthetic-bug trial shrinks to a
    minimal reproducer of at most 2 failure events."""
    sched, result = _seeded_bug_schedule("ack_drop")
    shrunk = shrink_schedule(sched, result=result)
    assert len(shrunk.minimized.failures) <= 2
    assert len(shrunk.minimized.failures) <= len(sched.failures)
    assert shrunk.failing_oracles  # still failing after minimization
    assert shrunk.trials > 0
    # the minimized schedule independently reproduces the failure
    final = run_trial_schedule(shrunk.minimized)
    assert not final.passed


def test_shrinker_neutralizes_irrelevant_axes():
    sched, result = _seeded_bug_schedule("ack_drop")
    shrunk = shrink_schedule(sched, result=result)
    m = shrunk.minimized
    # the ack-drop defect needs none of these axes; the shrinker must
    # have knocked them back to neutral
    assert m.clusters == 1
    assert m.ack_batch == 1
    assert m.gc_frac == 0.0
    # history records each accepted reduction
    assert shrunk.history


def test_reproducer_is_runnable_pytest_and_fails_while_bug_exists():
    sched, result = _seeded_bug_schedule("ack_drop")
    shrunk = shrink_schedule(sched, result=result)
    source = shrunk.reproducer
    namespace: dict = {}
    exec(compile(source, "<reproducer>", "exec"), namespace)  # noqa: S102
    assert "test_chaos_reproducer" in namespace
    with pytest.raises(AssertionError, match="oracles failed"):
        namespace["test_chaos_reproducer"]()


def test_reproducer_source_pins_schedule_exactly():
    from repro.chaos.schedule import schedule_from_json

    sched = generate_schedule(4)
    source = reproducer_source(sched, ("validity",))
    namespace: dict = {}
    exec(compile(source, "<reproducer>", "exec"), namespace)  # noqa: S102
    assert schedule_from_json(namespace["SCHEDULE"]) == sched


def test_shrink_refuses_passing_schedule():
    sched = generate_schedule(11)
    result = run_trial_schedule(sched)
    assert result.passed
    with pytest.raises(ValueError, match="nothing to shrink"):
        shrink_schedule(sched, result=result)
