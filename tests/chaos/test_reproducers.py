"""Minimized chaos reproducers, landed as permanent regression tests.

Each schedule below is the shrunk form of a corner the chaos campaign
drives: a second failure arriving during the post-failure network drain,
a re-kill of a rank that just finished restoring, and two failures queued
back-to-back behind an in-flight recovery round.  They pin today's
correct behavior — all five oracles must keep passing — and double as
documentation of the exact virtual-time geometry of each corner.
"""

from repro.chaos.schedule import FailureSpec, TrialSchedule
from repro.chaos.trial import run_trial_schedule


def _assert_all_oracles(result):
    assert result.passed, {
        name: result.detail(name) for name in result.failed_oracles()
    }


def test_failure_during_network_drain():
    """A second rank dies ~1 us after the first — inside the drain the
    recovery round runs before restoring (in-flight traffic purge)."""
    sched = TrialSchedule(
        seed=1, kernel="stencil", nprocs=4, niters=20,
        failures=(
            FailureSpec(1, "at", frac=0.5),
            FailureSpec(2, "drain", delta=1.0e-6),
        ),
    )
    result = run_trial_schedule(sched)
    _assert_all_oracles(result)
    # the drain-window failure must not merge into the first round
    assert result.stats["recovery_rounds"] == 2
    assert result.stats["failures_fired"] == 2


def test_failure_of_just_restored_rank():
    """The rank that just came back from its checkpoint dies again right
    after resuming — its second restore must start from the re-uploaded
    SPE state, not the stale pre-round table."""
    sched = TrialSchedule(
        seed=2, kernel="stencil", nprocs=4, niters=20,
        failures=(
            FailureSpec(1, "at", frac=0.5),
            FailureSpec(1, "restored", delta=1.2e-4),
        ),
    )
    result = run_trial_schedule(sched)
    _assert_all_oracles(result)
    assert result.stats["recovery_rounds"] == 2
    # both kills hit rank 1
    assert [r for r, _t in result.stats["fired"]] == [1, 1]


def test_two_back_to_back_queued_rounds():
    """Two more failures land while round 1 is still in flight; both are
    queued and must drain as separate rounds after settle — not merge,
    not strand (the all-dead-batch loop in ``_poll_settled``)."""
    sched = TrialSchedule(
        seed=3, kernel="stencil2d", nprocs=4, niters=16,
        failures=(
            FailureSpec(0, "at", frac=0.45),
            FailureSpec(2, "recovery", delta=2.0e-5),
            FailureSpec(3, "recovery", delta=1.5e-5),
        ),
    )
    result = run_trial_schedule(sched)
    _assert_all_oracles(result)
    assert result.stats["recovery_rounds"] == 3
    assert result.stats["failures_fired"] == 3
