"""Campaign orchestration: determinism across worker counts, reporting,
obs counters, replay by (campaign seed, index)."""

import json

from repro.chaos.campaign import (
    replay_trial,
    run_campaign,
    schedule_for_trial,
)
from repro.obs import MetricsRegistry


def _verdicts(report):
    return (report.passed, report.failed, report.errors,
            tuple(tuple(e["oracles"]) for e in report.failure_index))


def test_campaign_verdicts_identical_inline_and_pooled():
    inline = run_campaign(8, seed=42, workers=1, shrink=0)
    pooled = run_campaign(8, seed=42, workers=3, shrink=0)
    assert _verdicts(inline) == _verdicts(pooled)


def test_clean_campaign_passes_and_counts_oracles():
    obs = MetricsRegistry()
    report = run_campaign(10, seed=0, workers=1, shrink=0, obs=obs)
    assert report.ok, report.summary()
    assert report.passed == 10
    counter = obs.counter("chaos.oracle", ("name", "passed"))
    for oracle in ("settles", "validity", "sanitize", "determinism"):
        assert counter.get((oracle, True)) == 10
        assert counter.get((oracle, False)) == 0
    assert obs.counter("chaos.trials", ("outcome",)).get(("pass",)) == 10


def test_buggy_campaign_fails_shrinks_and_reports(tmp_path):
    report = run_campaign(6, seed=0, workers=1, bug="log_drop",
                          shrink=1, shrink_trials=60,
                          check_determinism=False)
    assert not report.ok
    assert report.failed >= 1
    assert report.oracle_failures  # per-oracle tallies populated
    assert report.failure_index[0]["oracles"]
    assert len(report.shrunk) == 1
    shrunk = report.shrunk[0]
    assert "minimized" in shrunk
    assert "def test_chaos_reproducer" in shrunk["reproducer"]
    # report serializes cleanly for CI artifacts
    out = tmp_path / "campaign.json"
    report.save(str(out))
    loaded = json.loads(out.read_text())
    assert loaded["failed"] == report.failed
    assert loaded["shrunk"][0]["index"] == shrunk["index"]


def test_replay_trial_matches_campaign_schedule():
    # the schedule a campaign ran at index i is reconstructible from the
    # two integers quoted in its report
    sched = schedule_for_trial(0, 3)
    verdict = replay_trial(0, 3)
    assert verdict["schedule"] == sched.to_json()
    assert verdict["passed"]
