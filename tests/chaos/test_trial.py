"""Trial execution and the five oracles."""

import pytest

from repro.chaos.oracles import ORACLES
from repro.chaos.schedule import FailureSpec, TrialSchedule, generate_schedule
from repro.chaos.trial import SYNTHETIC_BUGS, run_trial, run_trial_schedule


def test_clean_trial_passes_all_four_oracles():
    sched = TrialSchedule(
        seed=11, kernel="stencil", nprocs=4, niters=18,
        failures=(FailureSpec(1, "at", frac=0.5),),
    )
    result = run_trial_schedule(sched)
    assert result.passed, result.failed_oracles()
    assert set(result.oracles) == set(ORACLES)
    assert result.stats["failures_fired"] == 1
    assert result.stats["recovery_rounds"] == 1
    assert result.flight_jsonl is None  # only attached on failure


def test_no_failure_schedule_is_a_smoke_run():
    result = run_trial_schedule(
        TrialSchedule(seed=1, kernel="reduce", nprocs=4, niters=10))
    assert result.passed
    assert result.stats["recovery_rounds"] == 0


@pytest.mark.parametrize("bug", sorted(SYNTHETIC_BUGS))
def test_synthetic_bugs_break_an_oracle(bug):
    """Each planted defect must be caught — the harness's self-test."""
    import dataclasses

    caught = False
    for seed in range(6):
        sched = dataclasses.replace(generate_schedule(seed), bug=bug)
        if not run_trial_schedule(sched).passed:
            caught = True
            break
    assert caught, f"synthetic bug {bug!r} survived 6 seeds undetected"


def test_after_sends_resolved_modulo_actual_send_count():
    # 10**6 sends never happen; the trial wraps it into range and fires
    sched = TrialSchedule(
        seed=5, kernel="stencil", nprocs=4, niters=16,
        failures=(FailureSpec(2, "after_sends", nsends=10**6),),
    )
    result = run_trial_schedule(sched)
    assert result.passed, result.failed_oracles()
    assert result.stats["failures_fired"] == 1
    placement = result.stats["placements"][0]
    assert placement["kind"] == "after_sends"
    assert placement["nsends"] >= 1


def test_timing_result_kernel_passes_validity():
    # ping-pong reports virtual-time latencies, which legitimately change
    # once recovery stretches the clock; the oracle must still hold its
    # send sequences to Definition 1 without tripping on the timings
    sched = TrialSchedule(
        seed=9, kernel="pingpong", nprocs=2, niters=24,
        failures=(FailureSpec(0, "at", frac=0.4),),
    )
    result = run_trial_schedule(sched)
    assert result.passed, {n: result.detail(n)
                           for n in result.failed_oracles()}


def test_run_trial_entry_point_returns_plain_json():
    out = run_trial({"seed": 17, "check_determinism": False})
    assert isinstance(out, dict)
    assert set(out["oracles"]) >= {"settles", "validity"}
    assert out["schedule"] == generate_schedule(17).to_json()


def test_failing_trial_attaches_flight_dump_with_obs():
    import dataclasses

    from repro.obs import MetricsRegistry

    sched = None
    for seed in range(6):
        cand = dataclasses.replace(generate_schedule(seed), bug="log_drop")
        if not run_trial_schedule(cand, check_determinism=False).passed:
            sched = cand
            break
    assert sched is not None
    result = run_trial_schedule(sched, obs=MetricsRegistry(),
                                check_determinism=False)
    assert not result.passed
    assert result.flight_jsonl  # flight-recorder evidence rides along
