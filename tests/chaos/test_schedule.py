"""Schedule generation: determinism, JSON round-trips, constraint axes."""

import pytest

from repro.chaos.schedule import (
    KERNELS,
    PLACEMENT_KINDS,
    FailureSpec,
    TrialSchedule,
    generate_schedule,
    schedule_from_json,
    with_failures,
)
from repro.errors import ConfigError


def test_same_seed_same_schedule():
    for seed in (0, 7, 123456789, 2**62 + 5):
        assert generate_schedule(seed) == generate_schedule(seed)


def test_different_seeds_differ_somewhere():
    schedules = {repr(generate_schedule(s).to_json()) for s in range(40)}
    assert len(schedules) > 30  # near-total diversity at small seed counts


def test_json_roundtrip_exact():
    for seed in range(25):
        sched = generate_schedule(seed)
        assert schedule_from_json(sched.to_json()) == sched


def test_generated_schedules_satisfy_invariants():
    for seed in range(60):
        sched = generate_schedule(seed)
        sched.validate()  # must not raise
        assert sched.nprocs in KERNELS[sched.kernel].nprocs_choices
        assert sched.nprocs % sched.clusters == 0
        assert 1 <= len(sched.failures) <= 4
        assert all(f.kind in PLACEMENT_KINDS for f in sched.failures)
        # first event anchors the trial in absolute/logical terms
        assert sched.failures[0].kind in ("at", "after_sends")
        if not sched.log_cross_epoch:
            assert sched.gc_frac == 0.0  # GC unsound under domino


def test_kernel_pool_restriction():
    for seed in range(10):
        assert generate_schedule(seed, kernels=("cg",)).kernel == "cg"
    with pytest.raises(ConfigError):
        generate_schedule(0, kernels=("nope",))


def test_validate_rejects_bad_schedules():
    good = generate_schedule(0)
    with pytest.raises(ConfigError):
        with_failures(good, (FailureSpec(rank=99),)).validate()
    with pytest.raises(ConfigError):
        with_failures(good, (FailureSpec(0, kind="sideways"),)).validate()
    with pytest.raises(ConfigError):
        TrialSchedule(seed=0, nprocs=6, clusters=4).validate()
    with pytest.raises(ConfigError):
        TrialSchedule(seed=0, log_cross_epoch=False,
                      gc_frac=0.3).validate()


def test_allow_no_log_off_removes_domino_axis():
    assert all(generate_schedule(s, allow_no_log=False).log_cross_epoch
               for s in range(80))


def test_bug_field_threaded_through():
    sched = generate_schedule(3, bug="ack_drop")
    assert sched.bug == "ack_drop"
    assert schedule_from_json(sched.to_json()).bug == "ack_drop"
