"""The examples must stay runnable — they are the first thing users try."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "validity check" in out
    assert "rolled back" in out


def test_scenario_fig1(capsys):
    run_example("scenario_fig1.py")
    out = capsys.readouterr().out
    assert "partial rollback" in out


def test_domino_effect(capsys):
    run_example("domino_effect.py")
    out = capsys.readouterr().out
    assert "domino" in out


def test_clustered_nas(capsys):
    run_example("clustered_nas.py", ["CG", "16"])
    out = capsys.readouterr().out
    assert "%log" in out and "%rl" in out


def test_recovery_timeline(capsys):
    run_example("recovery_timeline.py", ["6"])
    out = capsys.readouterr().out
    assert "rank" in out and "rolled back" in out
