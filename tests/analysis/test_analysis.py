"""Tests for the offline analyses (rollback, logging, theory, matrices)."""

import numpy as np
import pytest

from repro.analysis import (
    LogStats,
    SpeSampler,
    collect_log_stats,
    collect_matrix,
    expected_rollback_fraction,
    expected_rolled_back_clusters,
    matrix_stats,
    monte_carlo_rollback_fraction,
    render_matrix,
    rollback_analysis,
    rollback_fraction_given_position,
)
from repro.analysis.rollback import SpeSnapshot
from repro.apps.stencil import Stencil1D, Stencil2D
from repro.core import ProtocolConfig, build_ft_world


def factory(rank, size):
    return Stencil1D(rank, size, niters=30, cells=4)


# ----------------------------------------------------------------------
# Theory (Section V-E-3)
# ----------------------------------------------------------------------
def test_expected_rolled_back_clusters():
    assert expected_rolled_back_clusters(4) == 2.5
    assert expected_rolled_back_clusters(1) == 1.0


@pytest.mark.parametrize("p,expected", [(4, 62.5), (8, 56.25), (16, 53.125)])
def test_expected_rollback_fraction_matches_paper_columns(p, expected):
    """Table I's near-constant %rl columns are exactly (p+1)/2p."""
    assert 100 * expected_rollback_fraction(p) == pytest.approx(expected)


def test_fraction_approaches_half():
    assert expected_rollback_fraction(1000) == pytest.approx(0.5, abs=1e-3)


def test_position_fractions():
    assert rollback_fraction_given_position(4, 0) == 1.0
    assert rollback_fraction_given_position(4, 3) == 0.25
    with pytest.raises(ValueError):
        rollback_fraction_given_position(4, 4)


def test_monte_carlo_agrees_with_closed_form():
    mc = monte_carlo_rollback_fraction(8, trials=20000, seed=1)
    assert mc == pytest.approx(expected_rollback_fraction(8), abs=0.01)


# ----------------------------------------------------------------------
# Rollback analysis (the Table I methodology)
# ----------------------------------------------------------------------
def test_sampler_takes_periodic_snapshots():
    cfg = ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=2e-6,
                         lightweight=True)
    world, ctl = build_ft_world(6, factory, cfg)
    sampler = SpeSampler(ctl, interval=3e-5)
    sampler.arm()
    world.launch()
    world.run()
    assert len(sampler.snapshots) >= 2
    times = [s.time for s in sampler.snapshots]
    assert times == sorted(times)
    assert all(len(s.spe_tables) == 6 for s in sampler.snapshots)


def test_rollback_analysis_counts():
    snap = SpeSnapshot(
        time=0.0,
        spe_tables={
            0: {2: (0, {})},
            1: {2: (0, {0: 2})},
            2: {1: (0, {})},
        },
        epochs={0: 2, 1: 2, 2: 1},
    )
    stats = rollback_analysis([snap], 3)
    assert stats.trials == 3
    # failure of 0 pulls 1; failures of 1 and 2 are isolated
    assert sorted(stats.counts) == [1, 1, 2]
    assert stats.mean_fraction == pytest.approx(4 / 9)
    assert stats.per_rank_mean[0] == 2.0


def test_rollback_analysis_specific_ranks():
    snap = SpeSnapshot(time=0.0, spe_tables={0: {1: (0, {})}, 1: {1: (0, {})}},
                       epochs={0: 1, 1: 1})
    stats = rollback_analysis([snap], 2, failed_ranks=[1])
    assert stats.counts == [1]
    assert stats.percent == 50.0


def test_rollback_stats_extrema():
    snap = SpeSnapshot(time=0.0,
                       spe_tables={0: {1: (0, {})}, 1: {1: (0, {0: 1})}},
                       epochs={0: 1, 1: 1})
    stats = rollback_analysis([snap], 2)
    assert stats.worst_fraction() == 1.0
    assert stats.best_fraction() == 0.5


# ----------------------------------------------------------------------
# Logging stats
# ----------------------------------------------------------------------
def test_collect_log_stats():
    cfg = ProtocolConfig(checkpoint_interval=2e-5,
                         cluster_of=[0, 0, 0, 1, 1, 1], cluster_stagger=4e-6)
    world, ctl = build_ft_world(6, factory, cfg)
    world.launch()
    world.run()
    stats = collect_log_stats(ctl)
    assert stats.messages_total > 0
    assert 0 < stats.messages_logged < stats.messages_total
    assert stats.percent == pytest.approx(100 * stats.fraction)
    assert 0 <= stats.byte_fraction <= 1


def test_log_stats_zero_safe():
    stats = LogStats(0, 0, 0, 0)
    assert stats.fraction == 0.0 and stats.byte_fraction == 0.0


# ----------------------------------------------------------------------
# Communication matrices (Fig. 8)
# ----------------------------------------------------------------------
def test_collect_matrix_shape_and_content():
    m = collect_matrix(8, lambda r, s: Stencil2D(r, s, niters=3, block=3))
    assert m.shape == (8, 8)
    assert (np.diag(m) == 0).all()
    assert m.sum() > 0


def test_matrix_stats():
    m = np.array([[0, 3], [1, 0]])
    stats = matrix_stats(m)
    assert stats["total_messages"] == 4
    assert stats["nonzero_pairs"] == 2
    assert stats["fill"] == 1.0
    assert stats["max_pair"] == 3


def test_render_matrix_has_cluster_overlay():
    m = np.arange(16).reshape(4, 4)
    out = render_matrix(m, cluster_of=[0, 0, 1, 1], epochs={0: 1, 1: 3})
    assert "|" in out
    assert "-" in out
    assert "Ep1" in out and "Ep3" in out


def test_render_matrix_coarsens_large():
    m = np.ones((256, 256))
    out = render_matrix(m, max_width=64)
    assert len(out.splitlines()[0]) <= 80
