"""Tests for the public validity-comparison API."""

import numpy as np

from repro.analysis import compare_executions
from repro.apps.stencil import Stencil1D
from repro.core import ProtocolConfig, build_ft_world


def factory(rank, size):
    return Stencil1D(rank, size, niters=20, cells=4)


def cfg():
    return ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=3e-6)


def run(failure=None):
    world, ctl = build_ft_world(6, factory, cfg())
    if failure:
        ctl.inject_failure(*failure)
        ctl.arm()
    world.launch()
    world.run()
    return world


def test_recovered_run_reports_valid():
    ref = run()
    world = run(failure=(5e-5, 2))
    report = compare_executions(ref, world)
    assert report.valid, report.summary()
    assert "valid" in report.summary()


def test_different_configuration_reports_invalid():
    ref = run()
    world, _ = build_ft_world(
        6, lambda r, s: Stencil1D(r, s, niters=22, cells=4), cfg()
    )
    world.launch()
    world.run()
    report = compare_executions(ref, world)
    assert not report.valid
    assert report.sequence_mismatches
    assert "INVALID" in report.summary()


def test_corrupted_result_detected():
    ref = run()
    world = run(failure=(5e-5, 2))
    world.programs[3].state["u"] = world.programs[3].state["u"] + 1.0
    report = compare_executions(ref, world)
    assert not report.valid
    assert 3 in report.result_mismatches


def test_dict_results_compared():
    from repro.apps import FTKernel

    def ft_factory(r, s):
        return FTKernel(r, s, niters=4, slab=2)

    a, _ = build_ft_world(4, ft_factory, cfg())
    a.launch(); a.run()
    b, _ = build_ft_world(4, ft_factory, cfg())
    b.launch(); b.run()
    assert compare_executions(a, b).valid
