"""Tests for the ASCII recovery timeline."""

import pytest

from repro.analysis import Timeline, render_timeline
from repro.apps.stencil import Stencil1D
from repro.core import ProtocolConfig, build_ft_world
from repro.errors import ConfigError


def run(record=True, failure=True):
    world, ctl = build_ft_world(
        4, lambda r, s: Stencil1D(r, s, niters=25, cells=4),
        ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=2e-6),
        record_events=record,
    )
    if failure:
        ctl.inject_failure(5e-5, 2)
        ctl.arm()
    world.launch()
    duration = world.run()
    return world, duration


def test_timeline_shows_failure_and_restores():
    world, duration = run()
    art = render_timeline(world.tracer, duration)
    assert "X" in art            # the failure
    assert "r" in art            # at least one restore
    assert "c" in art            # checkpoints
    assert art.count("rank") == 4
    assert "legend" not in art   # legend is symbols, not the word


def row_bodies(art):
    return [l.split("|", 1)[1] for l in art.splitlines() if l.startswith("rank")]


def test_timeline_failure_free_has_no_marks():
    world, duration = run(failure=False)
    body = "".join(row_bodies(render_timeline(world.tracer, duration)))
    assert "X" not in body and "r" not in body and "=" not in body
    assert "c" in body


def test_timeline_requires_recorded_events():
    world, duration = run(record=False, failure=False)
    with pytest.raises(ConfigError):
        render_timeline(world.tracer, duration)


def test_recovery_spans_follow_restores():
    world, duration = run()
    tl = Timeline.from_tracer(world.tracer, duration)
    spans = tl.recovery_spans(2)
    assert spans, "the failed rank must show a re-execution span"
    for start, end in spans:
        assert 0 <= start <= end <= duration


def test_rows_fixed_width():
    world, duration = run()
    art = render_timeline(world.tracer, duration, width=50)
    rows = [l for l in art.splitlines() if l.startswith("rank")]
    assert len({len(r) for r in rows}) == 1


# ----------------------------------------------------------------------
# Overlapping recovery intervals and multiple failures (synthetic marks
# drive recovery_spans; a two-failure run drives render_timeline)
# ----------------------------------------------------------------------
class _FakeTracer:
    def __init__(self, nprocs, events):
        self.record_events = True
        self.nprocs = nprocs
        self.events = events


class _Ev:
    def __init__(self, time, rank, kind):
        self.time, self.rank, self.kind = time, rank, kind


def test_recovery_spans_back_to_back_restores():
    # two restores with no mark in between: the first span must close at
    # the second restore, not swallow it (overlapping intervals)
    tl = Timeline(1, 10.0, {0: [(2.0, "r"), (5.0, "r")]})
    assert tl.recovery_spans(0) == [(2.0, 5.0), (5.0, 10.0)]


def test_recovery_spans_close_at_next_mark_or_duration():
    tl = Timeline(1, 10.0, {0: [(1.0, "X"), (2.0, "r"), (4.0, "c"),
                                (6.0, "X"), (7.0, "r")]})
    assert tl.recovery_spans(0) == [(2.0, 4.0), (7.0, 10.0)]


def test_recovery_spans_ignore_unsorted_mark_insertion():
    tl = Timeline(1, 8.0, {0: [(5.0, "r"), (1.0, "X"), (2.0, "r"), (6.0, "c")]})
    # sorted internally: spans are (2,5) and (5,6)
    assert tl.recovery_spans(0) == [(2.0, 5.0), (5.0, 6.0)]


def test_render_two_failures_two_recovery_stretches():
    events = [
        _Ev(1.0, 0, "checkpoint"), _Ev(1.2, 1, "checkpoint"),
        _Ev(3.0, 1, "failure"), _Ev(3.4, 1, "restore"),
        _Ev(5.0, 1, "checkpoint"),
        _Ev(7.0, 1, "failure"), _Ev(7.5, 1, "restore"),
        _Ev(9.0, 1, "checkpoint"),
    ]
    art = render_timeline(_FakeTracer(2, events), 10.0, width=60)
    rows = row_bodies(art)
    assert rows[1].count("X") == 2 and rows[1].count("r") == 2
    # re-execution shading appears after each restore, and execution
    # resumes ('-') between the two recovery stretches
    first_r = rows[1].index("r")
    second_x = rows[1].rindex("X")
    assert "=" in rows[1][first_r:second_x]
    assert "-" in rows[1][first_r:second_x]
    assert "=" in rows[1][second_x:]
    # rank 0 saw no failure: clean lifeline
    assert "X" not in rows[0] and "=" not in rows[0]


def test_two_real_failures_render_and_span_consistency():
    world, ctl = build_ft_world(
        4, lambda r, s: Stencil1D(r, s, niters=40, cells=4),
        ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=2e-6),
        record_events=True,
    )
    ctl.inject_failure(5e-5, 2)
    ctl.inject_failure(9e-5, 1)
    ctl.arm()
    world.launch()
    duration = world.run()
    assert len(ctl.recovery_reports) == 2
    art = render_timeline(world.tracer, duration)
    body = "".join(row_bodies(art))
    assert body.count("X") >= 2
    tl = Timeline.from_tracer(world.tracer, duration)
    for rank in range(4):
        spans = tl.recovery_spans(rank)
        # spans are ordered and lie within the run
        assert all(0 <= s <= e <= duration for s, e in spans)
        assert spans == sorted(spans)
    # both killed ranks re-executed at least once
    assert tl.recovery_spans(2) and tl.recovery_spans(1)
