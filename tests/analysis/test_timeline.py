"""Tests for the ASCII recovery timeline."""

import pytest

from repro.analysis import Timeline, render_timeline
from repro.apps.stencil import Stencil1D
from repro.core import ProtocolConfig, build_ft_world
from repro.errors import ConfigError


def run(record=True, failure=True):
    world, ctl = build_ft_world(
        4, lambda r, s: Stencil1D(r, s, niters=25, cells=4),
        ProtocolConfig(checkpoint_interval=2e-5, rank_stagger=2e-6),
        record_events=record,
    )
    if failure:
        ctl.inject_failure(5e-5, 2)
        ctl.arm()
    world.launch()
    duration = world.run()
    return world, duration


def test_timeline_shows_failure_and_restores():
    world, duration = run()
    art = render_timeline(world.tracer, duration)
    assert "X" in art            # the failure
    assert "r" in art            # at least one restore
    assert "c" in art            # checkpoints
    assert art.count("rank") == 4
    assert "legend" not in art   # legend is symbols, not the word


def row_bodies(art):
    return [l.split("|", 1)[1] for l in art.splitlines() if l.startswith("rank")]


def test_timeline_failure_free_has_no_marks():
    world, duration = run(failure=False)
    body = "".join(row_bodies(render_timeline(world.tracer, duration)))
    assert "X" not in body and "r" not in body and "=" not in body
    assert "c" in body


def test_timeline_requires_recorded_events():
    world, duration = run(record=False, failure=False)
    with pytest.raises(ConfigError):
        render_timeline(world.tracer, duration)


def test_recovery_spans_follow_restores():
    world, duration = run()
    tl = Timeline.from_tracer(world.tracer, duration)
    spans = tl.recovery_spans(2)
    assert spans, "the failed rank must show a re-execution span"
    for start, end in spans:
        assert 0 <= start <= end <= duration


def test_rows_fixed_width():
    world, duration = run()
    art = render_timeline(world.tracer, duration, width=50)
    rows = [l for l in art.splitlines() if l.startswith("rank")]
    assert len({len(r) for r in rows}) == 1
