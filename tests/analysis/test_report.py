"""Tests for the paper-style report formatting."""

from repro.analysis.report import (
    ExperimentRecord,
    Table1Cell,
    format_table,
    format_table1,
)


def test_format_table_alignment():
    out = format_table(["a", "long_header"], [[1, 2], [333, 4]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert len(set(len(l) for l in lines)) == 1  # rectangular


def test_format_table_empty_rows():
    out = format_table(["x", "y"], [])
    assert "x" in out and "y" in out


def test_format_table1_layout():
    cells = [
        Table1Cell("CG", 64, 4, 3.8, 62.5),
        Table1Cell("CG", 64, 8, 4.4, 56.3),
        Table1Cell("FT", 64, 4, 37.2, 62.4),
    ]
    out = format_table1(cells)
    assert "64/4cl %log" in out and "64/8cl %log" in out
    assert "3.8" in out and "37.2" in out
    # missing cell rendered as '-'
    assert "-" in out.splitlines()[-1]


def test_format_table1_sorted_configs():
    cells = [
        Table1Cell("CG", 128, 4, 1, 2),
        Table1Cell("CG", 64, 4, 3, 4),
    ]
    out = format_table1(cells)
    header = out.splitlines()[0]
    assert header.index("64/4cl") < header.index("128/4cl")


def test_experiment_record_row():
    rec = ExperimentRecord("Fig. 6", "~15 %", "15.6 %", True, notes="calibrated")
    row = rec.as_row()
    assert row[0] == "Fig. 6"
    assert row[3] == "✔"
    bad = ExperimentRecord("X", "a", "b", False)
    assert bad.as_row()[3] == "✘"
