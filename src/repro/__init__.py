"""repro — reproduction of "Uncoordinated Checkpointing Without Domino
Effect for Send-Deterministic MPI Applications" (IPDPS 2011).

Subpackages
-----------
* :mod:`repro.simmpi` — discrete-event MPI runtime simulator (substrate)
* :mod:`repro.core` — the paper's protocol, recovery process, clustering
* :mod:`repro.baselines` — coordinated / message-logging / plain
  uncoordinated / CIC comparison protocols
* :mod:`repro.apps` — send-deterministic NAS-pattern mini-kernels
* :mod:`repro.analysis` — rollback & logging analyses (Table I, Fig. 8)
* :mod:`repro.netmodel` — analytic performance model (Figs. 6-7)
"""

__version__ = "1.0.0"
