"""ASCII timelines of executions: checkpoints, failures, restores.

Renders the tracer's event stream as one lifeline per rank — the quickest
way to *see* a recovery: where the uncoordinated checkpoints fell, which
ranks a failure dragged back, and how far.  Requires the world to have
been built with ``record_events=True``.

Example output::

    rank 0 |----c--------c----------c--------------------|
    rank 1 |----c--------c----X r===c=====================|
    rank 2 |------c--------c--- r===c=====================|

    c checkpoint   X failure   r restore   = re-execution
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..simmpi.trace import TraceEvent, Tracer

__all__ = ["Timeline", "render_timeline"]

_LEGEND = "c checkpoint   X failure   r restore   = re-execution   - execution"


@dataclass
class Timeline:
    """Per-rank event rows extracted from a tracer."""

    nprocs: int
    duration: float
    #: rank -> list of (time, symbol)
    marks: dict[int, list[tuple[float, str]]]

    @staticmethod
    def from_tracer(tracer: Tracer, duration: float) -> "Timeline":
        if not tracer.record_events:
            raise ConfigError(
                "timeline needs record_events=True on the World"
            )
        marks: dict[int, list[tuple[float, str]]] = {
            r: [] for r in range(tracer.nprocs)
        }
        symbol = {"checkpoint": "c", "failure": "X", "restore": "r"}
        for event in tracer.events:
            s = symbol.get(event.kind)
            if s is not None:
                marks[event.rank].append((event.time, s))
        return Timeline(tracer.nprocs, duration, marks)

    def recovery_spans(self, rank: int) -> list[tuple[float, float]]:
        """(restore time, end estimate) pairs — used to shade re-execution.

        The span closes at the next mark of the rank or the run's end.
        """
        spans = []
        row = sorted(self.marks[rank])
        for i, (t, s) in enumerate(row):
            if s == "r":
                end = row[i + 1][0] if i + 1 < len(row) else self.duration
                spans.append((t, end))
        return spans


def render_timeline(tracer: Tracer, duration: float, width: int = 72) -> str:
    """Render the timeline as fixed-width ASCII art."""
    tl = Timeline.from_tracer(tracer, duration)
    if duration <= 0:
        raise ConfigError("duration must be positive")
    scale = (width - 1) / duration

    def col(t: float) -> int:
        return min(width - 1, max(0, int(t * scale)))

    lines = []
    for rank in range(tl.nprocs):
        row = ["-"] * width
        for start, end in tl.recovery_spans(rank):
            for i in range(col(start), col(end) + 1):
                row[i] = "="
        for t, s in sorted(tl.marks[rank]):
            row[col(t)] = s
        lines.append(f"rank {rank:>3} |{''.join(row)}|")
    lines.append("")
    lines.append(_LEGEND)
    return "\n".join(lines)
