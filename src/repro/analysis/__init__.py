"""``repro.analysis`` — offline analyses for the paper's evaluation.

Rollback analysis (Table I's ``%rl``, Section V-E-1 methodology), logging
statistics (``%log``), communication matrices (Fig. 8) and the analytic
``(p+1)/2p`` rollback model (Section V-E-3).
"""

from .commmatrix import collect_matrix, matrix_stats, render_matrix
from .logstats import LogStats, collect_log_stats
from .rollback import RollbackStats, SpeSampler, SpeSnapshot, rollback_analysis
from .timeline import Timeline, render_timeline
from .validity import ValidityReport, compare_executions
from .theory import (
    expected_rollback_fraction,
    expected_rolled_back_clusters,
    monte_carlo_rollback_fraction,
    rollback_fraction_given_position,
)

__all__ = [
    "collect_matrix", "matrix_stats", "render_matrix",
    "LogStats", "collect_log_stats",
    "RollbackStats", "SpeSampler", "SpeSnapshot", "rollback_analysis",
    "expected_rollback_fraction", "expected_rolled_back_clusters",
    "monte_carlo_rollback_fraction", "rollback_fraction_given_position",
    "ValidityReport", "compare_executions",
    "Timeline", "render_timeline",
]
