"""Analytic rollback model for clustered epochs (Section V-E-3).

The paper's pessimistic model: with ``p`` clusters at pairwise-distinct
epochs, the failure of a process makes its whole cluster roll back, plus
every cluster at a *higher* epoch (messages flowing up-epoch are logged,
so lower-epoch clusters are insulated).  With failures evenly distributed
over clusters the expected number of rolled-back clusters is::

    (p + (p-1) + ... + 1) / p  =  (p + 1) / 2

i.e. an expected rolled-back *fraction* of ``(p + 1) / (2 p)`` — 62.5 %
for 4 clusters, 56.25 % for 8, 53.125 % for 16, approaching 50 % as
``p`` grows (the factor-2 reduction over coordinated checkpointing the
title promises).
"""

from __future__ import annotations

import random

import numpy as np

__all__ = [
    "expected_rolled_back_clusters",
    "expected_rollback_fraction",
    "rollback_fraction_given_position",
    "monte_carlo_rollback_fraction",
]


def expected_rolled_back_clusters(p: int) -> float:
    """Expected number of clusters to roll back, failures uniform over
    ``p`` clusters (pessimistic whole-cluster model)."""
    if p < 1:
        raise ValueError("need at least one cluster")
    return (p + 1) / 2.0


def expected_rollback_fraction(p: int) -> float:
    """Expected fraction of processes to roll back = ``(p+1) / (2p)``."""
    return expected_rolled_back_clusters(p) / p


def rollback_fraction_given_position(p: int, position: int) -> float:
    """Rollback fraction when the failed cluster is the ``position``-th
    lowest epoch (0-based): clusters at positions ``>= position`` roll
    back → ``(p - position) / p``."""
    if not 0 <= position < p:
        raise ValueError("position out of range")
    return (p - position) / p


def monte_carlo_rollback_fraction(p: int, trials: int = 10000, seed: int = 0) -> float:
    """Monte-Carlo estimate of the same expectation (sanity cross-check,
    and the hook point for non-uniform failure distributions)."""
    rng = random.Random(seed)
    total = 0.0
    for _ in range(trials):
        pos = rng.randrange(p)
        total += rollback_fraction_given_position(p, pos)
    return total / trials


def table1_theory_row(cluster_counts: list[int]) -> dict[int, float]:
    """``%rl`` predicted by the model for each cluster count (Table I's
    near-constant per-cluster-count columns)."""
    return {p: 100.0 * expected_rollback_fraction(p) for p in cluster_counts}
