"""Message-logging statistics — the ``%log`` column of Table I.

The simulator counts actual logging decisions (a message is logged when
its acknowledgement reveals an epoch crossing, Fig. 3 lines 36-37), so the
numbers here are measured, not predicted; the clustering module's
:meth:`~repro.core.clustering.Clustering.predicted_log_fraction` gives the
analytic inter-cluster component for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.controller import FTController

__all__ = ["LogStats", "collect_log_stats"]


@dataclass(frozen=True)
class LogStats:
    messages_total: int
    messages_logged: int
    bytes_total: int
    bytes_logged: int

    @property
    def fraction(self) -> float:
        return self.messages_logged / self.messages_total if self.messages_total else 0.0

    @property
    def percent(self) -> float:
        """The paper's ``%log`` column."""
        return 100.0 * self.fraction

    @property
    def byte_fraction(self) -> float:
        return self.bytes_logged / self.bytes_total if self.bytes_total else 0.0


def collect_log_stats(controller: FTController) -> LogStats:
    assert controller.world is not None
    tracer = controller.world.tracer
    return LogStats(
        messages_total=tracer.total_app_messages(),
        messages_logged=sum(p.messages_logged for p in controller.protocols),
        bytes_total=int(tracer.msg_bytes.sum()),
        bytes_logged=sum(p.bytes_logged for p in controller.protocols),
    )
