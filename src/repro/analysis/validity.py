"""Executable form of the paper's validity criterion (Definition 1).

A recovery is *valid* when (i) every process emits its valid sequence of
messages and (ii) causal delivery order is respected.  Both are checkable
against a failure-free reference execution:

* (i) directly — each rank's *logical* send sequence (recovery re-sends
  collapsed by their branch-invariant send dates, with payload digests
  compared so silent state corruption is caught even when contracting
  numerics hide it in the final result);
* (ii) observationally — an application that matched a wrong message
  (which is what a causal-delivery violation manifests as) diverges in
  state and therefore in its subsequent send contents and final results.

:func:`compare_executions` packages the check used throughout the test
suite as a public API, returning a structured report instead of raising.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import SendDeterminismError
from ..simmpi.runtime import World

__all__ = ["ValidityReport", "compare_executions"]


@dataclass
class ValidityReport:
    """Outcome of a validity comparison against a reference execution."""

    valid: bool
    #: ranks whose logical send sequences diverged (length or order)
    sequence_mismatches: list[int] = field(default_factory=list)
    #: ranks that re-sent a message with different content (state corruption)
    content_violations: list[str] = field(default_factory=list)
    #: ranks whose final application result diverged
    result_mismatches: list[int] = field(default_factory=list)

    def summary(self) -> str:
        if self.valid:
            return "valid: send sequences and results match the reference"
        parts = []
        if self.content_violations:
            parts.append(f"content violations: {self.content_violations}")
        if self.sequence_mismatches:
            parts.append(f"sequence mismatches at ranks {self.sequence_mismatches}")
        if self.result_mismatches:
            parts.append(f"result mismatches at ranks {self.result_mismatches}")
        return "INVALID — " + "; ".join(parts)


def _results_equal(a: Any, b: Any, rtol: float, atol: float) -> bool:
    if isinstance(a, dict) and isinstance(b, dict):
        return set(a) == set(b) and all(
            _results_equal(a[k], b[k], rtol, atol) for k in a
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            _results_equal(x, y, rtol, atol) for x, y in zip(a, b)
        )
    try:
        return bool(np.allclose(a, b, rtol=rtol, atol=atol))
    except (TypeError, ValueError):
        return a == b


def compare_executions(reference: World, world: World,
                       rtol: float = 1e-9, atol: float = 0.0,
                       check_results: bool = True) -> ValidityReport:
    """Check ``world`` (typically a failed-and-recovered run) against
    ``reference`` (the failure-free run of the same configuration).

    ``check_results=False`` skips the final-result comparison; use it for
    benchmarks whose ``result()`` reports *virtual-time* measurements
    (e.g. ping-pong latency), which legitimately differ once a recovery
    stretches the clock — their send sequences and contents are still
    held to Definition 1.
    """
    report = ValidityReport(valid=True)
    try:
        ref_seqs = reference.tracer.logical_send_sequences()
        seqs = world.tracer.logical_send_sequences()
    except SendDeterminismError as exc:
        report.valid = False
        report.content_violations.append(str(exc))
        return report
    for rank, (a, b) in enumerate(zip(ref_seqs, seqs)):
        if a != b:
            report.sequence_mismatches.append(rank)
    if check_results:
        for rank, (p_ref, p) in enumerate(
                zip(reference.programs, world.programs)):
            if not _results_equal(p_ref.result(), p.result(), rtol, atol):
                report.result_mismatches.append(rank)
    report.valid = not (
        report.sequence_mismatches
        or report.content_violations
        or report.result_mismatches
    )
    return report
