"""Communication-density matrices and their text rendering (Fig. 8).

The paper's Fig. 8 plots, for CG.C.64 and MG.C.64, the number of messages
per (sender, receiver) pair with the chosen clustering overlaid as squares
and the per-cluster starting epochs annotated.  :func:`collect_matrix`
runs a kernel and returns its matrix; :func:`render_matrix` draws an
ASCII heat map with cluster boundaries so the benchmark output is
eyeball-comparable with the paper's figure.
"""

from __future__ import annotations

import math
from typing import Any, Callable

import numpy as np

from ..simmpi.runtime import World

__all__ = ["collect_matrix", "render_matrix", "matrix_stats"]


def collect_matrix(
    nprocs: int,
    program_factory: Callable[[int, int], Any],
    weight: str = "count",
    **world_kwargs: Any,
) -> np.ndarray:
    """Run ``program_factory`` failure-free and return the comm matrix."""
    world = World(nprocs, program_factory, **world_kwargs)
    world.launch()
    world.run()
    return world.tracer.comm_matrix(weight)


_SHADES = " .:-=+*#%@"


def render_matrix(
    matrix: np.ndarray,
    cluster_of: list[int] | None = None,
    epochs: dict[int, int] | None = None,
    max_width: int = 64,
) -> str:
    """ASCII heat map (log scale) with optional cluster boundary rulers."""
    n = matrix.shape[0]
    step = max(1, math.ceil(n / max_width))
    # coarsen by summing step x step tiles
    m = matrix[: n - n % step or n, : n - n % step or n]
    if step > 1:
        k = m.shape[0] // step
        m = m.reshape(k, step, k, step).sum(axis=(1, 3))
    peak = m.max() or 1
    lines = []
    boundaries = set()
    if cluster_of is not None:
        for r in range(1, n):
            if cluster_of[r] != cluster_of[r - 1]:
                boundaries.add(r // step)
    for i in range(m.shape[0]):
        row = []
        for j in range(m.shape[1]):
            v = m[i, j]
            shade = 0
            if v > 0:
                shade = 1 + int((len(_SHADES) - 2) * math.log1p(v) / math.log1p(peak))
            row.append(_SHADES[shade])
            if (j + 1) in boundaries:
                row.append("|")
        lines.append("".join(row))
        if (i + 1) in boundaries:
            lines.append("-" * len(lines[-1]))
    if cluster_of is not None and epochs is not None:
        anns = ", ".join(
            f"cluster {c}: Ep{e}" for c, e in sorted(epochs.items())
        )
        lines.append(f"[{anns}]")
    return "\n".join(lines)


def matrix_stats(matrix: np.ndarray) -> dict[str, float]:
    """Summary statistics used in tests and reports."""
    total = float(matrix.sum())
    nz = int((matrix > 0).sum())
    n = matrix.shape[0]
    return {
        "total_messages": total,
        "nonzero_pairs": nz,
        "fill": nz / (n * (n - 1)) if n > 1 else 0.0,
        "max_pair": float(matrix.max()),
        "symmetry": float(
            np.abs(matrix - matrix.T).sum() / (2 * total) if total else 0.0
        ),
    }
