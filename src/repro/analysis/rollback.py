"""Offline rollback analysis — the paper's Table I methodology (Sec. V-E-1).

    "To compute the number of processes to roll back, the SPE table of all
    processes is saved every 30 s during the execution.  We analyze these
    data offline and run the recovery protocol: for each version of SPE,
    we compute the rollbacks that would be induced by the failure of each
    process.  Then, we can compute an estimation of the average number of
    processes to roll back in the event of a failure."

:class:`SpeSampler` attaches to a live controller and snapshots every
rank's SPE table at a fixed virtual period; :func:`rollback_analysis`
replays the recovery-line fix-point for every (snapshot, failed-rank) pair
and aggregates the statistics the paper reports (``%rl``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.controller import FTController
from ..core.recovery import RecoveryLineSolver

__all__ = ["SpeSnapshot", "SpeSampler", "RollbackStats", "rollback_analysis"]


@dataclass
class SpeSnapshot:
    """All ranks' SPE tables + current epochs at one instant."""

    time: float
    spe_tables: dict[int, dict]  # rank -> spe export
    epochs: dict[int, int]       # rank -> current epoch (= latest ckpt epoch)


class SpeSampler:
    """Periodically snapshots the SPE tables of a running world."""

    def __init__(self, controller: FTController, interval: float,
                 first_at: float | None = None):
        self.controller = controller
        self.interval = interval
        self.snapshots: list[SpeSnapshot] = []
        self._first_at = interval if first_at is None else first_at

    def arm(self) -> None:
        assert self.controller.world is not None
        self.controller.world.engine.schedule_at(self._first_at, self._tick)

    def _tick(self) -> None:
        assert self.controller.world is not None
        if self.controller.world.all_done:
            return  # stop the timer or the event queue never drains
        self.take()
        self.controller.world.engine.schedule(self.interval, self._tick)

    def take(self) -> SpeSnapshot:
        """Record one snapshot immediately."""
        ctl = self.controller
        snap = SpeSnapshot(
            time=ctl.now,
            spe_tables={r: p.state.spe_export() for r, p in enumerate(ctl.protocols)},
            epochs={r: p.state.epoch for r, p in enumerate(ctl.protocols)},
        )
        self.snapshots.append(snap)
        return snap


@dataclass
class RollbackStats:
    """Aggregated rollback statistics over (snapshot × failed rank) trials."""

    nprocs: int
    trials: int
    #: rolled-back process count for each trial
    counts: list[int] = field(default_factory=list)
    #: per failed rank: mean rolled-back count across snapshots
    per_rank_mean: dict[int, float] = field(default_factory=dict)

    @property
    def mean_count(self) -> float:
        return float(np.mean(self.counts)) if self.counts else 0.0

    @property
    def mean_fraction(self) -> float:
        return self.mean_count / self.nprocs if self.nprocs else 0.0

    @property
    def percent(self) -> float:
        """The paper's ``%rl`` column."""
        return 100.0 * self.mean_fraction

    def worst_fraction(self) -> float:
        return max(self.counts) / self.nprocs if self.counts else 0.0

    def best_fraction(self) -> float:
        return min(self.counts) / self.nprocs if self.counts else 0.0


def rollback_analysis(
    snapshots: list[SpeSnapshot],
    nprocs: int,
    failed_ranks: list[int] | None = None,
) -> RollbackStats:
    """Run the recovery protocol offline for every (snapshot, failure).

    A failed process restarts at its latest checkpoint, i.e. the beginning
    of its current epoch; every rank appearing in the resulting recovery
    line rolls back (including the failed one).
    """
    ranks = list(range(nprocs)) if failed_ranks is None else failed_ranks
    stats = RollbackStats(nprocs=nprocs, trials=len(snapshots) * len(ranks))
    per_rank: dict[int, list[int]] = {r: [] for r in ranks}
    for snap in snapshots:
        # one solver per snapshot: the inbound index amortises over the
        # p per-rank solves, and solve_count skips date resolution (the
        # analysis only aggregates line sizes)
        solver = RecoveryLineSolver(snap.spe_tables)
        for f in ranks:
            count = solver.solve_count({f: snap.epochs[f]})
            stats.counts.append(count)
            per_rank[f].append(count)
    stats.per_rank_mean = {
        r: float(np.mean(v)) if v else 0.0 for r, v in per_rank.items()
    }
    return stats
