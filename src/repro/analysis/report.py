"""Paper-style result formatting.

Shared by the benchmark harness and the examples: fixed-width tables (no
third-party dependency), Table-I layout helpers and experiment-record
dataclasses used by EXPERIMENTS.md regeneration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = ["format_table", "Table1Cell", "format_table1", "ExperimentRecord"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 widths: Sequence[int] | None = None) -> str:
    """Render a fixed-width table with a separator under the header."""
    rows = [list(r) for r in rows]
    if widths is None:
        widths = [
            max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
            for i, h in enumerate(headers)
        ]

    def line(cells: Sequence[Any]) -> str:
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    return "\n".join(out) + "\n"


@dataclass(frozen=True)
class Table1Cell:
    """One (kernel, size, clusters) cell of Table I."""

    kernel: str
    nprocs: int
    nclusters: int
    log_percent: float
    rollback_percent: float


def format_table1(cells: Iterable[Table1Cell]) -> str:
    """Lay out Table I the way the paper prints it: kernels as rows,
    (size, clusters) pairs as %log/%rl column pairs."""
    cells = list(cells)
    kernels = sorted({c.kernel for c in cells}, key=lambda k: k)
    configs = sorted({(c.nprocs, c.nclusters) for c in cells})
    index = {(c.kernel, c.nprocs, c.nclusters): c for c in cells}
    headers = ["kernel"]
    for nprocs, ncl in configs:
        headers += [f"{nprocs}/{ncl}cl %log", "%rl"]
    rows = []
    for kernel in kernels:
        row: list[Any] = [kernel]
        for nprocs, ncl in configs:
            cell = index.get((kernel, nprocs, ncl))
            if cell is None:
                row += ["-", "-"]
            else:
                row += [f"{cell.log_percent:.1f}", f"{cell.rollback_percent:.1f}"]
        rows.append(row)
    return format_table(headers, rows)


@dataclass
class ExperimentRecord:
    """A paper-vs-measured record for one artefact (EXPERIMENTS.md rows)."""

    artefact: str
    paper_claim: str
    measured: str
    holds: bool
    notes: str = ""
    details: dict[str, Any] = field(default_factory=dict)

    def as_row(self) -> list[str]:
        return [self.artefact, self.paper_claim, self.measured,
                "✔" if self.holds else "✘", self.notes]
