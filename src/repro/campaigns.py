"""Campaign task functions and task-list builders.

One module, two front-ends: the one-shot CLI commands (``repro table1``,
``repro sweep``, ``repro chaos``) and the resident campaign service
(``repro serve`` / ``repro submit``) both build their work from these
functions, so a campaign computes the same cells whichever door it came
in through — and the content-addressed result cache addresses them
identically.

Every task function here is module-level (sweeps pickle them into
workers) and a pure function of ``(seed, params)``; the code-dependency
resolvers registered at the bottom tell the cache which kernel classes
each function's results depend on, wiring the certifier's MRO code
digests into the cache key.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from .analysis import SpeSampler, rollback_analysis
from .apps import TABLE1_KERNELS, Stencil2D
from .core import ProtocolConfig, build_ft_world
from .core.clustering import block_clusters
from .service.cache import register_code_deps

__all__ = [
    "failure_scenario",
    "failure_tasks",
    "selftest_cell",
    "selftest_tasks",
    "table1_cell",
    "table1_tasks",
]


def _run(nprocs, factory, config):
    world, controller = build_ft_world(nprocs, factory, config)
    world.launch()
    world.run()
    return world, controller


# ----------------------------------------------------------------------
# Table I grid
# ----------------------------------------------------------------------
def table1_cell(params: dict) -> dict:
    """Compute one Table I cell; module-level so sweeps can pickle it.

    The simulation is fully deterministic — the sweep-injected ``seed``
    entry is deliberately unused, so a cell's numbers never depend on
    worker count or scheduling.
    """
    name, nprocs, ncl = params["kernel"], params["ranks"], params["clusters"]
    niters = params["niters"]
    cls = TABLE1_KERNELS[name]
    factory = lambda r, s: cls(r, s, niters=niters, compute_time=1e-5)
    config = ProtocolConfig(
        checkpoint_interval=6e-5,
        cluster_of=block_clusters(nprocs, ncl),
        cluster_stagger=8e-6, rank_stagger=2e-7,
        lightweight=True, retain_payloads=False,
    )
    build_kwargs = {}
    if params.get("obs") is not None:
        build_kwargs["obs"] = params["obs"]
    world, controller = build_ft_world(nprocs, factory, config,
                                       copy_payloads=False, **build_kwargs)
    sampler = SpeSampler(controller, interval=7e-5)
    sampler.arm()
    world.launch()
    world.run()
    if not sampler.snapshots:
        sampler.take()
    log = controller.logging_stats()
    rb = rollback_analysis(sampler.snapshots, nprocs)
    return {
        "kernel": name, "ranks": nprocs, "clusters": ncl,
        "pct_log": 100 * log["log_fraction"], "pct_rollback": rb.percent,
    }


def table1_tasks(kernels: Sequence[str], ranks: Sequence[int],
                 clusters: Sequence[int], niters: int) -> list:
    """Task list for the Table I grid, in the table's row order."""
    from .sweep import SweepTask

    return [
        SweepTask(
            name=f"{name}/{nprocs}r/{ncl}cl",
            params={"kernel": name, "ranks": nprocs, "clusters": ncl,
                    "niters": niters},
        )
        for name in kernels
        for nprocs in ranks
        for ncl in clusters
        if ncl <= nprocs
    ]


# ----------------------------------------------------------------------
# Randomized failure/recovery runs
# ----------------------------------------------------------------------
def failure_scenario(params: dict) -> dict:
    """One randomized failure/recovery run (module-level for pickling).

    The sweep seed picks the failing rank and failure time; the run then
    validates recovery against its own failure-free reference and reports
    rollback/logging statistics.
    """
    import random

    nprocs, ncl, niters = params["ranks"], params["clusters"], params["niters"]
    rng = random.Random(params["seed"])
    config = ProtocolConfig(checkpoint_interval=3e-5,
                            cluster_of=block_clusters(nprocs, ncl),
                            cluster_stagger=5e-6, rank_stagger=1e-6)
    factory = lambda r, s: Stencil2D(r, s, niters=niters, block=3)
    ref, _ = _run(nprocs, factory, config)
    fail_rank = rng.randrange(nprocs)
    fail_time = rng.uniform(0.2, 0.8) * ref.engine.now
    build_kwargs = {}
    if params.get("obs") is not None:
        build_kwargs["obs"] = params["obs"]
    world, controller = build_ft_world(nprocs, factory, config, **build_kwargs)
    controller.inject_failure(fail_time, fail_rank)
    controller.arm()
    world.launch()
    world.run()
    report = controller.recovery_reports[0]
    stats = controller.logging_stats()
    valid = all(
        np.allclose(ref.programs[r].result(), world.programs[r].result())
        for r in range(nprocs)
    ) and ref.tracer.logical_send_sequences() == world.tracer.logical_send_sequences()
    return {
        "fail_rank": fail_rank,
        "fail_time_ms": fail_time * 1e3,
        "rolled_back": sorted(report.rolled_back),
        "pct_rolled_back": 100 * len(report.rolled_back) / nprocs,
        "recovery_rounds": len(controller.recovery_reports),
        "pct_log": 100 * stats["log_fraction"],
        "valid": valid,
    }


def failure_tasks(runs: int, ranks: int, clusters: int, niters: int) -> list:
    from .sweep import SweepTask

    return [
        SweepTask(name=f"failure-{i:03d}",
                  params={"ranks": ranks, "clusters": clusters,
                          "niters": niters})
        for i in range(runs)
    ]


# ----------------------------------------------------------------------
# Service self-test (cheap, no simulation — exercises queue/cache/pool)
# ----------------------------------------------------------------------
def selftest_cell(params: dict) -> dict:
    """Trivial pure function of (seed, params) for service smoke tests."""
    i, seed = params["i"], params["seed"]
    return {"i": i, "residue": seed % 997, "square": i * i}


def selftest_tasks(count: int) -> list:
    from .sweep import SweepTask

    return [SweepTask(name=f"self-{i:03d}", params={"i": i})
            for i in range(count)]


# ----------------------------------------------------------------------
# Cache code-dependency resolvers: which kernel classes feed each task
# function's results (the cache folds their certifier MRO digests into
# the key, so editing a kernel invalidates exactly its cached cells).
# table1_cell needs no explicit entry — the default resolver picks the
# class up from params["kernel"].
# ----------------------------------------------------------------------
register_code_deps(f"{__name__}.failure_scenario", lambda params: (Stencil2D,))
register_code_deps(f"{__name__}.selftest_cell", lambda params: ())


def _chaos_trial_deps(params: dict[str, Any]):
    """A chaos trial depends on every kernel its schedule may draw."""
    from .chaos.schedule import KERNELS as CHAOS_KERNELS
    from .lint.certify import chaos_pool_classes

    pool = params.get("kernels") or sorted(CHAOS_KERNELS)
    return chaos_pool_classes(tuple(pool))


register_code_deps("repro.chaos.trial.run_trial", _chaos_trial_deps)
