"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Generic error raised by the discrete-event simulator."""


class DeadlockError(SimulationError):
    """The simulation reached quiescence while rank programs are unfinished.

    Carries a diagnostic of which ranks are blocked and on what, which is
    invaluable when debugging protocol gating bugs (a process waiting for a
    ``ReadyPhase`` notification that never comes shows up here).
    """

    def __init__(self, message: str, blocked: dict[int, str] | None = None):
        super().__init__(message)
        #: rank -> human readable description of the operation it blocks on
        self.blocked = dict(blocked or {})


class ProtocolError(ReproError):
    """An internal invariant of a rollback-recovery protocol was violated."""


class InvariantViolation(ProtocolError):
    """A runtime sanitizer check failed (``REPRO_SANITIZE=1``).

    Raised at the exact event that broke one of the paper's protocol
    invariants — logged-iff-cross-epoch, phase monotonicity, SPE
    consistency, recovery-line fix-point stability — so the failure
    surfaces at its root cause rather than as a diverged result many
    recovery rounds later.
    """


class CheckpointError(ReproError):
    """Raised on invalid checkpoint store operations (missing epoch, GC'd)."""


class ConfigError(ReproError):
    """Raised when a workload/protocol configuration is inconsistent."""


class SendDeterminismError(ReproError):
    """Raised when a rank program violates the send-determinism contract.

    The paper's correctness argument (Section IV) relies on every process
    emitting the same sequence of messages in any correct execution; the
    tracer can verify this and raises this error when the recorded sequences
    diverge.
    """
