"""AST pass implementing the RPD determinism rules.

One :class:`DeterminismChecker` visit walks a module and emits
:class:`~repro.lint.rules.LintFinding` records; :func:`lint_source` is the
string-level entry point (parse, visit, apply path scopes and ``noqa``
suppressions).

Design notes
------------
The checker is *name-resolution light*: it tracks import aliases
(``import numpy as np`` makes ``np.random.rand`` recognisable) and, for
the unordered-iteration rule, simple local assignments (``s = set(...)``
followed by ``for x in s``), but it does not attempt type inference.
False negatives are accepted — a linter that misses a hazard is still
useful; one that cries wolf gets ``noqa``-ed into silence.  Every
heuristic below errs toward precision.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .noqa import parse_suppressions
from .rules import PARSE_ERROR_CODE, RULE_CODES, LintFinding

__all__ = ["DeterminismChecker", "lint_source"]

#: time-module attributes that read a host clock
_TIME_CLOCK_FNS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
    "clock_gettime", "clock_gettime_ns", "thread_time", "thread_time_ns",
})
#: datetime classmethods that read a host clock
_DATETIME_NOW_FNS = frozenset({"now", "utcnow", "today"})
#: numpy.random constructors that are fine *when given a seed argument*
_SEEDED_RNG_CTORS = frozenset({"default_rng", "RandomState", "Generator"})
#: builtins that materialise their argument in iteration order
_ORDER_MATERIALISERS = frozenset({"list", "tuple", "iter", "enumerate"})
#: set methods that return another set
_SET_RETURNING_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})
#: callables whose result as a default argument is shared across calls
_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque",
})
#: identifiers that mark an expression as (float) clock-typed for RPD005.
#: Integer logical clocks — epoch, phase, date — compare exactly by design
#: and are NOT listed; they are still caught when compared against a float
#: literal, because any float constant marks the comparison.
_CLOCKISH_NAMES = frozenset({
    "now", "elapsed", "duration", "deadline", "timestamp", "t0", "t1",
})
_CLOCKISH_SUFFIXES = ("_time", "_at", "_seconds", "_ts")


def _terminal_name(node: ast.expr) -> str | None:
    """The last identifier of a Name/Attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted rendering of a call target, for messages."""
    if isinstance(node, ast.Attribute):
        return f"{_dotted(node.value)}.{node.attr}"
    if isinstance(node, ast.Name):
        return node.id
    return "<expr>"


class DeterminismChecker(ast.NodeVisitor):
    """Single-pass visitor collecting RPD findings for one module."""

    def __init__(self) -> None:
        self.findings: list[LintFinding] = []
        # import tracking -----------------------------------------------
        self._random_mods: set[str] = set()       # import random [as r]
        self._numpy_mods: set[str] = set()        # import numpy [as np]
        self._numpy_random: set[str] = set()      # from numpy import random
        self._time_mods: set[str] = set()
        self._os_mods: set[str] = set()
        self._datetime_mods: set[str] = set()
        self._datetime_classes: set[str] = set()  # from datetime import datetime
        #: local name -> (module, original name) for from-imports of
        #: random/time/os functions
        self._from_fns: dict[str, tuple[str, str]] = {}
        # scope stack for set-typed local names (RPD003) -----------------
        self._set_vars: list[set[str]] = [set()]

    # ------------------------------------------------------------------
    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(LintFinding(
            path="", line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0), code=code, message=message,
        ))

    # ------------------------------------------------------------------
    # Imports
    # ------------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self._random_mods.add(local)
            elif alias.name == "numpy" or alias.name.startswith("numpy."):
                if alias.name == "numpy.random" and alias.asname:
                    self._numpy_random.add(alias.asname)
                else:
                    self._numpy_mods.add(local)
            elif alias.name == "time":
                self._time_mods.add(local)
            elif alias.name == "os":
                self._os_mods.add(local)
            elif alias.name == "datetime":
                self._datetime_mods.add(local)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        mod = node.module or ""
        for alias in node.names:
            local = alias.asname or alias.name
            if mod == "numpy" and alias.name == "random":
                self._numpy_random.add(local)
            elif mod == "random":
                self._from_fns[local] = ("random", alias.name)
            elif mod == "time" and alias.name in _TIME_CLOCK_FNS:
                self._from_fns[local] = ("time", alias.name)
            elif mod == "os" and alias.name == "urandom":
                self._from_fns[local] = ("os", alias.name)
            elif mod == "datetime" and alias.name in ("datetime", "date"):
                self._datetime_classes.add(local)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # Scope handling (RPD003 set-variable tracking, RPD006 defaults)
    # ------------------------------------------------------------------
    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef
                        | ast.Lambda) -> None:
        args = node.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if self._is_mutable_literal(default):
                self._emit(default, "RPD006",
                           "mutable default argument is created once and "
                           "shared across calls")

    @staticmethod
    def _is_mutable_literal(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_FACTORIES
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._set_vars.append(set())
        self.generic_visit(node)
        self._set_vars.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._set_vars.append(set())
        self.generic_visit(node)
        self._set_vars.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._set_vars.append(set())
        self.generic_visit(node)
        self._set_vars.pop()

    # ------------------------------------------------------------------
    # RPD003 helpers: which expressions are known to be sets?
    # ------------------------------------------------------------------
    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._set_vars)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (isinstance(func, ast.Attribute)
                    and func.attr in _SET_RETURNING_METHODS):
                return self._is_set_expr(func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    @staticmethod
    def _is_set_annotation(node: ast.expr) -> bool:
        base = node.value if isinstance(node, ast.Subscript) else node
        name = _terminal_name(base)
        return name in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = self._is_set_expr(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                scope = self._set_vars[-1]
                if is_set:
                    scope.add(target.id)
                else:
                    scope.discard(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and self._is_set_annotation(
            node.annotation
        ):
            self._set_vars[-1].add(node.target.id)
        self.generic_visit(node)

    def _check_iteration(self, iter_node: ast.expr) -> None:
        if self._is_set_expr(iter_node):
            self._emit(iter_node, "RPD003",
                       "iteration over a set has no deterministic order; "
                       "wrap in sorted(...) or keep an ordered container")

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension_generators(
        self, generators: Iterable[ast.comprehension]
    ) -> None:
        for gen in generators:
            self._check_iteration(gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension_generators(node.generators)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # Calls: RPD001, RPD002, RPD003 (materialisers/popitem), RPD004
    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        self._check_rng_call(node, func)
        self._check_clock_call(node, func)
        # list(set(...)) and friends materialise in iteration order
        if (isinstance(func, ast.Name)
                and func.id in _ORDER_MATERIALISERS
                and node.args and self._is_set_expr(node.args[0])):
            self._emit(node, "RPD003",
                       f"{func.id}() over a set materialises a "
                       "nondeterministic order; use sorted(...)")
        if isinstance(func, ast.Attribute) and func.attr == "popitem":
            self._emit(node, "RPD003",
                       "dict.popitem() removes an arbitrary end of the "
                       "insertion order; pop an explicit key instead")
        # sorted/min/max/.sort with key=id
        target = _terminal_name(func)
        if target in ("sorted", "min", "max", "sort"):
            for kw in node.keywords:
                if (kw.arg == "key" and isinstance(kw.value, ast.Name)
                        and kw.value.id == "id"):
                    self._emit(node, "RPD004",
                               f"{target}(key=id) orders by allocator "
                               "address; use a stable key")
        self.generic_visit(node)

    def _check_rng_call(self, node: ast.Call, func: ast.expr) -> None:
        # random.<fn>(...) on the module object
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base, attr = func.value.id, func.attr
            if base in self._random_mods:
                if attr in ("Random", "SystemRandom"):
                    if attr == "SystemRandom" or not node.args:
                        self._emit(node, "RPD001",
                                   f"{_dotted(func)}() without a seed draws "
                                   "from OS entropy")
                else:
                    self._emit(node, "RPD001",
                               f"module-level {_dotted(func)}() uses the "
                               "shared unseeded RNG")
                return
            if base in self._numpy_random:
                self._check_numpy_random_attr(node, func, attr)
                return
        # np.random.<fn>(...)
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in self._numpy_mods
                and func.value.attr == "random"):
            self._check_numpy_random_attr(node, func, func.attr)
            return
        # from random import randrange; randrange(...)
        if isinstance(func, ast.Name):
            origin = self._from_fns.get(func.id)
            if origin is not None and origin[0] == "random":
                if origin[1] == "Random" and node.args:
                    return  # seeded instance construction
                self._emit(node, "RPD001",
                           f"module-level {origin[0]}.{origin[1]}() uses "
                           "the shared unseeded RNG")

    def _check_numpy_random_attr(self, node: ast.Call, func: ast.expr,
                                 attr: str) -> None:
        if attr in _SEEDED_RNG_CTORS and node.args:
            return  # explicitly seeded generator
        self._emit(node, "RPD001",
                   f"{_dotted(func)}() draws from numpy's global/unseeded "
                   "RNG; use numpy.random.default_rng(seed)")

    def _check_clock_call(self, node: ast.Call, func: ast.expr) -> None:
        if isinstance(func, ast.Attribute):
            value, attr = func.value, func.attr
            if isinstance(value, ast.Name):
                if value.id in self._time_mods and attr in _TIME_CLOCK_FNS:
                    self._emit(node, "RPD002",
                               f"wall-clock read {_dotted(func)}()")
                    return
                if value.id in self._os_mods and attr == "urandom":
                    self._emit(node, "RPD002",
                               "os.urandom() reads OS entropy")
                    return
                if (value.id in self._datetime_classes
                        and attr in _DATETIME_NOW_FNS):
                    self._emit(node, "RPD002",
                               f"wall-clock read {_dotted(func)}()")
                    return
            # datetime.datetime.now(...)
            if (isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and value.value.id in self._datetime_mods
                    and value.attr in ("datetime", "date")
                    and attr in _DATETIME_NOW_FNS):
                self._emit(node, "RPD002",
                           f"wall-clock read {_dotted(func)}()")
                return
        if isinstance(func, ast.Name):
            origin = self._from_fns.get(func.id)
            if origin is not None and origin[0] in ("time", "os"):
                self._emit(node, "RPD002",
                           f"wall-clock read {origin[0]}.{origin[1]}()")

    # ------------------------------------------------------------------
    # RPD004 (id comparisons) and RPD005 (float equality)
    # ------------------------------------------------------------------
    @staticmethod
    def _is_id_call(node: ast.expr) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id")

    @classmethod
    def _is_clockish(cls, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Call):
            name = _terminal_name(node.func)
            return name in ("now", "time", "perf_counter", "monotonic")
        name = _terminal_name(node)
        if name is None:
            return False
        low = name.lower()
        return low in _CLOCKISH_NAMES or low.endswith(_CLOCKISH_SUFFIXES)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            left, right = operands[i], operands[i + 1]
            if isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)):
                if self._is_id_call(left) and self._is_id_call(right):
                    self._emit(node, "RPD004",
                               "ordering id() values compares allocator "
                               "addresses")
            elif isinstance(op, (ast.Eq, ast.NotEq)):
                if self._is_clockish(left) or self._is_clockish(right):
                    self._emit(node, "RPD005",
                               "exact ==/!= on a clock/epoch/phase-typed "
                               "expression; use a tolerance or integer "
                               "logical clocks")
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # RPD007: bare except
    # ------------------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit(node, "RPD007",
                       "bare `except:` also catches SystemExit/"
                       "KeyboardInterrupt and masks crash isolation")
        self.generic_visit(node)


def lint_source(
    source: str,
    path: str = "<string>",
    select: frozenset[str] | None = None,
    ignore: frozenset[str] | None = None,
) -> list[LintFinding]:
    """Lint one module's source text.

    ``select``/``ignore`` filter by rule code *after* path scoping and
    ``noqa`` suppression.  Unparseable source yields a single
    ``RPD000`` finding (a broken file cannot be certified deterministic).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintFinding(path=path, line=exc.lineno or 0,
                            col=exc.offset or 0, code=PARSE_ERROR_CODE,
                            message=f"file does not parse: {exc.msg}")]
    checker = DeterminismChecker()
    checker.visit(tree)
    suppressions = parse_suppressions(source)
    out: list[LintFinding] = []
    for finding in checker.findings:
        rule = RULE_CODES[finding.code]
        if not rule.applies_to(path):
            continue
        if suppressions.suppresses(finding.line, finding.code):
            continue
        if select is not None and finding.code not in select:
            continue
        if ignore is not None and finding.code in ignore:
            continue
        out.append(LintFinding(path=path, line=finding.line, col=finding.col,
                               code=finding.code, message=finding.message))
    out.sort(key=lambda f: (f.line, f.col, f.code))
    return out
