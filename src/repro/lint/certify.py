"""Send-determinism certification: static verdicts, differential dynamic
verification, and the campaign-gate registry behind ``repro certify``.

Three layers, weakest to strongest evidence:

1. **Static** — :mod:`repro.lint.sendet` taint analysis over the
   ``RankProgram`` subclasses found under the given paths, classifying
   each kernel PROVEN_SD / CONDITIONAL / VIOLATION / UNKNOWN with
   source→sink evidence paths (paper Section II-A: a send-deterministic
   rank emits the same send sequence regardless of the delivery order of
   non-causally-related messages).
2. **Dynamic** (``--dynamic``) — the differential delivery-order
   verifier: run each kernel under K adversarial delivery schedules
   (seeded network jitter perturbs every message's transit time, hence
   every ANY_SOURCE race) and require bit-identical per-rank send-witness
   hash chains (:func:`repro.simmpi.trace.send_witness_chains`) across
   all K.  A static verdict the verifier contradicts is downgraded to
   VIOLATION — the analysis is unsound evidence, the witness is ground
   truth.
3. **Registry** — verdicts keyed by kernel name + code digest land in a
   JSON registry (``results/certification.json`` by default).  The
   campaign entry points (``repro table1 / sweep / chaos``) consult it at
   start via :func:`check_campaign_certification`, warning on
   uncertified, stale or VIOLATION kernels — or refusing to run with
   ``--strict-sd``.

The registry stores *verdicts*, never witness chains: chains fold salted
``hash()`` digests for str/bytes payloads and are only comparable within
one interpreter invocation.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..errors import ConfigError
from .sendet import (
    KernelReport,
    ModuleIndex,
    SendetResult,
    analyze_paths,
    kernel_code_digest,
)

__all__ = [
    "REGISTRY_VERSION",
    "DEFAULT_REGISTRY",
    "DEFAULT_SCHEDULES",
    "DEFAULT_JITTER",
    "KERNEL_RUNS",
    "CHAOS_KERNEL_CLASSES",
    "OK_VERDICTS",
    "chaos_pool_classes",
    "CertRun",
    "DynamicVerdict",
    "dynamic_verify",
    "build_registry",
    "save_registry",
    "load_registry",
    "registry_entry",
    "current_kernel_digest",
    "check_campaign_certification",
    "render_registry_text",
]

#: version of the certification registry document
REGISTRY_VERSION = 1

#: where ``repro certify`` writes (and the campaign gates read) verdicts
DEFAULT_REGISTRY = os.path.join("results", "certification.json")

#: adversarial delivery schedules per kernel (schedule 0 is jitter-free)
DEFAULT_SCHEDULES = 8

#: relative transit-time jitter for the adversarial schedules, in [0, 1)
DEFAULT_JITTER = 0.35

#: seed base for the jitter streams; schedule ``s`` uses ``base + s``
_SEED_BASE = 2026


@dataclass(frozen=True)
class CertRun:
    """How to instantiate one kernel for dynamic verification.

    Configurations are deliberately tiny — the verifier buys its evidence
    from K delivery interleavings, not from scale — but every kernel must
    actually communicate (ANY_SOURCE races need messages to race).
    """

    nprocs: int
    factory: Callable[[int, int], Any]


def _kernel_runs() -> dict[str, CertRun]:
    # imported lazily so `repro.lint` never drags the app kernels (and
    # numpy workspaces) into a pure static-analysis run
    from ..apps import (
        ADIKernel,
        BTKernel,
        CGKernel,
        FTKernel,
        ISKernel,
        LUKernel,
        MGKernel,
        PingPong,
        ReduceTreeKernel,
        SPKernel,
        Stencil1D,
        Stencil2D,
    )

    return {
        "Stencil1D": CertRun(4, lambda r, s: Stencil1D(r, s, niters=6, cells=4)),
        "Stencil2D": CertRun(4, lambda r, s: Stencil2D(r, s, niters=4, block=3)),
        "CGKernel": CertRun(4, lambda r, s: CGKernel(r, s, niters=6, block=4)),
        "LUKernel": CertRun(
            4, lambda r, s: LUKernel(r, s, niters=3, nblocks=3, block=4)
        ),
        "FTKernel": CertRun(4, lambda r, s: FTKernel(r, s, niters=4, slab=2)),
        "ISKernel": CertRun(
            4,
            lambda r, s: ISKernel(r, s, niters=3, keys_per_rank=32,
                                  max_key=1 << 10),
        ),
        "MGKernel": CertRun(4, lambda r, s: MGKernel(r, s, niters=4, levels=2)),
        "BTKernel": CertRun(4, lambda r, s: BTKernel(r, s, niters=3, block=4)),
        "SPKernel": CertRun(4, lambda r, s: SPKernel(r, s, niters=3, block=4)),
        "ADIKernel": CertRun(4, lambda r, s: ADIKernel(r, s, niters=3, block=4)),
        "ReduceTreeKernel": CertRun(
            6, lambda r, s: ReduceTreeKernel(r, s, niters=4)
        ),
        "PingPong": CertRun(
            2, lambda r, s: PingPong(r, s, sizes=[64, 1024], reps=2)
        ),
    }


class _LazyRuns(dict):
    """``KERNEL_RUNS`` facade that defers the apps import to first use."""

    def _fill(self) -> None:
        if not dict.__len__(self):
            dict.update(self, _kernel_runs())

    def __getitem__(self, key):  # type: ignore[override]
        self._fill()
        return dict.__getitem__(self, key)

    def __contains__(self, key):  # type: ignore[override]
        self._fill()
        return dict.__contains__(self, key)

    def __iter__(self):  # type: ignore[override]
        self._fill()
        return dict.__iter__(self)

    def __len__(self):  # type: ignore[override]
        self._fill()
        return dict.__len__(self)

    def keys(self):  # type: ignore[override]
        self._fill()
        return dict.keys(self)

    def items(self):  # type: ignore[override]
        self._fill()
        return dict.items(self)


#: kernel class name -> dynamic-verification configuration
KERNEL_RUNS: dict[str, CertRun] = _LazyRuns()

#: chaos-campaign kernel pool names -> kernel class names (the chaos gate
#: certifies by pool name, the registry is keyed by class name)
CHAOS_KERNEL_CLASSES: dict[str, str] = {
    "stencil": "Stencil1D",
    "stencil2d": "Stencil2D",
    "cg": "CGKernel",
    "lu": "LUKernel",
    "reduce": "ReduceTreeKernel",
    "pingpong": "PingPong",
}


# ----------------------------------------------------------------------
# Dynamic differential verification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DynamicVerdict:
    """Outcome of the differential delivery-order verifier on one kernel."""

    kernel: str
    schedules: int
    deterministic: bool
    detail: str

    def to_json(self) -> dict[str, Any]:
        return {
            "kernel": self.kernel,
            "schedules": self.schedules,
            "deterministic": self.deterministic,
            "detail": self.detail,
        }


def dynamic_verify(
    kernel: str,
    schedules: int = DEFAULT_SCHEDULES,
    jitter: float = DEFAULT_JITTER,
    base_seed: int = _SEED_BASE,
) -> DynamicVerdict:
    """Run ``kernel`` under K adversarial delivery schedules and compare
    per-rank send-witness chains bit-exactly.

    Schedule 0 is the jitter-free canonical execution; schedules 1..K-1
    perturb every transit time by a seeded relative jitter, reshuffling
    the arrival order of concurrent messages (every ANY_SOURCE race gets
    K chances to resolve differently).  Send-determinism demands the
    witness chains not care.
    """
    from ..core.controller import build_ft_world
    from ..simmpi.network import TimingModel
    from ..simmpi.trace import send_witness_chains

    if kernel not in KERNEL_RUNS:
        raise ConfigError(
            f"no dynamic-verification config for kernel {kernel!r} "
            f"(have {sorted(KERNEL_RUNS)})"
        )
    run = KERNEL_RUNS[kernel]
    ref_chains: list[str] | None = None
    for s in range(max(2, schedules)):
        timing = TimingModel(jitter=0.0 if s == 0 else jitter)
        world, _controller = build_ft_world(
            run.nprocs, run.factory, timing=timing, network_seed=base_seed + s
        )
        world.launch()
        world.run()
        chains = send_witness_chains(world.tracer)
        if ref_chains is None:
            ref_chains = chains
        elif chains != ref_chains:
            bad = [r for r, (a, b) in enumerate(zip(ref_chains, chains))
                   if a != b]
            return DynamicVerdict(
                kernel, schedules, False,
                f"delivery schedule {s} changed the send sequence of "
                f"rank(s) {bad}")
    return DynamicVerdict(
        kernel, schedules, True,
        f"{max(2, schedules)} delivery schedules "
        f"(jitter={jitter}), witness chains identical")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def build_registry(
    paths: list[str],
    kernels: Iterable[str] | None = None,
    dynamic: bool = False,
    schedules: int = DEFAULT_SCHEDULES,
    jitter: float = DEFAULT_JITTER,
    base_seed: int = _SEED_BASE,
) -> dict[str, Any]:
    """Certify every kernel under ``paths``; returns the registry document.

    ``kernels`` restricts both passes to the named kernel classes.  With
    ``dynamic``, kernels that have a :data:`KERNEL_RUNS` configuration are
    also run through :func:`dynamic_verify`; a diverging kernel's verdict
    becomes VIOLATION regardless of what the static pass proved.
    """
    result: SendetResult = analyze_paths(paths)
    wanted = set(kernels) if kernels is not None else None
    entries: dict[str, Any] = {}
    for report in result.reports:
        if wanted is not None and report.name not in wanted:
            continue
        entry = report.to_json()
        entry["static"] = report.verdict
        entry["dynamic"] = None
        if dynamic and report.name in KERNEL_RUNS:
            dv = dynamic_verify(report.name, schedules=schedules,
                                jitter=jitter, base_seed=base_seed)
            entry["dynamic"] = dv.to_json()
            if not dv.deterministic:
                entry["verdict"] = "VIOLATION"
        entries[report.name] = entry
    return {
        "v": REGISTRY_VERSION,
        "kernels": entries,
        "errors": list(result.errors),
        "noqa_findings": [f.to_json() for f in result.noqa_findings],
    }


def save_registry(registry: dict[str, Any], path: str) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(registry, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_registry(path: str) -> dict[str, Any] | None:
    """The registry document, or ``None`` when absent/unreadable."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(doc, dict) or doc.get("v") != REGISTRY_VERSION:
        return None
    return doc


def registry_entry(registry: dict[str, Any] | None,
                   kernel: str) -> dict[str, Any] | None:
    if registry is None:
        return None
    entry = registry.get("kernels", {}).get(kernel)
    return entry if isinstance(entry, dict) else None


def current_kernel_digest(cls: type) -> str | None:
    """Code digest of a kernel *class object*, for staleness checks.

    Recomputed from the live source files of the class's MRO, so a
    registry entry recorded for an older revision of the kernel is
    detected as stale.  ``None`` when source is unavailable (REPL-defined
    classes, frozen apps) — callers treat that as "cannot check".
    """
    import inspect

    index = ModuleIndex()
    seen: set[str] = set()
    try:
        for klass in cls.__mro__:
            # mirror the static index: the analyzer treats ABC/Generic/
            # object as known-external bases and never indexes them, so
            # indexing e.g. stdlib abc.py here would skew the digest
            if klass.__name__ in ("ABC", "object", "Generic"):
                continue
            path = inspect.getsourcefile(klass)
            if path is None or path in seen:
                continue
            seen.add(path)
            with open(path, encoding="utf-8") as fh:
                index.add_source(fh.read(), path)
        return kernel_code_digest(index, cls.__name__)
    except (OSError, TypeError):
        return None


#: verdicts that count as "certified send-deterministic"
OK_VERDICTS = frozenset({"PROVEN_SD", "CONDITIONAL"})


def check_campaign_certification(
    kernels: Iterable[type | str],
    registry_path: str = DEFAULT_REGISTRY,
    strict: bool = False,
) -> list[str]:
    """Campaign-start gate: is every kernel we are about to run certified?

    ``kernels`` mixes kernel classes (digest-checked against the live
    source) and bare class names (verdict-checked only).  Returns warning
    strings — empty when everything is certified send-deterministic.
    With ``strict``, any warning raises :class:`~repro.errors.ConfigError`
    instead (the ``--strict-sd`` flag).
    """
    registry = load_registry(registry_path)
    warnings: list[str] = []
    if registry is None:
        names = sorted(
            k if isinstance(k, str) else k.__name__ for k in kernels
        )
        warnings.append(
            f"no certification registry at {registry_path} — kernel(s) "
            f"{', '.join(names)} are uncertified; run `repro certify "
            f"src/repro/apps --dynamic` first"
        )
    else:
        for kernel in sorted(
            set(kernels), key=lambda k: k if isinstance(k, str) else k.__name__
        ):
            name = kernel if isinstance(kernel, str) else kernel.__name__
            entry = registry_entry(registry, name)
            if entry is None:
                warnings.append(
                    f"kernel {name} has no entry in {registry_path} — "
                    f"uncertified")
                continue
            verdict = entry.get("verdict")
            if verdict not in OK_VERDICTS:
                warnings.append(
                    f"kernel {name} is certified {verdict}: "
                    f"{_entry_why(entry)}")
                continue
            if not isinstance(kernel, str):
                digest = current_kernel_digest(kernel)
                if digest is not None and digest != entry.get("digest"):
                    warnings.append(
                        f"kernel {name} changed since certification "
                        f"(digest {digest} != recorded "
                        f"{entry.get('digest')}) — re-run `repro certify`")
    if warnings and strict:
        raise ConfigError(
            "--strict-sd: refusing to run with uncertified kernels:\n  "
            + "\n  ".join(warnings)
        )
    return warnings


def _entry_why(entry: dict[str, Any]) -> str:
    findings = entry.get("findings") or []
    if findings:
        first = findings[0]
        return f"{len(findings)} finding(s), e.g. {first.get('code')} at " \
               f"{first.get('path')}:{first.get('line')}"
    dynamic = entry.get("dynamic")
    if isinstance(dynamic, dict) and not dynamic.get("deterministic", True):
        return dynamic.get("detail", "dynamic verification diverged")
    return "see registry entry"


def chaos_pool_classes(names: Iterable[str]) -> list[type]:
    """Resolve chaos-campaign pool names to kernel classes (unknown names
    are skipped — the campaign itself validates the pool)."""
    from .. import apps

    return [
        getattr(apps, CHAOS_KERNEL_CLASSES[n])
        for n in names
        if n in CHAOS_KERNEL_CLASSES
    ]


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_registry_text(registry: dict[str, Any]) -> str:
    """Human-readable certification table for ``repro certify``."""
    lines: list[str] = []
    kernels = registry.get("kernels", {})
    width = max((len(n) for n in kernels), default=6)
    for name in sorted(kernels):
        entry = kernels[name]
        dyn = entry.get("dynamic")
        if isinstance(dyn, dict):
            dyn_txt = ("deterministic" if dyn.get("deterministic")
                       else "DIVERGED") + f" ({dyn.get('schedules')} schedules)"
        else:
            dyn_txt = "not run"
        lines.append(
            f"{name:<{width}}  {entry.get('verdict', '?'):<12} "
            f"static={entry.get('static', '?'):<12} dynamic={dyn_txt}"
        )
        for finding in entry.get("findings") or []:
            lines.append(f"  {finding.get('code')} "
                         f"{finding.get('path')}:{finding.get('line')}: "
                         f"{finding.get('message')}")
        for assumption in entry.get("assumptions") or []:
            lines.append(f"  assumes: {assumption}")
    for finding in registry.get("noqa_findings") or []:
        lines.append(f"{finding.get('path')}:{finding.get('line')}: "
                     f"{finding.get('code')} {finding.get('message')}")
    for error in registry.get("errors") or []:
        lines.append(f"error: {error}")
    n = len(kernels)
    ok = sum(1 for e in kernels.values() if e.get("verdict") in OK_VERDICTS)
    lines.append(f"{n} kernel(s) analyzed, {ok} certified send-deterministic")
    return "\n".join(lines)
