"""Rule catalog for the determinism linter.

Every rule has a stable ``RPDxxx`` code (Repro Protocol Determinism), a
one-line summary used by ``repro lint --list-rules`` and the docs, and a
*path scope* restricting where it fires.  The scopes encode the paper's
correctness perimeter:

* hot-path packages (``core/``, ``simmpi/``, ``sweep/``) carry the
  bit-reproducibility burden — iteration-order hazards are only flagged
  there;
* ``obs/`` is the one subsystem allowed to look at clocks (it binds the
  *virtual* clock, and its exporters are off the replay path), so the
  wall-clock rule exempts it.

Files *outside* the ``repro`` package tree (test fixtures, scratch
scripts handed to ``repro lint``) get every rule: an unknown file is
treated as hot-path until proven otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["LintFinding", "Rule", "RULES", "RULE_CODES", "rule", "module_parts"]


def module_parts(path: str) -> tuple[str, ...] | None:
    """Locate ``path`` inside the ``repro`` package; ``None`` if outside.

    Returns the parts *after* the last ``repro`` component, so
    ``src/repro/core/protocol.py`` -> ``("core", "protocol.py")``.
    """
    parts = path.replace("\\", "/").split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return tuple(parts[i + 1:])
    return None


def _in_packages(path: str, packages: frozenset[str]) -> bool:
    """True when the file is in one of ``packages`` — or outside repro."""
    parts = module_parts(path)
    if parts is None or len(parts) < 2:
        return True  # unknown location (or top-level module): strict
    return parts[0] in packages


@dataclass(frozen=True)
class LintFinding:
    """One linter hit, ready for text or JSON rendering."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass(frozen=True)
class Rule:
    """Static description of one lint rule (the logic lives in the checker)."""

    code: str
    name: str
    summary: str
    #: path -> bool; the checker drops findings whose file is out of scope
    applies_to: Callable[[str], bool]


def _everywhere(_path: str) -> bool:
    return True


def _outside_obs(path: str) -> bool:
    parts = module_parts(path)
    if parts is None or len(parts) < 2:
        return True
    return parts[0] != "obs"


_ORDER_SENSITIVE = frozenset({"core", "simmpi", "sweep"})


def _order_sensitive(path: str) -> bool:
    return _in_packages(path, _ORDER_SENSITIVE)


RULES: tuple[Rule, ...] = (
    Rule(
        code="RPD001",
        name="unseeded-rng",
        summary="module-level random.* / numpy.random call draws from "
                "unseeded global state; use random.Random(seed) or "
                "numpy.random.default_rng(seed)",
        applies_to=_everywhere,
    ),
    Rule(
        code="RPD002",
        name="wall-clock-read",
        summary="wall-clock read (time.time/perf_counter, datetime.now, "
                "os.urandom, ...) outside obs/ breaks bit-reproducibility; "
                "use the engine's virtual clock",
        applies_to=_outside_obs,
    ),
    Rule(
        code="RPD003",
        name="unordered-iteration",
        summary="iteration over set/frozenset (or dict.popitem) in an "
                "order-sensitive package; wrap in sorted(...) or use an "
                "ordered container",
        applies_to=_order_sensitive,
    ),
    Rule(
        code="RPD004",
        name="id-ordering",
        summary="ordering by id() depends on allocator addresses and "
                "varies run to run; order by a stable key",
        applies_to=_everywhere,
    ),
    Rule(
        code="RPD005",
        name="float-equality",
        summary="float ==/!= on a clock/epoch/phase-typed expression; "
                "compare with a tolerance or use integer logical clocks",
        applies_to=_everywhere,
    ),
    Rule(
        code="RPD006",
        name="mutable-default",
        summary="mutable default argument is shared across calls and "
                "makes behaviour depend on call history",
        applies_to=_everywhere,
    ),
    Rule(
        code="RPD007",
        name="bare-except",
        summary="bare `except:` swallows SystemExit/KeyboardInterrupt and "
                "masks crash isolation in sweep workers; catch Exception "
                "(or narrower)",
        applies_to=_everywhere,
    ),
    # ------------------------------------------------------------------
    # SD1xx — send-determinism certification of RankProgram kernels
    # (the taint analysis in repro.lint.sendet; paper Section II-A).
    # These fire wherever a RankProgram subclass is defined.
    # ------------------------------------------------------------------
    Rule(
        code="SD100",
        name="bare-sd-noqa",
        summary="SD suppression marker without a justification; SD "
                "suppressions must read `# repro: noqa[SDxxx]: <reason>` "
                "and are ignored until justified",
        applies_to=_everywhere,
    ),
    Rule(
        code="SD101",
        name="order-dependent-send-data",
        summary="a send/collective argument (destination, payload, tag, "
                "size) depends on arrival order: ANY_SOURCE receive "
                "results or arrival metadata flow into it without an "
                "order-neutralizer (sorted/min/max/len)",
        applies_to=_everywhere,
    ),
    Rule(
        code="SD102",
        name="order-dependent-control-flow",
        summary="a branch or loop condition dominating a send depends on "
                "arrival order (ANY_SOURCE results, status metadata); the "
                "send *sequence* then varies with delivery interleaving",
        applies_to=_everywhere,
    ),
    Rule(
        code="SD103",
        name="randomness-reaches-send",
        summary="unseeded randomness (random.* global state, "
                "np.random.default_rng() without a seed) reaches a send "
                "argument or a condition dominating a send",
        applies_to=_everywhere,
    ),
    Rule(
        code="SD104",
        name="unordered-iteration-reaches-send",
        summary="set/frozenset iteration order reaches a send argument or "
                "state used by sends; wrap in sorted(...) or use an "
                "ordered container",
        applies_to=_everywhere,
    ),
    Rule(
        code="SD105",
        name="time-reaches-send",
        summary="a clock reading (wall clock, or api.now() — the virtual "
                "clock moves with delivery timing) reaches a send "
                "argument or a condition dominating a send",
        applies_to=_everywhere,
    ),
    Rule(
        code="SD106",
        name="address-reaches-send",
        summary="an id()-derived value (allocator address, varies run to "
                "run) reaches a send argument or a condition dominating "
                "a send",
        applies_to=_everywhere,
    ),
)

#: ``code -> Rule`` view of the catalog
RULE_CODES: dict[str, Rule] = {r.code: r for r in RULES}

#: pseudo-code attached to files the linter cannot parse
PARSE_ERROR_CODE = "RPD000"


def rule(code: str) -> Rule:
    """Look up a rule by code; raises ``KeyError`` on unknown codes."""
    return RULE_CODES[code]
