"""``# repro: noqa`` suppression parsing.

A finding is suppressed when its *physical line* carries a marker:

* ``# repro: noqa`` — suppress every rule on that line;
* ``# repro: noqa[RPD002]`` — suppress the listed code;
* ``# repro: noqa[RPD001,RPD003]`` — suppress several codes.

The marker is deliberately namespaced (``repro:``) so it never collides
with flake8/ruff's own ``# noqa`` and a reviewer can grep for protocol
suppressions specifically.  Parsing is line-based (no tokenizer): a
marker inside a string literal would also suppress, which is acceptable
for a repo-internal tool and keeps the scan allocation-free.
"""

from __future__ import annotations

import re

__all__ = ["Suppressions", "parse_suppressions"]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)

#: sentinel meaning "every code suppressed on this line"
_ALL = frozenset({"*"})


class Suppressions:
    """Per-file map of line number -> suppressed rule codes."""

    __slots__ = ("_lines",)

    def __init__(self, lines: dict[int, frozenset[str]]):
        self._lines = lines

    def suppresses(self, line: int, code: str) -> bool:
        codes = self._lines.get(line)
        if codes is None:
            return False
        return codes is _ALL or code in codes

    def __len__(self) -> int:
        return len(self._lines)


def parse_suppressions(source: str) -> Suppressions:
    """Scan ``source`` for noqa markers, one entry per marked line."""
    lines: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "noqa" not in text:  # cheap pre-filter before the regex
            continue
        m = _NOQA_RE.search(text)
        if m is None:
            continue
        raw = m.group("codes")
        if raw is None:
            lines[lineno] = _ALL
        else:
            lines[lineno] = frozenset(
                c.strip().upper() for c in raw.split(",") if c.strip()
            )
    return Suppressions(lines)
