"""``# repro: noqa`` suppression parsing.

A finding is suppressed when its *physical line* carries a marker:

* ``# repro: noqa`` — suppress every RPD rule on that line;
* ``# repro: noqa[RPD002]`` — suppress the listed code;
* ``# repro: noqa[RPD001,RPD003]`` — suppress several codes;
* ``# repro: noqa[SD101]: children combined in sorted order`` — suppress
  an SD (send-determinism) finding *with the mandatory justification*.

The SD family carries the certifier's verdicts, so its suppressions are
held to a higher bar than the RPD infrastructure rules: an SD code can
only be suppressed by an **explicit code with a justification** after a
colon.  A bare ``noqa[SD101]`` marker does not suppress — the original
finding stays and the marker itself is reported as ``SD100`` — and a
blanket ``# repro: noqa`` never silences SD findings.  Justified SD
suppressions downgrade a kernel's verdict to CONDITIONAL rather than
erasing the evidence (see :mod:`repro.lint.sendet`).

The marker is deliberately namespaced (``repro:``) so it never collides
with flake8/ruff's own ``# noqa`` and a reviewer can grep for protocol
suppressions specifically.  Parsing is line-based (no tokenizer): a
marker inside a string literal would also suppress, which is acceptable
for a repo-internal tool and keeps the scan allocation-free.
"""

from __future__ import annotations

import re

__all__ = ["Suppressions", "parse_suppressions"]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?"
    r"(?::\s*(?P<reason>\S.*?)\s*$)?",
    re.IGNORECASE,
)

#: sentinel meaning "every code suppressed on this line"
_ALL = frozenset({"*"})

#: rule families requiring a justification after the code list
_JUSTIFIED_PREFIX = "SD"


def _needs_reason(code: str) -> bool:
    return code.upper().startswith(_JUSTIFIED_PREFIX)


class Suppressions:
    """Per-file map of line number -> (suppressed codes, justification)."""

    __slots__ = ("_lines",)

    def __init__(self, lines: dict[int, tuple[frozenset[str], str | None]]):
        self._lines = lines

    def suppresses(self, line: int, code: str) -> bool:
        entry = self._lines.get(line)
        if entry is None:
            return False
        codes, reason = entry
        if _needs_reason(code):
            # SD findings: explicit code + justification, no blanket pass
            return code in codes and reason is not None
        return codes is _ALL or code in codes

    def justification(self, line: int, code: str) -> str | None:
        """The reason string when ``code`` is suppressed-with-reason on
        ``line`` — what the certifier records as a CONDITIONAL assumption."""
        entry = self._lines.get(line)
        if entry is None:
            return None
        codes, reason = entry
        if code in codes and reason is not None:
            return reason
        return None

    def bare_sd_lines(self) -> list[tuple[int, frozenset[str]]]:
        """Lines carrying SD codes *without* a justification — each one is
        an ``SD100`` finding in its own right."""
        out = []
        for line in sorted(self._lines):
            codes, reason = self._lines[line]
            if reason is not None or codes is _ALL:
                continue
            sd = frozenset(c for c in codes if _needs_reason(c))
            if sd:
                out.append((line, sd))
        return out

    def __len__(self) -> int:
        return len(self._lines)


def parse_suppressions(source: str) -> Suppressions:
    """Scan ``source`` for noqa markers, one entry per marked line."""
    lines: dict[int, tuple[frozenset[str], str | None]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "noqa" not in text:  # cheap pre-filter before the regex
            continue
        m = _NOQA_RE.search(text)
        if m is None:
            continue
        raw = m.group("codes")
        reason = m.group("reason")
        if raw is None:
            lines[lineno] = (_ALL, reason)
        else:
            codes = frozenset(
                c.strip().upper() for c in raw.split(",") if c.strip()
            )
            lines[lineno] = (codes, reason)
    return Suppressions(lines)
