"""Runtime protocol-invariant sanitizer (``REPRO_SANITIZE=1``).

The linter certifies the *code*; the sanitizer certifies the *run*.  When
enabled it attaches cheap per-event assertions to the protocol, recovery
and engine layers, checking live the invariants the paper's Section IV
correctness argument rests on:

``logged_cross_epoch``
    A message enters the sender-based log iff it crossed epochs upward
    (``epoch_send < epoch_recv`` — Lemma 1's "logged iff past-to-future").
``spe_non_logged``
    Every SPE cell records a *non*-logged message, so ``epoch_recv <=
    epoch_send`` whenever epoch-crossing logging is on (the GC bound
    "nobody rolls below the smallest current epoch" depends on it).
``phase_lamport``
    Phases propagate as a Lamport max: on delivery the receiver's phase
    becomes ``max(own, sender's + crossed)`` and never decreases within
    an execution branch.
``spe_table_ordered``
    An uploaded SPE table is internally consistent with the delivered
    messages that built it: epoch order is start-date order, and every
    recorded reception epoch is a real epoch (``>= 1``).
``rl_fixpoint_stable``
    The recovery line is a fix-point: re-running the solver on its own
    output changes nothing.
``rl_monotone``
    The fix-point only moves restart epochs down: no rank is asked to
    restart above its current epoch (or, for failed ranks, above the
    checkpoint it was restored from).
``engine_pending_audit``
    The engine's O(1) pending-event counter agrees with the queue's
    actual live-entry count (amortised: every ``AUDIT_INTERVAL``
    dispatches).
``send_witness``
    Send-determinism, checked live (paper Section II-A): the first
    emission of each send date registers its witness ``(dst, tag, size,
    payload digest)``; any recovery re-emission of the same date must
    reproduce it bit-for-bit.  A replay whose payload was not retained
    (``digest=None``) still checks destination, tag and size.  This is
    the runtime twin of the static SD certifier in
    :mod:`repro.lint.sendet`.

Cost model: the enabled checks are O(1) per event except the two
recovery-line checks (once per recovery round) and the engine audit
(amortised O(1)).  When *disabled* — the default — components cache
``None`` instead of a sanitizer, exactly the observability subsystem's
cached-instrument pattern, so the hot path pays one identity comparison
(measured ~0 in ``benchmarks/test_sanitize_overhead.py``).

A violation raises :class:`repro.errors.InvariantViolation` at the event
that broke the invariant, with the protocol context in the message —
turning "the results diverged three recoveries later" into a stack trace
at the root cause.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Mapping

from ..errors import InvariantViolation

__all__ = [
    "ENV_VAR",
    "AUDIT_INTERVAL",
    "INVARIANTS",
    "Sanitizer",
    "sanitize_enabled",
    "sanitizer_for",
]

#: environment switch; any value except 0/false/no/off enables
ENV_VAR = "REPRO_SANITIZE"
_FALSY = frozenset({"", "0", "false", "no", "off"})

#: engine dispatches between pending-counter audits (power of two: the
#: dispatch-loop test is a mask, not a modulo)
AUDIT_INTERVAL = 1024

#: every invariant the sanitizer can certify, in documentation order
INVARIANTS: tuple[str, ...] = (
    "logged_cross_epoch",
    "spe_non_logged",
    "phase_lamport",
    "spe_table_ordered",
    "rl_fixpoint_stable",
    "rl_monotone",
    "engine_pending_audit",
    "send_witness",
)


def sanitize_enabled(override: bool | None = None) -> bool:
    """Is the sanitizer on?  ``override`` beats the environment."""
    if override is not None:
        return bool(override)
    return os.environ.get(ENV_VAR, "").strip().lower() not in _FALSY


def sanitizer_for(obs: Any = None, override: bool | None = None) -> "Sanitizer | None":
    """The component-side constructor: a :class:`Sanitizer` when enabled,
    else ``None`` — callers cache the result and guard every check with
    one ``is not None`` comparison (the cached-instrument pattern)."""
    return Sanitizer(obs) if sanitize_enabled(override) else None


class Sanitizer:
    """Live invariant checks with per-invariant execution counts.

    Counts land both in ``self.checks`` (registry-free assertions) and,
    when an enabled metrics registry is supplied, in the labelled counter
    ``sanitize.checks`` so CI can prove every invariant actually ran.
    """

    __slots__ = ("checks", "_cells", "_witness")

    def __init__(self, obs: Any = None):
        self.checks: dict[str, int] = {}
        #: rank -> {send date -> (dst, tag, size, digest)} witness registry
        self._witness: dict[int, dict[int, tuple]] = {}
        if obs is not None and getattr(obs, "enabled", False):
            # per-invariant cardinality is the fixed INVARIANTS tuple, so
            # every series slot-resolves at construction
            counter = obs.counter("sanitize.checks", ("invariant",))
            self._cells = {name: counter.slot((name,)) for name in INVARIANTS}
        else:
            self._cells = None

    # ------------------------------------------------------------------
    def _tick(self, name: str) -> None:
        self.checks[name] = self.checks.get(name, 0) + 1
        if self._cells is not None:
            self._cells[name].n += 1

    @staticmethod
    def _fail(name: str, detail: str) -> None:
        raise InvariantViolation(f"sanitizer[{name}]: {detail}")

    # ------------------------------------------------------------------
    # Protocol-layer checks (per logging decision / per delivery)
    # ------------------------------------------------------------------
    def logged_cross_epoch(self, rank: int, epoch_send: int, epoch_recv: int,
                           log_enabled: bool) -> None:
        """Called when a message is appended to the sender-based log."""
        self._tick("logged_cross_epoch")
        if not log_enabled:
            self._fail("logged_cross_epoch",
                       f"rank {rank} logged a message while epoch-crossing "
                       "logging is disabled")
        if epoch_send >= epoch_recv:
            self._fail("logged_cross_epoch",
                       f"rank {rank} logged a non-crossing message "
                       f"(epoch_send={epoch_send} >= epoch_recv={epoch_recv})")

    def spe_non_logged(self, rank: int, dst: int, epoch_send: int,
                       epoch_recv: int, log_enabled: bool) -> None:
        """Called when an acknowledged message lands in SPE instead of
        the log."""
        self._tick("spe_non_logged")
        if log_enabled and epoch_send < epoch_recv:
            self._fail("spe_non_logged",
                       f"rank {rank} recorded a crossing message to {dst} in "
                       f"SPE (epoch_send={epoch_send} < "
                       f"epoch_recv={epoch_recv}); it should have been logged")

    def phase_lamport(self, rank: int, old_phase: int, new_phase: int,
                      msg_phase: int, crossed: bool) -> None:
        """Called after a fresh delivery updated the receiver's phase."""
        self._tick("phase_lamport")
        expected = max(old_phase, msg_phase + 1 if crossed else msg_phase)
        if new_phase != expected:
            self._fail("phase_lamport",
                       f"rank {rank} phase {old_phase} -> {new_phase} on "
                       f"delivery of msg_phase={msg_phase} crossed={crossed}; "
                       f"Lamport max requires {expected}")
        if new_phase < old_phase:
            self._fail("phase_lamport",
                       f"rank {rank} phase moved backwards "
                       f"({old_phase} -> {new_phase})")

    # ------------------------------------------------------------------
    # Recovery-layer checks (per SPE upload / per recovery round)
    # ------------------------------------------------------------------
    def spe_table_ordered(self, rank: int,
                          spe: Mapping[int, tuple[int, Mapping[int, int]]]) -> None:
        """Called when the recovery process receives rank's SPE export
        (``epoch -> (start_date, {peer: recv_epoch})``)."""
        self._tick("spe_table_ordered")
        prev_date = None
        for epoch in sorted(spe):
            start_date, per_peer = spe[epoch]
            if prev_date is not None and start_date < prev_date:
                self._fail("spe_table_ordered",
                           f"rank {rank} SPE epoch {epoch} starts at date "
                           f"{start_date}, before the previous epoch's "
                           f"{prev_date} — epoch order must be date order")
            prev_date = start_date
            for peer, recv_epoch in per_peer.items():
                if recv_epoch < 1:
                    self._fail("spe_table_ordered",
                               f"rank {rank} SPE epoch {epoch} records "
                               f"reception epoch {recv_epoch} for peer "
                               f"{peer}; epochs start at 1")

    def rl_fixpoint_stable(
        self,
        rl: Mapping[int, tuple[int, int]],
        resolve: Callable[[dict[int, int]], Mapping[int, tuple[int, int]]],
    ) -> None:
        """Re-run the recovery-line solver seeded with its own output;
        a true fix-point reproduces itself exactly."""
        self._tick("rl_fixpoint_stable")
        again = resolve({rank: epoch for rank, (epoch, _date) in rl.items()})
        if dict(again) != dict(rl):
            changed = {
                r: (dict(rl).get(r), dict(again).get(r))
                for r in set(rl) | set(again)
                if dict(rl).get(r) != dict(again).get(r)
            }
            self._fail("rl_fixpoint_stable",
                       f"recovery line is not a fix-point; re-solving moved "
                       f"{changed}")

    def rl_monotone(self, rl: Mapping[int, tuple[int, int]],
                    current_epochs: Mapping[int, int],
                    failed_restarts: Mapping[int, int]) -> None:
        """The fix-point only lowers restart epochs."""
        self._tick("rl_monotone")
        for rank, (epoch, _date) in rl.items():
            bound = failed_restarts.get(rank, current_epochs.get(rank))
            if bound is not None and epoch > bound:
                self._fail("rl_monotone",
                           f"recovery line restarts rank {rank} at epoch "
                           f"{epoch}, above its bound {bound}")

    # ------------------------------------------------------------------
    # Send-determinism witness (per application send, incl. replays)
    # ------------------------------------------------------------------
    def send_witness(self, rank: int, date: int, dst: int, tag: int,
                     size: int, digest: int | None) -> None:
        """Register or verify the witness of one dated application send.

        First emission of ``date`` records ``(dst, tag, size, digest)``;
        every later emission — a recovery re-execution or log replay —
        must match it.  ``digest=None`` (payload not retained by the
        log) skips only the payload comparison.
        """
        self._tick("send_witness")
        per_rank = self._witness.setdefault(rank, {})
        prior = per_rank.get(date)
        if prior is None:
            per_rank[date] = (dst, tag, size, digest)
            return
        pdst, ptag, psize, pdigest = prior
        if (dst, tag, size) != (pdst, ptag, psize):
            self._fail("send_witness",
                       f"rank {rank} re-sent date {date} as "
                       f"(dst={dst}, tag={tag}, size={size}); witness "
                       f"recorded (dst={pdst}, tag={ptag}, size={psize})")
        if digest is not None and pdigest is not None and digest != pdigest:
            self._fail("send_witness",
                       f"rank {rank} re-sent date {date} with payload "
                       f"digest {digest}; witness recorded {pdigest}")
        if pdigest is None and digest is not None:
            # a later emission retained the payload: tighten the witness
            per_rank[date] = (pdst, ptag, psize, digest)

    # ------------------------------------------------------------------
    # Engine-layer check (amortised per AUDIT_INTERVAL dispatches)
    # ------------------------------------------------------------------
    def engine_pending_audit(self, live: int, pending: int) -> None:
        """Compare the engine's O(1) pending counter with an actual count
        of live queue entries."""
        self._tick("engine_pending_audit")
        if live != pending:
            self._fail("engine_pending_audit",
                       f"engine pending counter drifted: counter={pending}, "
                       f"queue holds {live} live entries")
