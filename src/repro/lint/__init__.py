"""Correctness tooling: determinism linter + protocol-invariant sanitizer.

Two complementary halves, one subsystem:

* **Static** (:mod:`repro.lint.checker` / :mod:`repro.lint.runner`) — an
  AST pass over the codebase flagging the bug classes that silently break
  bit-reproducibility: unseeded RNG, wall-clock reads, unordered set
  iteration on hot paths, ``id()`` ordering, float equality on logical
  clocks, mutable defaults and bare excepts.  ``repro lint [paths]``
  exits nonzero on findings; ``# repro: noqa[RPDxxx]`` suppresses a line.
* **Dynamic** (:mod:`repro.lint.sanitize`) — runtime assertions, enabled
  by ``REPRO_SANITIZE=1`` (or ``repro --sanitize ...``), that check the
  paper's protocol invariants live inside the protocol, recovery and
  engine layers.

See ``docs/static-analysis.md`` for the rule catalog and the mapping of
sanitizer invariants to the paper's lemmas.
"""

from .checker import DeterminismChecker, lint_source
from .noqa import parse_suppressions
from .rules import PARSE_ERROR_CODE, RULES, RULE_CODES, LintFinding, Rule, module_parts
from .runner import (
    JSON_SCHEMA_VERSION,
    LintReport,
    iter_python_files,
    lint_paths,
    list_rules_text,
    render_json,
    render_text,
)
from .sendet import VERDICTS, KernelReport, analyze_paths, analyze_sources
from .sanitize import (
    AUDIT_INTERVAL,
    ENV_VAR,
    INVARIANTS,
    Sanitizer,
    sanitize_enabled,
    sanitizer_for,
)

__all__ = [
    "AUDIT_INTERVAL",
    "DeterminismChecker",
    "ENV_VAR",
    "INVARIANTS",
    "LintFinding",
    "LintReport",
    "PARSE_ERROR_CODE",
    "RULES",
    "RULE_CODES",
    "Rule",
    "Sanitizer",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "list_rules_text",
    "module_parts",
    "parse_suppressions",
    "render_json",
    "render_text",
    "sanitize_enabled",
    "sanitizer_for",
]
