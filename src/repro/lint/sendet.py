"""Send-determinism certifier: static taint analysis over rank programs.

The protocol's entire correctness argument rests on the paper's Section
II-A assumption: every rank program is *send-deterministic* — for a fixed
configuration, the sequence of messages each rank sends is identical in
every correct execution, regardless of the order in which
non-causally-related messages are delivered.  Until now that contract
lived as a docstring on :class:`repro.apps.base.RankProgram`; this module
*proves or refutes* it per kernel, before a single trial runs.

The analysis is an interprocedural AST dataflow/taint pass over
``RankProgram`` subclasses:

**Taint sources** — values that can differ between two correct executions
that deliver non-causally-related messages in different orders:

* the result of ``api.recv`` / ``api.irecv`` with ``ANY_SOURCE`` (the
  default!) and any arrival-metadata (``with_status`` results, ``.source``
  / ``.tag`` on a status object) — kind ``order``;
* wall-clock reads (``time.time`` & friends) and the *virtual* clock
  ``api.now()``, whose value moves with delivery timing — kind ``time``;
* unseeded randomness (``random.random()``, ``np.random.default_rng()``
  with no seed, the ``numpy.random`` module-level generator) — kind
  ``rng``;
* ``id()`` (allocator addresses) — kind ``addr``;
* iteration over ``set`` / ``frozenset`` (unordered) — kind ``iter``.

**Sinks** — any argument of ``send`` / ``isend`` / ``sendrecv`` or a
collective (destination, payload, tag, size), and any branch or loop
condition that dominates a send.

**Propagation** — through locals, arithmetic, containers, ``self.state``
fields (flow-insensitive fixpoint, so the default deep-copy
``snapshot()``/``restore()`` pair preserves taint identically and a
restored program is analyzed exactly like a live one), helper methods
(including ``yield from self._gen(...)`` generator helpers, summarized by
their return taint with sends inside them checked under the caller's
guards), and instance attributes.

**Order-neutralizers** — ``sorted`` / ``min`` / ``max`` / ``len`` /
``np.sort`` produce values that are pure functions of the input
*multiset*, so they strip ``order`` and ``iter`` taint (other kinds pass
through).  ``sum()`` deliberately does **not** neutralize: float addition
is non-associative, so a running sum over an ANY_SOURCE receive loop
leaks arrival order into the last ulps — the exact ``reduce_tree`` bug
the chaos harness found after the fact; this analysis finds it before.

**Collective results are clean** by the certifier's inductive hypothesis:
the simulator's collectives are built from explicit-source receives and
fixed binomial combine orders, so given that every rank's sends are
deterministic (what we are proving, per rank), every collective *result*
is too.

Verdicts per kernel:

``PROVEN_SD``
    no finding survived and no analysis assumption was needed;
``CONDITIONAL``
    every finding is suppressed by a *justified* ``# repro:
    noqa[SDxxx]: <reason>``, and/or the analysis had to assume something
    it cannot check (custom ``snapshot``/``restore``, an unresolvable
    helper);
``VIOLATION``
    at least one unsuppressed finding, with a concrete source→sink
    evidence path;
``UNKNOWN``
    the class could not be analyzed (base class outside the analyzed
    file set).

The dynamic half of the certifier (K adversarial delivery schedules and
the send-sequence witness chain) lives in :mod:`repro.lint.certify`.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field

from .noqa import Suppressions, parse_suppressions
from .rules import LintFinding

__all__ = [
    "VERDICTS",
    "KernelReport",
    "ModuleIndex",
    "SendetResult",
    "Taint",
    "analyze_paths",
    "analyze_sources",
    "kernel_code_digest",
]

#: verdict lattice, strongest claim first
VERDICTS = ("PROVEN_SD", "CONDITIONAL", "VIOLATION", "UNKNOWN")

#: taint kind -> (data-sink code, control-sink code)
_KIND_CODES = {
    "order": ("SD101", "SD102"),
    "rng": ("SD103", "SD103"),
    "iter": ("SD104", "SD104"),
    "time": ("SD105", "SD105"),
    "addr": ("SD106", "SD106"),
}

_KIND_LABEL = {
    "order": "arrival order",
    "rng": "unseeded randomness",
    "iter": "set-iteration order",
    "time": "clock reading",
    "addr": "id() address",
}

#: the SD family's bare-suppression pseudo-code
BARE_NOQA_CODE = "SD100"

_SEND_OPS = frozenset({"send", "isend"})
_SENDRECV_OPS = frozenset({"sendrecv"})
_COLLECTIVE_OPS = frozenset({
    "bcast", "reduce", "allreduce", "gather", "scatter", "allgather",
    "alltoall", "scan", "reduce_scatter", "barrier",
})
_RECV_OPS = frozenset({"recv", "irecv"})
_WAIT_OPS = frozenset({"wait", "waitall"})
#: api ops with order/time-free results
_NEUTRAL_OPS = frozenset({"compute", "checkpoint", "maybe_checkpoint"})

#: builtins whose result is a pure function of the argument *multiset* —
#: they neutralize order/iter taint.  ``sum`` is intentionally absent:
#: float addition is non-associative.
_ORDER_NEUTRALIZERS = frozenset({"sorted", "min", "max", "len"})

_WALL_CLOCK_FNS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "clock",
})
_RANDOM_MODULE_FNS = frozenset({
    "random", "randint", "randrange", "uniform", "gauss", "normalvariate",
    "choice", "choices", "sample", "shuffle", "betavariate", "expovariate",
    "triangular", "vonmisesvariate", "getrandbits", "randbytes",
})

_MAX_STEPS = 10
_MAX_CALL_DEPTH = 12
_MAX_PASSES = 10


# ----------------------------------------------------------------------
# Taint values and evidence paths
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Step:
    line: int
    what: str


@dataclass(frozen=True)
class Taint:
    """One taint fact: a kind plus the provenance chain that carried it."""

    kind: str
    steps: tuple[_Step, ...]

    @property
    def source_line(self) -> int:
        return self.steps[0].line

    @property
    def source(self) -> str:
        return self.steps[0].what

    def via(self, line: int, what: str) -> "Taint":
        last = self.steps[-1]
        if last.what == what and last.line == line:
            return self
        steps = self.steps + (_Step(line, what),)
        if len(steps) > _MAX_STEPS:
            steps = steps[:3] + steps[-(_MAX_STEPS - 3):]
        return Taint(self.kind, steps)

    def path(self) -> str:
        return " -> ".join(f"{s.what} (line {s.line})" for s in self.steps)


_EMPTY: frozenset[Taint] = frozenset()


def _source(kind: str, line: int, what: str) -> frozenset[Taint]:
    return frozenset({Taint(kind, (_Step(line, what),))})


def _via(taints: frozenset[Taint], line: int, what: str) -> frozenset[Taint]:
    if not taints:
        return _EMPTY
    return frozenset(t.via(line, what) for t in taints)


def _strip(taints: frozenset[Taint], kinds: frozenset[str]) -> frozenset[Taint]:
    return frozenset(t for t in taints if t.kind not in kinds)


# ----------------------------------------------------------------------
# Module / class indexing (cross-file inheritance)
# ----------------------------------------------------------------------
@dataclass
class _ClassInfo:
    name: str
    path: str
    node: ast.ClassDef
    source: str
    #: base-class *names* as written (dotted bases keep the last part)
    bases: tuple[str, ...]
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for item in self.node.body:
            if isinstance(item, ast.FunctionDef):
                self.methods[item.name] = item


class ModuleIndex:
    """All parsed files of one analysis run: classes + import aliases.

    Inheritance is resolved *by name* across the whole file set, which is
    exactly right for a package analyzed as a unit (``repro certify
    src/repro/apps``) and degrades safely for single files: a class whose
    base cannot be found is reported UNKNOWN rather than mis-analyzed.
    """

    def __init__(self) -> None:
        self.classes: dict[str, _ClassInfo] = {}
        #: path -> (tree, source, module-alias maps)
        self.modules: dict[str, tuple[ast.Module, str, dict[str, set[str]]]] = {}
        self.parse_errors: list[str] = []

    # ------------------------------------------------------------------
    def add_source(self, source: str, path: str) -> None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.parse_errors.append(f"{path}: {exc.msg} (line {exc.lineno})")
            return
        aliases = _module_aliases(tree)
        self.modules[path] = (tree, source, aliases)
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                bases = []
                for b in node.bases:
                    if isinstance(b, ast.Name):
                        bases.append(b.id)
                    elif isinstance(b, ast.Attribute):
                        bases.append(b.attr)
                info = _ClassInfo(node.name, path, node, source, tuple(bases))
                # first definition wins (stable across sorted file order)
                self.classes.setdefault(node.name, info)

    # ------------------------------------------------------------------
    def mro(self, name: str) -> tuple[list[_ClassInfo], bool]:
        """Linearized ancestry by name; ``(chain, resolved)`` where
        ``resolved`` is False when a non-``RankProgram`` base is missing
        from the index."""
        chain: list[_ClassInfo] = []
        seen: set[str] = set()
        resolved = True
        queue = [name]
        while queue:
            cur = queue.pop(0)
            if cur in seen:
                continue
            seen.add(cur)
            info = self.classes.get(cur)
            if info is None:
                if cur not in ("RankProgram", "ABC", "object", "Generic"):
                    resolved = False
                continue
            chain.append(info)
            queue.extend(info.bases)
        return chain, resolved

    def is_rank_program(self, name: str) -> bool:
        """Does ``name``'s ancestry (by name) reach ``RankProgram``?"""
        seen: set[str] = set()
        queue = [name]
        while queue:
            cur = queue.pop(0)
            if cur in seen:
                continue
            seen.add(cur)
            if cur == "RankProgram" and cur != name:
                return True
            info = self.classes.get(cur)
            if info is not None:
                queue.extend(info.bases)
            elif cur == "RankProgram":
                return True
        return False

    def find_method(self, cls: str, method: str) -> tuple[_ClassInfo, ast.FunctionDef] | None:
        chain, _ = self.mro(cls)
        for info in chain:
            fn = info.methods.get(method)
            if fn is not None:
                return info, fn
        return None


def _module_aliases(tree: ast.Module) -> dict[str, set[str]]:
    """Names bound to the hazard modules: numpy / random / time / datetime
    plus the ``numpy.random`` submodule."""
    out: dict[str, set[str]] = {
        "numpy": set(), "random": set(), "time": set(),
        "datetime": set(), "np_random": set(),
    }
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                bound = alias.asname or root
                if root in ("numpy", "random", "time", "datetime"):
                    out[root].add(bound)
                if alias.name == "numpy.random":
                    out["np_random"].add(alias.asname or "numpy")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        out["np_random"].add(alias.asname or "random")
    return out


def kernel_code_digest(index: ModuleIndex, name: str) -> str:
    """Stable digest of a kernel's code: the class source segments along
    its (index-resolved) ancestry.  Keys the certification registry, so a
    registry entry goes stale the moment the kernel — or a base class it
    inherits ``run`` from — changes."""
    chain, _ = index.mro(name)
    h = hashlib.blake2b(digest_size=16)
    for info in chain:
        seg = ast.get_source_segment(info.source, info.node) or ""
        h.update(seg.encode())
        h.update(b"\x00")
    return h.hexdigest()


# ----------------------------------------------------------------------
# Per-kernel analysis state
# ----------------------------------------------------------------------
class _KernelContext:
    """Shared mutable state while analyzing one kernel class."""

    def __init__(self, index: ModuleIndex, info: _ClassInfo,
                 aliases: dict[str, set[str]]):
        self.index = index
        self.info = info
        self.aliases = aliases
        #: self.state key (or "*") -> taints; flow-insensitive fixpoint
        self.state_taints: dict[str, frozenset[Taint]] = {}
        #: self.<attr> -> taints
        self.attr_taints: dict[str, frozenset[Taint]] = {}
        #: self.state keys (or "*") known to hold unordered sets
        self.state_set_keys: set[str] = set()
        #: self.<attr> names known to hold unordered sets
        self.attr_sets: set[str] = set()
        self.assumptions: list[tuple[int, str]] = []
        self.findings: list[tuple[LintFinding, Taint]] = []
        self.reporting = False
        self._finding_keys: set[tuple] = set()
        self._assumed: set[tuple[int, str]] = set()
        self.call_depth = 0

    # ------------------------------------------------------------------
    def assume(self, line: int, text: str) -> None:
        key = (line, text)
        if key not in self._assumed:
            self._assumed.add(key)
            self.assumptions.append(key)

    def state_get(self, key: str) -> frozenset[Taint]:
        if key == "*":
            out: frozenset[Taint] = frozenset()
            for t in self.state_taints.values():
                out |= t
            return out
        return self.state_taints.get(key, _EMPTY) | self.state_taints.get("*", _EMPTY)

    def state_put(self, key: str, taints: frozenset[Taint], line: int) -> None:
        if not taints:
            return
        taints = _via(taints, line, f"state[{key!r}]")
        cur = self.state_taints.get(key, _EMPTY)
        if not taints <= cur:
            self.state_taints[key] = cur | taints

    def attr_get(self, name: str) -> frozenset[Taint]:
        return self.attr_taints.get(name, _EMPTY)

    def attr_put(self, name: str, taints: frozenset[Taint], line: int) -> None:
        if not taints:
            return
        taints = _via(taints, line, f"self.{name}")
        cur = self.attr_taints.get(name, _EMPTY)
        if not taints <= cur:
            self.attr_taints[name] = cur | taints

    # ------------------------------------------------------------------
    def sink(self, node: ast.AST, taints: frozenset[Taint], what: str,
             control: bool) -> None:
        """Record findings for every taint reaching a send sink."""
        if not self.reporting or not taints:
            return
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        for t in sorted(taints, key=lambda t: (t.kind, t.source_line)):
            code = _KIND_CODES[t.kind][1 if control else 0]
            key = (code, line, t.kind, t.source_line, t.source)
            if key in self._finding_keys:
                continue
            self._finding_keys.add(key)
            label = _KIND_LABEL[t.kind]
            reach = (f"{what} is dominated by" if control
                     else f"{what} depends on")
            msg = (f"{reach} {label}: "
                   f"{t.via(line, what).path()}")
            self.findings.append(
                (LintFinding(self.info.path, line, col, code, msg), t)
            )


class _MethodFrame:
    """Per-invocation environment of one analyzed method."""

    def __init__(self) -> None:
        self.env: dict[str, frozenset[Taint]] = {}
        self.api_names: set[str] = set()
        self.state_aliases: set[str] = set()
        self.set_vars: set[str] = set()
        #: names bound to seeded (clean) RNG objects
        self.seeded_rngs: set[str] = set()
        self.returns: frozenset[Taint] = frozenset()


# ----------------------------------------------------------------------
# The analyzer
# ----------------------------------------------------------------------
class _Analyzer:
    """Abstract interpreter for one method body."""

    def __init__(self, ctx: _KernelContext, frame: _MethodFrame,
                 guards: list[tuple[int, frozenset[Taint]]]):
        self.ctx = ctx
        self.frame = frame
        self.guards = guards

    # -- helpers -------------------------------------------------------
    def _guard_taints(self) -> frozenset[Taint]:
        out: frozenset[Taint] = frozenset()
        for _line, t in self.guards:
            out |= t
        return out

    def _is_api(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id in self.frame.api_names

    def _is_self(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id == "self"

    def _is_self_state(self, node: ast.AST) -> bool:
        return (isinstance(node, ast.Attribute) and node.attr == "state"
                and self._is_self(node.value))

    def _is_state_alias(self, node: ast.AST) -> bool:
        if self._is_self_state(node):
            return True
        return (isinstance(node, ast.Name)
                and node.id in self.frame.state_aliases)

    def _module_alias(self, node: ast.AST, which: str) -> bool:
        return (isinstance(node, ast.Name)
                and node.id in self.ctx.aliases.get(which, ()))

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.Name):
            return node.id in self.frame.set_vars
        if isinstance(node, ast.Subscript) and self._is_state_alias(node.value):
            key = self._const_key(node.slice)
            keys = self.ctx.state_set_keys
            return key in keys or "*" in keys
        if isinstance(node, ast.Attribute) and self._is_self(node.value):
            return node.attr in self.ctx.attr_sets
        return False

    @staticmethod
    def _const_key(node: ast.AST) -> str:
        if isinstance(node, ast.Constant) and isinstance(node.value, (str, int)):
            return repr(node.value) if not isinstance(node.value, str) else node.value
        return "*"

    @staticmethod
    def _is_any_source(node: ast.AST | None) -> bool:
        if node is None:
            return True  # api.recv() defaults to ANY_SOURCE
        if isinstance(node, ast.Name) and node.id == "ANY_SOURCE":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "ANY_SOURCE":
            return True
        if isinstance(node, ast.Constant) and node.value == -1:
            return True
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            v = node.operand
            return isinstance(v, ast.Constant) and v.value == 1
        return False

    # -- expressions ---------------------------------------------------
    def ev(self, node: ast.AST | None) -> frozenset[Taint]:
        if node is None:
            return _EMPTY
        method = getattr(self, f"_ev_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        # default: union over child expressions
        out: frozenset[Taint] = frozenset()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out |= self.ev(child)
        return out

    def _ev_Constant(self, node: ast.Constant) -> frozenset[Taint]:
        return _EMPTY

    def _ev_Name(self, node: ast.Name) -> frozenset[Taint]:
        return self.frame.env.get(node.id, _EMPTY)

    def _ev_Attribute(self, node: ast.Attribute) -> frozenset[Taint]:
        if self._is_self(node.value):
            if node.attr == "state":
                return self.ctx.state_get("*")
            return self.ctx.attr_get(node.attr)
        base = self.ev(node.value)
        # arrival metadata on an order-tainted object (status.source etc.)
        # keeps its taint; any attribute of a tainted value is tainted
        return _via(base, node.lineno, f".{node.attr}")

    def _ev_Subscript(self, node: ast.Subscript) -> frozenset[Taint]:
        idx = self.ev(node.slice)
        if self._is_state_alias(node.value):
            return self.ctx.state_get(self._const_key(node.slice)) | idx
        return self.ev(node.value) | idx

    def _ev_BinOp(self, node: ast.BinOp) -> frozenset[Taint]:
        return self.ev(node.left) | self.ev(node.right)

    def _ev_BoolOp(self, node: ast.BoolOp) -> frozenset[Taint]:
        out: frozenset[Taint] = frozenset()
        for v in node.values:
            out |= self.ev(v)
        return out

    def _ev_UnaryOp(self, node: ast.UnaryOp) -> frozenset[Taint]:
        return self.ev(node.operand)

    def _ev_Compare(self, node: ast.Compare) -> frozenset[Taint]:
        out = self.ev(node.left)
        for c in node.comparators:
            out |= self.ev(c)
        return out

    def _ev_IfExp(self, node: ast.IfExp) -> frozenset[Taint]:
        return self.ev(node.test) | self.ev(node.body) | self.ev(node.orelse)

    def _ev_Tuple(self, node: ast.Tuple) -> frozenset[Taint]:
        out: frozenset[Taint] = frozenset()
        for e in node.elts:
            out |= self.ev(e)
        return out

    _ev_List = _ev_Tuple
    _ev_Set = _ev_Tuple

    def _ev_Dict(self, node: ast.Dict) -> frozenset[Taint]:
        out: frozenset[Taint] = frozenset()
        for k in node.keys:
            out |= self.ev(k)
        for v in node.values:
            out |= self.ev(v)
        return out

    def _ev_Starred(self, node: ast.Starred) -> frozenset[Taint]:
        return self.ev(node.value)

    def _ev_JoinedStr(self, node: ast.JoinedStr) -> frozenset[Taint]:
        out: frozenset[Taint] = frozenset()
        for v in node.values:
            out |= self.ev(v)
        return out

    def _ev_FormattedValue(self, node: ast.FormattedValue) -> frozenset[Taint]:
        return self.ev(node.value)

    def _ev_Yield(self, node: ast.Yield) -> frozenset[Taint]:
        return self.ev(node.value)

    def _ev_YieldFrom(self, node: ast.YieldFrom) -> frozenset[Taint]:
        return self.ev(node.value)

    def _ev_Await(self, node: ast.Await) -> frozenset[Taint]:
        return self.ev(node.value)

    def _ev_NamedExpr(self, node: ast.NamedExpr) -> frozenset[Taint]:
        taints = self.ev(node.value)
        if isinstance(node.target, ast.Name):
            self._bind_name(node.target.id, taints, node.lineno)
        return taints

    def _ev_Lambda(self, node: ast.Lambda) -> frozenset[Taint]:
        return _EMPTY

    def _comp(self, node, elts: list[ast.expr]) -> frozenset[Taint]:
        for gen in node.generators:
            taints = self.ev(gen.iter)
            if self._is_set_expr(gen.iter):
                taints = taints | _source(
                    "iter", node.lineno,
                    "iteration over unordered set")
            self._bind_target(gen.target, taints, node.lineno)
            for cond in gen.ifs:
                self.ev(cond)
        out: frozenset[Taint] = frozenset()
        for e in elts:
            out |= self.ev(e)
        return out

    def _ev_ListComp(self, node: ast.ListComp) -> frozenset[Taint]:
        return self._comp(node, [node.elt])

    def _ev_GeneratorExp(self, node: ast.GeneratorExp) -> frozenset[Taint]:
        return self._comp(node, [node.elt])

    def _ev_SetComp(self, node: ast.SetComp) -> frozenset[Taint]:
        return self._comp(node, [node.elt])

    def _ev_DictComp(self, node: ast.DictComp) -> frozenset[Taint]:
        return self._comp(node, [node.key, node.value])

    # -- calls ---------------------------------------------------------
    def _ev_Call(self, node: ast.Call) -> frozenset[Taint]:
        func = node.func
        arg_taints = self._all_arg_taints(node)

        # api operations -------------------------------------------------
        if isinstance(func, ast.Attribute) and self._is_api(func.value):
            return self._api_call(node, func.attr)

        # builtins -------------------------------------------------------
        if isinstance(func, ast.Name):
            name = func.id
            if name in _ORDER_NEUTRALIZERS:
                return _via(_strip(arg_taints, frozenset({"order", "iter"})),
                            node.lineno, f"{name}(...)")
            if name == "id":
                return _source("addr", node.lineno, "id()")
            if name in ("set", "frozenset", "list", "tuple", "dict", "print",
                        "enumerate", "zip", "range", "abs", "float", "int",
                        "str", "repr", "round", "sum", "any", "all", "map",
                        "filter", "reversed", "isinstance", "getattr",
                        "hasattr", "max", "min"):
                return arg_taints

        # hazard modules -------------------------------------------------
        if isinstance(func, ast.Attribute):
            src = self._hazard_module_call(node, func)
            if src is not None:
                return src
            # self-method call: interprocedural
            if self._is_self(func.value):
                return self._self_call(node, func.attr)
            # np.sort etc. on a numpy alias neutralizes like sorted()
            if func.attr == "sort" and self._module_alias(func.value, "numpy"):
                return _via(_strip(arg_taints, frozenset({"order", "iter"})),
                            node.lineno, "np.sort(...)")
            # mutating method on a local: taint flows into the receiver
            if (isinstance(func.value, ast.Name)
                    and func.attr in ("append", "extend", "add", "insert",
                                      "update", "setdefault")):
                self._bind_name(func.value.id, arg_taints, node.lineno)
            # mutating method on a state field: taint flows into the field
            if (isinstance(func.value, ast.Subscript)
                    and self._is_state_alias(func.value.value)
                    and func.attr in ("append", "extend", "add", "insert",
                                      "update", "setdefault")):
                self.ctx.state_put(self._const_key(func.value.slice),
                                   arg_taints, node.lineno)
            # method call on a tainted object (unseeded rng.random(), a
            # tainted list's .pop(), ...) carries the object's taint
            return self.ev(func.value) | arg_taints

        # unknown callable: conservative pass-through
        return arg_taints | self.ev(func)

    def _all_arg_taints(self, node: ast.Call) -> frozenset[Taint]:
        out: frozenset[Taint] = frozenset()
        for a in node.args:
            out |= self.ev(a)
        for kw in node.keywords:
            out |= self.ev(kw.value)
        return out

    def _hazard_module_call(self, node: ast.Call,
                            func: ast.Attribute) -> frozenset[Taint] | None:
        """Wall-clock / RNG sources reached through module aliases."""
        val = func.value
        attr = func.attr
        line = node.lineno
        if self._module_alias(val, "time") and attr in _WALL_CLOCK_FNS:
            return _source("time", line, f"time.{attr}()")
        if self._module_alias(val, "datetime") and attr in ("now", "utcnow", "today"):
            return _source("time", line, f"datetime.{attr}()")
        if isinstance(val, ast.Attribute) and val.attr in ("datetime", "date"):
            if attr in ("now", "utcnow", "today"):
                return _source("time", line, f"datetime.{attr}()")
        if self._module_alias(val, "random"):
            if attr == "Random" or attr == "SystemRandom":
                if attr == "SystemRandom" or not (node.args or node.keywords):
                    return _source("rng", line, f"random.{attr}() unseeded")
                return _EMPTY  # seeded generator
            if attr in _RANDOM_MODULE_FNS or attr == "seed":
                return _source("rng", line, f"random.{attr}() (global RNG)")
        # numpy.random reached as np.random.<fn> or an aliased submodule
        np_random = (
            (isinstance(val, ast.Attribute) and val.attr == "random"
             and self._module_alias(val.value, "numpy"))
            or self._module_alias(val, "np_random")
        )
        if np_random:
            if attr == "default_rng" or attr == "Generator":
                if not (node.args or node.keywords):
                    return _source("rng", line,
                                   "np.random.default_rng() unseeded")
                return _EMPTY
            if attr == "SeedSequence":
                return _EMPTY
            return _source("rng", line,
                           f"np.random.{attr}() (global RNG)")
        if attr == "urandom" and isinstance(val, ast.Name) and val.id == "os":
            return _source("rng", line, "os.urandom()")
        return None

    def _api_call(self, node: ast.Call, op: str) -> frozenset[Taint]:
        """Simulator ops: sends/collectives are sinks, receives sources."""
        line = node.lineno
        args = list(node.args)
        kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        guard = self._guard_taints()

        def sink_args(label: str, positional: list[tuple[str, ast.expr | None]]):
            for argname, expr in positional:
                if expr is None:
                    continue
                taints = self.ev(expr)
                self.ctx.sink(node, taints, f"{label} {argname}", control=False)
            if guard:
                self.ctx.sink(node, guard, f"{label}", control=True)

        if op in _SEND_OPS:
            sink_args(f"api.{op}", [
                ("destination", args[0] if args else kwargs.get("dst")),
                ("payload", args[1] if len(args) > 1 else kwargs.get("payload")),
                ("tag", args[2] if len(args) > 2 else kwargs.get("tag")),
                ("size", args[3] if len(args) > 3 else kwargs.get("size")),
            ])
            return _EMPTY
        if op in _SENDRECV_OPS:
            sink_args("api.sendrecv", [
                ("destination", args[0] if args else kwargs.get("dst")),
                ("payload", args[1] if len(args) > 1 else kwargs.get("payload")),
                ("tag", args[3] if len(args) > 3 else kwargs.get("tag")),
            ])
            src = args[2] if len(args) > 2 else kwargs.get("src")
            if self._is_any_source(src):
                return _source("order", line,
                               "sendrecv(ANY_SOURCE) result")
            return self.ev(src)
        if op in _COLLECTIVE_OPS:
            # inputs are sinks (the collective sends them); results are
            # clean by the inductive hypothesis (fixed binomial trees,
            # explicit-source receives, deterministic combine order)
            sink_args(f"api.{op}", [
                ("value", a) for a in args
            ] + [(kw.arg or "value", kw.value) for kw in node.keywords])
            return _EMPTY
        if op in _RECV_OPS:
            src = args[0] if args else kwargs.get("src")
            with_status = kwargs.get("with_status")
            taints: frozenset[Taint] = frozenset()
            if self._is_any_source(src):
                taints |= _source("order", line,
                                  f"{op}(ANY_SOURCE) result")
            else:
                # receiving from an order/taint-chosen peer taints the
                # result with whatever chose the peer
                taints |= _via(self.ev(src), line, f"{op}(src) result")
            if with_status is not None and not (
                    isinstance(with_status, ast.Constant)
                    and with_status.value is False):
                # arrival metadata (status.source / status.tag / arrival
                # time) reflects the delivery interleaving
                taints |= _source("order", line,
                                  f"{op}(...) status (arrival metadata)")
            return taints
        if op in _WAIT_OPS:
            return self._all_arg_taints(node)
        if op == "now":
            return _source("time", line, "api.now() (virtual clock)")
        if op in _NEUTRAL_OPS:
            return _EMPTY
        # unknown api op: conservative
        return self._all_arg_taints(node)

    def _self_call(self, node: ast.Call, method: str) -> frozenset[Taint]:
        """Interprocedural: analyze ``self.<method>(...)`` in context."""
        ctx = self.ctx
        found = ctx.index.find_method(ctx.info.name, method)
        arg_taints = [self.ev(a) for a in node.args]
        kw_taints = {kw.arg: self.ev(kw.value) for kw in node.keywords if kw.arg}
        if found is None:
            if method in ("snapshot", "restore", "result"):
                return ctx.state_get("*")
            ctx.assume(node.lineno,
                       f"call to unresolvable helper self.{method}() "
                       f"assumed taint-free")
            return _EMPTY
        if ctx.call_depth >= _MAX_CALL_DEPTH:
            ctx.assume(node.lineno,
                       f"recursion depth cap reached at self.{method}(); "
                       f"summary assumed taint-free")
            return _EMPTY
        owner, fn = found
        frame = _MethodFrame()
        params = [a.arg for a in fn.args.args]
        values: list[frozenset[Taint] | None] = []
        api_args: set[str] = set()
        # bind positional parameters (skip self)
        for i, pname in enumerate(params[1:]):
            if i < len(node.args):
                if self._is_api(node.args[i]):
                    api_args.add(pname)
                    values.append(None)
                else:
                    values.append(arg_taints[i])
            elif pname in kw_taints:
                values.append(kw_taints[pname])
            else:
                values.append(None)
        for pname, value in zip(params[1:], values):
            if value:
                frame.env[pname] = _via(value, fn.lineno,
                                        f"param {pname} of {method}()")
        frame.api_names = api_args or {"api"}
        ctx.call_depth += 1
        try:
            sub = _Analyzer(ctx, frame, self.guards)
            sub.run_body(fn.body)
        finally:
            ctx.call_depth -= 1
        if frame.returns:
            return _via(frame.returns, node.lineno, f"return of {method}()")
        return _EMPTY

    # -- binding -------------------------------------------------------
    def _bind_name(self, name: str, taints: frozenset[Taint],
                   line: int) -> None:
        if not taints:
            return
        taints = _via(taints, line, name)
        self.frame.env[name] = self.frame.env.get(name, _EMPTY) | taints

    def _bind_target(self, target: ast.AST, taints: frozenset[Taint],
                     line: int, *, strong: bool = False) -> None:
        if isinstance(target, ast.Name):
            if strong:
                self.frame.env[target.id] = _via(taints, line, target.id)
                self.frame.set_vars.discard(target.id)
            else:
                self._bind_name(target.id, taints, line)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for e in target.elts:
                self._bind_target(e, taints, line, strong=strong)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, taints, line, strong=strong)
        elif isinstance(target, ast.Subscript):
            if self._is_state_alias(target.value):
                self.ctx.state_put(self._const_key(target.slice), taints, line)
            elif isinstance(target.value, ast.Name):
                self._bind_name(target.value.id, taints, line)
            elif isinstance(target.value, ast.Attribute) and self._is_self(
                    target.value.value):
                self.ctx.attr_put(target.value.attr, taints, line)
            elif (isinstance(target.value, ast.Subscript)
                  and self._is_state_alias(target.value.value)):
                # nested store: state["k"][i] = v
                self.ctx.state_put(self._const_key(target.value.slice),
                                   taints, line)
        elif isinstance(target, ast.Attribute):
            if self._is_self(target.value):
                if target.attr == "state":
                    self.ctx.state_put("*", taints, line)
                else:
                    self.ctx.attr_put(target.attr, taints, line)

    # -- statements ----------------------------------------------------
    def run_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self.stmt(stmt)

    def stmt(self, node: ast.stmt) -> None:
        method = getattr(self, f"_st_{type(node).__name__}", None)
        if method is not None:
            method(node)
            return
        # default: evaluate expressions, recurse into bodies
        for name in ("body", "orelse", "finalbody"):
            sub = getattr(node, name, None)
            if sub:
                self.run_body(sub)
        handlers = getattr(node, "handlers", None)
        if handlers:
            for h in handlers:
                self.run_body(h.body)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.ev(child)

    def _st_Expr(self, node: ast.Expr) -> None:
        self.ev(node.value)

    def _st_Assign(self, node: ast.Assign) -> None:
        value = node.value
        # aliasing forms first: st = self.state / my_api = api
        if self._is_self_state(value):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    self.frame.state_aliases.add(t.id)
            return
        if self._is_api(value):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    self.frame.api_names.add(t.id)
            return
        taints = self.ev(value)
        is_set = self._is_set_expr(value)
        seeded = self._is_seeded_rng_ctor(value)
        for t in node.targets:
            single_name = isinstance(t, ast.Name)
            self._bind_target(t, taints, node.lineno, strong=single_name)
            if single_name:
                if is_set:
                    self.frame.set_vars.add(t.id)
                if seeded:
                    self.frame.seeded_rngs.add(t.id)
            elif is_set and isinstance(t, ast.Subscript) \
                    and self._is_state_alias(t.value):
                self.ctx.state_set_keys.add(self._const_key(t.slice))
            elif is_set and isinstance(t, ast.Attribute) \
                    and self._is_self(t.value) and t.attr != "state":
                self.ctx.attr_sets.add(t.attr)

    def _is_seeded_rng_ctor(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if not isinstance(func, ast.Attribute):
            return False
        has_args = bool(node.args or node.keywords)
        if func.attr == "Random" and self._module_alias(func.value, "random"):
            return has_args
        if func.attr == "default_rng":
            return has_args
        return False

    def _st_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is None:
            return
        taints = self.ev(node.value)
        self._bind_target(node.target, taints, node.lineno,
                          strong=isinstance(node.target, ast.Name))

    def _st_AugAssign(self, node: ast.AugAssign) -> None:
        taints = self.ev(node.value) | self.ev(node.target)
        self._bind_target(node.target, taints, node.lineno)

    def _st_If(self, node: ast.If) -> None:
        cond = self.ev(node.test)
        self.guards.append((node.lineno, cond))
        try:
            self.run_body(node.body)
            self.run_body(node.orelse)
        finally:
            self.guards.pop()

    def _st_While(self, node: ast.While) -> None:
        cond = self.ev(node.test)
        self.guards.append((node.lineno, cond))
        try:
            self.run_body(node.body)
            self.run_body(node.orelse)
        finally:
            self.guards.pop()

    def _st_For(self, node: ast.For) -> None:
        iter_taints = self.ev(node.iter)
        target_taints = iter_taints
        if self._is_set_expr(node.iter):
            target_taints = target_taints | _source(
                "iter", node.lineno, "iteration over unordered set")
        self._bind_target(node.target, target_taints, node.lineno)
        # the loop trip count / element order dominates sends in the body
        self.guards.append((node.lineno, target_taints))
        try:
            self.run_body(node.body)
            self.run_body(node.orelse)
        finally:
            self.guards.pop()

    def _st_Return(self, node: ast.Return) -> None:
        self.frame.returns |= self.ev(node.value)

    def _st_With(self, node: ast.With) -> None:
        for item in node.items:
            taints = self.ev(item.context_expr)
            if item.optional_vars is not None:
                self._bind_target(item.optional_vars, taints, node.lineno)
        self.run_body(node.body)

    def _st_Try(self, node: ast.Try) -> None:
        self.run_body(node.body)
        for h in node.handlers:
            self.run_body(h.body)
        self.run_body(node.orelse)
        self.run_body(node.finalbody)

    def _st_Assert(self, node: ast.Assert) -> None:
        self.ev(node.test)

    def _st_Raise(self, node: ast.Raise) -> None:
        if node.exc is not None:
            self.ev(node.exc)

    def _st_FunctionDef(self, node: ast.FunctionDef) -> None:
        # nested function definitions are not executed here; calls to them
        # fall back to conservative argument pass-through
        return

    _st_AsyncFunctionDef = _st_FunctionDef

    def _st_ClassDef(self, node: ast.ClassDef) -> None:
        return

    def _st_Delete(self, node: ast.Delete) -> None:
        for t in node.targets:
            if isinstance(t, ast.Name):
                self.frame.env.pop(t.id, None)


# ----------------------------------------------------------------------
# Kernel-level driver
# ----------------------------------------------------------------------
@dataclass
class KernelReport:
    """Certification result for one ``RankProgram`` subclass."""

    name: str
    path: str
    line: int
    verdict: str
    digest: str
    findings: list[LintFinding] = field(default_factory=list)
    #: ``(code, line, reason)`` for justified-noqa suppressions
    suppressed: list[tuple[str, int, str]] = field(default_factory=list)
    assumptions: list[str] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "path": self.path,
            "line": self.line,
            "verdict": self.verdict,
            "digest": self.digest,
            "findings": [f.to_json() for f in self.findings],
            "suppressed": [
                {"code": c, "line": ln, "reason": r}
                for c, ln, r in self.suppressed
            ],
            "assumptions": list(self.assumptions),
        }


def _analyze_kernel(index: ModuleIndex, info: _ClassInfo,
                    suppressions: dict[str, Suppressions]) -> KernelReport:
    chain, resolved = index.mro(info.name)
    digest = kernel_code_digest(index, info.name)
    report = KernelReport(info.name, info.path, info.node.lineno,
                          "UNKNOWN", digest)
    if not resolved:
        missing = [b for b in info.bases
                   if b not in index.classes and b != "RankProgram"]
        report.assumptions.append(
            f"line {info.node.lineno}: base class "
            f"{', '.join(missing) or '<unknown>'} not in the analyzed "
            f"file set; kernel not analyzed")
        return report

    run = index.find_method(info.name, "run")
    if run is None:
        report.assumptions.append(
            f"line {info.node.lineno}: no run() method found")
        return report
    run_fn = run[1]

    aliases = _merged_aliases(index, chain)
    ctx = _KernelContext(index, info, aliases)
    # overridden snapshot/restore cannot be proven taint-preserving
    # statically; the default deep-copy pair on RankProgram itself is the
    # identity on taint, so only subclass overrides need an assumption
    for special in ("snapshot", "restore"):
        found = index.find_method(info.name, special)
        if found is not None and found[0].name != "RankProgram":
            owner, fn = found
            ctx.assume(fn.lineno,
                       f"custom {special}() (line {fn.lineno} of "
                       f"{owner.name}) assumed to preserve state taint "
                       f"like the default deep copy")

    init = index.find_method(info.name, "__init__")

    def one_pass() -> None:
        if init is not None:
            _run_method(ctx, init[1], api_param=None)
        _run_method(ctx, run_fn, api_param="auto")

    # fixpoint over self.state / attribute taint (snapshot()/restore()
    # round-trips are the identity on this map, so a restored program is
    # analyzed exactly like a live one)
    for _ in range(_MAX_PASSES):
        before = (dict(ctx.state_taints), dict(ctx.attr_taints))
        one_pass()
        if (ctx.state_taints, ctx.attr_taints) == before:
            break
    ctx.reporting = True
    one_pass()

    # apply SD noqa suppressions (justification required) ----------------
    supp = suppressions.get(info.path)
    kept: list[LintFinding] = []
    for finding, _taint in ctx.findings:
        reason = supp.justification(finding.line, finding.code) if supp else None
        if reason:
            report.suppressed.append((finding.code, finding.line, reason))
        else:
            kept.append(finding)
    kept.sort(key=lambda f: (f.line, f.col, f.code))
    report.findings = kept
    report.assumptions.extend(
        f"line {ln}: {text}" for ln, text in sorted(ctx.assumptions)
    )

    if kept:
        report.verdict = "VIOLATION"
    elif report.suppressed or report.assumptions:
        report.verdict = "CONDITIONAL"
    else:
        report.verdict = "PROVEN_SD"
    return report


def _merged_aliases(index: ModuleIndex,
                    chain: list[_ClassInfo]) -> dict[str, set[str]]:
    merged: dict[str, set[str]] = {}
    for info in chain:
        mod = index.modules.get(info.path)
        if mod is None:
            continue
        for key, names in mod[2].items():
            merged.setdefault(key, set()).update(names)
    return merged


def _run_method(ctx: _KernelContext, fn: ast.FunctionDef,
                api_param: str | None) -> None:
    frame = _MethodFrame()
    if api_param == "auto":
        params = [a.arg for a in fn.args.args]
        frame.api_names = {params[1]} if len(params) > 1 else {"api"}
    analyzer = _Analyzer(ctx, frame, guards=[])
    analyzer.run_body(fn.body)


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
@dataclass
class SendetResult:
    """Everything one certification pass produced."""

    reports: list[KernelReport] = field(default_factory=list)
    #: SD100 bare-noqa findings (per file, not per kernel)
    noqa_findings: list[LintFinding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    def findings_for(self, path: str) -> list[LintFinding]:
        out = [f for r in self.reports if r.path == path for f in r.findings]
        out.extend(f for f in self.noqa_findings if f.path == path)
        out.sort(key=lambda f: (f.line, f.col, f.code))
        return out

    def all_findings(self) -> list[LintFinding]:
        out = [f for r in self.reports for f in r.findings]
        out.extend(self.noqa_findings)
        out.sort(key=lambda f: (f.path, f.line, f.col, f.code))
        return out


def analyze_sources(sources: dict[str, str]) -> SendetResult:
    """Certify every ``RankProgram`` subclass in ``{path: source}``."""
    index = ModuleIndex()
    for path in sorted(sources):
        index.add_source(sources[path], path)
    result = SendetResult(errors=list(index.parse_errors))

    suppressions: dict[str, Suppressions] = {}
    for path, source in sources.items():
        supp = parse_suppressions(source)
        suppressions[path] = supp
        for line, codes in supp.bare_sd_lines():
            result.noqa_findings.append(LintFinding(
                path, line, 0, BARE_NOQA_CODE,
                f"bare SD suppression {sorted(codes)} without a "
                f"justification; write `# repro: noqa[SDxxx]: <reason>` "
                f"(the suppression is ignored until justified)"
            ))

    for name in sorted(index.classes):
        info = index.classes[name]
        if name == "RankProgram" or not index.is_rank_program(name):
            continue
        result.reports.append(_analyze_kernel(index, info, suppressions))
    return result


def analyze_paths(paths: list[str]) -> SendetResult:
    """Certify kernels across files/directories (cross-file inheritance
    resolves within the given path set)."""
    from .runner import iter_python_files

    files, errors = iter_python_files(paths)
    sources: dict[str, str] = {}
    result_errors = list(errors)
    for path in files:
        try:
            with open(path, encoding="utf-8") as fh:
                sources[path] = fh.read()
        except OSError as exc:
            result_errors.append(f"cannot read {path}: {exc}")
    result = analyze_sources(sources)
    result.errors = result_errors + result.errors
    return result
