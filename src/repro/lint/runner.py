"""File discovery, batch linting and report rendering for ``repro lint``.

The runner walks the given paths (files or directories), lints every
``*.py`` in sorted order — deterministic output is table stakes for a
determinism linter — and renders the findings as text or JSON.  Two
passes run over the file set: the per-file :mod:`~repro.lint.checker`
(RPD rules) and the cross-file send-determinism certifier
:mod:`~repro.lint.sendet` (SD rules over ``RankProgram`` subclasses,
with inheritance resolved across the whole path set).  Exit status: 0
clean, 1 findings, 2 usage errors (unknown rule code, missing path).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from .checker import lint_source
from .rules import RULES, RULE_CODES, LintFinding

__all__ = ["JSON_SCHEMA_VERSION", "LintReport", "lint_paths",
           "iter_python_files", "render_text", "render_json",
           "list_rules_text"]

#: version of the JSON report document emitted by :func:`render_json`
#: (same convention as ``repro.obs.stream``: bump on breaking shape
#: changes so downstream consumers can dispatch on ``"v"``)
JSON_SCHEMA_VERSION = 1

#: directories never descended into
_SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".mypy_cache", ".ruff_cache", ".pytest_cache",
    "build", "dist",
})


@dataclass
class LintReport:
    """Findings plus enough bookkeeping for a summary line."""

    findings: list[LintFinding] = field(default_factory=list)
    files_checked: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.findings else 0


def iter_python_files(paths: list[str]) -> tuple[list[str], list[str]]:
    """Expand files/directories into a sorted list of ``*.py`` paths.

    Returns ``(files, errors)``; a non-existent path is an error, a
    directory without Python files is merely empty.
    """
    files: list[str] = []
    errors: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _SKIP_DIRS
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(dirpath, name))
        else:
            errors.append(f"path does not exist: {path}")
    # dedupe while keeping a stable global order
    return sorted(dict.fromkeys(files)), errors


def _validate_codes(codes: list[str] | None, label: str,
                    errors: list[str]) -> frozenset[str] | None:
    if not codes:
        return None
    out = set()
    for code in codes:
        code = code.strip().upper()
        if code not in RULE_CODES:
            errors.append(f"unknown rule code in --{label}: {code}")
        out.add(code)
    return frozenset(out)


def lint_paths(
    paths: list[str],
    select: list[str] | None = None,
    ignore: list[str] | None = None,
) -> LintReport:
    """Lint every Python file under ``paths``."""
    from .sendet import analyze_sources

    report = LintReport()
    sel = _validate_codes(select, "select", report.errors)
    ign = _validate_codes(ignore, "ignore", report.errors)
    files, path_errors = iter_python_files(paths)
    report.errors.extend(path_errors)
    if report.errors:
        return report
    sources: dict[str, str] = {}
    for path in files:
        try:
            with open(path, encoding="utf-8") as fh:
                sources[path] = fh.read()
        except OSError as exc:
            report.errors.append(f"cannot read {path}: {exc}")
    # pass 1: per-file RPD checker
    per_file: dict[str, list[LintFinding]] = {}
    for path in sorted(sources):
        report.files_checked += 1
        per_file[path] = list(
            lint_source(sources[path], path=path, select=sel, ignore=ign)
        )
    # pass 2: cross-file send-determinism certification (SD rules); the
    # whole path set is one inheritance scope, so a kernel subclassing a
    # base in a sibling file still resolves
    sd = analyze_sources(sources)
    for finding in sd.all_findings():
        if sel is not None and finding.code not in sel:
            continue
        if ign is not None and finding.code in ign:
            continue
        per_file.setdefault(finding.path, []).append(finding)
    for path in sorted(per_file):
        report.findings.extend(
            sorted(per_file[path], key=lambda f: (f.line, f.col, f.code))
        )
    return report


def render_text(report: LintReport) -> str:
    """Human-readable report: one finding per line plus a summary."""
    lines = [f.render() for f in report.findings]
    lines.extend(f"error: {e}" for e in report.errors)
    n = len(report.findings)
    lines.append(
        f"{report.files_checked} files checked, "
        f"{n} finding{'s' if n != 1 else ''}"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (stable key order, versioned schema)."""
    doc = {
        "v": JSON_SCHEMA_VERSION,
        "files_checked": report.files_checked,
        "findings": [f.to_json() for f in report.findings],
        "errors": list(report.errors),
        "exit_code": report.exit_code,
    }
    return json.dumps(doc, indent=1, sort_keys=True) + "\n"


def list_rules_text() -> str:
    """The rule catalog, as printed by ``repro lint --list-rules``."""
    lines = []
    for rule in RULES:
        lines.append(f"{rule.code} {rule.name}")
        lines.append(f"    {rule.summary}")
    return "\n".join(lines)
