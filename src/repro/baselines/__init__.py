"""``repro.baselines`` — the protocols the paper compares against.

* :mod:`repro.baselines.coordinated` — Chandy–Lamport coordinated
  checkpointing (global restart; the "100 % rollback" reference).
* :mod:`repro.baselines.pessimistic_log` — pessimistic sender-based
  message logging (restart one process; logs 100 % of messages).
* :mod:`repro.baselines.uncoordinated_plain` — plain uncoordinated
  checkpointing (domino effect, Section V-E-2).
* :mod:`repro.baselines.cic` — index-based communication-induced
  checkpointing (forced-checkpoint amplification, Section VI).
"""

from .cic import CICConfig, CICController, build_cic_world
from .coordinated import CLConfig, CLController, build_cl_world
from .pessimistic_log import PMLConfig, PMLController, build_pml_world
from .uncoordinated_plain import (
    DominoStats,
    plain_uncoordinated_config,
    run_domino_analysis,
)

__all__ = [
    "CICConfig", "CICController", "build_cic_world",
    "CLConfig", "CLController", "build_cl_world",
    "PMLConfig", "PMLController", "build_pml_world",
    "DominoStats", "plain_uncoordinated_config", "run_domino_analysis",
]
