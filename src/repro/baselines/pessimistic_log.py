"""Pessimistic sender-based message logging baseline.

The other end of the design space the paper positions itself against
(Alvisi & Marzullo's taxonomy, [1] in the paper): log **every** message
payload at its sender and synchronously record a *determinant* (source +
per-channel sequence number, in delivery order) at the receiver.  Under
piecewise determinism this makes the failed process the *only* process to
roll back — but at the price of logging 100 % of the traffic and of the
determinant-logging latency on every receive.

Implementation notes
--------------------
* Payload logging is in sender memory (as in the paper's sender-based
  references); determinants go to a simulated synchronous stable store
  whose write latency is chargeable (``determinant_latency``).
* On a failure, the controller restores the failed rank from its latest
  local checkpoint, collects from every peer the logged messages the
  restored state has not yet delivered, and feeds them to the restarted
  process **in the recorded determinant order** — that is what makes
  non-send-deterministic applications replay correctly.
* Messages re-sent by the recovering process are suppressed at the peers
  by per-channel sequence watermarks.

Metrics: ``%log`` ≡ 100, rolled-back processes ≡ 1 per failure — the two
numbers Table I compares against.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any

from ..errors import ProtocolError
from ..simmpi.failure import FailureInjector
from ..simmpi.message import Envelope
from ..simmpi.process import ProtocolHook
from ..simmpi.runtime import World

__all__ = ["PMLConfig", "PMLHook", "PMLController", "build_pml_world"]


@dataclass
class PMLConfig:
    checkpoint_interval: float | None = None
    rank_stagger: float = 0.0
    #: synchronous determinant-write latency charged per delivery (the
    #: classic pessimistic-logging cost; 0 disables)
    determinant_latency: float = 0.0


@dataclass
class _PMLCheckpoint:
    app_state: Any
    coll_seq: int
    unexpected: list[Envelope]
    send_seq: dict[int, int]
    recv_seq: dict[int, int]
    determinant_count: int


class PMLHook(ProtocolHook):
    """Per-rank pessimistic logging engine."""

    def __init__(self, rank: int, controller: "PMLController"):
        self.rank = rank
        self.controller = controller
        #: per destination: next send sequence number
        self.send_seq: dict[int, int] = {}
        #: per source: highest delivered sequence number (dup watermark)
        self.recv_seq: dict[int, int] = {}
        #: sender-based payload log: dst -> [(seq, tag, payload, size)]
        self.sent_log: dict[int, list[tuple[int, int, Any, int]]] = {}
        #: receiver determinant log (synchronous stable store)
        self.determinants: list[tuple[int, int]] = []  # (src, seq)
        self.checkpoints: list[_PMLCheckpoint] = []
        self._next_ckpt: float | None = None
        self.messages_logged = 0
        self.bytes_logged = 0
        self.replaying = False
        #: deliveries queued during ordered replay, in arrival order
        self._replay_plan: list[tuple[int, int]] = []
        self._replay_buffer: list[Envelope] = []

    # --- send path -------------------------------------------------------
    def on_app_send(self, env: Envelope) -> None:
        seq = self.send_seq.get(env.dst, 0) + 1
        self.send_seq[env.dst] = seq
        env.meta["seq"] = seq
        self.sent_log.setdefault(env.dst, []).append(
            (seq, env.tag, copy.deepcopy(env.payload), env.size)
        )
        self.messages_logged += 1
        self.bytes_logged += env.size

    # --- receive path ------------------------------------------------------
    def on_message(self, env: Envelope) -> bool:
        seq = env.meta["seq"]
        if seq <= self.recv_seq.get(env.src, 0):
            return False  # duplicate from a recovering sender
        if self.replaying:
            # buffer; deliveries happen strictly in determinant order, then
            # leftovers (messages beyond the failure point) flush in arrival
            # order once the plan is exhausted
            self._replay_buffer.append(env)
            self._pump_replay()
            return False
        self._deliver_bookkeeping(env.src, seq)
        return True

    def _deliver_bookkeeping(self, src: int, seq: int) -> None:
        self.recv_seq[src] = seq
        self.determinants.append((src, seq))

    # --- ordered replay ---------------------------------------------------
    def begin_replay(self, plan: list[tuple[int, int]]) -> None:
        self.replaying = bool(plan)
        self._replay_plan = list(plan)

    def _pump_replay(self) -> None:
        while self._replay_plan:
            src, seq = self._replay_plan[0]
            env = next(
                (e for e in self._replay_buffer
                 if e.src == src and e.meta["seq"] == seq),
                None,
            )
            if env is None:
                return
            self._replay_buffer.remove(env)
            self._replay_plan.pop(0)
            self._deliver_bookkeeping(env.src, env.meta["seq"])
            self.proc.deliver_to_app(env)
        self.replaying = False
        leftovers, self._replay_buffer = self._replay_buffer, []
        for env in leftovers:
            self._deliver_bookkeeping(env.src, env.meta["seq"])
            self.proc.deliver_to_app(env)

    # --- checkpointing -----------------------------------------------------
    def checkpoint_due(self) -> bool:
        cfg = self.controller.config
        if cfg.checkpoint_interval is None:
            return False
        now = self.world.engine.now
        if self._next_ckpt is None:
            self._next_ckpt = cfg.checkpoint_interval + cfg.rank_stagger * self.rank
        return now >= self._next_ckpt

    def on_checkpoint(self) -> None:
        cfg = self.controller.config
        assert cfg.checkpoint_interval is not None and self._next_ckpt is not None
        self._next_ckpt = self.world.engine.now + cfg.checkpoint_interval
        self.checkpoints.append(
            _PMLCheckpoint(
                app_state=self.world.programs[self.rank].snapshot(),
                coll_seq=self.world.apis[self.rank]._coll_seq,
                unexpected=[copy.deepcopy(e) for e in self.proc.unexpected],
                send_seq=dict(self.send_seq),
                recv_seq=dict(self.recv_seq),
                determinant_count=len(self.determinants),
            )
        )


class PMLController:
    """Failure orchestration: restart the failed rank only."""

    def __init__(self, nprocs: int, config: PMLConfig | None = None):
        self.nprocs = nprocs
        self.config = config or PMLConfig()
        self.hooks = [PMLHook(r, self) for r in range(nprocs)]
        self.world: World | None = None
        self.injector: FailureInjector | None = None
        self.rolled_back_history: list[int] = []

    def hook_for(self, rank: int) -> PMLHook:
        return self.hooks[rank]

    def bind(self, world: World) -> None:
        self.world = world
        self.injector = FailureInjector(world, self.on_failures)
        for rank, hook in enumerate(self.hooks):
            hook.checkpoints.append(
                _PMLCheckpoint(
                    app_state=world.programs[rank].snapshot(),
                    coll_seq=0, unexpected=[], send_seq={}, recv_seq={},
                    determinant_count=0,
                )
            )

    def inject_failure(self, time: float, rank: int) -> None:
        assert self.injector is not None
        self.injector.at(time, rank)

    def arm(self) -> None:
        assert self.injector is not None
        self.injector.arm()

    # ------------------------------------------------------------------
    def on_failures(self, ranks: list[int]) -> None:
        if len(ranks) != 1:
            raise ProtocolError(
                "the pessimistic-logging baseline handles one failure at a time"
            )
        assert self.world is not None
        world = self.world
        rank = ranks[0]
        self.rolled_back_history.append(1)
        proc = world.procs[rank]
        if proc.done:
            world.note_rank_restarted()
        proc.kill()
        proc.alive = True
        hook = self.hooks[rank]
        ckpt = hook.checkpoints[-1]
        program = world.programs[rank]
        program.restore(ckpt.app_state)
        world.apis[rank]._coll_seq = ckpt.coll_seq
        proc.unexpected.extend(copy.deepcopy(e) for e in ckpt.unexpected)
        hook.send_seq = dict(ckpt.send_seq)
        hook.recv_seq = dict(ckpt.recv_seq)
        # determinants after the checkpoint define the exact replay order
        plan = hook.determinants[ckpt.determinant_count:]
        hook.determinants = hook.determinants[: ckpt.determinant_count]
        hook.begin_replay(plan)
        proc.start(program.run(world.apis[rank]))
        # peers re-send from their sender-based logs everything the restored
        # state has not delivered yet (the failed rank's own re-sends are
        # suppressed at the peers by the sequence watermarks)
        for peer_rank, peer in enumerate(self.hooks):
            if peer_rank == rank:
                continue
            for seq, tag, payload, size in peer.sent_log.get(rank, []):
                if seq > hook.recv_seq.get(peer_rank, 0):
                    env = Envelope(src=peer_rank, dst=rank, tag=tag,
                                   payload=copy.deepcopy(payload), size=size)
                    env.meta["seq"] = seq
                    env.meta["replayed"] = True
                    world.transmit_app(env)

    # ------------------------------------------------------------------
    def logging_stats(self) -> dict[str, float]:
        assert self.world is not None
        total = self.world.tracer.total_app_messages()
        logged = sum(h.messages_logged for h in self.hooks)
        return {
            "messages_total": total,
            "messages_logged": logged,
            "log_fraction": logged / total if total else 0.0,
        }


def build_pml_world(nprocs: int, program_factory, config: PMLConfig | None = None,
                    **world_kwargs) -> tuple[World, PMLController]:
    controller = PMLController(nprocs, config)
    world = World(nprocs, program_factory, hook_factory=controller.hook_for,
                  **world_kwargs)
    controller.bind(world)
    return world, controller
