"""Coordinated checkpointing baseline (global restart on any failure).

The comparison point of the paper's introduction: coordinated
checkpointing keeps one consistent global snapshot, which makes recovery
trivial (restore everyone, discard nothing else) but forces **every**
process to roll back on any single failure — the energy argument
motivating the paper — and synchronizes all checkpoint I/O into a burst.

Implementation: *blocking boundary coordination* (in the spirit of
Koo–Toueg [12] and the time-coordinated protocol of Neves–Fuchs [14], the
flavours actually deployed in HPC production):

1. the coordinator opens a round and collects every rank's current
   checkpoint-opportunity count;
2. the round's *target boundary* is ``max(counts) + 1``: every rank
   pauses when its opportunity counter reaches the target.  Because the
   kernels are SPMD and offer an opportunity once per iteration, all
   iteration-``T`` traffic is emitted before any rank passes boundary
   ``T``, so every rank can reach the target without post-target messages
   (no coordination deadlock);
3. once all ranks are paused the controller drains the network — any
   cross-iteration straggler lands in the library-level unexpected queue,
   which is part of the snapshot — then snapshots everyone and resumes.

A Chandy–Lamport marker implementation is deliberately *not* used: the
substrate checkpoints at application level (generator boundaries), and CL
requires snapshotting at marker-arrival instants, i.e. mid-iteration
process images, which application-level checkpointing cannot capture.

Recovery restores the most recent completed round on **all** ranks
(``rolled back = 100 %``) and purges the network.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any

from ..errors import ProtocolError, SimulationError
from ..simmpi.failure import FailureInjector
from ..simmpi.message import Envelope
from ..simmpi.process import ProtocolHook
from ..simmpi.runtime import World

__all__ = ["CLConfig", "CoordinatedHook", "CLController", "build_cl_world"]


@dataclass
class CLConfig:
    """Coordinated checkpointing knobs.

    ``snapshot_size_bytes`` enables the checkpoint I/O model: every rank's
    snapshot write serialises on the shared storage device, so a
    coordinated round stalls the whole machine for roughly
    ``P * size / bandwidth`` — the I/O burst of the paper's introduction.
    """

    snapshot_interval: float | None = None
    first_snapshot_at: float | None = None
    snapshot_size_bytes: int = 0
    storage_bandwidth: float = 1e9


@dataclass
class _GlobalSnapshotPart:
    round_no: int
    app_state: Any
    coll_seq: int
    unexpected: list[Envelope]


class CoordinatedHook(ProtocolHook):
    """Per-rank participant: counts opportunities, pauses at the target."""

    def __init__(self, rank: int, controller: "CLController"):
        self.rank = rank
        self.controller = controller
        self.boundary_count = 0
        self.target: int | None = None
        #: completed global snapshot parts by round
        self.snapshots: dict[int, _GlobalSnapshotPart] = {}

    # --- boundary detection ------------------------------------------------
    def checkpoint_due(self) -> bool:
        # Every opportunity advances the boundary counter; the coordinated
        # round decides whether this boundary is a pause point.
        self.boundary_count += 1
        return self.target is not None and self.boundary_count >= self.target

    def on_checkpoint(self) -> None:
        self.target = None
        self.proc.pause()
        self.controller.on_rank_at_boundary(self.rank)

    def on_program_done(self) -> None:
        if self.target is not None:
            # cannot reach another boundary; participate with the final state
            self.target = None
            self.controller.on_rank_at_boundary(self.rank)

    # --- snapshot capture (controller-driven, post-drain) --------------------
    def capture(self, round_no: int) -> None:
        world = self.world
        self.snapshots[round_no] = _GlobalSnapshotPart(
            round_no=round_no,
            app_state=world.programs[self.rank].snapshot(),
            coll_seq=world.apis[self.rank]._coll_seq,
            unexpected=[copy.deepcopy(e) for e in self.proc.unexpected],
        )

    def record_initial(self) -> None:
        """Round 0: the initial state is a trivially consistent snapshot."""
        self.snapshots[0] = _GlobalSnapshotPart(
            round_no=0,
            app_state=self.world.programs[self.rank].snapshot(),
            coll_seq=0,
            unexpected=[],
        )


class CLController:
    """Coordinates snapshot rounds and performs global restarts."""

    def __init__(self, nprocs: int, config: CLConfig | None = None):
        self.nprocs = nprocs
        self.config = config or CLConfig()
        self.hooks = [CoordinatedHook(r, self) for r in range(nprocs)]
        self.world: World | None = None
        self.injector: FailureInjector | None = None
        self.round = 0
        self.round_active = False
        self._at_boundary: set[int] = set()
        self.completed_rounds: list[int] = []
        self.global_restarts = 0
        self.rolled_back_history: list[int] = []
        self._drain_polls = 0
        #: cumulative machine time lost to serialised snapshot writes
        self.io_burst_time = 0.0

    def hook_for(self, rank: int) -> CoordinatedHook:
        return self.hooks[rank]

    def bind(self, world: World) -> None:
        self.world = world
        self.injector = FailureInjector(world, self.on_failures)
        for hook in self.hooks:
            hook.record_initial()
        cfg = self.config
        if cfg.snapshot_interval is not None:
            first = cfg.first_snapshot_at or cfg.snapshot_interval
            world.engine.schedule_at(first, self._periodic)

    def _periodic(self) -> None:
        assert self.world is not None and self.config.snapshot_interval is not None
        if self.world.all_done:
            return  # stop the timer or the event queue never drains
        self.trigger_snapshot()
        self.world.engine.schedule(self.config.snapshot_interval, self._periodic)

    # ------------------------------------------------------------------
    # Snapshot rounds
    # ------------------------------------------------------------------
    def trigger_snapshot(self) -> int | None:
        assert self.world is not None
        if self.round_active:
            return None  # one round at a time
        self.round += 1
        self.round_active = True
        self._at_boundary = set()
        target = max(h.boundary_count for h in self.hooks) + 1
        for rank, hook in enumerate(self.hooks):
            if self.world.procs[rank].done:
                self._at_boundary.add(rank)
            else:
                hook.target = target
        if len(self._at_boundary) == self.nprocs:
            self._complete_round()
        return self.round

    def on_rank_at_boundary(self, rank: int) -> None:
        if not self.round_active:
            return
        self._at_boundary.add(rank)
        if len(self._at_boundary) == self.nprocs:
            self._drain_polls = 0
            self._poll_drain()

    def _poll_drain(self) -> None:
        assert self.world is not None
        if not self.round_active:
            return
        if self.world.network.in_flight_count() == 0:
            self._complete_round()
            return
        self._drain_polls += 1
        if self._drain_polls > 1_000_000:
            raise SimulationError("coordinated round failed to drain")
        self.world.engine.schedule(1e-6, self._poll_drain)

    def _complete_round(self) -> None:
        assert self.world is not None
        cfg = self.config
        transfer = (
            cfg.snapshot_size_bytes / cfg.storage_bandwidth
            if cfg.snapshot_size_bytes else 0.0
        )
        free_at = self.world.engine.now
        for rank, hook in enumerate(self.hooks):
            hook.capture(self.round)
            hook.snapshots = {
                r: s for r, s in hook.snapshots.items()
                if r >= self.round - 1 or r == 0
            }  # keep previous round until this one is fully durable
            if transfer:
                # every rank's write serialises on the shared device; the
                # whole machine is paused until its own write lands — the
                # coordinated I/O burst
                free_at += transfer
                self.io_burst_time += transfer
                self.world.engine.schedule_at(
                    free_at, lambda r=rank: self.world.procs[r].unpause()
                )
            else:
                self.world.procs[rank].unpause()
        self.completed_rounds.append(self.round)
        self.round_active = False

    # ------------------------------------------------------------------
    # Failure handling: global restart
    # ------------------------------------------------------------------
    def inject_failure(self, time: float, rank: int) -> None:
        assert self.injector is not None
        self.injector.at(time, rank)

    def arm(self) -> None:
        assert self.injector is not None
        self.injector.arm()

    def on_failures(self, ranks: list[int]) -> None:
        """Restore the last completed global snapshot on *every* rank."""
        assert self.world is not None
        world = self.world
        self.global_restarts += 1
        self.rolled_back_history.append(self.nprocs)
        self.round_active = False
        world.network.purge_all()
        restore_round = self.completed_rounds[-1] if self.completed_rounds else 0
        for rank in range(self.nprocs):
            proc = world.procs[rank]
            if proc.done:
                world.note_rank_restarted()
            if rank in ranks:
                proc.kill()
                proc.alive = True
            else:
                proc.reincarnate()
            proc.paused = False
            hook = self.hooks[rank]
            hook.target = None
            snap = hook.snapshots.get(restore_round)
            if snap is None:
                raise ProtocolError(
                    f"rank {rank} lacks snapshot for round {restore_round}"
                )
            program = world.programs[rank]
            program.restore(snap.app_state)
            world.apis[rank]._coll_seq = snap.coll_seq
            proc.unexpected.extend(copy.deepcopy(e) for e in snap.unexpected)
            proc.start(program.run(world.apis[rank]))
        self.round = restore_round


def build_cl_world(nprocs: int, program_factory, config: CLConfig | None = None,
                   **world_kwargs) -> tuple[World, CLController]:
    """World + coordinated-checkpointing controller, wired."""
    controller = CLController(nprocs, config)
    world = World(nprocs, program_factory, hook_factory=controller.hook_for,
                  **world_kwargs)
    controller.bind(world)
    return world, controller
