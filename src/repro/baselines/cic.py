"""Communication-induced checkpointing (CIC) baseline.

Related-work comparison (paper Section VI, [2][3]): index-based CIC à la
Briatico/Ciuffoletti/Simoncini avoids the domino effect without
coordination by piggybacking a checkpoint index on every message and
**forcing** a checkpoint whenever a message with a larger index arrives
(before delivering it).  The recovery line `index = i` is then always
consistent.

The well-known drawback (the analysis of Alvisi et al. [2] the paper
cites) is the *forced-checkpoint amplification*: processes checkpoint far
more often than their local (basic) schedule asks for, and the effect
worsens with scale.  This implementation measures exactly that:
``forced_checkpoints`` vs ``basic_checkpoints`` per rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..simmpi.message import Envelope
from ..simmpi.process import ProtocolHook
from ..simmpi.runtime import World

__all__ = ["CICConfig", "CICHook", "CICController", "build_cic_world"]


@dataclass
class CICConfig:
    """Basic (local-timer) checkpoint policy for the CIC baseline."""

    checkpoint_interval: float
    rank_stagger: float = 0.0


class CICHook(ProtocolHook):
    """Index-based CIC participant.

    A *basic* checkpoint fires on the local timer at checkpoint
    opportunities; a *forced* checkpoint fires immediately (conceptually
    before delivery) when a message carries a larger index.  Forced
    checkpoints here snapshot protocol state only — the baseline exists to
    count checkpoints, not to run recovery.
    """

    def __init__(self, rank: int, controller: "CICController"):
        self.rank = rank
        self.controller = controller
        self.index = 0
        self.basic_checkpoints = 0
        self.forced_checkpoints = 0
        self._next_due: float | None = None

    # --- message paths ---------------------------------------------------
    def on_app_send(self, env: Envelope) -> None:
        env.meta["cic_index"] = self.index

    def on_message(self, env: Envelope) -> bool:
        msg_index = env.meta.get("cic_index", 0)
        if msg_index > self.index:
            # forced checkpoint before delivery: jump to the message index
            self.index = msg_index
            self.forced_checkpoints += 1
        return True

    # --- basic (timer) checkpoints ------------------------------------------
    def checkpoint_due(self) -> bool:
        cfg = self.controller.config
        now = self.world.engine.now
        if self._next_due is None:
            self._next_due = cfg.checkpoint_interval + cfg.rank_stagger * self.rank
        return now >= self._next_due

    def on_checkpoint(self) -> None:
        cfg = self.controller.config
        self._next_due = self.world.engine.now + cfg.checkpoint_interval
        self.index += 1
        self.basic_checkpoints += 1


class CICController:
    """Aggregates per-rank CIC checkpoint counts."""

    def __init__(self, nprocs: int, config: CICConfig):
        self.nprocs = nprocs
        self.config = config
        self.hooks = [CICHook(r, self) for r in range(nprocs)]

    def hook_for(self, rank: int) -> CICHook:
        return self.hooks[rank]

    def stats(self) -> dict[str, float]:
        basic = sum(h.basic_checkpoints for h in self.hooks)
        forced = sum(h.forced_checkpoints for h in self.hooks)
        return {
            "basic_checkpoints": basic,
            "forced_checkpoints": forced,
            "amplification": (basic + forced) / basic if basic else float("inf"),
        }


def build_cic_world(nprocs: int, program_factory: Callable[[int, int], Any],
                    config: CICConfig, **world_kwargs: Any) -> tuple[World, CICController]:
    controller = CICController(nprocs, config)
    world = World(nprocs, program_factory, hook_factory=controller.hook_for,
                  **world_kwargs)
    return world, controller
