"""Plain uncoordinated checkpointing — the domino-effect baseline.

Section V-E-2 of the paper: uncoordinated checkpoints at random times with
*no* message logging create no consistent cuts in the dependency paths, so
the failure of any process rolls everybody back (and, with unbounded
dependency chains, arbitrarily far — the domino effect).

This baseline reuses the full protocol machinery with the epoch-crossing
logging rule disabled (``ProtocolConfig(log_cross_epoch=False)``): every
acknowledged message lands in ``SPE``, so the recovery-line fix-point
cascades freely, which is precisely the domino computation.  The offline
analysis then reports how many processes roll back and how deep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..analysis.rollback import SpeSampler, rollback_analysis
from ..core.controller import ProtocolConfig, build_ft_world
from ..core.recovery import RecoveryLineSolver

__all__ = ["DominoStats", "run_domino_analysis", "plain_uncoordinated_config"]


def plain_uncoordinated_config(
    checkpoint_interval: float,
    jitter: float = 0.5,
    seed: int = 0,
) -> ProtocolConfig:
    """Random-time independent checkpoints, no logging, no clustering —
    the configuration of the paper's Section V-E-2 experiment."""
    return ProtocolConfig(
        checkpoint_interval=checkpoint_interval,
        checkpoint_jitter=jitter,
        checkpoint_seed=seed,
        log_cross_epoch=False,
        lightweight=True,
    )


@dataclass
class DominoStats:
    """Rollback statistics for the plain-uncoordinated baseline."""

    nprocs: int
    mean_rolled_back_fraction: float
    #: mean number of epochs each rolled-back process loses
    mean_rollback_depth: float
    #: fraction of trials in which some process returned to its initial epoch
    restart_from_beginning_fraction: float


def run_domino_analysis(
    nprocs: int,
    program_factory: Callable[[int, int], Any],
    checkpoint_interval: float,
    sample_interval: float,
    jitter: float = 0.5,
    seed: int = 0,
    **world_kwargs: Any,
) -> DominoStats:
    """Run a kernel under plain uncoordinated checkpointing and measure the
    domino effect with the paper's offline methodology."""
    cfg = plain_uncoordinated_config(checkpoint_interval, jitter, seed)
    world, controller = build_ft_world(nprocs, program_factory, cfg, **world_kwargs)
    sampler = SpeSampler(controller, sample_interval)
    sampler.arm()
    world.launch()
    world.run()
    if not sampler.snapshots:
        sampler.take()
    stats = rollback_analysis(sampler.snapshots, nprocs)
    depths: list[float] = []
    hit_beginning = 0
    trials = 0
    for snap in sampler.snapshots:
        # one solver per snapshot: the inbound-edge index is shared across
        # all nprocs failure trials instead of being rebuilt per trial
        solver = RecoveryLineSolver(snap.spe_tables)
        for f in range(nprocs):
            rl = solver.solve({f: snap.epochs[f]})
            trials += 1
            if any(epoch <= 1 for epoch, _ in rl.values()):
                hit_beginning += 1
            depths.extend(snap.epochs[r] - e for r, (e, _d) in rl.items())
    return DominoStats(
        nprocs=nprocs,
        mean_rolled_back_fraction=stats.mean_fraction,
        mean_rollback_depth=float(np.mean(depths)) if depths else 0.0,
        restart_from_beginning_fraction=hit_beginning / trials if trials else 0.0,
    )
