"""repro.obs — opt-in observability for the simulator and protocol stack.

A :class:`MetricsRegistry` threads through every layer (engine, network,
protocol, log store, controller, recovery) and collects counters, gauges,
histograms, virtual-clock spans and a structured trace-event stream.  The
default is the shared :data:`NULL_OBS` no-op registry, so uninstrumented
runs pay (at most) one pointer comparison per event and the simulator's
bit-reproducibility guarantee is untouched.

Quick start::

    from repro.obs import MetricsRegistry, dump_metrics
    obs = MetricsRegistry()
    world, controller = build_ft_world(8, factory, config, obs=obs)
    world.launch(); world.run()
    print(dump_metrics(obs, "jsonl"))

or from the command line: ``python -m repro obs --format csv``.
"""

from .registry import (
    Counter,
    CounterCell,
    Gauge,
    Histogram,
    HistogramSampler,
    MetricsRegistry,
    NullRegistry,
    NULL_OBS,
    Span,
    TraceRecord,
    DURATION_BUCKETS,
    DEPTH_BUCKETS,
    SIZE_BUCKETS,
)
from .export import (
    dump_events,
    dump_flight,
    dump_metrics,
    dump_text,
    dump_timeseries,
    event_rows,
    flight_rows,
    histogram_quantile,
    metric_rows,
    timeseries_rows,
    to_csv,
    to_jsonl,
)
from .timeseries import (
    DEFAULT_TIMESERIES_CAPACITY,
    DEFAULT_TIMESERIES_INTERVAL,
    TimeSeriesRecorder,
)
from .stream import ProgressStream, stream_progress
from .report import render_report, write_report
from .flight import (
    DEFAULT_FLIGHT_CAPACITY,
    FlightKind,
    FlightRecorder,
    NULL_FLIGHT,
    NullFlightRecorder,
    RECORD_FIELDS,
    record_to_dict,
)
from .explain import (
    ForcingEdge,
    RankExplanation,
    RecoveryExplanation,
    explain_recovery_line,
    explain_report,
)
from .perfetto import dump_perfetto, perfetto_trace

__all__ = [
    "Counter",
    "CounterCell",
    "Gauge",
    "Histogram",
    "HistogramSampler",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_OBS",
    "Span",
    "TraceRecord",
    "DURATION_BUCKETS",
    "DEPTH_BUCKETS",
    "SIZE_BUCKETS",
    "dump_events",
    "dump_flight",
    "dump_metrics",
    "dump_text",
    "dump_timeseries",
    "event_rows",
    "flight_rows",
    "histogram_quantile",
    "metric_rows",
    "timeseries_rows",
    "to_csv",
    "to_jsonl",
    "DEFAULT_TIMESERIES_CAPACITY",
    "DEFAULT_TIMESERIES_INTERVAL",
    "TimeSeriesRecorder",
    "ProgressStream",
    "stream_progress",
    "render_report",
    "write_report",
    "DEFAULT_FLIGHT_CAPACITY",
    "FlightKind",
    "FlightRecorder",
    "NULL_FLIGHT",
    "NullFlightRecorder",
    "RECORD_FIELDS",
    "record_to_dict",
    "ForcingEdge",
    "RankExplanation",
    "RecoveryExplanation",
    "explain_recovery_line",
    "explain_report",
    "dump_perfetto",
    "perfetto_trace",
]
