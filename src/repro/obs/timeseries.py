"""Virtual-time metric series: periodic snapshots of live instruments.

:class:`TimeSeriesRecorder` turns the registry's end-of-run aggregates into
*time-resolved* curves — logged bytes accumulating between checkpoints,
the recovery line growing as acks land, GC reclaiming logs after an epoch
advance — the shapes the paper's claims are actually about.

Sampling model (why this is not ``schedule_at``)
------------------------------------------------
Samples land on a fixed virtual-time grid ``base + k * interval`` driven by
a *boundary hook inside the engine's dispatch loop*: before dispatching an
event whose timestamp has reached the next grid point, the engine calls
:meth:`sample_through`, which records every crossed boundary and returns
the next one.  Between events the simulation state is constant, so the
value read when the boundary is crossed *is* the state at the boundary.

Scheduling sampler callbacks as queue events would be simpler but is
observable: each event consumes a sequence number (closing the network's
same-instant burst windows), advances the 1-in-N depth-sampling countdown,
and keeps the queue non-empty (upsetting drain/deadlock detection).  The
boundary hook consumes no sequence numbers and adds no queue entries, so
arming the recorder — or changing its interval — provably cannot perturb
event order: the final registry of an instrumented run is byte-identical
with the recorder on or off (asserted by tests/obs/test_timeseries.py).
Like the rest of the registry, everything is driven by the virtual clock,
never wall time, so RPD002 stays clean and runs stay bit-reproducible.

Probes are registered once at world-construction time (engine, network and
controller each contribute their series) and must be cheap: every reader
runs at every grid point.  Two kinds exist:

* ``gauge`` probes record the instantaneous value.
* ``counter`` probes additionally record the per-window delta, giving
  rates without post-processing.

``snapshot()`` / ``merge()`` follow the registry contract: plain-data,
picklable, and merged in task order by the sweep executor so ``--workers
N`` output is byte-identical for any worker count.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from ..errors import SimulationError

__all__ = [
    "TimeSeriesRecorder",
    "DEFAULT_TIMESERIES_INTERVAL",
    "DEFAULT_TIMESERIES_CAPACITY",
]

#: default sampling interval, in virtual seconds (~30-60 points for the
#: bundled kernels at Table I scale; cheap enough for the <=1.05x budget)
DEFAULT_TIMESERIES_INTERVAL = 1e-5

#: default per-series ring capacity (oldest samples evict, with the drop
#: counted — the flight-recorder accounting idiom)
DEFAULT_TIMESERIES_CAPACITY = 4096


class _Series:
    """One named curve: parallel time/value rings plus drop accounting.

    ``appended`` counts samples ever taken; ``appended - len(t)`` is the
    number evicted by the ring (derived, never maintained per append).
    Counter-kind series carry a third ring ``d`` of per-window deltas.
    """

    __slots__ = ("name", "kind", "t", "v", "d", "appended", "prev")

    def __init__(self, name: str, kind: str, capacity: int | None):
        self.name = name
        self.kind = kind
        self.t: deque[float] = deque(maxlen=capacity)
        self.v: deque[float] = deque(maxlen=capacity)
        self.d: deque[float] | None = (
            deque(maxlen=capacity) if kind == "counter" else None
        )
        self.appended = 0
        self.prev = 0.0  # last raw counter reading, for window deltas

    @property
    def dropped(self) -> int:
        return self.appended - len(self.t)


class TimeSeriesRecorder:
    """Samples registered probes at a fixed virtual-time grid.

    Created by ``MetricsRegistry(timeseries_interval=...)``; bound to the
    first engine constructed against that registry (``bind_engine`` is
    first-wins, so a reference re-run sharing the registry cannot mix its
    series into another world's curves).  ``capacity=None`` means
    unbounded — the merge-sink configuration used by the sweep parent.
    """

    __slots__ = (
        "interval",
        "capacity",
        "samples_taken",
        "next_time",
        "series",
        "_engine",
        "_base",
        "_k",
        "_gauges",
        "_counters",
    )

    def __init__(self, interval: float, capacity: int | None = DEFAULT_TIMESERIES_CAPACITY):
        if not interval > 0.0:
            raise SimulationError(
                f"time-series interval must be > 0, got {interval!r}"
            )
        self.interval = float(interval)
        self.capacity = capacity
        self.samples_taken = 0
        self.next_time = float("inf")  # armed by bind_engine
        self.series: dict[str, _Series] = {}
        self._engine: Any = None
        self._base = 0.0
        self._k = 1
        # probe lists the sampling loop iterates: (series, reader) pairs
        self._gauges: list[tuple[_Series, Callable[[], float]]] = []
        self._counters: list[tuple[_Series, Callable[[], float]]] = []

    # ------------------------------------------------------------------
    # Binding & registration
    # ------------------------------------------------------------------
    @property
    def engine(self) -> Any:
        return self._engine

    def bind_engine(self, engine: Any) -> bool:
        """Arm the grid against ``engine``'s clock.  First engine wins:
        returns ``False`` (and changes nothing) if already bound, so
        components gate their probe registration on ``ts.engine is
        <their engine>`` and a second world sharing the registry stays
        out of the series."""
        if self._engine is not None:
            return self._engine is engine
        self._engine = engine
        self._base = engine.now
        self._k = 1
        # grid points are base + k*interval by *multiplication*, never by
        # repeated addition — no float-accumulation drift between runs of
        # different lengths
        self.next_time = self._base + self.interval
        return True

    def _new_series(self, name: str, kind: str) -> _Series:
        if name in self.series:
            raise SimulationError(f"time series {name!r} already registered")
        s = _Series(name, kind, self.capacity)
        self.series[name] = s
        return s

    def probe(self, name: str, fn: Callable[[], float], kind: str = "gauge") -> None:
        """Register a reader sampled at every grid point.

        ``kind="counter"`` readers must be monotone; their per-window
        delta is recorded alongside the raw value.  Readers must be pure
        observations — never schedule events or mutate simulation state.
        """
        if kind not in ("gauge", "counter"):
            raise SimulationError(f"unknown time-series kind {kind!r}")
        s = self._new_series(name, kind)
        if kind == "counter":
            self._counters.append((s, fn))
        else:
            self._gauges.append((s, fn))

    def track_counter(self, name: str, counter: Any) -> None:
        """Track a registry :class:`~repro.obs.registry.Counter`'s total."""
        s = self._new_series(name, "counter")
        self._counters.append((s, lambda: counter.total))

    def track_gauge(self, name: str, gauge: Any) -> None:
        """Track a registry :class:`~repro.obs.registry.Gauge`'s value."""
        s = self._new_series(name, "gauge")
        self._gauges.append((s, lambda: gauge.value))

    # ------------------------------------------------------------------
    # Sampling (called from the engine dispatch loop)
    # ------------------------------------------------------------------
    def sample_through(self, t: float) -> float:
        """Record every grid boundary ``<= t``; returns the new next one.

        The engine calls this just before dispatching an event at time
        ``>= next_time`` (and once more when a run horizon passes the
        boundary with the queue drained), so each sample sees the state
        *at* the boundary — nothing has executed past it yet.
        """
        nxt = self.next_time
        interval = self.interval
        base = self._base
        k = self._k
        gauges = self._gauges
        counters = self._counters
        samples = 0
        while nxt <= t:
            for s, fn in gauges:
                s.t.append(nxt)
                s.v.append(fn())
                s.appended += 1
            for s, fn in counters:
                cur = fn()
                s.t.append(nxt)
                s.v.append(cur)
                s.d.append(cur - s.prev)
                s.prev = cur
                s.appended += 1
            samples += 1
            k += 1
            nxt = base + k * interval
        if samples:
            self.samples_taken += samples
            self._k = k
            self.next_time = nxt
        return nxt

    # ------------------------------------------------------------------
    # Snapshot / merge (the registry contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Plain-data, picklable copy of every series (registration order)."""
        series: dict[str, dict[str, Any]] = {}
        for name, s in self.series.items():
            data: dict[str, Any] = {
                "kind": s.kind,
                "t": list(s.t),
                "v": list(s.v),
                "appended": s.appended,
            }
            if s.d is not None:
                data["d"] = list(s.d)
            series[name] = data
        return {
            "interval": self.interval,
            "samples": self.samples_taken,
            "series": series,
        }

    def merge(self, snap: dict[str, Any]) -> None:
        """Concatenate another recorder's snapshot, in call order.

        The sweep parent merges worker snapshots in task order, so the
        merged curves are byte-identical for any ``--workers N``.  A
        bounded recorder merging more than ``capacity`` points rings as
        usual (with the evictions counted as drops); the parent-side
        merge sink is created unbounded so campaign dashboards keep every
        task's curve.
        """
        if not snap:
            return
        if snap["interval"] != self.interval:
            raise SimulationError(
                "cannot merge time series with different intervals: "
                f"{snap['interval']!r} vs {self.interval!r}"
            )
        for name, data in snap.get("series", {}).items():
            s = self.series.get(name)
            if s is None:
                s = _Series(name, data["kind"], self.capacity)
                self.series[name] = s
            elif s.kind != data["kind"]:
                raise SimulationError(
                    f"time series {name!r} kind mismatch: "
                    f"{s.kind} vs {data['kind']}"
                )
            s.t.extend(data["t"])
            s.v.extend(data["v"])
            if s.d is not None:
                s.d.extend(data.get("d", ()))
            s.appended += data["appended"]
        self.samples_taken += snap.get("samples", 0)
