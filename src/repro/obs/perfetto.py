"""Chrome trace-event / Perfetto export of flight records.

Renders one run's flight-record stream (:mod:`repro.obs.flight`) as a
Chrome trace-event JSON object loadable in ``ui.perfetto.dev`` or
``chrome://tracing``:

* one ``pid``/``tid`` lane per rank,
* ``X`` (complete) spans for compute and recovery intervals, derived from
  the failure/rollback -> running transitions each rank records,
* ``i`` (instant) marks for checkpoints, failures, epoch increments and
  replays,
* ``s``/``f`` flow arrows from each application send to its delivery,
  paired by the message ``uid``.

Only the four phase types ``{X, i, s, f}`` are emitted, so the output is
trivially schema-checkable (``tests/obs/test_perfetto.py``).  Timestamps
are the simulator's virtual seconds scaled to microseconds — the trace is
bit-reproducible across hosts, like everything else in the pipeline.
"""

from __future__ import annotations

import json
from typing import Any

from .flight import FlightKind

__all__ = ["perfetto_trace", "dump_perfetto", "INSTANT_KINDS"]

#: flight kinds rendered as instant marks on the rank's lane
INSTANT_KINDS = {
    FlightKind.CHECKPOINT: "checkpoint",
    FlightKind.FAILURE: "failure",
    FlightKind.EPOCH: "epoch",
    FlightKind.ROLLBACK: "rollback",
    FlightKind.REPLAY: "replay",
}

_US = 1_000_000.0  # virtual seconds -> trace microseconds


def _flight_of(source: Any):
    """Accept a MetricsRegistry, a FlightRecorder, or a snapshot dict."""
    flight = getattr(source, "flight", source)
    if isinstance(flight, dict):  # snapshot: rehydrate into a recorder
        from .flight import FlightRecorder

        # size the ring to hold every record present: a snapshot missing
        # its "capacity" key must not have its streams evicted (and the
        # evictions counted as drops) by the rehydrating merge
        records = flight.get("records", {})
        capacity = flight.get("capacity", 0) or max(
            (len(r) for r in records.values()), default=1) or 1
        recorder = FlightRecorder(capacity=capacity)
        recorder.merge(flight)
        return recorder
    return flight


def perfetto_trace(source: Any, nprocs: int | None = None) -> dict[str, Any]:
    """Build the ``{"traceEvents": [...]}`` object for one run.

    ``source`` is a :class:`~repro.obs.registry.MetricsRegistry`, a
    :class:`~repro.obs.flight.FlightRecorder`, or a flight snapshot.
    ``nprocs`` is accepted for compatibility but ranks that never recorded
    are *not* materialised: a fabricated full-length lane per silent rank
    turns a sparse failure trace into O(p) filler at 4K ranks (Perfetto
    numbers the lanes it does see by pid, so ordering stays stable).
    """
    flight = _flight_of(source)
    events: list[dict[str, Any]] = []
    per_rank = [
        (rank, recs)
        for rank in flight.ranks()
        for recs in (list(flight.records(rank=rank)),)
        if recs
    ]

    sends: dict[int, tuple] = {}
    delivers: dict[int, tuple] = {}
    end_ts = max((recs[-1][0] for _rank, recs in per_rank), default=0.0)

    for rank, recs in per_rank:
        # state spans: compute until a failure/rollback, recovery until the
        # rank reports Running again
        span_start = 0.0
        span_name = "compute"
        for rec in recs:
            time, kind, _rank, peer, uid = rec[0], rec[1], rec[2], rec[3], rec[4]
            if kind == FlightKind.SEND and uid:
                sends[uid] = rec
            elif kind == FlightKind.DELIVER and uid:
                delivers[uid] = rec
            if kind in INSTANT_KINDS:
                events.append({
                    "name": INSTANT_KINDS[kind], "ph": "i", "s": "t",
                    "ts": time * _US, "pid": rank, "tid": rank,
                    "cat": "protocol",
                    "args": {"epoch": rec[5], "phase": rec[7], "peer": peer},
                })
            if kind in (FlightKind.FAILURE, FlightKind.ROLLBACK):
                if span_name == "compute" and time > span_start:
                    events.append({
                        "name": "compute", "ph": "X", "ts": span_start * _US,
                        "dur": (time - span_start) * _US,
                        "pid": rank, "tid": rank, "cat": "state",
                    })
                    span_start, span_name = time, "recovery"
            elif kind == FlightKind.RUNNING and span_name == "recovery":
                events.append({
                    "name": "recovery", "ph": "X", "ts": span_start * _US,
                    "dur": (time - span_start) * _US,
                    "pid": rank, "tid": rank, "cat": "state",
                })
                span_start, span_name = time, "compute"
        if end_ts > span_start:
            events.append({
                "name": span_name, "ph": "X", "ts": span_start * _US,
                "dur": (end_ts - span_start) * _US,
                "pid": rank, "tid": rank, "cat": "state",
            })

    # flow arrows send -> deliver, paired by message uid
    for uid, send_rec in sends.items():
        recv_rec = delivers.get(uid)
        if recv_rec is None:
            continue
        events.append({
            "name": "msg", "ph": "s", "id": uid, "cat": "msg",
            "ts": send_rec[0] * _US, "pid": send_rec[2], "tid": send_rec[2],
        })
        events.append({
            "name": "msg", "ph": "f", "bp": "e", "id": uid, "cat": "msg",
            "ts": recv_rec[0] * _US, "pid": recv_rec[2], "tid": recv_rec[2],
        })

    events.sort(key=lambda e: (e["ts"], e["pid"], e["ph"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dump_perfetto(source: Any, path: str, nprocs: int | None = None) -> int:
    """Write the trace JSON to ``path``; returns the event count."""
    trace = perfetto_trace(source, nprocs=nprocs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, separators=(",", ":"))
        fh.write("\n")
    return len(trace["traceEvents"])
