"""Live JSONL progress stream for sweeps and chaos campaigns.

Long campaigns were silent until the final report; ``--stream out.jsonl``
(or ``--stream -`` for stderr) gives them a heartbeat: the parent process
emits one compact JSON object per line as worker results arrive over the
existing executor queue — no extra IPC, no change to worker code.

Event schema (one object per line, keys sorted)::

    {"v": 1, "seq": N, "elapsed_s": W, "kind": "...", ...}

* ``campaign_begin`` — ``campaign`` name plus its scale (``tasks`` or
  ``trials``, ``workers``, ``seed``/``kernels`` when applicable).
* ``task_done`` — per task/trial: ``index``, ``name``, ``status``
  ("ok"/"error"), ``duration_s``, running ``done``/``total``, ``error``
  (message, on failure), ``cached: true`` when the result was served
  from the content-addressed cache, and optional compact ``metrics``
  pulled from the task's obs snapshot.
* ``campaign_end`` — final tallies (``ok``, and for chaos the
  passed/failed/errors split with per-oracle failure counts; campaigns
  running against a result cache attach its hit/miss/store ``cache``
  stats).

Wall-clock note: ``elapsed_s`` and ``duration_s`` are *operator*
telemetry — wall seconds since the stream opened / per-task worker wall
time.  They never feed back into the simulation, which is why this module
lives in ``obs/`` (exempt from the RPD002 wall-clock lint rule).  The
simulation-side payloads (metrics, series) remain purely virtual-time.
"""

from __future__ import annotations

import json
import sys
import time
from typing import IO, Any, Callable

__all__ = [
    "ProgressStream",
    "stream_progress",
    "snapshot_counter_totals",
]

#: bump when the event schema changes shape
STREAM_SCHEMA_VERSION = 1

#: counter totals surfaced per task in ``task_done.metrics`` (only those
#: present in the snapshot are emitted)
SUMMARY_COUNTERS: tuple[str, ...] = (
    "engine.events_dispatched",
    "network.messages_delivered",
    "protocol.messages_logged",
    "checkpoint.stored",
    "recovery.failures",
)


class ProgressStream:
    """Writes one JSON object per line to a file or stderr, flushing each
    line so ``tail -f`` (or a pipeline) sees events as they happen."""

    def __init__(self, fh: IO[str], close: bool = False):
        self._fh = fh
        self._close = close
        self._seq = 0
        self._t0 = time.monotonic()

    @classmethod
    def open(cls, spec: str) -> "ProgressStream":
        """``spec`` is a path, or ``"-"``/``"stderr"`` for stderr."""
        if spec in ("-", "stderr"):
            return cls(sys.stderr)
        return cls(open(spec, "w", encoding="utf-8"), close=True)

    def emit(self, kind: str, **fields: Any) -> None:
        self._seq += 1
        rec: dict[str, Any] = {
            "v": STREAM_SCHEMA_VERSION,
            "seq": self._seq,
            "elapsed_s": round(time.monotonic() - self._t0, 6),
            "kind": kind,
        }
        rec.update(fields)
        self._fh.write(json.dumps(rec, sort_keys=True, default=str) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._close:
            self._fh.close()
            self._close = False

    def __enter__(self) -> "ProgressStream":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def snapshot_counter_totals(
    snap: dict[str, Any] | None,
    names: tuple[str, ...] = SUMMARY_COUNTERS,
) -> dict[str, float]:
    """Compact counter totals from a registry snapshot (for ``task_done``)."""
    if not snap:
        return {}
    out: dict[str, float] = {}
    instruments = snap.get("instruments", {})
    for name in names:
        data = instruments.get(name)
        if data and data.get("type") == "counter":
            out[name] = sum(v for _, v in data["values"])
    return out


def stream_progress(
    stream: ProgressStream,
    total: int,
    inner: Callable[..., None] | None = None,
) -> Callable[..., None]:
    """Build a ``run_sweep``-compatible ``on_progress`` callback that emits
    a ``task_done`` event per completed task, chaining ``inner`` (an
    existing progress callback, e.g. the chaos CLI ticker) afterwards."""
    done = 0

    def on_progress(result: Any) -> None:
        nonlocal done
        done += 1
        fields: dict[str, Any] = {
            "index": result.index,
            "name": result.name,
            "status": "ok" if result.error is None else "error",
            "duration_s": round(result.duration, 6),
            "done": done,
            "total": total,
        }
        if result.error is not None:
            fields["error"] = result.error
        if getattr(result, "cached", False):
            fields["cached"] = True
        value = result.value
        if isinstance(value, dict) and "passed" in value:
            fields["passed"] = bool(value["passed"])
        metrics = snapshot_counter_totals(getattr(result, "obs", None))
        if metrics:
            fields["metrics"] = metrics
        stream.emit("task_done", **fields)
        if inner is not None:
            inner(result)

    return on_progress
