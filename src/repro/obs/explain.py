"""Recovery-line explainability: *why* did each rank roll back?

The recovery-line fix-point (Fig. 4, :class:`repro.core.recovery.
RecoveryLineSolver`) answers *who* rolls back; this module replays it
with cause tracking and answers *why*: for every rolled-back rank it
produces the fix-point step that fixed its restart epoch — "rank ``k``
restarts at epoch ``Es`` because it sent a non-logged message from ``Es``
that rank ``j`` received at epoch ``Er`` at or above ``j``'s restart
point" — plus the causal chain of such steps back to a failed process.

When a flight-record snapshot (:mod:`repro.obs.flight`) is available, each
forcing edge is resolved to a *concrete* message: the ``confirm`` record
(an acknowledgement that resolved without logging, i.e. a non-logged
message) matching ``(sender, receiver, epoch_send)`` with a reception
epoch at or above the receiver's bound, giving the message ``uid`` the
rest of the tooling (Perfetto flows, trace dumps) indexes by.

The explained recovery line is produced by the *same* solver the recovery
process and the Table I offline analysis use, so it is equal to
``RecoveryLineSolver.solve()`` by construction — asserted in
``tests/obs/test_explain.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .flight import FlightKind, FlightRecorder

__all__ = [
    "ForcingEdge",
    "RankExplanation",
    "RecoveryExplanation",
    "explain_recovery_line",
    "explain_report",
]


@dataclass(frozen=True)
class ForcingEdge:
    """One fix-point propagation step: ``sender`` must restart at
    ``epoch_send`` because ``receiver`` (restarting at ``receiver_bound``)
    re-executes a reception of a non-logged message sent from
    ``epoch_send`` and received at ``epoch_recv``."""

    sender: int
    receiver: int
    epoch_send: int
    epoch_recv: int
    receiver_bound: int
    #: concrete message id resolved from flight records (None when no
    #: flight data covers the edge)
    uid: int | None = None

    def describe(self) -> str:
        msg = f"uid={self.uid}" if self.uid is not None else "uid=?"
        return (
            f"non-logged message {msg} {self.sender}->{self.receiver} "
            f"(epoch_send={self.epoch_send}, epoch_recv={self.epoch_recv})"
        )


@dataclass
class RankExplanation:
    """Why one rank appears in the recovery line."""

    rank: int
    epoch: int
    date: int
    failed: bool
    #: the step that finally fixed this rank's restart epoch (None for
    #: failed ranks — their restart point is the failure itself)
    edge: ForcingEdge | None
    #: causal chain of ranks from this one back to a failed process
    chain: tuple[int, ...] = ()

    def describe(self) -> str:
        where = f"restarts at (epoch {self.epoch}, date {self.date})"
        if self.failed:
            return f"rank {self.rank}: failed -> {where}"
        assert self.edge is not None
        chain = " <- ".join(str(r) for r in self.chain)
        return (
            f"rank {self.rank}: forced by {self.edge.describe()} -> {where}"
            f"  [chain: {chain}]"
        )


@dataclass
class RecoveryExplanation:
    """Full explanation of one recovery line."""

    recovery_line: dict[int, tuple[int, int]]
    failed: list[int]
    ranks: dict[int, RankExplanation] = field(default_factory=dict)
    #: every propagation step, in fix-point order (diagnostic detail)
    steps: list[ForcingEdge] = field(default_factory=list)

    def rolled_back(self) -> list[int]:
        return sorted(self.recovery_line)

    def format(self) -> str:
        lines = [
            f"recovery line: {len(self.recovery_line)} rank(s) roll back "
            f"(failed: {self.failed})"
        ]
        for rank in sorted(self.ranks):
            lines.append("  " + self.ranks[rank].describe())
        return "\n".join(lines)


def _confirm_index(flight: Any) -> dict[tuple[int, int, int], list[tuple[int, int]]]:
    """Index flight ``confirm`` records: (sender, receiver, epoch_send) ->
    [(epoch_recv, uid)], accepting a recorder or a snapshot mapping."""
    index: dict[tuple[int, int, int], list[tuple[int, int]]] = {}
    if flight is None:
        return index
    if isinstance(flight, FlightRecorder) or hasattr(flight, "records"):
        records: Any = flight.records(kind=FlightKind.CONFIRM)
    else:  # snapshot dict from FlightRecorder.snapshot()
        records = (
            rec
            for bucket in flight.get("records", {}).values()
            for rec in bucket
            if rec[1] == FlightKind.CONFIRM
        )
    for rec in records:
        _time, _kind, rank, peer, uid, epoch_send, epoch_recv, *_rest = rec
        index.setdefault((rank, peer, epoch_send), []).append((epoch_recv, uid))
    return index


def _resolve_uid(index: dict, edge: ForcingEdge) -> int | None:
    """Find a concrete non-logged message realising ``edge``.

    Prefers the exact reception epoch the SPE cell carried; any confirm
    with ``epoch_recv >= receiver_bound`` is an equally valid witness (the
    fix-point only needs one reception at or above the bound).
    """
    candidates = index.get((edge.sender, edge.receiver, edge.epoch_send))
    if not candidates:
        return None
    exact = [u for er, u in candidates if er == edge.epoch_recv]
    if exact:
        return exact[0]
    above = [u for er, u in candidates if er >= edge.receiver_bound]
    return above[0] if above else None


def explain_recovery_line(
    spe_tables: dict[int, dict],
    failed_restarts: dict[int, int],
    flight: Any = None,
) -> RecoveryExplanation:
    """Replay the fix-point with cause tracking and build the explanation.

    Parameters mirror :func:`repro.core.recovery.compute_recovery_line`;
    ``flight`` optionally supplies concrete message uids (a
    :class:`~repro.obs.flight.FlightRecorder` or one of its snapshots).
    """
    # imported lazily: core.recovery itself imports repro.obs.registry, and
    # this module is re-exported from the repro.obs package
    from ..core.recovery import RecoveryLineSolver

    raw_steps: list[tuple[int, int, int, int, int]] = []
    solver = RecoveryLineSolver(spe_tables)
    rl = solver.solve(
        failed_restarts,
        on_step=lambda k, es, j, er, bound: raw_steps.append((k, es, j, er, bound)),
    )
    uid_index = _confirm_index(flight)
    steps = [
        ForcingEdge(sender=k, receiver=j, epoch_send=es, epoch_recv=er,
                    receiver_bound=bound)
        for k, es, j, er, bound in raw_steps
    ]
    steps = [
        edge if uid_index == {} else ForcingEdge(
            sender=edge.sender, receiver=edge.receiver,
            epoch_send=edge.epoch_send, epoch_recv=edge.epoch_recv,
            receiver_bound=edge.receiver_bound,
            uid=_resolve_uid(uid_index, edge),
        )
        for edge in steps
    ]
    # The solver only reports a step when it lowers the sender's bound, so
    # the LAST recorded step per sender is the one that fixed its final
    # restart epoch.
    final_edge: dict[int, ForcingEdge] = {}
    for edge in steps:
        final_edge[edge.sender] = edge

    explanation = RecoveryExplanation(
        recovery_line=rl, failed=sorted(failed_restarts), steps=steps,
    )
    for rank, (epoch, date) in rl.items():
        failed = rank in failed_restarts
        edge = None if failed else final_edge.get(rank)
        chain: list[int] = [rank]
        # walk the forcing chain to a failed process (visited-guard: the
        # fix-point can in principle revisit a rank across epochs)
        seen = {rank}
        cursor = edge
        while cursor is not None:
            nxt = cursor.receiver
            chain.append(nxt)
            if nxt in failed_restarts or nxt in seen:
                break
            seen.add(nxt)
            cursor = final_edge.get(nxt)
        explanation.ranks[rank] = RankExplanation(
            rank=rank, epoch=epoch, date=date, failed=failed,
            edge=edge, chain=tuple(chain),
        )
    return explanation


def explain_report(report: Any, flight: Any = None) -> RecoveryExplanation:
    """Explain a live :class:`~repro.core.recovery.RecoveryReport`.

    The recovery process stores the SPE tables and failed-restart map it
    solved with on the report, so the explanation replays exactly the
    fix-point of that round.
    """
    if not report.spe_tables:
        raise ValueError(
            "report carries no SPE tables (recovery never reached the "
            "fix-point, or the report predates explainability)"
        )
    explanation = explain_recovery_line(
        report.spe_tables, report.failed_restarts, flight
    )
    if explanation.recovery_line != report.recovery_line:
        raise AssertionError(
            "explained recovery line diverged from the round's: "
            f"{explanation.recovery_line} vs {report.recovery_line}"
        )
    return explanation
