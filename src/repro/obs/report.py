"""Self-contained HTML dashboard (``repro report``).

Renders virtual-time metric series, campaign-level views (sweep task
outcomes, chaos oracle failures) and benchmark artefacts into a single
dependency-free HTML file: inline SVG charts, inline CSS (light + dark
from one validated palette), and a small inline script for the
crosshair-and-tooltip hover layer.  No external fonts, scripts, styles or
images — the file can be archived as a CI artifact and opened anywhere.

Everything here is pure rendering over already-collected data; nothing
reads a clock (the output is a deterministic function of its inputs), so
regenerating a report from the same inputs is byte-identical.
"""

from __future__ import annotations

import html as _html
import json
import math
from typing import Any, Sequence

__all__ = [
    "render_report",
    "write_report",
    "svg_line_chart",
    "svg_bar_chart",
    "TIMESERIES_CHARTS",
]

# Chart geometry (viewBox units; the SVG scales with the page).
_W, _H = 640, 240
_ML, _MR, _MT, _MB = 64, 16, 14, 34
_MR_LABELED = 150  # right margin when direct labels are present

#: the per-run time-series charts, in render order: (title, y-axis label,
#: [(series name, "v"|"d")], draw as area?).  A chart renders when at
#: least one of its series has data; unavailable ones are skipped and the
#: skip is noted in the section footer (no silent gaps).
TIMESERIES_CHARTS: tuple[tuple[str, str, tuple[tuple[str, str], ...], bool], ...] = (
    ("In-flight messages", "messages",
     (("network.in_flight", "v"),), True),
    ("Logged bytes: held vs reclaimed", "bytes",
     (("log.bytes_held", "v"), ("log.bytes_reclaimed", "v")), False),
    ("Non-acked send queue depth", "messages",
     (("protocol.non_acked", "v"),), True),
    ("Recovery-line size", "ranks",
     (("recovery.line_size", "v"),), True),
    ("Dispatch rate", "events / window",
     (("engine.events_dispatched", "d"),), False),
    ("Messages sent vs delivered (cumulative)", "messages",
     (("network.messages_sent", "v"), ("network.messages_delivered", "v")),
     False),
    ("Checkpoints stored (cumulative)", "checkpoints",
     (("checkpoint.stored", "v"),), False),
    ("Logged messages held", "messages",
     (("log.messages_held", "v"),), False),
)


def _esc(s: Any) -> str:
    return _html.escape(str(s), quote=True)


def _si(v: float) -> str:
    """Compact magnitude formatting for labels and tooltips."""
    if v is None:
        return "-"
    av = abs(v)
    for div, suf in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if av >= div:
            return f"{v / div:.3g}{suf}"
    if av and av == int(av) and av < 1e15:
        return str(int(v))
    return f"{v:.3g}"


def _ticks(vmax: float, n: int = 4) -> list[float]:
    """0-anchored 'nice number' axis ticks covering [0, vmax]."""
    if vmax <= 0:
        return [0.0, 1.0]
    raw = vmax / n
    mag = 10.0 ** math.floor(math.log10(raw))
    step = mag
    for m in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = m * mag
        if step * n >= vmax * 0.999:
            break
    return [i * step for i in range(int(math.ceil(vmax / step)) + 1)]


def _stride(n: int, limit: int) -> int:
    return max(1, -(-n // limit))  # ceil division


def svg_line_chart(
    chart_id: str,
    title: str,
    x: Sequence[float],
    series: Sequence[dict[str, Any]],
    *,
    x_label: str = "virtual time (ms)",
    y_label: str = "",
    area: bool = False,
    note: str = "",
) -> str:
    """One line/area chart: 2px series lines over a hairline grid, legend
    chips + direct labels for multi-series, a crosshair/tooltip hover
    layer (data embedded as JSON) and a collapsible data table.

    ``series`` items: ``{"name": str, "y": [..], "slot": 1-based palette
    slot}``.  ``x`` may contain restarts (merged multi-task series); each
    monotone run is drawn as its own segment.
    """
    series = [s for s in series if s.get("y")]
    if not x or not series:
        return (f'<figure class="fig empty"><figcaption>{_esc(title)}'
                f'</figcaption><p class="muted">no data</p></figure>')
    n = min(len(x), *(len(s["y"]) for s in series))
    x = list(x[:n])
    xmin, xmax = min(x), max(x)
    if xmax <= xmin:
        xmax = xmin + 1.0
    ymax = max(max(s["y"][:n]) for s in series)
    ticks = _ticks(ymax)
    ymax = ticks[-1]
    multi = len(series) > 1
    mr = _MR_LABELED if multi else _MR
    pw, ph = _W - _ML - mr, _H - _MT - _MB

    def sx(v: float) -> float:
        return _ML + (v - xmin) / (xmax - xmin) * pw

    def sy(v: float) -> float:
        return _MT + ph - (v / ymax) * ph if ymax else _MT + ph

    stride = _stride(n, 600)
    idxs = list(range(0, n, stride))
    if idxs[-1] != n - 1:
        idxs.append(n - 1)

    parts: list[str] = [
        f'<figure class="fig" id="{_esc(chart_id)}">',
        f"<figcaption>{_esc(title)}</figcaption>",
    ]
    if multi:
        chips = "".join(
            f'<span class="key"><span class="chip s{s["slot"]}"></span>'
            f"{_esc(s['name'])}</span>"
            for s in series
        )
        parts.append(f'<div class="legend">{chips}</div>')
    parts.append(
        f'<svg viewBox="0 0 {_W} {_H}" role="img" '
        f'aria-label="{_esc(title)}" preserveAspectRatio="xMidYMid meet">'
    )
    # grid + y axis labels (recessive: hairline strokes, muted ink)
    for tval in ticks:
        y = sy(tval)
        parts.append(
            f'<line class="grid" x1="{_ML}" y1="{y:.1f}" '
            f'x2="{_W - mr}" y2="{y:.1f}"/>'
            f'<text class="tick" x="{_ML - 6}" y="{y + 3.5:.1f}" '
            f'text-anchor="end">{_si(tval)}</text>'
        )
    # x axis: baseline + a handful of ticks
    base_y = sy(0.0)
    parts.append(
        f'<line class="axis" x1="{_ML}" y1="{base_y:.1f}" '
        f'x2="{_W - mr}" y2="{base_y:.1f}"/>'
    )
    for k in range(5):
        xv = xmin + (xmax - xmin) * k / 4
        parts.append(
            f'<text class="tick" x="{sx(xv):.1f}" y="{_H - _MB + 16}" '
            f'text-anchor="middle">{_si(xv)}</text>'
        )
    parts.append(
        f'<text class="tick" x="{(_ML + _W - mr) / 2:.1f}" y="{_H - 4}" '
        f'text-anchor="middle">{_esc(x_label)}</text>'
    )
    if y_label:
        parts.append(
            f'<text class="tick" transform="rotate(-90)" '
            f'x="{-(_MT + ph / 2):.1f}" y="12" '
            f'text-anchor="middle">{_esc(y_label)}</text>'
        )
    # series paths, one per monotone x segment
    ends: list[tuple[float, float, dict[str, Any]]] = []
    for s in series:
        ys = s["y"]
        segs: list[list[int]] = [[]]
        for i in idxs:
            if segs[-1] and x[i] < x[segs[-1][-1]]:
                segs.append([])
            segs[-1].append(i)
        for seg in segs:
            pts = " ".join(f"{sx(x[i]):.1f},{sy(ys[i]):.1f}" for i in seg)
            if area and len(seg) > 1:
                first, last = seg[0], seg[-1]
                parts.append(
                    f'<polygon class="area s{s["slot"]}" points="'
                    f'{sx(x[first]):.1f},{base_y:.1f} {pts} '
                    f'{sx(x[last]):.1f},{base_y:.1f}"/>'
                )
            parts.append(
                f'<polyline class="line s{s["slot"]}" points="{pts}"/>'
            )
        last = idxs[-1]
        ends.append((sx(x[last]), sy(ys[last]), s))
    if multi:
        # direct labels at line ends (chip carries identity, text stays in
        # ink); nudge apart when two lines end at the same height
        ends.sort(key=lambda e: e[1])
        prev = -1e9
        for ex, ey, s in ends:
            ey = max(ey, prev + 13)
            ey = min(ey, _MT + ph + 4)
            prev = ey
            parts.append(
                f'<circle class="dot s{s["slot"]}" cx="{ex:.1f}" '
                f'cy="{ey:.1f}" r="3"/>'
                f'<text class="dlabel" x="{ex + 7:.1f}" y="{ey + 3.5:.1f}">'
                f"{_esc(s['name'])}</text>"
            )
    parts.append("</svg>")
    # hover-layer data: [x_px, x label, formatted value per series]
    pts_data = [
        [round(sx(x[i]), 1), _si(x[i])] + [_si(s["y"][i]) for s in series]
        for i in idxs
    ]
    hover = {
        "w": _W,
        "top": _MT,
        "bottom": _MT + ph,
        "pts": pts_data,
        "series": [{"name": s["name"], "slot": s["slot"]} for s in series],
    }
    parts.append(
        '<script type="application/json">'
        + json.dumps(hover, sort_keys=True)
        + "</script>"
    )
    # table view (accessibility): decimated to <= 36 rows
    tstride = _stride(n, 36)
    head = "".join(f"<th>{_esc(s['name'])}</th>" for s in series)
    body = "".join(
        "<tr><td>" + _si(x[i]) + "</td>"
        + "".join(f"<td>{_si(s['y'][i])}</td>" for s in series)
        + "</tr>"
        for i in range(0, n, tstride)
    )
    parts.append(
        f"<details><summary>data table</summary><table><thead><tr>"
        f"<th>{_esc(x_label)}</th>{head}</tr></thead>"
        f"<tbody>{body}</tbody></table></details>"
    )
    if note:
        parts.append(f'<p class="muted">{_esc(note)}</p>')
    parts.append("</figure>")
    return "".join(parts)


def svg_bar_chart(
    chart_id: str,
    title: str,
    items: Sequence[tuple[str, float, str]],
    *,
    value_fmt: str = "",
    note: str = "",
) -> str:
    """Horizontal bars: ``items`` are ``(label, value, role)`` where role
    is a palette class (``s1``.. for series, ``status-*`` for status —
    status rows carry their icon in the label, never color alone)."""
    if not items:
        return (f'<figure class="fig empty"><figcaption>{_esc(title)}'
                f'</figcaption><p class="muted">no data</p></figure>')
    vmax = max(v for _, v, _ in items) or 1.0
    bar_h, gap = 16, 8
    label_w = 210
    h = _MT + len(items) * (bar_h + gap) + 8
    w = _W
    parts = [
        f'<figure class="fig" id="{_esc(chart_id)}">',
        f"<figcaption>{_esc(title)}</figcaption>",
        f'<svg viewBox="0 0 {w} {h}" role="img" aria-label="{_esc(title)}" '
        f'preserveAspectRatio="xMidYMid meet">',
    ]
    pw = w - label_w - 70
    for i, (label, value, role) in enumerate(items):
        y = _MT + i * (bar_h + gap)
        bw = max((value / vmax) * pw, 1.0)
        disp = label if len(label) <= 30 else label[:27] + "…"
        parts.append(
            f'<text class="blabel" x="{label_w - 8}" '
            f'y="{y + bar_h - 4}" text-anchor="end">'
            f"{_esc(disp)}</text>"
            f'<rect class="bar {role}" x="{label_w}" y="{y}" '
            f'width="{bw:.1f}" height="{bar_h}" rx="3">'
            f"<title>{_esc(label)}: {_esc(value_fmt or _si(value))}</title>"
            f"</rect>"
            f'<text class="bvalue" x="{label_w + bw + 6:.1f}" '
            f'y="{y + bar_h - 4}">{_esc(value_fmt or _si(value))}</text>'
        )
    parts.append("</svg>")
    if note:
        parts.append(f'<p class="muted">{_esc(note)}</p>')
    parts.append("</figure>")
    return "".join(parts)


def _tile(value: str, label: str, status: str = "") -> str:
    badge = ""
    if status:
        icon, cls, text = status.split(":", 2)
        badge = f'<div class="status {cls}">{_esc(icon)} {_esc(text)}</div>'
    return (
        f'<div class="tile"><div class="tval">{_esc(value)}</div>'
        f'<div class="tlabel">{_esc(label)}</div>{badge}</div>'
    )


def _timeseries_section(rows: list[dict[str, Any]]) -> tuple[str, int]:
    """Render the per-run time-series grid; returns (html, chart count)."""
    by_name = {r["series"]: r for r in rows}
    charts: list[str] = []
    skipped: list[str] = []
    for title, y_label, sources, area in TIMESERIES_CHARTS:
        series = []
        slot = 0
        x: list[float] = []
        for name, field in sources:
            slot += 1
            row = by_name.get(name)
            if not row or not row.get("t"):
                continue
            y = row.get("d") if field == "d" else row.get("v")
            if not y:
                continue
            if len(row["t"]) > len(x):
                x = [t * 1e3 for t in row["t"]]  # virtual ms
            label = name + (" (rate)" if field == "d" else "")
            series.append({"name": label, "y": y, "slot": slot})
        if not series:
            skipped.append(title)
            continue
        cid = "ts-" + title.lower().replace(" ", "-")[:32]
        charts.append(
            svg_line_chart(cid, title, x, series,
                           y_label=y_label, area=area)
        )
    if not charts:
        return "", 0
    dropped = sum(r.get("dropped", 0) for r in rows)
    notes: list[str] = []
    if skipped:
        notes.append("not collected in this run: " + ", ".join(skipped))
    if dropped:
        notes.append(
            f"{dropped} oldest samples evicted by per-series ring capacity"
        )
    foot = (
        f'<p class="muted">{_esc("; ".join(notes))}</p>' if notes else ""
    )
    html = (
        "<section><h2>Virtual-time series</h2>"
        '<div class="grid">' + "".join(charts) + "</div>" + foot + "</section>"
    )
    return html, len(charts)


def _sweep_section(doc: dict[str, Any]) -> str:
    results = doc.get("results", [])
    if not results:
        return ""
    ok = doc.get("ok", sum(1 for r in results if r.get("status") == "ok"))
    errors = doc.get("errors", len(results) - ok)
    tiles = (
        _tile(str(len(results)), "tasks")
        + _tile(str(ok), "ok",
                "✓:good:all passed" if not errors else "")
        + _tile(str(errors), "errors",
                "✕:critical:failing tasks" if errors else "")
    )
    # campaigns run against the content-addressed result cache attach
    # service stats under extra.service (see docs/service.md)
    service = (doc.get("extra") or {}).get("service") or {}
    cache = service.get("cache") or {}
    if cache:
        hits, misses = int(cache.get("hits", 0)), int(cache.get("misses", 0))
        tiles += _tile(f"{hits}/{hits + misses}", "cache hits",
                       "✓:good:fully cached"
                       if hits and not misses else "")
    if "steals" in service:
        tiles += _tile(str(int(service["steals"])), "work steals")
    shown = results[:40]
    items = [
        (
            ("✕ " if r.get("status") != "ok" else "") + str(r.get("name", i)),
            float(r.get("duration_s", 0.0)),
            "status-critical" if r.get("status") != "ok" else "s1",
        )
        for i, r in enumerate(shown)
    ]
    note = (
        f"showing first {len(shown)} of {len(results)} tasks"
        if len(results) > len(shown) else ""
    )
    chart = svg_bar_chart(
        "sweep-durations",
        "Per-task wall time (s)",
        items,
        note=note,
    )
    name = doc.get("sweep", "sweep")
    return (
        f"<section><h2>Sweep · {_esc(name)}</h2>"
        f'<div class="tiles">{tiles}</div>{chart}</section>'
    )


def _chaos_section(doc: dict[str, Any]) -> str:
    if not doc:
        return ""
    trials = doc.get("trials", 0)
    passed = doc.get("passed", 0)
    failed = doc.get("failed", 0)
    errors = doc.get("errors", 0)
    ok = doc.get("ok", failed == 0 and errors == 0)
    tiles = (
        _tile(str(trials), "trials")
        + _tile(str(passed), "passed",
                "✓:good:campaign clean" if ok else "")
        + _tile(str(failed), "oracle failures",
                "✕:critical:oracle failures" if failed else "")
        + _tile(str(errors), "crashed trials",
                "✕:critical:crashes" if errors else "")
    )
    parts = [
        f"<section><h2>Chaos campaign · seed {_esc(doc.get('seed', '?'))}"
        f'</h2><div class="tiles">{tiles}</div>'
    ]
    oracle = doc.get("oracle_failures") or {}
    if any(oracle.values()):
        items = [
            (f"✕ {name}", float(count), "status-critical")
            for name, count in sorted(oracle.items())
            if count
        ]
        parts.append(
            svg_bar_chart("chaos-oracles", "Failures per oracle", items,
                          value_fmt="")
        )
    failures = doc.get("failures") or []
    if failures:
        rows = "".join(
            f"<tr><td>{_esc(f.get('trial', '?'))}</td>"
            f"<td>{_esc(f.get('name', ''))}</td>"
            f"<td>{_esc(', '.join(f.get('oracles_failed', [])) or f.get('error', ''))}"
            f"</td></tr>"
            for f in failures[:20]
        )
        more = (
            f'<p class="muted">showing first 20 of {len(failures)} '
            f"failures</p>" if len(failures) > 20 else ""
        )
        parts.append(
            "<details open><summary>failing trials</summary>"
            "<table><thead><tr><th>trial</th><th>schedule</th>"
            f"<th>failed oracles</th></tr></thead><tbody>{rows}</tbody>"
            f"</table></details>{more}"
        )
    parts.append("</section>")
    return "".join(parts)


#: scalar keys surfaced as tiles from BENCH_throughput.json, in order
_BENCH_TILES: tuple[tuple[str, str], ...] = (
    ("engine_events_per_s", "engine events / s"),
    ("speedup_vs_seed_protocol", "speedup vs seed"),
    ("instrumentation_null_factor", "null-obs factor"),
    ("instrumentation_overhead_factor", "full-obs factor"),
    ("flight_overhead_factor", "flight factor"),
    ("timeseries_overhead_factor", "recorder factor"),
)


def _bench_section(bench: dict[str, dict[str, Any]]) -> str:
    if not bench:
        return ""
    parts = ["<section><h2>Benchmarks</h2>"]
    through = bench.get("BENCH_throughput")
    if through:
        tiles = "".join(
            _tile(_si(float(through[key])), label)
            for key, label in _BENCH_TILES
            if isinstance(through.get(key), (int, float))
        )
        if tiles:
            parts.append(f'<div class="tiles">{tiles}</div>')
    scale = bench.get("BENCH_scale")
    sizes = (scale or {}).get("sizes") or {}
    points = sorted(
        (int(k), v) for k, v in sizes.items() if isinstance(v, dict)
    )
    if len(points) >= 2:
        ranks = [float(r) for r, _ in points]
        for key, title, y_label in (
            ("events_per_s", "Throughput vs scale", "events / s"),
            ("wall_s", "Wall time vs scale", "seconds"),
        ):
            ys = [float(v.get(key, 0.0)) for _, v in points]
            if any(ys):
                parts.append(
                    svg_line_chart(
                        f"bench-{key}", title, ranks,
                        [{"name": key, "y": ys, "slot": 1}],
                        x_label="ranks", y_label=y_label,
                    )
                )
    parts.append("</section>")
    return "".join(parts) if len(parts) > 2 else ""


_CSS = """
.viz-root {
  color-scheme: light;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink1: #0b0b0b; --ink2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a; --s4: #eda100;
  --s5: #e87ba4; --s6: #008300; --s7: #4a3aa7; --s8: #e34948;
  --good: #0ca30c; --warning: #fab219;
  --serious: #ec835a; --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface: #1a1a19; --page: #0d0d0d;
    --ink1: #ffffff; --ink2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --border: rgba(255,255,255,0.10);
    --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
    --s5: #d55181; --s7: #9085e9; --s8: #e66767;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface: #1a1a19; --page: #0d0d0d;
  --ink1: #ffffff; --ink2: #c3c2b7; --muted: #898781;
  --grid: #2c2c2a; --axis: #383835;
  --border: rgba(255,255,255,0.10);
  --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
  --s5: #d55181; --s7: #9085e9; --s8: #e66767;
}
.viz-root {
  margin: 0; background: var(--page); color: var(--ink1);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 14px; line-height: 1.45;
}
main { max-width: 1240px; margin: 0 auto; padding: 20px; }
h1 { font-size: 20px; margin: 4px 0 2px; }
h2 { font-size: 15px; margin: 26px 0 10px; color: var(--ink1); }
.sub { color: var(--ink2); margin: 0 0 14px; }
.muted { color: var(--muted); font-size: 12px; margin: 6px 0 0; }
.grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(480px, 1fr)); gap: 14px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 10px 0; }
.tile {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 16px; min-width: 110px;
}
.tval { font-size: 22px; }
.tlabel { color: var(--ink2); font-size: 12px; }
.status { font-size: 12px; margin-top: 4px; }
.status.good { color: var(--good); }
.status.critical { color: var(--critical); }
.fig {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 14px; margin: 0 0 14px;
  position: relative;
}
.fig svg { width: 100%; height: auto; display: block; }
figcaption { font-size: 13px; color: var(--ink1); margin-bottom: 4px; }
.legend { display: flex; flex-wrap: wrap; gap: 10px; margin: 2px 0 6px; }
.key { color: var(--ink2); font-size: 12px; display: inline-flex; align-items: center; gap: 5px; }
.chip { width: 9px; height: 9px; border-radius: 2px; display: inline-block; }
.chip.s1 { background: var(--s1); } .chip.s2 { background: var(--s2); }
.chip.s3 { background: var(--s3); } .chip.s4 { background: var(--s4); }
.chip.s5 { background: var(--s5); } .chip.s6 { background: var(--s6); }
.chip.s7 { background: var(--s7); } .chip.s8 { background: var(--s8); }
.grid-line, .grid { stroke: var(--grid); stroke-width: 1; }
.axis { stroke: var(--axis); stroke-width: 1; }
.tick { fill: var(--muted); font-size: 10px; }
.dlabel { fill: var(--ink2); font-size: 10px; }
.blabel { fill: var(--ink2); font-size: 11px; }
.bvalue { fill: var(--ink1); font-size: 11px; }
.line { fill: none; stroke-width: 2; stroke-linejoin: round; }
.line.s1 { stroke: var(--s1); } .line.s2 { stroke: var(--s2); }
.line.s3 { stroke: var(--s3); } .line.s4 { stroke: var(--s4); }
.line.s5 { stroke: var(--s5); } .line.s6 { stroke: var(--s6); }
.line.s7 { stroke: var(--s7); } .line.s8 { stroke: var(--s8); }
.area { opacity: 0.12; }
.area.s1 { fill: var(--s1); } .area.s2 { fill: var(--s2); }
.area.s3 { fill: var(--s3); } .area.s4 { fill: var(--s4); }
.dot.s1 { fill: var(--s1); } .dot.s2 { fill: var(--s2); }
.dot.s3 { fill: var(--s3); } .dot.s4 { fill: var(--s4); }
.bar.s1 { fill: var(--s1); } .bar.s2 { fill: var(--s2); }
.bar.status-critical { fill: var(--critical); }
.bar.status-serious { fill: var(--serious); }
.cross { stroke: var(--axis); stroke-width: 1; stroke-dasharray: 3 3; pointer-events: none; }
.tip {
  position: absolute; display: none; pointer-events: none;
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 6px; padding: 6px 9px; font-size: 12px;
  color: var(--ink2); box-shadow: 0 2px 8px rgba(0,0,0,0.12);
  max-width: 230px; z-index: 2;
}
.tip b { color: var(--ink1); font-weight: 600; }
.tip .chip { margin-right: 5px; }
details { margin-top: 8px; color: var(--ink2); font-size: 12px; }
summary { cursor: pointer; color: var(--muted); }
table { border-collapse: collapse; margin-top: 6px; width: 100%; }
th, td {
  text-align: right; padding: 2px 8px; font-variant-numeric: tabular-nums;
  border-bottom: 1px solid var(--grid); font-size: 11px;
}
th:first-child, td:first-child { text-align: left; }
"""

_JS = """
(function () {
  function init(fig) {
    var svg = fig.querySelector("svg");
    var dataEl = fig.querySelector('script[type="application/json"]');
    if (!svg || !dataEl) return;
    var d = JSON.parse(dataEl.textContent);
    var tip = document.createElement("div");
    tip.className = "tip";
    fig.appendChild(tip);
    var ns = "http://www.w3.org/2000/svg";
    var cross = document.createElementNS(ns, "line");
    cross.setAttribute("class", "cross");
    cross.setAttribute("y1", d.top);
    cross.setAttribute("y2", d.bottom);
    cross.style.display = "none";
    svg.appendChild(cross);
    function hide() {
      tip.style.display = "none";
      cross.style.display = "none";
    }
    svg.addEventListener("mousemove", function (ev) {
      var r = svg.getBoundingClientRect();
      if (!r.width) return;
      var x = ((ev.clientX - r.left) / r.width) * d.w;
      var pts = d.pts, lo = 0, hi = pts.length - 1;
      while (lo < hi) {
        var mid = (lo + hi) >> 1;
        if (pts[mid][0] < x) lo = mid + 1; else hi = mid;
      }
      if (lo > 0 && Math.abs(pts[lo - 1][0] - x) < Math.abs(pts[lo][0] - x))
        lo -= 1;
      var p = pts[lo];
      cross.setAttribute("x1", p[0]);
      cross.setAttribute("x2", p[0]);
      cross.style.display = "";
      var parts = ["<div>t = <b>" + p[1] + "</b> ms</div>"];
      for (var k = 0; k < d.series.length; k++) {
        parts.push(
          '<div><span class="chip s' + d.series[k].slot + '"></span>' +
          d.series[k].name + " <b>" + p[2 + k] + "</b></div>");
      }
      tip.innerHTML = parts.join("");
      tip.style.display = "block";
      var px = (p[0] / d.w) * r.width + 14;
      if (px > r.width - 180) px = px - 200;
      tip.style.left = px + "px";
      tip.style.top = (ev.clientY - r.top + 18) + "px";
    });
    svg.addEventListener("mouseleave", hide);
  }
  var figs = document.querySelectorAll(".fig");
  for (var i = 0; i < figs.length; i++) init(figs[i]);
})();
"""


def render_report(
    *,
    timeseries: list[dict[str, Any]] | None = None,
    sweep: dict[str, Any] | None = None,
    chaos: dict[str, Any] | None = None,
    bench: dict[str, dict[str, Any]] | None = None,
    title: str = "repro dashboard",
    subtitle: str = "",
) -> tuple[str, int]:
    """Assemble the dashboard; returns ``(html, time-series chart count)``.

    ``timeseries`` takes :func:`repro.obs.export.timeseries_rows` rows,
    ``sweep``/``chaos`` take the JSON documents written by ``repro sweep
    --out`` / ``repro chaos --out``, and ``bench`` maps artefact stem
    (e.g. ``"BENCH_throughput"``) to its parsed JSON.
    """
    sections: list[str] = []
    n_ts = 0
    if timeseries:
        ts_html, n_ts = _timeseries_section(timeseries)
        sections.append(ts_html)
    if sweep:
        sections.append(_sweep_section(sweep))
    if chaos:
        sections.append(_chaos_section(chaos))
    if bench:
        sections.append(_bench_section(bench))
    body = "".join(s for s in sections if s) or (
        '<p class="muted">nothing to render: pass --timeseries, --sweep, '
        "--chaos or --bench</p>"
    )
    sub = f'<p class="sub">{_esc(subtitle)}</p>' if subtitle else ""
    html = (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        '<meta name="viewport" content="width=device-width, initial-scale=1">'
        f"<title>{_esc(title)}</title>"
        f"<style>{_CSS}</style></head>"
        f'<body class="viz-root"><main><header><h1>{_esc(title)}</h1>{sub}'
        f"</header>{body}</main>"
        f"<script>{_JS}</script></body></html>\n"
    )
    return html, n_ts


def write_report(path: str, html: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(html)
