"""Protocol flight recorder: per-rank ring buffers of typed transitions.

The metrics registry answers "how many" — the flight recorder answers
"which and why".  Every protocol-relevant transition (application send,
delivery, sender-log decision, acknowledgement, checkpoint, epoch/phase
increment, failure, SPE collection, recovery-line fix-point step,
rollback, replayed re-emission) lands as one fixed-shape record

    ``(time, kind, rank, peer, uid, epoch_send, epoch_recv, phase,
       cause_uid, extra)``

in a bounded per-rank ring buffer (oldest records are dropped first, with
per-rank drop accounting).  The record stream is what the recovery
explainer (:mod:`repro.obs.explain`) and the Perfetto exporter
(:mod:`repro.obs.perfetto`) consume, and it crosses process boundaries
through :meth:`FlightRecorder.snapshot` / :meth:`FlightRecorder.merge`
(used by the sweep executor to ship worker buffers to the parent).

Zero-cost-when-disabled contract: components cache
``obs.flight if obs.enabled and obs.flight.enabled else None`` at
construction, so the disabled path is one identity comparison.  Records
are plain tuples and :meth:`FlightRecorder.record` does one clock call,
one bounds check and one append — cheap enough that enabling the recorder
at default capacity stays under a few percent of the instrumented run
(``benchmarks/test_simulator_throughput.py``).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterator

__all__ = [
    "FlightKind",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT",
    "RECORD_FIELDS",
    "record_to_dict",
    "DEFAULT_FLIGHT_CAPACITY",
]

#: per-rank ring-buffer capacity when none is given
DEFAULT_FLIGHT_CAPACITY = 16_384

#: positional layout of one flight record tuple
RECORD_FIELDS = (
    "time", "kind", "rank", "peer", "uid",
    "epoch_send", "epoch_recv", "phase", "cause_uid", "extra",
)


class FlightKind:
    """Record kinds — one per protocol-relevant transition.

    String constants (not an Enum): the hot path writes millions of these
    and an interned string compares/serialises faster than Enum members.
    """

    SEND = "send"              # application send (incl. re-executed sends)
    DELIVER = "deliver"        # fresh delivery to the application
    SUPPRESS = "suppress"      # duplicate re-emission suppressed
    ACK = "ack"                # acknowledgement emitted by the receiver
    LOG = "log"                # epoch-crossing rule copied a message to the log
    CONFIRM = "confirm"        # ack resolved without logging (SPE path)
    CHECKPOINT = "checkpoint"  # checkpoint stored
    EPOCH = "epoch"            # epoch increment (begin_epoch)
    PHASE = "phase"            # phase increment (message-driven bump)
    FAILURE = "failure"        # fail-stop kill of this rank
    SPE = "spe"                # SPE table uploaded to the recovery process
    RL_STEP = "rl_step"        # one recovery-line fix-point propagation step
    RL_FIXED = "rl_fixed"      # fix-point reached; recovery line broadcast
    ROLLBACK = "rollback"      # this rank rolled back (restore prescribed)
    RESTORE = "restore"        # checkpoint re-installed on this rank
    REPLAY = "replay"          # message re-emitted from the log/NonAck set
    RUNNING = "running"        # Blocked/RolledBack -> Running transition


class FlightRecorder:
    """Per-rank bounded record streams with drop accounting."""

    enabled = True

    __slots__ = ("capacity", "_buffers", "dropped", "_clock")

    def __init__(self, capacity: int = DEFAULT_FLIGHT_CAPACITY,
                 clock: Callable[[], float] | None = None):
        self.capacity = capacity
        self._buffers: dict[int, deque[tuple]] = {}
        self.dropped: dict[int, int] = {}
        self._clock = clock

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    # ------------------------------------------------------------------
    # Recording (hot path)
    # ------------------------------------------------------------------
    def record(self, rank: int, kind: str, peer: int = -1, uid: int = 0,
               epoch_send: int = 0, epoch_recv: int = 0, phase: int = 0,
               cause_uid: int = 0, extra: Any = None) -> None:
        buf = self._buffers.get(rank)
        if buf is None:
            buf = self._buffers[rank] = deque(maxlen=self.capacity)
            self.dropped[rank] = 0
        elif len(buf) == self.capacity:
            self.dropped[rank] += 1
        clock = self._clock
        buf.append((
            clock() if clock is not None else 0.0,
            kind, rank, peer, uid, epoch_send, epoch_recv, phase,
            cause_uid, extra,
        ))

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def records(self, rank: int | None = None,
                kind: str | None = None) -> Iterator[tuple]:
        """Records of one rank (buffer order == time order) or all ranks
        merged into global time order, optionally filtered by kind."""
        if rank is not None:
            source: Any = self._buffers.get(rank, ())
        else:
            merged: list[tuple] = []
            for r in sorted(self._buffers):
                merged.extend(self._buffers[r])
            merged.sort(key=lambda rec: rec[0])
            source = merged
        for rec in source:
            if kind is None or rec[1] == kind:
                yield rec

    def ranks(self) -> list[int]:
        return sorted(self._buffers)

    @property
    def total_records(self) -> int:
        return sum(len(b) for b in self._buffers.values())

    @property
    def total_dropped(self) -> int:
        return sum(self.dropped.values())

    # ------------------------------------------------------------------
    # Serialization: snapshot / merge / clear
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Plain-data copy (picklable, JSON-able via :func:`record_to_dict`)."""
        return {
            "capacity": self.capacity,
            "dropped": dict(self.dropped),
            "records": {r: list(b) for r, b in self._buffers.items()},
        }

    def merge(self, snap: dict[str, Any]) -> None:
        """Fold another recorder's snapshot in, keeping drop accounting.

        Per-rank streams are concatenated (records keep their original
        timestamps); ring-buffer bounds still apply, so merging more than
        ``capacity`` records into one rank's buffer drops the oldest and
        counts them.
        """
        if not snap:
            return
        for rank_key, dropped in snap.get("dropped", {}).items():
            rank = int(rank_key)
            self.dropped[rank] = self.dropped.get(rank, 0) + dropped
            self._buffers.setdefault(rank, deque(maxlen=self.capacity))
        for rank_key, records in snap.get("records", {}).items():
            rank = int(rank_key)
            buf = self._buffers.get(rank)
            if buf is None:
                buf = self._buffers[rank] = deque(maxlen=self.capacity)
                self.dropped.setdefault(rank, 0)
            for rec in records:
                if len(buf) == self.capacity:
                    self.dropped[rank] += 1
                buf.append(tuple(rec))

    def clear(self) -> None:
        self._buffers.clear()
        self.dropped.clear()


def record_to_dict(rec: tuple) -> dict[str, Any]:
    """Expand one record tuple into a field-named mapping (export path)."""
    d = dict(zip(RECORD_FIELDS, rec))
    if d.get("extra") is None:
        del d["extra"]
    return d


class NullFlightRecorder:
    """Disabled recorder: same surface, every operation inert.

    Stateless by construction — ``record`` discards, readers return fresh
    empty values — so the shared :data:`NULL_FLIGHT` instance can never
    leak state between two worlds (unlike a shared mutable buffer).
    """

    enabled = False
    capacity = 0

    __slots__ = ()

    def bind_clock(self, clock: Callable[[], float]) -> None: ...
    def record(self, *a: Any, **k: Any) -> None: ...
    def records(self, rank: int | None = None,
                kind: str | None = None) -> Iterator[tuple]:
        return iter(())
    def ranks(self) -> list[int]:
        return []
    @property
    def total_records(self) -> int:
        return 0
    @property
    def total_dropped(self) -> int:
        return 0
    @property
    def dropped(self) -> dict[int, int]:
        return {}
    def snapshot(self) -> dict[str, Any]:
        return {}
    def merge(self, snap: dict[str, Any]) -> None: ...
    def clear(self) -> None: ...


#: process-wide disabled recorder (safe to share — it holds no state)
NULL_FLIGHT = NullFlightRecorder()
