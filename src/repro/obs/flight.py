"""Protocol flight recorder: per-rank ring buffers of typed transitions.

The metrics registry answers "how many" — the flight recorder answers
"which and why".  Every protocol-relevant transition (application send,
delivery, sender-log decision, acknowledgement, checkpoint, epoch/phase
increment, failure, SPE collection, recovery-line fix-point step,
rollback, replayed re-emission) lands as one fixed-shape record

    ``(time, kind, rank, peer, uid, epoch_send, epoch_recv, phase,
       cause_uid, extra)``

in a bounded per-rank ring buffer (oldest records are dropped first, with
per-rank drop accounting).  The record stream is what the recovery
explainer (:mod:`repro.obs.explain`) and the Perfetto exporter
(:mod:`repro.obs.perfetto`) consume, and it crosses process boundaries
through :meth:`FlightRecorder.snapshot` / :meth:`FlightRecorder.merge`
(used by the sweep executor to ship worker buffers to the parent).

Zero-cost-when-disabled contract: components cache
``obs.flight if obs.enabled and obs.flight.enabled else None`` at
construction, so the disabled path is one identity comparison.  Records
are plain tuples.  Components that record for one fixed rank resolve a
:meth:`FlightRecorder.sink` handle once at construction and append
directly onto the ring buffer's bound C ``append`` (one timestamp
attribute load, one counter bump, one tuple build — no recorder call);
the :meth:`FlightRecorder.record` API remains for cold paths.  Drop
accounting is *derived* — appends ever made minus records still held —
so the hot path pays no capacity check (the ring's ``maxlen`` eviction
does the bounding; see ``benchmarks/test_simulator_throughput.py``).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterator

__all__ = [
    "FlightKind",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT",
    "RECORD_FIELDS",
    "record_to_dict",
    "DEFAULT_FLIGHT_CAPACITY",
]

#: per-rank ring-buffer capacity when none is given
DEFAULT_FLIGHT_CAPACITY = 16_384

#: positional layout of one flight record tuple
RECORD_FIELDS = (
    "time", "kind", "rank", "peer", "uid",
    "epoch_send", "epoch_recv", "phase", "cause_uid", "extra",
)


class FlightKind:
    """Record kinds — one per protocol-relevant transition.

    String constants (not an Enum): the hot path writes millions of these
    and an interned string compares/serialises faster than Enum members.
    """

    SEND = "send"              # application send (incl. re-executed sends)
    DELIVER = "deliver"        # fresh delivery to the application
    SUPPRESS = "suppress"      # duplicate re-emission suppressed
    ACK = "ack"                # acknowledgement emitted by the receiver
    LOG = "log"                # epoch-crossing rule copied a message to the log
    CONFIRM = "confirm"        # ack resolved without logging (SPE path)
    CHECKPOINT = "checkpoint"  # checkpoint stored
    EPOCH = "epoch"            # epoch increment (begin_epoch)
    PHASE = "phase"            # phase increment (message-driven bump)
    FAILURE = "failure"        # fail-stop kill of this rank
    SPE = "spe"                # SPE table uploaded to the recovery process
    RL_STEP = "rl_step"        # one recovery-line fix-point propagation step
    RL_FIXED = "rl_fixed"      # fix-point reached; recovery line broadcast
    ROLLBACK = "rollback"      # this rank rolled back (restore prescribed)
    RESTORE = "restore"        # checkpoint re-installed on this rank
    REPLAY = "replay"          # message re-emitted from the log/NonAck set
    RUNNING = "running"        # Blocked/RolledBack -> Running transition


class _ZeroTime:
    """Default time source before any clock is bound."""

    now = 0.0


_ZERO_TIME = _ZeroTime()


class _ClockTime:
    """Adapter presenting a ``clock()`` callable as a ``.now`` attribute."""

    __slots__ = ("_clock",)

    def __init__(self, clock: Callable[[], float]):
        self._clock = clock

    @property
    def now(self) -> float:
        return self._clock()


class _RankSink:
    """Hot-path append handle for one rank's ring buffer.

    ``append`` is the deque's *bound C method* and ``time`` the current
    time source (``time.now`` is the timestamp), so an instrumented
    component records with::

        sink.n += 1
        sink.append((sink.time.now, kind, rank, ...))

    — no Python-level call into the recorder at all.  ``n`` counts every
    record ever appended through this sink; drop accounting is derived
    (``n`` minus records still held), so the hot path pays no capacity
    check — the ring's ``maxlen`` eviction does the bounding.
    """

    __slots__ = ("append", "time", "n")

    def __init__(self, buf: deque, time: Any):
        self.append = buf.append
        self.time = time
        self.n = 0


class FlightRecorder:
    """Per-rank bounded record streams with drop accounting."""

    enabled = True

    __slots__ = ("capacity", "_buffers", "_sinks", "_carried", "_time_src")

    def __init__(self, capacity: int = DEFAULT_FLIGHT_CAPACITY,
                 clock: Callable[[], float] | None = None):
        self.capacity = capacity
        self._buffers: dict[int, deque[tuple]] = {}
        self._sinks: dict[int, _RankSink] = {}
        #: drops carried in from merged snapshots (per rank)
        self._carried: dict[int, int] = {}
        self._time_src: Any = _ClockTime(clock) if clock is not None else _ZERO_TIME

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._rebind(_ClockTime(clock))

    def bind_time_source(self, src: Any) -> None:
        """Bind an object exposing a ``.now`` attribute (the engine).

        Recording then timestamps with one attribute load instead of a
        Python-level clock call; the latest binding wins over
        :meth:`bind_clock`.
        """
        self._rebind(src)

    def _rebind(self, src: Any) -> None:
        self._time_src = src
        for sink in self._sinks.values():
            sink.time = src

    # ------------------------------------------------------------------
    # Recording (hot path)
    # ------------------------------------------------------------------
    def sink(self, rank: int) -> _RankSink:
        """The pre-resolved per-rank append handle (see :class:`_RankSink`).

        Components that record for one fixed rank resolve their sink once
        at construction; handles are invalidated by :meth:`clear`.
        """
        sink = self._sinks.get(rank)
        if sink is None:
            buf = self._buffers[rank] = deque(maxlen=self.capacity)
            sink = self._sinks[rank] = _RankSink(buf, self._time_src)
            self._carried.setdefault(rank, 0)
        return sink

    def record(self, rank: int, kind: str, peer: int = -1, uid: int = 0,
               epoch_send: int = 0, epoch_recv: int = 0, phase: int = 0,
               cause_uid: int = 0, extra: Any = None) -> None:
        try:
            sink = self._sinks[rank]
        except KeyError:
            sink = self.sink(rank)
        sink.n += 1
        sink.append((sink.time.now, kind, rank, peer, uid, epoch_send,
                     epoch_recv, phase, cause_uid, extra))

    @property
    def dropped(self) -> dict[int, int]:
        """Per-rank count of records evicted by the ring bound (derived:
        appends ever made minus records still held, plus merged-in drops)."""
        buffers = self._buffers
        return {
            rank: self._carried.get(rank, 0) + sink.n - len(buffers[rank])
            for rank, sink in self._sinks.items()
        }

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def records(self, rank: int | None = None,
                kind: str | None = None) -> Iterator[tuple]:
        """Records of one rank (buffer order == time order) or all ranks
        merged into global time order, optionally filtered by kind."""
        if rank is not None:
            source: Any = self._buffers.get(rank, ())
        else:
            merged: list[tuple] = []
            for r in sorted(self._buffers):
                merged.extend(self._buffers[r])
            merged.sort(key=lambda rec: rec[0])
            source = merged
        for rec in source:
            if kind is None or rec[1] == kind:
                yield rec

    def ranks(self) -> list[int]:
        return sorted(self._buffers)

    @property
    def total_records(self) -> int:
        return sum(len(b) for b in self._buffers.values())

    @property
    def total_dropped(self) -> int:
        return sum(self.dropped.values())

    # ------------------------------------------------------------------
    # Serialization: snapshot / merge / clear
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Plain-data copy (picklable, JSON-able via :func:`record_to_dict`)."""
        return {
            "capacity": self.capacity,
            "dropped": self.dropped,
            "records": {r: list(b) for r, b in self._buffers.items()},
        }

    def merge(self, snap: dict[str, Any]) -> None:
        """Fold another recorder's snapshot in, keeping drop accounting.

        Per-rank streams are concatenated (records keep their original
        timestamps); ring-buffer bounds still apply, so merging more than
        ``capacity`` records into one rank's buffer drops the oldest and
        counts them (derived drop accounting: every merged record bumps the
        sink's append count, eviction is the ring's).
        """
        if not snap:
            return
        for rank_key, dropped in snap.get("dropped", {}).items():
            rank = int(rank_key)
            self.sink(rank)
            self._carried[rank] = self._carried.get(rank, 0) + dropped
        for rank_key, records in snap.get("records", {}).items():
            rank = int(rank_key)
            sink = self.sink(rank)
            sink.n += len(records)
            self._buffers[rank].extend(tuple(rec) for rec in records)

    def clear(self) -> None:
        """Drop all records and accounting.

        Invalidates any :meth:`sink` handles resolved before the clear —
        components must re-resolve (in practice recorders live and die with
        one world, so this only matters to tests).
        """
        self._buffers.clear()
        self._sinks.clear()
        self._carried.clear()


def record_to_dict(rec: tuple) -> dict[str, Any]:
    """Expand one record tuple into a field-named mapping (export path)."""
    d = dict(zip(RECORD_FIELDS, rec))
    if d.get("extra") is None:
        del d["extra"]
    return d


class NullFlightRecorder:
    """Disabled recorder: same surface, every operation inert.

    Stateless by construction — ``record`` discards, readers return fresh
    empty values — so the shared :data:`NULL_FLIGHT` instance can never
    leak state between two worlds (unlike a shared mutable buffer).
    """

    enabled = False
    capacity = 0

    __slots__ = ()

    def bind_clock(self, clock: Callable[[], float]) -> None: ...
    def bind_time_source(self, src: Any) -> None: ...
    def sink(self, rank: int) -> Any:
        # a fresh zero-capacity sink: appends discard, nothing is retained
        return _RankSink(deque(maxlen=0), _ZERO_TIME)
    def record(self, *a: Any, **k: Any) -> None: ...
    def records(self, rank: int | None = None,
                kind: str | None = None) -> Iterator[tuple]:
        return iter(())
    def ranks(self) -> list[int]:
        return []
    @property
    def total_records(self) -> int:
        return 0
    @property
    def total_dropped(self) -> int:
        return 0
    @property
    def dropped(self) -> dict[int, int]:
        return {}
    def snapshot(self) -> dict[str, Any]:
        return {}
    def merge(self, snap: dict[str, Any]) -> None: ...
    def clear(self) -> None: ...


#: process-wide disabled recorder (safe to share — it holds no state)
NULL_FLIGHT = NullFlightRecorder()
