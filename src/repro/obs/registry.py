"""Metrics registry: counters, gauges, histograms and virtual-clock spans.

The observability subsystem gives every layer of the stack a shared place
to record *attributable* measurements — events dispatched per callback
class, bytes per channel, messages logged per epoch, recovery-round
durations — without coupling the layers to any output format.  Exporters
(:mod:`repro.obs.export`) turn a registry into JSON-lines or CSV.

Two registry implementations share one interface:

* :class:`MetricsRegistry` — the real thing.  All timestamps come from the
  *virtual* clock (bound via :meth:`MetricsRegistry.bind_clock`), never
  from wall time, so an instrumented run stays bit-reproducible.
* :class:`NullRegistry` — the default.  Every instrument it hands out is a
  shared no-op, and its ``enabled`` flag is ``False`` so hot-path code can
  skip instrumentation entirely (the engine and network cache ``None``
  instead of a disabled registry; the per-event cost of "disabled" is a
  single identity comparison).

Instruments are created lazily and idempotently by name; asking twice for
the same name returns the same object, asking for the same name with a
different type or label set raises.

Slot resolution (the hot-path contract)
---------------------------------------
Per-event instrumentation must never pay the name lookup, the label-tuple
allocation, or the labels-dict probe.  Components therefore resolve their
instruments **once at construction**:

* :meth:`Counter.slot` returns a :class:`CounterCell` — one mutable float
  per ``(counter, label tuple)`` series.  The hot path does
  ``cell.n += amount``: an attribute load, an add, a store.  Label arity
  is validated at slot-resolution time, so a mislabeled call site fails
  at registration, not by silently creating a phantom series.
* Histograms and spans support **1-in-N sampling**
  (``MetricsRegistry(hist_sample=N, span_sample=N)`` or an explicit
  interval via :meth:`MetricsRegistry.sampled_histogram`): a deterministic
  stride countdown records every Nth observation, so sampled output is
  still bit-reproducible and merge-stable across worker counts.

The legacy ``counter(name).inc(labels=...)`` path still works (it
resolves a slot per call) but is reserved for cold paths.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..errors import SimulationError
from .flight import DEFAULT_FLIGHT_CAPACITY, FlightRecorder, NULL_FLIGHT
from .timeseries import DEFAULT_TIMESERIES_CAPACITY, TimeSeriesRecorder

__all__ = [
    "Counter",
    "CounterCell",
    "Gauge",
    "Histogram",
    "HistogramSampler",
    "Span",
    "TraceRecord",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_OBS",
    "DURATION_BUCKETS",
    "DEPTH_BUCKETS",
    "SIZE_BUCKETS",
]

#: histogram boundaries for virtual durations, in seconds (1 us .. 10 s)
DURATION_BUCKETS: tuple[float, ...] = tuple(
    m * 10.0**e for e in range(-6, 1) for m in (1.0, 2.5, 5.0)
)
#: histogram boundaries for queue/in-flight depths (powers of two)
DEPTH_BUCKETS: tuple[float, ...] = tuple(float(1 << k) for k in range(0, 17))
#: histogram boundaries for message sizes in bytes (powers of four)
SIZE_BUCKETS: tuple[float, ...] = tuple(float(1 << k) for k in range(0, 25, 2))


class CounterCell:
    """One ``(counter, label tuple)`` series, resolved to a bare float slot.

    The hot path increments ``cell.n`` directly (or calls :meth:`inc`);
    there is no name lookup, no tuple allocation and no dict probe per
    event.  Cells are shared: every :meth:`Counter.slot` call with the
    same labels returns the same cell.
    """

    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0  # int until a float amount lands (small-int fast path)

    def inc(self, amount: float = 1) -> None:
        self.n += amount


class Counter:
    """Monotonically increasing value, optionally split by a label tuple."""

    __slots__ = ("name", "label_names", "_cells")

    def __init__(self, name: str, label_names: tuple[str, ...] = ()):
        self.name = name
        self.label_names = label_names
        self._cells: dict[tuple, CounterCell] = {}

    def slot(self, labels: tuple = ()) -> CounterCell:
        """Resolve (and validate) one label series to its mutable cell.

        Label arity is checked here — once, at registration time — so a
        mislabeled call site raises instead of creating a phantom series
        that would corrupt CSV export headers.
        """
        labels = tuple(labels)
        if len(labels) != len(self.label_names):
            raise SimulationError(
                f"counter {self.name!r} takes {len(self.label_names)} "
                f"label(s) {self.label_names}, got {labels!r}"
            )
        cell = self._cells.get(labels)
        if cell is None:
            cell = self._cells[labels] = CounterCell()
        return cell

    def inc(self, amount: float = 1.0, labels: tuple = ()) -> None:
        """Cold-path increment: resolves (and arity-checks) the slot per
        call.  Hot paths cache :meth:`slot` results instead."""
        self.slot(labels).n += amount

    @property
    def values(self) -> dict[tuple, float]:
        """Read-only view: label tuple -> accumulated value."""
        return {labels: cell.n for labels, cell in self._cells.items()}

    @property
    def total(self) -> float:
        return sum(cell.n for cell in self._cells.values())

    def get(self, labels: tuple = ()) -> float:
        cell = self._cells.get(tuple(labels))
        return cell.n if cell is not None else 0.0


class Gauge:
    """Instantaneous value with a high-water mark (e.g. in-flight depth)."""

    __slots__ = ("name", "value", "high_water")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-boundary histogram with sum/count/min/max.

    ``bounds`` are the *upper* edges of the first ``len(bounds)`` buckets;
    one implicit overflow bucket catches everything above the last edge.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count", "min", "max")

    def __init__(self, name: str, bounds: tuple[float, ...] = DURATION_BUCKETS):
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise SimulationError(f"histogram {name}: bounds must be strictly increasing")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        # first bucket whose upper edge >= value; bisect stays in C
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class HistogramSampler:
    """1-in-N front end for a histogram (deterministic stride sampling).

    Records the first observation, then every ``interval``-th one.  The
    countdown is plain per-sampler state driven only by the (virtual,
    deterministic) observation stream, so sampled histograms keep the
    byte-identical merge guarantee across ``--workers N``.  Skipped
    observations cost one integer decrement.
    """

    __slots__ = ("hist", "interval", "_countdown")

    def __init__(self, hist: Histogram, interval: int):
        if interval < 1:
            raise SimulationError(
                f"histogram {hist.name}: sample interval must be >= 1"
            )
        self.hist = hist
        self.interval = interval
        self._countdown = 1  # record the first value, then every Nth

    def observe(self, value: float) -> None:
        cd = self._countdown - 1
        if cd:
            self._countdown = cd
            return
        self._countdown = self.interval
        self.hist.observe(value)


@dataclass(frozen=True)
class TraceRecord:
    """One structured trace event (virtual-time-stamped)."""

    time: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)


class Span:
    """Context manager timing a region against the virtual clock.

    The duration lands in the histogram ``<name>.duration_s`` (resolved
    once, at span creation) and, when the registry keeps a trace stream,
    a ``span`` trace record is emitted with the start time, duration and
    any extra fields.
    """

    __slots__ = ("_registry", "_hist", "name", "fields", "_t0")

    def __init__(self, registry: "MetricsRegistry", name: str, fields: dict[str, Any]):
        self._registry = registry
        self._hist = registry.histogram(f"{name}.duration_s")
        self.name = name
        self.fields = fields
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        self._t0 = self._registry.now()
        return self

    def __exit__(self, *exc: Any) -> None:
        end = self._registry.now()
        duration = end - self._t0
        self._hist.observe(duration)
        self._registry.event(
            "span", name=self.name, start=self._t0, duration=duration, **self.fields
        )


class MetricsRegistry:
    """Names → instruments, the bounded trace-event stream, and the
    protocol flight recorder (``flight_capacity=0`` disables the latter —
    instrumented components then cache ``None`` for it, same contract as
    a disabled registry).

    ``hist_sample`` / ``span_sample`` set the default 1-in-N sampling
    interval that instrumented components apply to their *per-event*
    histograms (engine queue depth, network size/depth/transit, logged
    sizes) and to spans.  ``hist_sample`` defaults to 8 — that is what
    keeps fully-enabled collection within the ≤1.25× budget; pass
    ``hist_sample=1`` to record every observation.  ``span_sample``
    defaults to 1 (every span).  Counters, gauge values and cold-path
    histograms (e.g. recovery round durations) are always exact
    regardless of the knobs.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None,
                 trace_capacity: int = 100_000,
                 flight_capacity: int = DEFAULT_FLIGHT_CAPACITY,
                 hist_sample: int = 8,
                 span_sample: int = 1,
                 timeseries_interval: float | None = None,
                 timeseries_capacity: int | None = DEFAULT_TIMESERIES_CAPACITY):
        if hist_sample < 1 or span_sample < 1:
            raise SimulationError("sample intervals must be >= 1")
        self._clock = clock
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self.events: deque[TraceRecord] = deque(maxlen=trace_capacity)
        self.events_dropped = 0
        self._trace_capacity = trace_capacity
        self.hist_sample = hist_sample
        self.span_sample = span_sample
        self._span_countdown = 1
        self.flight = (
            FlightRecorder(flight_capacity, clock)
            if flight_capacity > 0 else NULL_FLIGHT
        )
        # virtual-time metric series: None (the default) keeps the engine
        # dispatch loop on the recorder-free path entirely
        self.timeseries = (
            TimeSeriesRecorder(timeseries_interval, timeseries_capacity)
            if timeseries_interval is not None else None
        )

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the virtual-clock source (typically ``lambda: engine.now``)."""
        self._clock = clock
        self.flight.bind_clock(clock)

    def bind_time_source(self, src: Any) -> None:
        """Attach an object exposing ``.now`` (the engine) as the clock.

        Equivalent to ``bind_clock(lambda: src.now)`` for trace events and
        spans, but lets the flight recorder timestamp with one attribute
        load instead of a Python-level call per record."""
        self._clock = lambda: src.now
        self.flight.bind_time_source(src)

    def now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    # ------------------------------------------------------------------
    # Instrument factories (idempotent by name)
    # ------------------------------------------------------------------
    def _get(self, name: str, cls: type, factory: Callable[[], Any]) -> Any:
        inst = self._instruments.get(name)
        if inst is None:
            inst = factory()
            self._instruments[name] = inst
        elif type(inst) is not cls:
            raise SimulationError(
                f"metric {name!r} already registered as {type(inst).__name__}"
            )
        return inst

    def counter(self, name: str, label_names: tuple[str, ...] = ()) -> Counter:
        c = self._get(name, Counter, lambda: Counter(name, label_names))
        if c.label_names != label_names:
            raise SimulationError(
                f"counter {name!r} label mismatch: {c.label_names} vs {label_names}"
            )
        return c

    def counter_slot(self, name: str, label_names: tuple[str, ...] = (),
                     labels: tuple = ()) -> CounterCell:
        """Register ``name`` and resolve one label series in one step —
        the construction-time registration idiom for hot paths."""
        return self.counter(name, label_names).slot(labels)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, bounds: tuple[float, ...] = DURATION_BUCKETS) -> Histogram:
        h = self._get(name, Histogram, lambda: Histogram(name, bounds))
        if h.bounds != tuple(float(b) for b in bounds):
            raise SimulationError(
                f"histogram {name!r} bounds mismatch: {h.bounds} vs {bounds}"
            )
        return h

    def sampled_histogram(
        self, name: str, bounds: tuple[float, ...] = DURATION_BUCKETS,
        interval: int | None = None,
    ) -> "Histogram | HistogramSampler":
        """A histogram behind the registry's (or an explicit) 1-in-N
        sampling stride; interval 1 returns the bare histogram, so the
        exact path pays nothing for the option."""
        h = self.histogram(name, bounds)
        n = self.hist_sample if interval is None else interval
        return h if n <= 1 else HistogramSampler(h, n)

    def span(self, name: str, **fields: Any) -> Any:
        if self.span_sample > 1:
            cd = self._span_countdown - 1
            if cd:
                self._span_countdown = cd
                return _NULL_INSTRUMENT
            self._span_countdown = self.span_sample
        return Span(self, name, fields)

    # ------------------------------------------------------------------
    # Trace stream
    # ------------------------------------------------------------------
    def event(self, kind: str, **fields: Any) -> None:
        if len(self.events) == self._trace_capacity:
            # live ring semantics: the deque evicts the *oldest* record,
            # which is the drop being counted here
            self.events_dropped += 1
        self.events.append(TraceRecord(self.now(), kind, fields))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def instruments(self) -> Iterator[Counter | Gauge | Histogram]:
        for name in sorted(self._instruments):
            yield self._instruments[name]

    def get_counter_total(self, name: str) -> float:
        inst = self._instruments.get(name)
        return inst.total if isinstance(inst, Counter) else 0.0

    # ------------------------------------------------------------------
    # Cross-process snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Plain-data copy of every instrument, the trace stream and the
        flight buffers — picklable, so sweep workers can ship it to the
        parent process for :meth:`merge`."""
        instruments: dict[str, dict[str, Any]] = {}
        for name, inst in self._instruments.items():
            if isinstance(inst, Counter):
                instruments[name] = {
                    "type": "counter",
                    "label_names": inst.label_names,
                    "values": list(inst.values.items()),
                }
            elif isinstance(inst, Gauge):
                instruments[name] = {
                    "type": "gauge",
                    "value": inst.value,
                    "high_water": inst.high_water,
                }
            elif isinstance(inst, Histogram):
                instruments[name] = {
                    "type": "histogram",
                    "bounds": inst.bounds,
                    "counts": list(inst.counts),
                    "sum": inst.sum,
                    "count": inst.count,
                    "min": inst.min,
                    "max": inst.max,
                }
        return {
            "instruments": instruments,
            "events": [(r.time, r.kind, dict(r.fields)) for r in self.events],
            "events_dropped": self.events_dropped,
            "flight": self.flight.snapshot() if self.flight.enabled else None,
            "timeseries": (
                self.timeseries.snapshot()
                if self.timeseries is not None else None
            ),
        }

    def merge(self, snap: dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histograms add; gauges sum their values and keep a
        high-water mark that is never below the merged aggregate (after
        merging, ``value`` is an aggregate, no longer an instantaneous
        reading, and ``high_water >= value`` stays invariant).  Trace
        events keep their original timestamps and respect this registry's
        capacity — once the stream is full, further merged events are
        *counted as dropped and not appended*, so the merged stream never
        silently evicts what an earlier merge contributed.  Flight buffers
        concatenate per rank with drop accounting.  Merging is associative
        and, per instrument, commutative — a parent merging N worker
        snapshots in task order gets the same totals as one sequential
        run.
        """
        if not snap:
            return
        for name, data in snap.get("instruments", {}).items():
            kind = data["type"]
            if kind == "counter":
                c = self.counter(name, tuple(data["label_names"]))
                for labels, value in data["values"]:
                    c.slot(tuple(labels)).n += value
            elif kind == "gauge":
                g = self.gauge(name)
                g.value += data["value"]
                if data["high_water"] > g.high_water:
                    g.high_water = data["high_water"]
                if g.value > g.high_water:
                    # the summed aggregate can exceed every per-worker
                    # high water; clamp so high_water >= value holds
                    g.high_water = g.value
            elif kind == "histogram":
                h = self.histogram(name, tuple(data["bounds"]))
                for i, n in enumerate(data["counts"]):
                    h.counts[i] += n
                h.sum += data["sum"]
                h.count += data["count"]
                h.min = min(h.min, data["min"])
                h.max = max(h.max, data["max"])
            else:
                raise SimulationError(f"cannot merge instrument type {kind!r}")
        events = self.events
        capacity = self._trace_capacity
        for time, kind, fields in snap.get("events", ()):
            if len(events) == capacity:
                # counted drop must skip the append: appending to a full
                # deque would evict an *earlier* merged event uncounted
                self.events_dropped += 1
                continue
            events.append(TraceRecord(time, kind, fields))
        self.events_dropped += snap.get("events_dropped", 0)
        flight_snap = snap.get("flight")
        if flight_snap and self.flight.enabled:
            self.flight.merge(flight_snap)
        ts_snap = snap.get("timeseries")
        if ts_snap:
            if self.timeseries is None:
                # a merge sink (the sweep parent): adopt the workers' grid
                # and concatenate unbounded so campaign dashboards keep
                # every task's curve
                self.timeseries = TimeSeriesRecorder(
                    ts_snap["interval"], capacity=None
                )
            self.timeseries.merge(ts_snap)


class _NullInstrument:
    """Absorbs every instrument method as a no-op.

    ``n`` exists (and stays 0.0) so code that resolved a slot from a
    disabled registry and does ``cell.n += x`` still works; the shared
    instance is handed out everywhere, so the write is a dead store, not
    shared state anyone reads back.
    """

    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0.0

    def inc(self, *a: Any, **k: Any) -> None: ...
    def dec(self, *a: Any, **k: Any) -> None: ...
    def set(self, *a: Any, **k: Any) -> None: ...
    def observe(self, *a: Any, **k: Any) -> None: ...
    def slot(self, labels: tuple = ()) -> "_NullInstrument":
        return self
    def __enter__(self) -> "_NullInstrument":
        return self
    def __exit__(self, *exc: Any) -> None: ...


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Disabled registry: same interface, every operation a no-op.

    ``events`` is an immutable empty sentinel (not a shared mutable deque):
    nothing can be appended through any code path, so two NullRegistries
    can never observe each other's state.  Every instrument factory hands
    out the one shared :class:`_NullInstrument`, so a hot loop that keeps
    a resolved instrument pays one attribute load and a no-op call.
    """

    enabled = False
    events: tuple = ()
    events_dropped = 0
    flight = NULL_FLIGHT
    hist_sample = 1
    span_sample = 1
    timeseries = None

    def bind_clock(self, clock: Callable[[], float]) -> None: ...
    def bind_time_source(self, src: Any) -> None: ...
    def now(self) -> float:
        return 0.0
    def counter(self, name: str, label_names: tuple[str, ...] = ()) -> Any:
        return _NULL_INSTRUMENT
    def counter_slot(self, name: str, label_names: tuple[str, ...] = (),
                     labels: tuple = ()) -> Any:
        return _NULL_INSTRUMENT
    def gauge(self, name: str) -> Any:
        return _NULL_INSTRUMENT
    def histogram(self, name: str, bounds: tuple[float, ...] = ()) -> Any:
        return _NULL_INSTRUMENT
    def sampled_histogram(self, name: str, bounds: tuple[float, ...] = (),
                          interval: int | None = None) -> Any:
        return _NULL_INSTRUMENT
    def span(self, name: str, **fields: Any) -> Any:
        return _NULL_INSTRUMENT
    def event(self, kind: str, **fields: Any) -> None: ...
    def instruments(self) -> Iterator[Any]:
        return iter(())
    def get_counter_total(self, name: str) -> float:
        return 0.0
    def snapshot(self) -> dict[str, Any]:
        return {}
    def merge(self, snap: dict[str, Any]) -> None: ...


#: process-wide disabled registry, shared by every uninstrumented component
NULL_OBS = NullRegistry()
