"""Metrics registry: counters, gauges, histograms and virtual-clock spans.

The observability subsystem gives every layer of the stack a shared place
to record *attributable* measurements — events dispatched per callback
class, bytes per channel, messages logged per epoch, recovery-round
durations — without coupling the layers to any output format.  Exporters
(:mod:`repro.obs.export`) turn a registry into JSON-lines or CSV.

Two registry implementations share one interface:

* :class:`MetricsRegistry` — the real thing.  All timestamps come from the
  *virtual* clock (bound via :meth:`MetricsRegistry.bind_clock`), never
  from wall time, so an instrumented run stays bit-reproducible.
* :class:`NullRegistry` — the default.  Every instrument it hands out is a
  shared no-op, and its ``enabled`` flag is ``False`` so hot-path code can
  skip instrumentation entirely (the engine and network cache ``None``
  instead of a disabled registry; the per-event cost of "disabled" is a
  single identity comparison).

Instruments are created lazily and idempotently by name; asking twice for
the same name returns the same object, asking for the same name with a
different type or label set raises.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..errors import SimulationError
from .flight import DEFAULT_FLIGHT_CAPACITY, FlightRecorder, NULL_FLIGHT

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "TraceRecord",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_OBS",
    "DURATION_BUCKETS",
    "DEPTH_BUCKETS",
    "SIZE_BUCKETS",
]

#: histogram boundaries for virtual durations, in seconds (1 us .. 10 s)
DURATION_BUCKETS: tuple[float, ...] = tuple(
    m * 10.0**e for e in range(-6, 1) for m in (1.0, 2.5, 5.0)
)
#: histogram boundaries for queue/in-flight depths (powers of two)
DEPTH_BUCKETS: tuple[float, ...] = tuple(float(1 << k) for k in range(0, 17))
#: histogram boundaries for message sizes in bytes (powers of four)
SIZE_BUCKETS: tuple[float, ...] = tuple(float(1 << k) for k in range(0, 25, 2))


class Counter:
    """Monotonically increasing value, optionally split by a label tuple."""

    __slots__ = ("name", "label_names", "values")

    def __init__(self, name: str, label_names: tuple[str, ...] = ()):
        self.name = name
        self.label_names = label_names
        self.values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, labels: tuple = ()) -> None:
        self.values[labels] = self.values.get(labels, 0.0) + amount

    @property
    def total(self) -> float:
        return sum(self.values.values())

    def get(self, labels: tuple = ()) -> float:
        return self.values.get(labels, 0.0)


class Gauge:
    """Instantaneous value with a high-water mark (e.g. in-flight depth)."""

    __slots__ = ("name", "value", "high_water")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-boundary histogram with sum/count/min/max.

    ``bounds`` are the *upper* edges of the first ``len(bounds)`` buckets;
    one implicit overflow bucket catches everything above the last edge.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count", "min", "max")

    def __init__(self, name: str, bounds: tuple[float, ...] = DURATION_BUCKETS):
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise SimulationError(f"histogram {name}: bounds must be strictly increasing")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bucket whose upper edge >= value
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


@dataclass(frozen=True)
class TraceRecord:
    """One structured trace event (virtual-time-stamped)."""

    time: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)


class Span:
    """Context manager timing a region against the virtual clock.

    The duration lands in the histogram ``<name>.duration_s`` and, when the
    registry keeps a trace stream, a ``span`` trace record is emitted with
    the start time, duration and any extra fields.
    """

    __slots__ = ("_registry", "name", "fields", "_t0")

    def __init__(self, registry: "MetricsRegistry", name: str, fields: dict[str, Any]):
        self._registry = registry
        self.name = name
        self.fields = fields
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        self._t0 = self._registry.now()
        return self

    def __exit__(self, *exc: Any) -> None:
        end = self._registry.now()
        duration = end - self._t0
        self._registry.histogram(f"{self.name}.duration_s").observe(duration)
        self._registry.event(
            "span", name=self.name, start=self._t0, duration=duration, **self.fields
        )


class MetricsRegistry:
    """Names → instruments, the bounded trace-event stream, and the
    protocol flight recorder (``flight_capacity=0`` disables the latter —
    instrumented components then cache ``None`` for it, same contract as
    a disabled registry)."""

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None,
                 trace_capacity: int = 100_000,
                 flight_capacity: int = DEFAULT_FLIGHT_CAPACITY):
        self._clock = clock
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self.events: deque[TraceRecord] = deque(maxlen=trace_capacity)
        self.events_dropped = 0
        self._trace_capacity = trace_capacity
        self.flight = (
            FlightRecorder(flight_capacity, clock)
            if flight_capacity > 0 else NULL_FLIGHT
        )

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the virtual-clock source (typically ``lambda: engine.now``)."""
        self._clock = clock
        self.flight.bind_clock(clock)

    def now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    # ------------------------------------------------------------------
    # Instrument factories (idempotent by name)
    # ------------------------------------------------------------------
    def _get(self, name: str, cls: type, factory: Callable[[], Any]) -> Any:
        inst = self._instruments.get(name)
        if inst is None:
            inst = factory()
            self._instruments[name] = inst
        elif type(inst) is not cls:
            raise SimulationError(
                f"metric {name!r} already registered as {type(inst).__name__}"
            )
        return inst

    def counter(self, name: str, label_names: tuple[str, ...] = ()) -> Counter:
        c = self._get(name, Counter, lambda: Counter(name, label_names))
        if c.label_names != label_names:
            raise SimulationError(
                f"counter {name!r} label mismatch: {c.label_names} vs {label_names}"
            )
        return c

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, bounds: tuple[float, ...] = DURATION_BUCKETS) -> Histogram:
        h = self._get(name, Histogram, lambda: Histogram(name, bounds))
        if h.bounds != tuple(float(b) for b in bounds):
            raise SimulationError(
                f"histogram {name!r} bounds mismatch: {h.bounds} vs {bounds}"
            )
        return h

    def span(self, name: str, **fields: Any) -> Span:
        return Span(self, name, fields)

    # ------------------------------------------------------------------
    # Trace stream
    # ------------------------------------------------------------------
    def event(self, kind: str, **fields: Any) -> None:
        if len(self.events) == self._trace_capacity:
            self.events_dropped += 1
        self.events.append(TraceRecord(self.now(), kind, fields))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def instruments(self) -> Iterator[Counter | Gauge | Histogram]:
        for name in sorted(self._instruments):
            yield self._instruments[name]

    def get_counter_total(self, name: str) -> float:
        inst = self._instruments.get(name)
        return inst.total if isinstance(inst, Counter) else 0.0

    # ------------------------------------------------------------------
    # Cross-process snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Plain-data copy of every instrument, the trace stream and the
        flight buffers — picklable, so sweep workers can ship it to the
        parent process for :meth:`merge`."""
        instruments: dict[str, dict[str, Any]] = {}
        for name, inst in self._instruments.items():
            if isinstance(inst, Counter):
                instruments[name] = {
                    "type": "counter",
                    "label_names": inst.label_names,
                    "values": list(inst.values.items()),
                }
            elif isinstance(inst, Gauge):
                instruments[name] = {
                    "type": "gauge",
                    "value": inst.value,
                    "high_water": inst.high_water,
                }
            elif isinstance(inst, Histogram):
                instruments[name] = {
                    "type": "histogram",
                    "bounds": inst.bounds,
                    "counts": list(inst.counts),
                    "sum": inst.sum,
                    "count": inst.count,
                    "min": inst.min,
                    "max": inst.max,
                }
        return {
            "instruments": instruments,
            "events": [(r.time, r.kind, dict(r.fields)) for r in self.events],
            "events_dropped": self.events_dropped,
            "flight": self.flight.snapshot() if self.flight.enabled else None,
        }

    def merge(self, snap: dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histograms add; gauges sum their values and keep the
        maximum high-water mark (after merging, ``value`` is an aggregate,
        no longer an instantaneous reading).  Trace events keep their
        original timestamps and respect this registry's capacity; flight
        buffers concatenate per rank with drop accounting.  Merging is
        associative and, per instrument, commutative — a parent merging N
        worker snapshots in task order gets the same totals as one
        sequential run.
        """
        if not snap:
            return
        for name, data in snap.get("instruments", {}).items():
            kind = data["type"]
            if kind == "counter":
                c = self.counter(name, tuple(data["label_names"]))
                for labels, value in data["values"]:
                    c.inc(value, tuple(labels))
            elif kind == "gauge":
                g = self.gauge(name)
                g.value += data["value"]
                g.high_water = max(g.high_water, data["high_water"])
            elif kind == "histogram":
                h = self.histogram(name, tuple(data["bounds"]))
                for i, n in enumerate(data["counts"]):
                    h.counts[i] += n
                h.sum += data["sum"]
                h.count += data["count"]
                h.min = min(h.min, data["min"])
                h.max = max(h.max, data["max"])
            else:
                raise SimulationError(f"cannot merge instrument type {kind!r}")
        for time, kind, fields in snap.get("events", ()):
            if len(self.events) == self._trace_capacity:
                self.events_dropped += 1
            self.events.append(TraceRecord(time, kind, fields))
        self.events_dropped += snap.get("events_dropped", 0)
        flight_snap = snap.get("flight")
        if flight_snap and self.flight.enabled:
            self.flight.merge(flight_snap)


class _NullInstrument:
    """Absorbs every instrument method as a no-op."""

    __slots__ = ()

    def inc(self, *a: Any, **k: Any) -> None: ...
    def dec(self, *a: Any, **k: Any) -> None: ...
    def set(self, *a: Any, **k: Any) -> None: ...
    def observe(self, *a: Any, **k: Any) -> None: ...
    def __enter__(self) -> "_NullInstrument":
        return self
    def __exit__(self, *exc: Any) -> None: ...


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Disabled registry: same interface, every operation a no-op.

    ``events`` is an immutable empty sentinel (not a shared mutable deque):
    nothing can be appended through any code path, so two NullRegistries
    can never observe each other's state.
    """

    enabled = False
    events: tuple = ()
    events_dropped = 0
    flight = NULL_FLIGHT

    def bind_clock(self, clock: Callable[[], float]) -> None: ...
    def now(self) -> float:
        return 0.0
    def counter(self, name: str, label_names: tuple[str, ...] = ()) -> Any:
        return _NULL_INSTRUMENT
    def gauge(self, name: str) -> Any:
        return _NULL_INSTRUMENT
    def histogram(self, name: str, bounds: tuple[float, ...] = ()) -> Any:
        return _NULL_INSTRUMENT
    def span(self, name: str, **fields: Any) -> Any:
        return _NULL_INSTRUMENT
    def event(self, kind: str, **fields: Any) -> None: ...
    def instruments(self) -> Iterator[Any]:
        return iter(())
    def get_counter_total(self, name: str) -> float:
        return 0.0
    def snapshot(self) -> dict[str, Any]:
        return {}
    def merge(self, snap: dict[str, Any]) -> None: ...


#: process-wide disabled registry, shared by every uninstrumented component
NULL_OBS = NullRegistry()
