"""JSON-lines and CSV exporters for a metrics registry.

Both formats share one flat row schema so downstream tooling (pandas,
jq, a spreadsheet) can consume either:

* metric rows — one per ``(instrument, label set)``:
  ``{"metric", "type", "labels", "value", ...}`` where histograms add
  ``sum/count/min/max/mean/bounds/bucket_counts`` and gauges add
  ``high_water``;
* trace rows — one per trace record: ``{"time", "kind", **fields}``.

CSV cells that hold lists or mappings (histogram bounds, label sets,
event fields) are JSON-encoded in place, keeping the file loadable with
any CSV reader.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, TYPE_CHECKING

from .flight import record_to_dict
from .registry import Counter, Gauge, Histogram

if TYPE_CHECKING:  # pragma: no cover
    from .registry import MetricsRegistry

__all__ = [
    "metric_rows",
    "event_rows",
    "flight_rows",
    "timeseries_rows",
    "histogram_quantile",
    "to_jsonl",
    "to_csv",
    "dump_metrics",
    "dump_events",
    "dump_flight",
    "dump_timeseries",
    "dump_text",
]

#: quantiles exported for every histogram row
QUANTILES: tuple[float, ...] = (0.50, 0.95, 0.99)


def _labels_dict(names: tuple[str, ...], values: tuple) -> dict[str, Any]:
    if not values:
        return {}
    if not names:  # unnamed label tuple: positional keys
        names = tuple(f"label{i}" for i in range(len(values)))
    return dict(zip(names, values))


def _label_sort_key(labels: tuple) -> tuple:
    """Type-aware ordering for label tuples: numbers numerically, then
    everything else by string.  Sorting by value (not by insertion order,
    not by ``repr``) makes export row order — and therefore CSV column
    order — a pure function of the data, invariant under merge order and
    worker count, and puts ``rank=10`` after ``rank=2``."""
    return tuple(
        (0, "", float(v)) if isinstance(v, (int, float)) and not isinstance(v, bool)
        else (1, str(v), 0.0)
        for v in labels
    )


def histogram_quantile(hist: Histogram, q: float) -> float | None:
    """Estimate the ``q``-quantile from a fixed-boundary histogram.

    Linear interpolation inside the bucket holding the target rank;
    clamped to the observed ``min``/``max`` (which are tracked exactly),
    so estimates never leave the data's range even when the bucket edges
    are far apart.  Returns ``None`` for an empty histogram.  For
    *sampled* histograms (``hist_sample=N``) the estimate derives from
    the deterministic 1-in-N subsample.
    """
    count = hist.count
    if not count:
        return None
    rank = q * count
    bounds = hist.bounds
    seen = 0
    for i, n in enumerate(hist.counts):
        seen += n
        if seen >= rank and n:
            lo = bounds[i - 1] if i > 0 else hist.min
            hi = bounds[i] if i < len(bounds) else hist.max
            lo = max(lo, hist.min)
            hi = min(hi, hist.max)
            if hi <= lo:
                return lo
            # position of the target rank inside this bucket's count
            frac = (rank - (seen - n)) / n
            return lo + (hi - lo) * frac
    return hist.max


def metric_rows(registry: "MetricsRegistry") -> list[dict[str, Any]]:
    """Flatten every instrument into export rows (sorted by metric name)."""
    rows: list[dict[str, Any]] = []
    for inst in registry.instruments():
        if isinstance(inst, Counter):
            values = inst.values  # one materialisation of the cell view
            for labels in sorted(values, key=_label_sort_key):
                rows.append({
                    "metric": inst.name,
                    "type": "counter",
                    "labels": _labels_dict(inst.label_names, labels),
                    "value": values[labels],
                })
            if not values:
                rows.append({"metric": inst.name, "type": "counter",
                             "labels": {}, "value": 0.0})
        elif isinstance(inst, Gauge):
            rows.append({
                "metric": inst.name,
                "type": "gauge",
                "labels": {},
                "value": inst.value,
                "high_water": inst.high_water,
            })
        elif isinstance(inst, Histogram):
            rows.append({
                "metric": inst.name,
                "type": "histogram",
                "labels": {},
                "value": inst.mean,
                "sum": inst.sum,
                "count": inst.count,
                "min": inst.min if inst.count else None,
                "max": inst.max if inst.count else None,
                # quantile *estimates*: per-event histograms observe a
                # deterministic 1-in-hist_sample subsample (default 8),
                # so these derive from that subsample; min/max/count are
                # exact for the observations the histogram received
                "p50": histogram_quantile(inst, 0.50),
                "p95": histogram_quantile(inst, 0.95),
                "p99": histogram_quantile(inst, 0.99),
                "bounds": list(inst.bounds),
                "bucket_counts": list(inst.counts),
            })
    return rows


def event_rows(registry: "MetricsRegistry") -> list[dict[str, Any]]:
    """Flatten the trace-event stream into export rows (time order)."""
    return [{"time": r.time, "kind": r.kind, **r.fields} for r in registry.events]


def flight_rows(registry: "MetricsRegistry") -> list[dict[str, Any]]:
    """Flatten the flight-record stream into export rows (global time order)."""
    return [record_to_dict(rec) for rec in registry.flight.records()]


def to_jsonl(rows: list[dict[str, Any]]) -> str:
    """One compact JSON object per line."""
    return "".join(json.dumps(row, sort_keys=True, default=str) + "\n" for row in rows)


def to_csv(rows: list[dict[str, Any]]) -> str:
    """CSV with the union of all row keys as header (stable order)."""
    if not rows:
        return ""
    header: list[str] = []
    for row in rows:
        for key in row:
            if key not in header:
                header.append(key)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=header, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow({
            k: json.dumps(v, sort_keys=True, default=str)
            if isinstance(v, (dict, list, tuple)) else v
            for k, v in row.items()
        })
    return buf.getvalue()


def dump_metrics(registry: "MetricsRegistry", fmt: str = "jsonl") -> str:
    """Render the full metrics snapshot in ``fmt`` ("jsonl" or "csv")."""
    rows = metric_rows(registry)
    return to_csv(rows) if fmt == "csv" else to_jsonl(rows)


def dump_events(registry: "MetricsRegistry", fmt: str = "jsonl") -> str:
    """Render the trace-event stream in ``fmt`` ("jsonl" or "csv")."""
    rows = event_rows(registry)
    return to_csv(rows) if fmt == "csv" else to_jsonl(rows)


def dump_flight(registry: "MetricsRegistry", fmt: str = "jsonl") -> str:
    """Render the flight-record stream in ``fmt`` ("jsonl" or "csv")."""
    rows = flight_rows(registry)
    return to_csv(rows) if fmt == "csv" else to_jsonl(rows)


def timeseries_rows(registry: "MetricsRegistry") -> list[dict[str, Any]]:
    """Flatten the virtual-time series into one row per series.

    Rows carry the full parallel ``t``/``v`` arrays (and ``d`` window
    deltas for counter-kind series) in registration order — the shape
    ``repro report`` charts from directly.
    """
    ts = registry.timeseries
    if ts is None:
        return []
    rows: list[dict[str, Any]] = []
    for name, s in ts.series.items():
        row: dict[str, Any] = {
            "series": name,
            "kind": s.kind,
            "interval": ts.interval,
            "dropped": s.dropped,
            "t": list(s.t),
            "v": list(s.v),
        }
        if s.d is not None:
            row["d"] = list(s.d)
        rows.append(row)
    return rows


def dump_timeseries(registry: "MetricsRegistry", fmt: str = "jsonl") -> str:
    """Render the virtual-time series in ``fmt`` ("jsonl" or "csv")."""
    rows = timeseries_rows(registry)
    return to_csv(rows) if fmt == "csv" else to_jsonl(rows)


def _fmt_num(v: float | None) -> str:
    if v is None:
        return "-"
    if isinstance(v, float) and v != int(v):
        return f"{v:.6g}"
    return str(int(v))


def dump_text(registry: "MetricsRegistry") -> str:
    """Human-readable metrics summary (``repro obs --format text``)."""
    lines: list[str] = []
    sample = registry.hist_sample
    sampled = False
    for inst in registry.instruments():
        if isinstance(inst, Counter):
            values = inst.values
            if not values:
                lines.append(f"counter   {inst.name} = 0")
                continue
            lines.append(f"counter   {inst.name} = {_fmt_num(inst.total)}")
            if any(labels for labels in values):
                for labels in sorted(values, key=_label_sort_key):
                    ld = _labels_dict(inst.label_names, labels)
                    tag = ",".join(f"{k}={v}" for k, v in ld.items())
                    lines.append(f"          {inst.name}{{{tag}}} = "
                                 f"{_fmt_num(values[labels])}")
        elif isinstance(inst, Gauge):
            lines.append(f"gauge     {inst.name} = {_fmt_num(inst.value)} "
                         f"(high water {_fmt_num(inst.high_water)})")
        elif isinstance(inst, Histogram):
            qs = "  ".join(
                f"p{int(q * 100)}={_fmt_num(histogram_quantile(inst, q))}"
                for q in QUANTILES
            )
            lines.append(
                f"histogram {inst.name}  count={inst.count} "
                f"mean={_fmt_num(inst.mean)}  {qs}  "
                f"min={_fmt_num(inst.min if inst.count else None)} "
                f"max={_fmt_num(inst.max if inst.count else None)}"
            )
            sampled = True
    if sampled and sample > 1:
        lines.append(
            f"# histogram quantiles are interpolated estimates; per-event "
            f"histograms observe a deterministic 1-in-{sample} subsample "
            f"(count/min/max are exact for the recorded observations)"
        )
    ts = registry.timeseries
    if ts is not None:
        held = sum(len(s.t) for s in ts.series.values())
        dropped = sum(s.dropped for s in ts.series.values())
        lines.append(
            f"timeseries interval={ts.interval:g}s series={len(ts.series)} "
            f"samples={ts.samples_taken} points={held} dropped={dropped}"
        )
    return "\n".join(lines) + "\n" if lines else ""
