"""JSON-lines and CSV exporters for a metrics registry.

Both formats share one flat row schema so downstream tooling (pandas,
jq, a spreadsheet) can consume either:

* metric rows — one per ``(instrument, label set)``:
  ``{"metric", "type", "labels", "value", ...}`` where histograms add
  ``sum/count/min/max/mean/bounds/bucket_counts`` and gauges add
  ``high_water``;
* trace rows — one per trace record: ``{"time", "kind", **fields}``.

CSV cells that hold lists or mappings (histogram bounds, label sets,
event fields) are JSON-encoded in place, keeping the file loadable with
any CSV reader.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, TYPE_CHECKING

from .flight import record_to_dict
from .registry import Counter, Gauge, Histogram

if TYPE_CHECKING:  # pragma: no cover
    from .registry import MetricsRegistry

__all__ = [
    "metric_rows",
    "event_rows",
    "flight_rows",
    "to_jsonl",
    "to_csv",
    "dump_metrics",
    "dump_events",
    "dump_flight",
]


def _labels_dict(names: tuple[str, ...], values: tuple) -> dict[str, Any]:
    if not values:
        return {}
    if not names:  # unnamed label tuple: positional keys
        names = tuple(f"label{i}" for i in range(len(values)))
    return dict(zip(names, values))


def metric_rows(registry: "MetricsRegistry") -> list[dict[str, Any]]:
    """Flatten every instrument into export rows (sorted by metric name)."""
    rows: list[dict[str, Any]] = []
    for inst in registry.instruments():
        if isinstance(inst, Counter):
            values = inst.values  # one materialisation of the cell view
            for labels in sorted(values, key=repr):
                rows.append({
                    "metric": inst.name,
                    "type": "counter",
                    "labels": _labels_dict(inst.label_names, labels),
                    "value": values[labels],
                })
            if not values:
                rows.append({"metric": inst.name, "type": "counter",
                             "labels": {}, "value": 0.0})
        elif isinstance(inst, Gauge):
            rows.append({
                "metric": inst.name,
                "type": "gauge",
                "labels": {},
                "value": inst.value,
                "high_water": inst.high_water,
            })
        elif isinstance(inst, Histogram):
            rows.append({
                "metric": inst.name,
                "type": "histogram",
                "labels": {},
                "value": inst.mean,
                "sum": inst.sum,
                "count": inst.count,
                "min": inst.min if inst.count else None,
                "max": inst.max if inst.count else None,
                "bounds": list(inst.bounds),
                "bucket_counts": list(inst.counts),
            })
    return rows


def event_rows(registry: "MetricsRegistry") -> list[dict[str, Any]]:
    """Flatten the trace-event stream into export rows (time order)."""
    return [{"time": r.time, "kind": r.kind, **r.fields} for r in registry.events]


def flight_rows(registry: "MetricsRegistry") -> list[dict[str, Any]]:
    """Flatten the flight-record stream into export rows (global time order)."""
    return [record_to_dict(rec) for rec in registry.flight.records()]


def to_jsonl(rows: list[dict[str, Any]]) -> str:
    """One compact JSON object per line."""
    return "".join(json.dumps(row, sort_keys=True, default=str) + "\n" for row in rows)


def to_csv(rows: list[dict[str, Any]]) -> str:
    """CSV with the union of all row keys as header (stable order)."""
    if not rows:
        return ""
    header: list[str] = []
    for row in rows:
        for key in row:
            if key not in header:
                header.append(key)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=header, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow({
            k: json.dumps(v, sort_keys=True, default=str)
            if isinstance(v, (dict, list, tuple)) else v
            for k, v in row.items()
        })
    return buf.getvalue()


def dump_metrics(registry: "MetricsRegistry", fmt: str = "jsonl") -> str:
    """Render the full metrics snapshot in ``fmt`` ("jsonl" or "csv")."""
    rows = metric_rows(registry)
    return to_csv(rows) if fmt == "csv" else to_jsonl(rows)


def dump_events(registry: "MetricsRegistry", fmt: str = "jsonl") -> str:
    """Render the trace-event stream in ``fmt`` ("jsonl" or "csv")."""
    rows = event_rows(registry)
    return to_csv(rows) if fmt == "csv" else to_jsonl(rows)


def dump_flight(registry: "MetricsRegistry", fmt: str = "jsonl") -> str:
    """Render the flight-record stream in ``fmt`` ("jsonl" or "csv")."""
    rows = flight_rows(registry)
    return to_csv(rows) if fmt == "csv" else to_jsonl(rows)
