"""Deterministic discrete-event simulation engine.

The engine is a classic calendar queue: events are ``(time, seq, callback)``
triples ordered by time with a monotonically increasing sequence number as a
tie-breaker, which makes every run bit-reproducible — a property the
correctness tests rely on to compare failure-free and post-failure
executions message by message.

The engine knows nothing about MPI, processes or fault tolerance; it only
dispatches callbacks at virtual times.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import SimulationError

__all__ = ["Engine", "EventHandle"]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Opaque handle returned by :meth:`Engine.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Mark the event so the engine skips it; cancelling twice is a no-op."""
        self._event.cancelled = True


class Engine:
    """Event loop with a virtual clock.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock, in seconds.
    """

    def __init__(self, start_time: float = 0.0):
        self.now: float = float(start_time)
        self._queue: list[_Event] = []
        self._seq = 0
        self._events_dispatched = 0
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay runs after all events
        already scheduled for the current instant (FIFO within a timestamp).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = _Event(self.now + delay, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        return self.schedule(max(0.0, time - self.now), callback)

    def call_soon(self, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at the current instant (after queued peers)."""
        return self.schedule(0.0, callback)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of scheduled, non-cancelled events."""
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def events_dispatched(self) -> int:
        return self._events_dispatched

    def step(self) -> bool:
        """Dispatch the next event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self.now:
                raise SimulationError("event queue corrupted: time went backwards")
            self.now = event.time
            self._events_dispatched += 1
            event.callback()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        ``until`` is an absolute virtual time; events scheduled exactly at
        ``until`` are executed.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        dispatched = 0
        try:
            while self._queue:
                if until is not None and self._peek_time() > until:
                    self.now = until
                    break
                if max_events is not None and dispatched >= max_events:
                    break
                if self.step():
                    dispatched += 1
        finally:
            self._running = False

    def _peek_time(self) -> float:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return float("inf")
        return self._queue[0].time
