"""Deterministic discrete-event simulation engine.

The engine is a classic calendar queue: events are ``[time, seq, state,
callback]`` records ordered by time with a monotonically increasing
sequence number as a tie-breaker, which makes every run bit-reproducible —
a property the correctness tests rely on to compare failure-free and
post-failure executions message by message.

The engine knows nothing about MPI, processes or fault tolerance; it only
dispatches callbacks at virtual times.

Hot-path layout
---------------
Queue entries are plain lists, not objects: heap sift comparisons stay in
C (list-vs-list lexicographic compare never reaches the callback slot
because sequence numbers are unique), and the dispatch loop in
:meth:`Engine.run` pops each entry exactly once instead of the classic
peek-then-pop double heap traversal.  Cancellation flips the entry's state
slot in place; cancelled entries are dropped lazily when they surface at
the head, and a compaction pass rebuilds the heap whenever cancelled
garbage exceeds half the queue (heavy cancellers — failure purges — would
otherwise accumulate dead entries in the middle of the heap forever).

Observability: pass a :class:`repro.obs.MetricsRegistry` to count events
dispatched per callback class and sample queue depth.  With the default
null registry the engine caches ``None`` and the dispatch loop pays a
single identity comparison per event.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from ..errors import SimulationError
from ..lint.sanitize import AUDIT_INTERVAL, sanitizer_for
from ..obs.registry import DEPTH_BUCKETS

__all__ = ["Engine", "EventHandle", "RunHandle", "RunMemberHandle"]

# Queue-entry slots: [time, seq, state, callback] for singleton events;
# run entries carry two extra slots, [..., items, live] (see RunHandle).
_TIME, _SEQ, _STATE, _CALLBACK = 0, 1, 2, 3
_ITEMS, _LIVE = 4, 5
# Entry states.
_PENDING, _CANCELLED, _DISPATCHED = 0, 1, 2

#: never compact below this queue size (rebuild cost would dominate)
_COMPACT_MIN = 64

#: dispatch-count mask between sanitizer pending-counter audits
_AUDIT_MASK = AUDIT_INTERVAL - 1


class EventHandle:
    """Opaque handle returned by :meth:`Engine.schedule`; allows cancellation."""

    __slots__ = ("_entry", "_engine")

    def __init__(self, entry: list, engine: "Engine"):
        self._entry = entry
        self._engine = engine

    @property
    def time(self) -> float:
        return self._entry[_TIME]

    @property
    def cancelled(self) -> bool:
        return self._entry[_STATE] == _CANCELLED

    def cancel(self) -> None:
        """Mark the event so the engine skips it; cancelling twice (or after
        the event already ran) is a no-op."""
        entry = self._entry
        if entry[_STATE] != _PENDING:
            return
        entry[_STATE] = _CANCELLED
        engine = self._engine
        engine._pending -= 1
        engine._cancelled += 1
        engine._maybe_compact()


class RunHandle:
    """Handle for a *run entry*: one queue entry carrying a batch of
    logical events at a shared timestamp.

    A run entry is ``[time, seq, state, callback, items, live]`` — the heap
    is popped once and ``callback(items)`` dispatches every item, so a
    burst of ``n`` same-instant events costs one sift instead of ``n``.
    ``items`` may contain ``None`` holes where members were cancelled; the
    callback must skip them.  ``live`` counts the non-hole members and is
    what the engine's event accounting (``pending``, ``events_dispatched``,
    obs dispatch counters) is kept in terms of, so a run of ``n`` members
    is indistinguishable from ``n`` singleton events in every counter.
    """

    __slots__ = ("_entry", "_engine")

    def __init__(self, entry: list, engine: "Engine"):
        self._entry = entry
        self._engine = engine

    @property
    def time(self) -> float:
        return self._entry[_TIME]

    @property
    def open(self) -> bool:
        """True while the run may still absorb members: it has not been
        dispatched or cancelled, and *no other event has been scheduled
        since* (its sequence number is still the engine's latest).  The
        second condition is what makes :meth:`append` order-safe — an
        appended member dispatches exactly where a fresh singleton would
        have (same time, next sequence slot, nothing in between)."""
        entry = self._entry
        return entry[_STATE] == _PENDING and self._engine._seq == entry[_SEQ]

    def append(self, item: Any) -> "RunMemberHandle":
        """Add a member to a still-:attr:`open` run (caller checks)."""
        entry = self._entry
        items = entry[_ITEMS]
        idx = len(items)
        items.append(item)
        entry[_LIVE] += 1
        self._engine._pending += 1
        return RunMemberHandle(entry, idx, self._engine)

    def member(self, idx: int) -> "RunMemberHandle":
        """Cancellation handle for one member of the run."""
        return RunMemberHandle(self._entry, idx, self._engine)

    def cancel(self) -> None:
        """Cancel every remaining member (and the entry itself)."""
        entry = self._entry
        if entry[_STATE] != _PENDING:
            return
        entry[_STATE] = _CANCELLED
        engine = self._engine
        engine._pending -= entry[_LIVE]
        entry[_LIVE] = 0
        engine._cancelled += 1
        engine._maybe_compact()


class RunMemberHandle:
    """Cancels a single logical event inside a run entry."""

    __slots__ = ("_entry", "_idx", "_engine")

    def __init__(self, entry: list, idx: int, engine: "Engine"):
        self._entry = entry
        self._idx = idx
        self._engine = engine

    @property
    def cancelled(self) -> bool:
        entry = self._entry
        return entry[_STATE] == _CANCELLED or entry[_ITEMS][self._idx] is None

    def cancel(self) -> None:
        entry = self._entry
        if entry[_STATE] != _PENDING or entry[_ITEMS][self._idx] is None:
            return
        entry[_ITEMS][self._idx] = None
        entry[_LIVE] -= 1
        engine = self._engine
        engine._pending -= 1
        if entry[_LIVE] == 0:
            # last member gone: the entry itself is garbage now
            entry[_STATE] = _CANCELLED
            engine._cancelled += 1
            engine._maybe_compact()


class Engine:
    """Event loop with a virtual clock.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock, in seconds.
    obs:
        Optional metrics registry; ``None`` (or a disabled registry)
        leaves the dispatch loop uninstrumented.
    """

    def __init__(self, start_time: float = 0.0, obs: Any = None):
        self.now: float = float(start_time)
        self._queue: list[list] = []
        self._seq = 0
        self._pending = 0
        self._cancelled = 0
        self._events_dispatched = 0
        self._compactions = 0
        self._running = False
        self.obs = obs if (obs is not None and obs.enabled) else None
        # REPRO_SANITIZE: None when off — the dispatch loop pays a single
        # identity comparison, mirroring the cached-instrument pattern
        self._san = sanitizer_for(self.obs)
        if self.obs is not None:
            self.obs.bind_time_source(self)
            # slot-resolve the instruments once: _record_dispatch runs per
            # event, so it works against bare cells (callback label ->
            # CounterCell, cached below) rather than registry lookups
            self._disp_counter = self.obs.counter(
                "engine.events_dispatched", ("callback",)
            )
            self._disp_cells: dict[Any, Any] = {}
            # queue depth is sampled 1-in-hist_sample (countdown inlined in
            # the dispatch loop); the "current" gauge rides the same ticks
            self._depth_hist = self.obs.histogram(
                "engine.queue_depth", DEPTH_BUCKETS
            )
            self._depth_interval = self.obs.hist_sample
            self._depth_cd = 1
            self._depth_gauge = self.obs.gauge("engine.queue_depth.current")
        # virtual-time series recorder: sampled by a boundary hook in the
        # dispatch loop (no queue entries, no sequence numbers — arming it
        # cannot perturb event order; see obs/timeseries.py).  bind_engine
        # is first-wins, so a second world on the same registry stays out.
        self._ts = None
        if self.obs is not None:
            ts = getattr(self.obs, "timeseries", None)
            if ts is not None and ts.bind_engine(self):
                self._ts = ts
                ts.track_counter("engine.events_dispatched", self._disp_counter)
                ts.probe("engine.pending", lambda: self._pending)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay runs after all events
        already scheduled for the current instant (FIFO within a timestamp).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        seq = self._seq = self._seq + 1
        entry = [self.now + delay, seq, _PENDING, callback]
        self._pending += 1
        heapq.heappush(self._queue, entry)
        return EventHandle(entry, self)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time``.

        Times in the past are clamped to the current instant.  The event is
        stored at exactly ``time`` (no ``now + (time - now)`` float round
        trip), so callers relying on strict per-timestamp ordering — the
        network's per-channel FIFO tie-break — keep their invariants even
        at large virtual times where one ulp matters.
        """
        time = float(time)
        now = self.now
        if time < now:
            time = now
        seq = self._seq = self._seq + 1
        entry = [time, seq, _PENDING, callback]
        self._pending += 1
        heapq.heappush(self._queue, entry)
        return EventHandle(entry, self)

    def call_soon(self, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at the current instant (after queued peers)."""
        return self.schedule(0.0, callback)

    def schedule_run_at(
        self, time: float, callback: Callable[[list], None], items: list
    ) -> RunHandle:
        """Schedule a *run*: a batch of logical events sharing one timestamp.

        The whole batch occupies a single queue entry; at ``time`` the
        engine calls ``callback(items)`` once and the callback dispatches
        each member (skipping ``None`` holes left by cancelled members).
        Event accounting treats the run as ``len(items)`` events.  While
        the returned handle is :attr:`RunHandle.open`, more members can be
        appended in O(1) without extra heap traffic — the coalescing hook
        the network uses for same-instant delivery bursts.
        """
        time = float(time)
        now = self.now
        if time < now:
            time = now
        seq = self._seq = self._seq + 1
        entry = [time, seq, _PENDING, callback, items, len(items)]
        self._pending += len(items)
        heapq.heappush(self._queue, entry)
        return RunHandle(entry, self)

    def schedule_run(
        self, delay: float, callback: Callable[[list], None], items: list
    ) -> RunHandle:
        """Relative-delay form of :meth:`schedule_run_at`."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_run_at(self.now + delay, callback, items)

    # ------------------------------------------------------------------
    # Cancelled-entry compaction
    # ------------------------------------------------------------------
    def _maybe_compact(self) -> None:
        """Rebuild the heap when cancelled garbage exceeds half the queue.

        :meth:`run`'s lazy skip only drops cancelled entries that reach the
        *head*; workloads that cancel heavily (network purges on failure)
        strand garbage in the middle of the heap, so without this bound the
        queue grows without limit while ``pending`` stays small.
        """
        if self._cancelled < _COMPACT_MIN or self._cancelled * 2 < len(self._queue):
            return
        queue = self._queue
        # in place: run() caches a reference to the queue list, so the
        # compacted heap must keep the same identity
        queue[:] = [e for e in queue if e[_STATE] == _PENDING]
        heapq.heapify(queue)
        self._cancelled = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of scheduled, non-cancelled events (O(1): maintained as a
        live counter on schedule/cancel/dispatch rather than scanned)."""
        return self._pending

    @property
    def events_dispatched(self) -> int:
        return self._events_dispatched

    @property
    def queue_garbage(self) -> int:
        """Cancelled entries still physically present in the heap."""
        return self._cancelled

    @property
    def compactions(self) -> int:
        """Number of lazy compaction passes performed so far."""
        return self._compactions

    def step(self) -> bool:
        """Dispatch the next event (for a run entry: the whole run).
        Returns ``False`` when the queue is empty."""
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            if entry[_STATE] == _CANCELLED:
                self._cancelled -= 1
                continue
            time = entry[_TIME]
            if time < self.now:
                raise SimulationError("event queue corrupted: time went backwards")
            ts = self._ts
            if ts is not None and time >= ts.next_time:
                ts.sample_through(time)
            self.now = time
            entry[_STATE] = _DISPATCHED
            live = entry[_LIVE] if len(entry) > _ITEMS else 1
            self._pending -= live
            self._events_dispatched += live
            if self.obs is not None:
                self._record_dispatch(entry, live)
            if self._san is not None and (self._events_dispatched & _AUDIT_MASK) < live:
                self._audit_pending()
            if len(entry) > _ITEMS:
                entry[_CALLBACK](entry[_ITEMS])
            else:
                entry[_CALLBACK]()
            return True
        return False

    def _audit_pending(self) -> None:
        """Sanitizer: recount live queue entries against the O(1) counter."""
        live = sum(
            (e[_LIVE] if len(e) > _ITEMS else 1)
            for e in self._queue
            if e[_STATE] == _PENDING
        )
        self._san.engine_pending_audit(live, self._pending)

    def _record_dispatch(self, entry: list, live: int = 1) -> None:
        """Attribute the dispatch to the callback's qualified name.

        The label cell is cached keyed by the callback's *code object*:
        bound methods of the same method and every lambda from one call
        site share a code object, so the cache stays as small as the
        label cardinality while the per-event key is two C-slot loads
        (``__func__``/``__code__``) — no qualname string fetch.  A run
        entry attributes all ``live`` members in one cell update.
        """
        cb = entry[_CALLBACK]
        try:
            key: Any = cb.__code__
        except AttributeError:
            key = type(cb)
        cell = self._disp_cells.get(key)
        if cell is None:
            cell = self._resolve_disp_cell(cb, key)
        cell.n += live
        cd = self._depth_cd - live
        if cd > 0:
            self._depth_cd = cd
        else:
            self._depth_cd = self._depth_interval
            depth = len(self._queue)
            self._depth_hist.observe(depth)
            gauge = self._depth_gauge
            gauge.value = depth
            if depth > gauge.high_water:
                gauge.high_water = depth

    def _resolve_disp_cell(self, cb: Any, key: Any) -> Any:
        """Slow path: first dispatch of a callback site — derive the label
        and bind its counter cell into the code-object cache."""
        func = getattr(cb, "__func__", cb)
        label = getattr(func, "__qualname__", None) or type(cb).__name__
        cell = self._disp_counter.slot((label,))
        self._disp_cells[key] = cell
        return cell

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        ``until`` is an absolute virtual time; events scheduled exactly at
        ``until`` are executed.  When ``until`` is given, the clock lands on
        ``until`` whether the horizon cut the queue short *or* the queue
        drained early — ``engine.now`` never lags the requested horizon.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        dispatched = 0
        queue = self._queue
        heappop = heapq.heappop
        unbounded = until is None and max_events is None
        # hoist the instrumentation handles: the inlined recording below
        # touches only locals and bare cells, so the fully-enabled loop
        # stays free of per-event registry lookups
        obs_on = self.obs is not None
        if obs_on:
            disp_get = self._disp_cells.get
            depth_interval = self._depth_interval
            depth_hist_observe = self._depth_hist.observe
            depth_gauge = self._depth_gauge
            depth_cd = self._depth_cd
        san = self._san
        # ts_next is +inf when no recorder is armed, so the recorder-off
        # (and null-registry) path pays one float compare per event
        ts = self._ts
        ts_next = ts.next_time if ts is not None else float("inf")
        events_dispatched = self._events_dispatched
        try:
            while True:
                # drop cancelled garbage that surfaced at the head, then
                # peek the head entry once — the same entry is popped below,
                # so each live event costs exactly one sift-down
                while queue and queue[0][_STATE] == _CANCELLED:
                    heappop(queue)
                    self._cancelled -= 1
                if not queue:
                    # queue drained before the horizon: still advance the
                    # clock so back-to-back run(until=...) calls see time
                    # move monotonically to each horizon
                    if until is not None and until > self.now:
                        self.now = until
                    if self.now >= ts_next:
                        # grid boundaries up to the final clock value are
                        # still due (the state can no longer change)
                        ts_next = ts.sample_through(self.now)
                    break
                time = queue[0][_TIME]
                if not unbounded:
                    if until is not None and time > until:
                        if until >= ts_next:
                            ts_next = ts.sample_through(until)
                        self.now = until
                        break
                    if max_events is not None and dispatched >= max_events:
                        break
                # time-series boundary hook: sample every grid point the
                # head event has reached *before* dispatching it, so each
                # sample reads the state as of the boundary instant
                if time >= ts_next:
                    ts_next = ts.sample_through(time)
                entry = heappop(queue)
                if time < self.now:
                    raise SimulationError(
                        "event queue corrupted: time went backwards"
                    )
                self.now = time
                entry[_STATE] = _DISPATCHED
                callback = entry[_CALLBACK]
                # run entries ([time, seq, state, callback, items, live])
                # dispatch a whole same-instant batch from one heap pop
                batch = len(entry) > _ITEMS
                live = entry[_LIVE] if batch else 1
                self._pending -= live
                events_dispatched += live
                dispatched += live
                if obs_on:
                    # inlined _record_dispatch (keep the two in sync)
                    try:
                        key = callback.__code__
                    except AttributeError:
                        key = type(callback)
                    cell = disp_get(key)
                    if cell is None:
                        cell = self._resolve_disp_cell(callback, key)
                    cell.n += live
                    depth_cd -= live
                    if depth_cd <= 0:
                        depth_cd = depth_interval
                        depth = len(queue)
                        depth_hist_observe(depth)
                        depth_gauge.value = depth
                        if depth > depth_gauge.high_water:
                            depth_gauge.high_water = depth
                if san is not None and (events_dispatched & _AUDIT_MASK) < live:
                    self._events_dispatched = events_dispatched
                    self._audit_pending()
                if batch:
                    callback(entry[_ITEMS])
                else:
                    callback()
        finally:
            self._running = False
            self._events_dispatched = events_dispatched
            if obs_on:
                self._depth_cd = depth_cd

    def _peek_time(self) -> float:
        while self._queue and self._queue[0][_STATE] == _CANCELLED:
            heapq.heappop(self._queue)
            self._cancelled -= 1
        if not self._queue:
            return float("inf")
        return self._queue[0][_TIME]
