"""Deterministic discrete-event simulation engine.

The engine is a classic calendar queue: events are ``(time, seq, callback)``
triples ordered by time with a monotonically increasing sequence number as a
tie-breaker, which makes every run bit-reproducible — a property the
correctness tests rely on to compare failure-free and post-failure
executions message by message.

The engine knows nothing about MPI, processes or fault tolerance; it only
dispatches callbacks at virtual times.

Observability: pass a :class:`repro.obs.MetricsRegistry` to count events
dispatched per callback class and sample queue depth.  With the default
null registry the engine caches ``None`` and the dispatch loop pays a
single identity comparison per event.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import SimulationError
from ..obs.registry import DEPTH_BUCKETS

__all__ = ["Engine", "EventHandle"]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    dispatched: bool = field(default=False, compare=False)


class EventHandle:
    """Opaque handle returned by :meth:`Engine.schedule`; allows cancellation."""

    __slots__ = ("_event", "_engine")

    def __init__(self, event: _Event, engine: "Engine"):
        self._event = event
        self._engine = engine

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Mark the event so the engine skips it; cancelling twice (or after
        the event already ran) is a no-op."""
        event = self._event
        if event.cancelled or event.dispatched:
            return
        event.cancelled = True
        self._engine._pending -= 1


class Engine:
    """Event loop with a virtual clock.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock, in seconds.
    obs:
        Optional metrics registry; ``None`` (or a disabled registry)
        leaves the dispatch loop uninstrumented.
    """

    def __init__(self, start_time: float = 0.0, obs: Any = None):
        self.now: float = float(start_time)
        self._queue: list[_Event] = []
        self._seq = 0
        self._pending = 0
        self._events_dispatched = 0
        self._running = False
        self.obs = obs if (obs is not None and obs.enabled) else None
        if self.obs is not None:
            self.obs.bind_clock(lambda: self.now)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay runs after all events
        already scheduled for the current instant (FIFO within a timestamp).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self._push(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time``.

        Times in the past are clamped to the current instant.  The event is
        stored at exactly ``time`` (no ``now + (time - now)`` float round
        trip), so callers relying on strict per-timestamp ordering — the
        network's per-channel FIFO tie-break — keep their invariants even
        at large virtual times where one ulp matters.
        """
        return self._push(max(self.now, float(time)), callback)

    def call_soon(self, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at the current instant (after queued peers)."""
        return self.schedule(0.0, callback)

    def _push(self, time: float, callback: Callable[[], None]) -> EventHandle:
        event = _Event(time, self._seq, callback)
        self._seq += 1
        self._pending += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event, self)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of scheduled, non-cancelled events (O(1): maintained as a
        live counter on schedule/cancel/dispatch rather than scanned)."""
        return self._pending

    @property
    def events_dispatched(self) -> int:
        return self._events_dispatched

    def step(self) -> bool:
        """Dispatch the next event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self.now:
                raise SimulationError("event queue corrupted: time went backwards")
            self.now = event.time
            event.dispatched = True
            self._pending -= 1
            self._events_dispatched += 1
            if self.obs is not None:
                self._record_dispatch(event)
            event.callback()
            return True
        return False

    def _record_dispatch(self, event: _Event) -> None:
        """Attribute the dispatch to the callback's class (cold path)."""
        cb = event.callback
        func = getattr(cb, "__func__", cb)
        label = getattr(func, "__qualname__", None) or type(cb).__name__
        obs = self.obs
        obs.counter("engine.events_dispatched", ("callback",)).inc(labels=(label,))
        depth = len(self._queue)
        obs.histogram("engine.queue_depth", DEPTH_BUCKETS).observe(depth)
        obs.gauge("engine.queue_depth.current").set(depth)

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        ``until`` is an absolute virtual time; events scheduled exactly at
        ``until`` are executed.  When ``until`` is given, the clock lands on
        ``until`` whether the horizon cut the queue short *or* the queue
        drained early — ``engine.now`` never lags the requested horizon.
        """
        if self._running:
            raise SimulationError("engine.run() is not reentrant")
        self._running = True
        dispatched = 0
        try:
            while True:
                peek = self._peek_time()
                if peek == float("inf"):
                    # queue drained before the horizon: still advance the
                    # clock so back-to-back run(until=...) calls see time
                    # move monotonically to each horizon
                    if until is not None and until > self.now:
                        self.now = until
                    break
                if until is not None and peek > until:
                    self.now = until
                    break
                if max_events is not None and dispatched >= max_events:
                    break
                if self.step():
                    dispatched += 1
        finally:
            self._running = False

    def _peek_time(self) -> float:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return float("inf")
        return self._queue[0].time
