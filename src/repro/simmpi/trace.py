"""Execution tracing: send sequences, communication matrices, event logs.

The tracer is the measurement substrate for the paper's evaluation:

* per-rank *send sequences* let the property tests check the paper's
  validity criterion (Definition 1: every process emits its valid sequence
  of messages even across failures);
* the *communication matrix* (messages / bytes per ordered rank pair)
  feeds the clustering of Section V-E-3 and reproduces Fig. 8;
* raw event records support debugging and the offline rollback analysis.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .message import Envelope

__all__ = ["TraceEvent", "SendRecord", "Tracer", "send_witness_chains"]


@dataclass(frozen=True)
class TraceEvent:
    """One traced event (kept deliberately small — traces get long)."""

    kind: str  # "send" | "deliver" | "checkpoint" | "failure" | "restore"
    time: float
    rank: int
    detail: tuple = ()


@dataclass(frozen=True)
class SendRecord:
    """Identity of one application send, used for sequence comparison.

    Two executions are *send-equivalent* when each rank's list of
    ``SendRecord`` matches element-wise.  ``digest`` summarizes the payload
    so content changes are caught without retaining the payload itself.
    """

    dst: int
    tag: int
    size: int
    digest: int
    #: protocol send date (send-sequence number); None when no FT protocol
    #: is attached.  Lets analyses collapse recovery re-sends of the same
    #: logical message (same date ⇒ same message).
    date: int | None = None

    @staticmethod
    def of(env: Envelope) -> "SendRecord":
        return SendRecord(
            env.dst, env.tag, env.size, payload_digest(env.payload),
            env.meta.get("date"),
        )

    def same_message(self, other: "SendRecord") -> bool:
        return (
            self.dst == other.dst
            and self.tag == other.tag
            and self.size == other.size
            and self.digest == other.digest
        )


def payload_digest(payload: Any) -> int:
    """Order-stable 64-bit digest of a payload (numpy-aware)."""
    if isinstance(payload, np.ndarray):
        # tobytes() is deterministic for a given dtype/shape/content
        return hash((payload.shape, payload.dtype.str, payload.tobytes())) & (2**63 - 1)
    if isinstance(payload, (list, tuple)):
        return hash(tuple(payload_digest(x) for x in payload)) & (2**63 - 1)
    if isinstance(payload, dict):
        return (
            hash(tuple(sorted((k, payload_digest(v)) for k, v in payload.items())))
            & (2**63 - 1)
        )
    if isinstance(payload, (bytes, bytearray)):
        return hash(bytes(payload)) & (2**63 - 1)
    try:
        return hash(payload) & (2**63 - 1)
    except TypeError:
        return hash(repr(payload)) & (2**63 - 1)


def send_witness_chains(tracer: "Tracer") -> list[str]:
    """Per-rank witness hash chain over the *logical* send sequence.

    Each rank's chain folds ``(dst, date-or-index, tag, size, digest)``
    of every logical send through blake2b, so two executions produced
    identical send sequences iff their chains match element-wise.  This
    is the certificate the differential delivery-order verifier compares
    across adversarial schedules (``repro certify --dynamic``) and the
    chaos harness's send-witness oracle checks against the reference run.

    Chains are comparable **within one process only**: ``payload_digest``
    falls back to Python's salted ``hash()`` for str/bytes payloads, so
    digests — and therefore chains — differ across interpreter
    invocations.  Persist verdicts, not chains.
    """
    chains: list[str] = []
    for rank, seq in enumerate(tracer.logical_send_sequences()):
        h = hashlib.blake2b(digest_size=16)
        for i, rec in enumerate(seq):
            date = rec.date if rec.date is not None else i
            h.update(
                f"{rec.dst},{date},{rec.tag},{rec.size},{rec.digest};".encode()
            )
        chains.append(h.hexdigest())
    return chains


class Tracer:
    """Accumulates events during a simulated run."""

    def __init__(self, nprocs: int, record_events: bool = False):
        self.nprocs = nprocs
        self.record_events = record_events
        self.events: list[TraceEvent] = []
        #: rank -> ordered list of application SendRecords (includes re-sends
        #: suppressed later as duplicates — filtered by `send_sequences`)
        self._sends: list[list[SendRecord]] = [[] for _ in range(nprocs)]
        #: rank -> ordered list of (src, tag, size) deliveries to the app
        self._delivers: list[list[tuple[int, int, int]]] = [[] for _ in range(nprocs)]
        #: (src, dst) message counts / bytes — plain nested lists because a
        #: numpy scalar-index increment costs ~1us and this is paid per send
        #: (the :attr:`msg_count` / :attr:`msg_bytes` properties expose the
        #: familiar ndarray view)
        self._msg_count = [[0] * nprocs for _ in range(nprocs)]
        self._msg_bytes = [[0] * nprocs for _ in range(nprocs)]
        #: sends marked as duplicates re-emitted during recovery, per rank:
        #: indices into the send list (so sequences can be de-duplicated)
        self._dup_send_idx: list[set[int]] = [set() for _ in range(nprocs)]

    # ------------------------------------------------------------------
    def on_app_send(self, env: Envelope, time: float, is_replay_dup: bool = False) -> None:
        rank = env.src
        self._sends[rank].append(SendRecord.of(env))
        if is_replay_dup:
            self._dup_send_idx[rank].add(len(self._sends[rank]) - 1)
        else:
            dst = env.dst
            self._msg_count[rank][dst] += 1
            self._msg_bytes[rank][dst] += env.size
        if self.record_events:
            self.events.append(
                TraceEvent("send", time, rank, (env.dst, env.tag, env.size, env.uid))
            )

    def mark_last_send_duplicate(self, rank: int) -> None:
        """Reclassify the most recent send of ``rank`` as a recovery re-send."""
        idx = len(self._sends[rank]) - 1
        if idx >= 0 and idx not in self._dup_send_idx[rank]:
            self._dup_send_idx[rank].add(idx)

    def on_app_deliver(self, env: Envelope, time: float) -> None:
        self._delivers[env.dst].append((env.src, env.tag, env.size))
        if self.record_events:
            self.events.append(
                TraceEvent("deliver", time, env.dst, (env.src, env.tag, env.size, env.uid))
            )

    def on_mark(self, kind: str, rank: int, time: float, detail: tuple = ()) -> None:
        if self.record_events:
            self.events.append(TraceEvent(kind, time, rank, detail))

    # ------------------------------------------------------------------
    def send_sequences(self, dedup: bool = True) -> list[list[SendRecord]]:
        """Per-rank application send sequences.

        With ``dedup`` (the default) sends that were duplicate re-emissions
        during recovery are collapsed, yielding the *logical* send sequence
        that the paper's validity criterion talks about.
        """
        if not dedup:
            return [list(s) for s in self._sends]
        out: list[list[SendRecord]] = []
        for rank in range(self.nprocs):
            dups = self._dup_send_idx[rank]
            out.append([r for i, r in enumerate(self._sends[rank]) if i not in dups])
        return out

    def logical_send_sequences(self) -> list[list[SendRecord]]:
        """Per-rank send sequences with recovery re-sends collapsed by date.

        The protocol stamps every application message with its sender's
        send-sequence number ("date"); a re-execution or log replay of a
        message reuses the original date, so keeping the first occurrence
        per date yields the logical sequence of the paper's validity
        criterion.  Re-sends with contents differing from the original are
        a send-determinism violation and raise.
        """
        from ..errors import SendDeterminismError

        out: list[list[SendRecord]] = []
        for rank in range(self.nprocs):
            seen: dict[int, SendRecord] = {}
            seq: list[SendRecord] = []
            for rec in self._sends[rank]:
                if rec.date is None:
                    seq.append(rec)
                    continue
                first = seen.get(rec.date)
                if first is None:
                    seen[rec.date] = rec
                    seq.append(rec)
                elif not first.same_message(rec):
                    raise SendDeterminismError(
                        f"rank {rank} re-sent date {rec.date} with different "
                        f"content: {first} vs {rec}"
                    )
            out.append(seq)
        return out

    def deliver_sequences(self) -> list[list[tuple[int, int, int]]]:
        return [list(d) for d in self._delivers]

    def total_app_messages(self) -> int:
        return sum(map(sum, self._msg_count))

    @property
    def msg_count(self) -> np.ndarray:
        """(src, dst) application message counts (excludes replay dups)."""
        return np.array(self._msg_count, dtype=np.int64)

    @property
    def msg_bytes(self) -> np.ndarray:
        """(src, dst) application bytes sent (excludes replay dups)."""
        return np.array(self._msg_bytes, dtype=np.int64)

    def comm_matrix(self, weight: str = "count") -> np.ndarray:
        """Communication density matrix (Fig. 8 input)."""
        if weight == "count":
            return self.msg_count
        if weight == "bytes":
            return self.msg_bytes
        raise ValueError(f"unknown weight {weight!r}")
