"""Reliable FIFO network with a latency/bandwidth timing model.

The paper's system model (Section II-A) assumes *reliable FIFO channels*
between every ordered pair of processes, *no bound* on transmission delay
and *no order* between messages on different channels.  This module
implements exactly that:

* per-``(src, dst)`` channels deliver in send order (FIFO is enforced even
  when the timing model would reorder — a later large message never
  overtakes an earlier small one on the same channel);
* messages on different channels are delivered whenever their individually
  computed delays expire, so cross-channel reordering happens naturally;
* an optional deterministic jitter (seeded) perturbs delays so tests can
  explore many interleavings reproducibly.

Fail-stop support: the :class:`Network` drops in-flight envelopes addressed
to a rank that dies before they arrive (messages are lost with the process,
as on a real cluster), while envelopes already emitted *by* the dying rank
stay on the wire.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import SimulationError
from ..obs.registry import DEPTH_BUCKETS, SIZE_BUCKETS
from .engine import Engine, RunHandle, RunMemberHandle
from .message import Envelope

__all__ = ["TimingModel", "Network"]


@dataclass(frozen=True)
class TimingModel:
    """First-order LogGP-style cost model.

    ``latency`` is the zero-byte one-way latency (seconds); ``bandwidth``
    the asymptotic link bandwidth (bytes/second); ``per_byte_overhead`` an
    additional per-byte CPU cost charged to the *sender* (used by the
    protocol performance model to account for logging copies);
    ``send_overhead`` the fixed CPU cost of posting a send.

    The defaults approximate the Myri-10G fabric of the paper's testbed
    (~2.2 us short-message latency, ~9.5 Gb/s peak — Fig. 6).
    """

    latency: float = 2.2e-6
    bandwidth: float = 1.19e9  # bytes/s  (~9.5 Gb/s)
    send_overhead: float = 0.3e-6
    per_byte_overhead: float = 0.0
    jitter: float = 0.0  # relative, in [0, 1); 0 disables

    def transit_time(self, size: int, rng: random.Random | None = None) -> float:
        """One-way network time for ``size`` bytes (excludes sender CPU)."""
        base = self.latency + size / self.bandwidth
        if self.jitter and rng is not None:
            base *= 1.0 + self.jitter * rng.random()
        return base

    def sender_cpu_time(self, size: int) -> float:
        """CPU time the sender spends to emit ``size`` bytes."""
        return self.send_overhead + size * self.per_byte_overhead


class Network:
    """Delivers envelopes between ranks with FIFO-per-channel semantics.

    Parameters
    ----------
    engine:
        The event engine used to schedule deliveries.
    timing:
        Cost model; a fast "null" model (zero latency) is handy for pure
        protocol tests, while benchmarks use calibrated models.
    seed:
        Seed for the deterministic jitter stream.
    """

    def __init__(self, engine: Engine, timing: TimingModel | None = None, seed: int = 0,
                 obs: Any = None):
        self.engine = engine
        self.timing = timing or TimingModel()
        # the model is a frozen dataclass, so its parameters are loop
        # invariants of transmit(); cache them as locals-of-self to keep
        # the per-message cost to plain arithmetic
        self._latency = self.timing.latency
        self._bandwidth = self.timing.bandwidth
        self._send_overhead = self.timing.send_overhead
        self._per_byte = self.timing.per_byte_overhead
        self._jitter = self.timing.jitter
        self._rng = random.Random(seed)
        # rank -> callable(Envelope)
        self._receivers: dict[int, Callable[[Envelope], None]] = {}
        # (src, dst) -> virtual time the last envelope on this channel arrives
        self._last_arrival: dict[tuple[int, int], float] = {}
        # in-flight events per destination, keyed by envelope uid so a
        # delivery removes its own entry in O(1) (a per-delivery list
        # rebuild made draining n in-flight messages O(n^2))
        self._in_flight: dict[
            int, dict[int, tuple[RunMemberHandle, Envelope]]
        ] = {}
        # the delivery run still accepting members: transmits that land at
        # the same arrival instant with no other event scheduled in between
        # (RunHandle.open) join it instead of paying their own heap entry —
        # control broadcasts and isend fan-outs become one pop at scale
        self._open_burst: RunHandle | None = None
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        self.obs = obs if (obs is not None and obs.enabled) else None
        if self.obs is not None:
            # per-transmit/deliver instruments, slot-resolved once; channel
            # cardinality is rank-pair count, so each (src, dst) series is
            # resolved to its CounterCell pair on first use and cached
            obs = self.obs
            self._msg_counter = obs.counter(
                "network.channel.messages", ("src", "dst")
            )
            self._bytes_counter = obs.counter(
                "network.channel.bytes", ("src", "dst")
            )
            self._chan_cells: dict[tuple[int, int], tuple[Any, Any]] = {}
            # histograms sample 1-in-hist_sample with countdowns inlined in
            # the transmit/deliver hot paths (size and depth share the
            # transmit tick, exactly as their individual samplers would)
            self._size_hist = obs.histogram("network.message_size", SIZE_BUCKETS)
            self._in_flight_gauge = obs.gauge("network.in_flight")
            self._depth_hist = obs.histogram(
                "network.in_flight_depth", DEPTH_BUCKETS
            )
            self._delivered_cell = obs.counter_slot("network.messages_delivered")
            self._transit_hist = obs.histogram("network.transit_time_s")
            self._hist_interval = obs.hist_sample
            self._tx_cd = 1
            self._rx_cd = 1
            # virtual-time series probes (sampled at grid boundaries only,
            # so plain-attribute readers cost nothing per event); gated on
            # the recorder being bound to *this* world's engine
            ts = getattr(obs, "timeseries", None)
            if ts is not None and ts.engine is engine:
                ts.probe("network.in_flight", self.in_flight_count)
                ts.probe("network.messages_sent",
                         lambda: self.messages_sent, kind="counter")
                ts.probe("network.messages_delivered",
                         lambda: self.messages_delivered, kind="counter")
                ts.probe("network.bytes_sent",
                         lambda: self.bytes_sent, kind="counter")

    # ------------------------------------------------------------------
    def attach(self, rank: int, receiver: Callable[[Envelope], None]) -> None:
        """Register the delivery callback for ``rank`` (its inbound NIC)."""
        self._receivers[rank] = receiver

    def transmit(self, env: Envelope) -> float:
        """Put ``env`` on the wire; returns the sender-side CPU time consumed.

        Delivery is scheduled such that the channel ``(src, dst)`` stays
        FIFO.  The returned CPU time lets the caller advance the sending
        process's virtual clock (the engine does not do it implicitly).
        """
        if env.dst not in self._receivers:
            raise SimulationError(f"transmit to unknown rank {env.dst}: {env.describe()}")
        engine = self.engine
        size = env.size
        env.send_time = engine.now
        # inlined TimingModel.transit_time / sender_cpu_time with the same
        # expressions (bit-identical floats; reproducibility depends on it)
        transit = self._latency + size / self._bandwidth
        if self._jitter:
            transit *= 1.0 + self._jitter * self._rng.random()
        # sender CPU (post overhead + logging copies) serialises before the
        # wire: the NIC only sees the buffer once it is prepared
        cpu = self._send_overhead + size * self._per_byte
        arrival = engine.now + cpu + transit
        chan = (env.src, env.dst)
        prev = self._last_arrival.get(chan, -1.0)
        if arrival <= prev:
            # Enforce FIFO: never overtake the previous message on the
            # channel.  A fixed epsilon (`prev + 1e-12`) is absorbed by
            # float rounding once virtual time grows past ~1e4 s, which
            # would silently collapse a channel's arrivals onto one
            # instant; nextafter always yields the next representable
            # (strictly later) time, and schedule_at stores it exactly.
            arrival = math.nextafter(prev, math.inf)
        self._last_arrival[chan] = arrival
        # coalesce into the open delivery run when this transmit lands at
        # the exact same instant and nothing else was scheduled since the
        # run entry was created: the appended member dispatches precisely
        # where its own singleton entry would have (see RunHandle.open),
        # so burst and non-burst executions are event-for-event identical
        burst = self._open_burst
        if burst is not None and burst.time == arrival and burst.open:
            member = burst.append(env)
        else:
            burst = engine.schedule_run_at(arrival, self._deliver_burst, [env])
            self._open_burst = burst
            member = burst.member(0)
        self._in_flight.setdefault(env.dst, {})[env.uid] = (member, env)
        self.messages_sent += 1
        self.bytes_sent += env.size
        if self.obs is not None:
            # inlined per-transmit recording: bare cells and plain
            # arithmetic only, no registry lookups and no method call.
            # The in-flight gauge rides the sampled ticks — its value is
            # derived exactly from the legacy counters (sent - delivered -
            # dropped), so skipping events costs no accuracy at the tick
            cells = self._chan_cells.get(chan)
            if cells is None:
                cells = self._chan_cells[chan] = (
                    self._msg_counter.slot(chan), self._bytes_counter.slot(chan)
                )
            cells[0].n += 1
            cells[1].n += size
            cd = self._tx_cd - 1
            if cd:
                self._tx_cd = cd
            else:
                self._tx_cd = self._hist_interval
                depth = (self.messages_sent - self.messages_delivered
                         - self.messages_dropped)
                gauge = self._in_flight_gauge
                gauge.value = depth
                if depth > gauge.high_water:
                    gauge.high_water = depth
                self._size_hist.observe(size)
                self._depth_hist.observe(depth)
        return cpu

    def _deliver_burst(self, items: list) -> None:
        """Deliver every member of a coalesced run (usually length 1).

        Holes (``None``) are members cancelled before dispatch.  A member
        can also be purged *mid-run*: delivering an earlier member may kill
        a rank (chaos send-count failure taps), and the purge then removes
        later members of this very run from the in-flight map while the
        entry is already marked dispatched — so a member whose uid is no
        longer in flight is skipped exactly as its cancelled singleton
        would have been (the purge already counted it as dropped).
        """
        for env in items:
            if env is None:
                continue
            pending = self._in_flight.get(env.dst)
            if pending is None or pending.pop(env.uid, None) is None:
                continue
            self.messages_delivered += 1
            if self.obs is not None:
                self._delivered_cell.n += 1
                cd = self._rx_cd - 1
                if cd:
                    self._rx_cd = cd
                else:
                    self._rx_cd = self._hist_interval
                    self._in_flight_gauge.value = (
                        self.messages_sent - self.messages_delivered
                        - self.messages_dropped
                    )
                    self._transit_hist.observe(self.engine.now - env.send_time)
            self._receivers[env.dst](env)

    # ------------------------------------------------------------------
    # Fail-stop support
    # ------------------------------------------------------------------
    def purge_inbound(self, rank: int) -> int:
        """Drop all in-flight envelopes addressed to ``rank``.

        Called when ``rank`` fails: messages that had not yet arrived are
        lost with the process.  Returns the number of dropped envelopes.
        """
        dropped = 0
        for handle, _env in self._in_flight.pop(rank, {}).values():
            handle.cancel()
            dropped += 1
        self.messages_dropped += dropped
        if dropped and self.obs is not None:
            self.obs.counter("network.messages_dropped", ("dst",)).inc(
                dropped, labels=(rank,)
            )
            # the gauge is derived from the counters (see transmit); a purge
            # is rare enough to resynchronise it eagerly
            self.obs.gauge("network.in_flight").value = (
                self.messages_sent - self.messages_delivered
                - self.messages_dropped
            )
            self.obs.event("network.purge", rank=rank, dropped=dropped)
        return dropped

    def purge_all(self) -> int:
        """Drop every in-flight envelope (global restart support)."""
        dropped = 0
        for rank in list(self._in_flight):
            dropped += self.purge_inbound(rank)
        return dropped

    def in_flight_count(self, rank: int | None = None) -> int:
        """Number of in-flight envelopes (to ``rank``, or total)."""
        if rank is not None:
            return len(self._in_flight.get(rank, {}))
        return sum(len(v) for v in self._in_flight.values())
