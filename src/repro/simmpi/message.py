"""Wire-level message representation.

An :class:`Envelope` is what travels through the simulated network.  It
carries the application payload plus a ``meta`` mapping that fault-tolerance
protocols use for piggybacked metadata (dates, epochs, phases, sequence
numbers, ...).  The substrate itself never interprets ``meta``.

Tags
----
Application tags are non-negative integers.  Negative tags are reserved:

* ``-1000 - k`` — collective operation instance ``k`` (see
  :mod:`repro.simmpi.collectives`),
* tags below :data:`CONTROL_TAG_BASE` — protocol control messages
  (acknowledgements, rollback notifications, recovery-line distribution...).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CONTROL_TAG_BASE",
    "COLLECTIVE_TAG_BASE",
    "Envelope",
    "payload_nbytes",
]

#: wildcard source for receive operations
ANY_SOURCE = -1
#: wildcard tag for receive operations
ANY_TAG = -1

#: tags at or below this value are protocol control-plane messages
CONTROL_TAG_BASE = -1_000_000
#: base tag for collective-communication instances
COLLECTIVE_TAG_BASE = -1000

_uid_counter = itertools.count(1)


def payload_nbytes(payload: Any) -> int:
    """Best-effort size estimate of a payload, in bytes.

    Used when the sender does not give an explicit ``size``.  numpy arrays
    report their true buffer size; bytes-likes their length; everything else
    a small constant (the simulator only needs sizes for timing, and control
    payloads are small).
    """
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (int, float, bool)) or payload is None:
        return 8
    if isinstance(payload, str):
        return len(payload.encode())
    if isinstance(payload, (list, tuple)):
        return 16 + sum(payload_nbytes(x) for x in payload)
    if isinstance(payload, dict):
        return 16 + sum(payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items())
    return 64


@dataclass
class Envelope:
    """A message in flight.

    Attributes
    ----------
    src, dst:
        Sender and receiver ranks.
    tag:
        Matching tag (see module docstring for the reserved ranges).
    payload:
        The application data.  The substrate does not copy it; senders that
        mutate buffers after sending must copy themselves (the FT protocol
        layer copies when it needs to retain data for logging).
    size:
        Size in bytes used by the network timing model.
    meta:
        Piggybacked protocol metadata; opaque to the substrate.
    uid:
        Globally unique message id (diagnostics and tracing only — protocols
        must not use it for matching, real networks have no such oracle).
    send_time:
        Virtual time at which the envelope entered the network.
    src_incarnation:
        Incarnation number of the sender at send time (used by tracing and
        by the failure model to identify pre-failure traffic).
    """

    src: int
    dst: int
    tag: int
    payload: Any
    size: int = 0
    meta: dict[str, Any] = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_uid_counter))
    send_time: float = 0.0
    src_incarnation: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            self.size = payload_nbytes(self.payload)

    @property
    def is_control(self) -> bool:
        return self.tag <= CONTROL_TAG_BASE

    @property
    def is_collective(self) -> bool:
        return COLLECTIVE_TAG_BASE >= self.tag > CONTROL_TAG_BASE

    def describe(self) -> str:
        kind = "ctl" if self.is_control else ("coll" if self.is_collective else "app")
        return f"<{kind} msg #{self.uid} {self.src}->{self.dst} tag={self.tag} size={self.size}>"
