"""Wire-level message representation.

An :class:`Envelope` is what travels through the simulated network.  It
carries the application payload plus a ``meta`` mapping that fault-tolerance
protocols use for piggybacked metadata (dates, epochs, phases, sequence
numbers, ...).  The substrate itself never interprets ``meta``.

Tags
----
Application tags are non-negative integers.  Negative tags are reserved:

* ``-1000 - k`` — collective operation instance ``k`` (see
  :mod:`repro.simmpi.collectives`),
* tags below :data:`CONTROL_TAG_BASE` — protocol control messages
  (acknowledgements, rollback notifications, recovery-line distribution...).
"""

from __future__ import annotations

import copy as _copy
import itertools
from typing import Any

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CONTROL_TAG_BASE",
    "COLLECTIVE_TAG_BASE",
    "Envelope",
    "payload_nbytes",
    "is_immutable_payload",
    "retention_copy",
]

#: wildcard source for receive operations
ANY_SOURCE = -1
#: wildcard tag for receive operations
ANY_TAG = -1

#: tags at or below this value are protocol control-plane messages
CONTROL_TAG_BASE = -1_000_000
#: base tag for collective-communication instances
COLLECTIVE_TAG_BASE = -1000

_uid_counter = itertools.count(1)


def payload_nbytes(payload: Any) -> int:
    """Best-effort size estimate of a payload, in bytes.

    Used when the sender does not give an explicit ``size``.  numpy arrays
    report their true buffer size; bytes-likes their length; everything else
    a small constant (the simulator only needs sizes for timing, and control
    payloads are small).

    The exact-type fast paths return the same values as the generic chain
    below them (exact builtins cannot grow an ``nbytes`` attribute) — they
    exist because this runs once per envelope and the generic ``getattr``
    probe costs more than the whole sizing of a small control dict.
    """
    t = type(payload)
    if t is int or t is float or t is bool or payload is None:
        return 8
    if t is bytes or t is bytearray:
        return len(payload)
    if t is str:
        # ascii strings encode 1:1, sparing the bytes allocation
        return len(payload) if payload.isascii() else len(payload.encode())
    if t is tuple or t is list:
        n = 16
        for x in payload:
            tx = type(x)
            if tx is int or tx is float or tx is bool or x is None:
                n += 8
            else:
                n += payload_nbytes(x)
        return n
    if t is dict:
        # protocol control records are small str->scalar dicts; inlining
        # the scalar cases keeps sizing them to one call, not one per field
        n = 16
        for k, v in payload.items():
            tk = type(k)
            if tk is str and k.isascii():
                n += len(k)
            else:
                n += payload_nbytes(k)
            tv = type(v)
            if tv is int or tv is float or tv is bool or v is None:
                n += 8
            else:
                n += payload_nbytes(v)
        return n
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (int, float, bool)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode())
    if isinstance(payload, (list, tuple)):
        return 16 + sum(payload_nbytes(x) for x in payload)
    if isinstance(payload, dict):
        return 16 + sum(payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items())
    return 64


#: exact types whose instances can never be mutated — sharing them between
#: the wire, the sender-based log and checkpoints is always safe
_IMMUTABLE_TYPES = frozenset(
    (type(None), bool, int, float, complex, str, bytes, frozenset)
)


def is_immutable_payload(payload: Any) -> bool:
    """True when ``payload`` is a deeply immutable value.

    Tuples count when every element does (recursively).  Anything else —
    numpy arrays, lists, dicts, arbitrary objects — is assumed mutable.
    """
    if type(payload) in _IMMUTABLE_TYPES:
        return True
    if type(payload) is tuple:
        return all(is_immutable_payload(x) for x in payload)
    return False


def retention_copy(payload: Any) -> Any:
    """Copy ``payload`` for retention (sender-based log, checkpoint).

    The zero-copy rule: immutable payloads are shared, mutable ones are
    deep-copied at the moment they are *retained* — not at send time.  This
    is the only place the protocol stack pays a payload copy.
    """
    if is_immutable_payload(payload):
        return payload
    return _copy.deepcopy(payload)


class Envelope:
    """A message in flight.

    Attributes
    ----------
    src, dst:
        Sender and receiver ranks.
    tag:
        Matching tag (see module docstring for the reserved ranges).
    payload:
        The application data.  The substrate does not copy it; senders that
        mutate buffers after sending must copy themselves (the FT protocol
        layer copies when it needs to retain data for logging).
    size:
        Size in bytes used by the network timing model.
    meta:
        Piggybacked protocol metadata; opaque to the substrate.
    uid:
        Globally unique message id (diagnostics and tracing only — protocols
        must not use it for matching, real networks have no such oracle).
    send_time:
        Virtual time at which the envelope entered the network.
    src_incarnation:
        Incarnation number of the sender at send time (used by tracing and
        by the failure model to identify pre-failure traffic).
    """

    __slots__ = (
        "src", "dst", "tag", "payload", "size", "meta", "uid",
        "send_time", "src_incarnation",
    )

    # hand-written __init__ (not a dataclass): one envelope is built per
    # message on the wire, and folding the size default into the
    # constructor avoids the generated-__init__ + __post_init__ call pair
    def __init__(
        self,
        src: int,
        dst: int,
        tag: int,
        payload: Any,
        size: int = 0,
        meta: dict[str, Any] | None = None,
        uid: int | None = None,
        send_time: float = 0.0,
        src_incarnation: int = 0,
    ):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.payload = payload
        self.size = size if size > 0 else payload_nbytes(payload)
        self.meta = {} if meta is None else meta
        self.uid = next(_uid_counter) if uid is None else uid
        self.send_time = send_time
        self.src_incarnation = src_incarnation

    def __repr__(self) -> str:
        return (
            f"Envelope(src={self.src}, dst={self.dst}, tag={self.tag}, "
            f"size={self.size}, uid={self.uid})"
        )

    @property
    def is_control(self) -> bool:
        return self.tag <= CONTROL_TAG_BASE

    @property
    def is_collective(self) -> bool:
        return COLLECTIVE_TAG_BASE >= self.tag > CONTROL_TAG_BASE

    def describe(self) -> str:
        kind = "ctl" if self.is_control else ("coll" if self.is_collective else "app")
        return f"<{kind} msg #{self.uid} {self.src}->{self.dst} tag={self.tag} size={self.size}>"
