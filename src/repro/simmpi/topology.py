"""Process-grid topology helpers used by the NAS-pattern kernels.

The NAS kernels decompose their domains over 1-D, 2-D or 3-D logical
process grids; these helpers map ranks to grid coordinates and enumerate
neighbors, mirroring ``MPI_Cart_create`` / ``MPI_Cart_shift`` behaviour
(row-major rank ordering, optional periodicity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["CartGrid", "balanced_dims", "hypercube_neighbors", "is_power_of_two"]


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def balanced_dims(nprocs: int, ndims: int) -> tuple[int, ...]:
    """Factor ``nprocs`` into ``ndims`` near-equal factors (MPI_Dims_create).

    Greedy: repeatedly assign the largest remaining prime factor to the
    smallest dimension.  Deterministic and close to cubic for the process
    counts used in the paper (64, 128, 256).
    """
    if nprocs < 1 or ndims < 1:
        raise ConfigError("nprocs and ndims must be positive")
    dims = [1] * ndims
    remaining = nprocs
    factors: list[int] = []
    f = 2
    while f * f <= remaining:
        while remaining % f == 0:
            factors.append(f)
            remaining //= f
        f += 1
    if remaining > 1:
        factors.append(remaining)
    for factor in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= factor
    return tuple(sorted(dims, reverse=True))


@dataclass(frozen=True)
class CartGrid:
    """A Cartesian process grid with row-major rank ordering."""

    dims: tuple[int, ...]
    periodic: bool = True

    def __post_init__(self) -> None:
        if not self.dims or any(d < 1 for d in self.dims):
            raise ConfigError(f"invalid grid dims {self.dims}")

    @property
    def size(self) -> int:
        return math.prod(self.dims)

    @property
    def ndims(self) -> int:
        return len(self.dims)

    def coords(self, rank: int) -> tuple[int, ...]:
        """Grid coordinates of ``rank`` (row-major, last dim fastest)."""
        if not 0 <= rank < self.size:
            raise ConfigError(f"rank {rank} outside grid of size {self.size}")
        out = []
        for d in reversed(self.dims):
            out.append(rank % d)
            rank //= d
        return tuple(reversed(out))

    def rank_of(self, coords: tuple[int, ...]) -> int:
        if len(coords) != self.ndims:
            raise ConfigError("coordinate arity mismatch")
        rank = 0
        for c, d in zip(coords, self.dims):
            if not 0 <= c < d:
                raise ConfigError(f"coordinate {coords} outside grid {self.dims}")
            rank = rank * d + c
        return rank

    def shift(self, rank: int, dim: int, disp: int) -> int | None:
        """Neighbor of ``rank`` displaced by ``disp`` along ``dim``.

        Returns ``None`` at a non-periodic boundary (``MPI_PROC_NULL``).
        """
        coords = list(self.coords(rank))
        c = coords[dim] + disp
        if self.periodic:
            c %= self.dims[dim]
        elif not 0 <= c < self.dims[dim]:
            return None
        coords[dim] = c
        return self.rank_of(tuple(coords))

    def neighbors(self, rank: int) -> list[int]:
        """All distinct ±1 neighbors across every dimension."""
        out: list[int] = []
        for dim in range(self.ndims):
            for disp in (-1, +1):
                n = self.shift(rank, dim, disp)
                if n is not None and n != rank and n not in out:
                    out.append(n)
        return out


def hypercube_neighbors(rank: int, size: int) -> list[int]:
    """Neighbors of ``rank`` in a binary hypercube of ``size`` nodes.

    Used by the FT and CG kernels' butterfly/recursive-halving exchanges;
    requires a power-of-two world.
    """
    if not is_power_of_two(size):
        raise ConfigError(f"hypercube requires power-of-two size, got {size}")
    return [rank ^ (1 << b) for b in range(size.bit_length() - 1)]
