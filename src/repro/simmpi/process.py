"""Simulated MPI processes.

A rank program is a Python *generator* that yields operation objects
(:class:`SendOp`, :class:`RecvOp`, ...).  The :class:`Proc` wrapper drives
the generator: it executes each yielded operation against the simulated
network, resumes the generator with the operation's result, and suspends it
while an operation blocks.

Fault-tolerance protocols attach to a :class:`Proc` through the
:class:`ProtocolHook` interface.  The substrate consults the hook at every
send, delivery and checkpoint, which is how the paper's protocol (and the
baselines) piggyback metadata, gate sends during recovery, suppress
duplicate deliveries and take checkpoints — without the substrate knowing
anything about epochs or phases.

Process image semantics
-----------------------
A checkpoint of a simulated process consists of the rank-program snapshot
*plus* the library-level unexpected-message queue (messages delivered to
the process but not yet matched by a receive are part of the process image,
exactly as they live in MPI library buffers under system-level
checkpointing).  Restoring re-creates the generator from the snapshot and
reinstates that queue.  Outstanding non-blocking receives across a
checkpoint are not supported (asserted), mirroring the usual
application-level checkpointing contract.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, TYPE_CHECKING

from ..errors import SimulationError
from .message import ANY_SOURCE, ANY_TAG, CONTROL_TAG_BASE, Envelope

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runtime import World

__all__ = [
    "SendOp",
    "RecvOp",
    "IsendOp",
    "IrecvOp",
    "WaitOp",
    "WaitallOp",
    "ComputeOp",
    "CheckpointOp",
    "NowOp",
    "Request",
    "Status",
    "ProtocolHook",
    "NullHook",
    "Proc",
]


# ----------------------------------------------------------------------
# Operations yielded by rank programs
# ----------------------------------------------------------------------
@dataclass
class SendOp:
    """Blocking buffered send: completes once the message is on the wire."""

    dst: int
    payload: Any
    tag: int = 0
    size: int = 0


@dataclass
class RecvOp:
    """Blocking receive; resumes the program with the matched payload."""

    src: int = ANY_SOURCE
    tag: int = ANY_TAG
    with_status: bool = False


@dataclass
class IsendOp:
    """Non-blocking send; resumes immediately with a :class:`Request`."""

    dst: int
    payload: Any
    tag: int = 0
    size: int = 0


@dataclass
class IrecvOp:
    """Non-blocking receive; resumes immediately with a :class:`Request`."""

    src: int = ANY_SOURCE
    tag: int = ANY_TAG


@dataclass
class WaitOp:
    """Block until ``request`` completes; resumes with its value."""

    request: "Request"


@dataclass
class WaitallOp:
    """Block until every request completes; resumes with the value list."""

    requests: list["Request"]


@dataclass
class ComputeOp:
    """Spend ``seconds`` of virtual CPU time."""

    seconds: float


@dataclass
class CheckpointOp:
    """Offer the protocol layer a checkpoint opportunity.

    With ``force`` the checkpoint is always taken; otherwise the protocol's
    schedule decides.  Resumes with ``True`` iff a checkpoint was taken.
    """

    force: bool = False


@dataclass
class NowOp:
    """Resumes immediately with the current virtual time."""


@dataclass(frozen=True)
class Status:
    """Reception metadata returned by ``RecvOp(with_status=True)``."""

    source: int
    tag: int
    size: int


class Request:
    """Completion handle for non-blocking operations."""

    __slots__ = ("done", "value", "_waiter", "kind")

    def __init__(self, kind: str):
        self.kind = kind
        self.done = False
        self.value: Any = None
        self._waiter: Callable[[], None] | None = None

    def _complete(self, value: Any) -> None:
        if self.done:
            raise SimulationError("request completed twice")
        self.done = True
        self.value = value
        if self._waiter is not None:
            waiter, self._waiter = self._waiter, None
            waiter()


# ----------------------------------------------------------------------
# Protocol hook interface
# ----------------------------------------------------------------------
class ProtocolHook:
    """Interception points for rollback-recovery protocols.

    The default implementations are pass-throughs; protocols override what
    they need.  One hook instance is attached per process.
    """

    def attach(self, proc: "Proc", world: "World") -> None:
        """Called once when the process is created."""
        self.proc = proc
        self.world = world

    # --- send path ----------------------------------------------------
    def send_allowed(self) -> bool:
        """May the application emit a message right now? (recovery gating)"""
        return True

    def on_app_send(self, env: Envelope) -> None:
        """Called just before an application envelope enters the network.

        Protocols stamp piggybacked metadata into ``env.meta`` here and
        retain payload copies for sender-based logging.
        """

    # --- receive path ---------------------------------------------------
    def on_message(self, env: Envelope) -> bool:
        """Called on every inbound application envelope.

        Return ``True`` to deliver to the application, ``False`` to
        suppress (duplicate messages during recovery).
        """
        return True

    def on_control(self, env: Envelope) -> None:
        """Called on inbound control-plane envelopes (never seen by apps)."""

    # --- checkpoint path ------------------------------------------------
    def checkpoint_due(self) -> bool:
        """Should an offered (non-forced) checkpoint opportunity be taken?"""
        return False

    def on_checkpoint(self) -> float | None:
        """A checkpoint is being taken; capture protocol state.

        May return a duration (seconds) the process spends writing the
        checkpoint to stable storage — the I/O cost model hook."""

    # --- lifecycle -------------------------------------------------------
    def on_program_done(self) -> None:
        """The rank program ran to completion."""


class NullHook(ProtocolHook):
    """No fault tolerance: every call is the default pass-through."""


@dataclass
class _PostedRecv:
    src: int
    tag: int
    complete: Callable[[Envelope], None]
    seq: int = 0


# ----------------------------------------------------------------------
# The process driver
# ----------------------------------------------------------------------
class Proc:
    """Drives one rank program inside the simulated world."""

    def __init__(self, rank: int, world: "World", hook: ProtocolHook | None = None):
        self.rank = rank
        self.world = world
        self.hook = hook or NullHook()
        self.hook.attach(self, world)
        self.incarnation = 0
        self.alive = True
        self.done = False
        self.paused = False
        self.blocked_on: str | None = None
        self._gen: Generator[Any, Any, Any] | None = None
        self._pending_resume: tuple[Any] | None = None  # boxed value
        self._posted: list[_PostedRecv] = []
        self._post_seq = 0
        self.unexpected: collections.deque[Envelope] = collections.deque()
        # FIFO of sends held back by protocol gating:
        # entries are ("block", SendOp, None) or ("isend", IsendOp, Request)
        self._gated_sends: collections.deque[tuple[str, Any, Request | None]] = (
            collections.deque()
        )
        self.app_messages_sent = 0
        self.app_messages_received = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, gen: Generator[Any, Any, Any]) -> None:
        """Install the rank program generator and schedule its first step."""
        self._gen = gen
        self.done = False
        self.world.engine.call_soon(lambda inc=self.incarnation: self._kick(inc))

    def _kick(self, incarnation: int) -> None:
        if incarnation != self.incarnation or not self.alive:
            return
        self._advance(None, first=True)

    def reincarnate(self) -> None:
        """Discard the current execution (fail-stop or rollback restore).

        Cancels posted receives and stale continuations by bumping the
        incarnation number; the caller then installs a fresh generator via
        :meth:`start` and (for restores) reinstates the checkpointed
        unexpected-queue via :attr:`unexpected`.
        """
        self.incarnation += 1
        self._gen = None
        self._posted.clear()
        self.unexpected.clear()
        self._pending_resume = None
        self._gated_sends.clear()
        self.blocked_on = None
        self.done = False

    def kill(self) -> None:
        """Fail-stop: the process disappears; in-flight inbound traffic drops."""
        self.alive = False
        self.world.network.purge_inbound(self.rank)
        self.reincarnate()

    # ------------------------------------------------------------------
    # Pause / resume (protocol send-gating and recovery blocking)
    # ------------------------------------------------------------------
    def pause(self) -> None:
        self.paused = True

    def unpause(self) -> None:
        """Resume execution; flushes a resume deferred while paused."""
        if not self.paused:
            return
        self.paused = False
        if self._pending_resume is not None:
            (value,) = self._pending_resume
            self._pending_resume = None
            inc = self.incarnation
            self.world.engine.call_soon(lambda: self._resume_if_current(inc, value))
        if self._gated_sends and self.hook.send_allowed():
            self.retry_gated_sends()

    def retry_gated_sends(self) -> None:
        """Drain sends that were held back by protocol gating, in order."""
        inc = self.incarnation
        self.world.engine.call_soon(lambda: self._drain_gated_if_current(inc))

    def _drain_gated_if_current(self, incarnation: int) -> None:
        if incarnation != self.incarnation or not self.alive:
            return
        while self._gated_sends and self.hook.send_allowed():
            kind, op, req = self._gated_sends.popleft()
            env = self._make_envelope(op.dst, op.payload, op.tag, op.size)
            self.hook.on_app_send(env)
            cpu = self.world.transmit_app(env)
            self.app_messages_sent += 1
            if kind == "block":
                self.blocked_on = None
                self._schedule_resume(cpu, None)
            else:
                assert req is not None
                req._complete(None)

    # ------------------------------------------------------------------
    # Generator driving
    # ------------------------------------------------------------------
    def _resume_if_current(self, incarnation: int, value: Any) -> None:
        if incarnation != self.incarnation or not self.alive:
            return
        self._advance(value)

    def _schedule_resume(self, delay: float, value: Any) -> None:
        inc = self.incarnation
        self.world.engine.schedule(delay, lambda: self._resume_if_current(inc, value))

    def _advance(self, value: Any, first: bool = False) -> None:
        """Run the generator until it blocks, pauses, or finishes."""
        if self._gen is None or self.done or not self.alive:
            return
        if self.paused:
            self._pending_resume = (value,)
            return
        gen = self._gen
        while True:
            if self.paused:
                self._pending_resume = (value,)
                return
            try:
                op = gen.send(None if first else value)
            except StopIteration:
                self.done = True
                self.blocked_on = None
                self.hook.on_program_done()
                self.world.on_rank_done(self.rank)
                return
            first = False
            self.blocked_on = None
            # Dispatch; handlers return (blocking, value)
            if isinstance(op, SendOp):
                self._handle_send(op)
                return  # _handle_send always resumes via the engine (or gates)
            elif isinstance(op, RecvOp):
                matched = self._try_match(op.src, op.tag)
                if matched is not None:
                    value = self._recv_value(matched, op.with_status)
                    continue
                self._post_recv(op.src, op.tag, self._make_recv_completer(op.with_status))
                self.blocked_on = f"recv(src={op.src}, tag={op.tag})"
                return
            elif isinstance(op, IsendOp):
                value = self._handle_isend(op)
                continue
            elif isinstance(op, IrecvOp):
                value = self._handle_irecv(op)
                continue
            elif isinstance(op, WaitOp):
                req = op.request
                if req.done:
                    value = req.value
                    continue
                self._wait_request(req)
                self.blocked_on = f"wait({req.kind})"
                return
            elif isinstance(op, WaitallOp):
                pending = [r for r in op.requests if not r.done]
                if not pending:
                    value = [r.value for r in op.requests]
                    continue
                self._wait_all(op.requests, pending)
                self.blocked_on = f"waitall({len(pending)} pending)"
                return
            elif isinstance(op, ComputeOp):
                if op.seconds < 0:
                    raise SimulationError("negative compute time")
                self._schedule_resume(op.seconds, None)
                self.blocked_on = f"compute({op.seconds:g}s)"
                return
            elif isinstance(op, CheckpointOp):
                taken, duration = self._handle_checkpoint(op)
                if duration > 0:
                    # checkpoint writes consume process time (I/O model)
                    self._schedule_resume(duration, taken)
                    self.blocked_on = f"checkpoint-write({duration:g}s)"
                    return
                value = taken
                continue
            elif isinstance(op, NowOp):
                value = self.world.engine.now
                continue
            else:
                raise SimulationError(f"rank {self.rank} yielded unknown op {op!r}")

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def _make_envelope(self, dst: int, payload: Any, tag: int, size: int) -> Envelope:
        if tag <= CONTROL_TAG_BASE:
            raise SimulationError(
                f"tag {tag} is reserved for the protocol control plane"
            )
        return Envelope(
            src=self.rank, dst=dst, tag=tag, payload=payload, size=size,
            src_incarnation=self.incarnation,
        )

    def _can_send_now(self) -> bool:
        return not self._gated_sends and self.hook.send_allowed()

    def _handle_send(self, op: SendOp) -> None:
        if not self._can_send_now():
            self._gated_sends.append(("block", op, None))
            self.blocked_on = "send-gate"
            return
        env = self._make_envelope(op.dst, op.payload, op.tag, op.size)
        self.hook.on_app_send(env)
        cpu = self.world.transmit_app(env)
        self.app_messages_sent += 1
        self._schedule_resume(cpu, None)

    def _handle_isend(self, op: IsendOp) -> Request:
        # Buffered non-blocking send: the request completes once the message
        # is accepted by the network; protocol gating may delay that.
        req = Request("isend")
        if not self._can_send_now():
            self._gated_sends.append(("isend", op, req))
            return req
        env = self._make_envelope(op.dst, op.payload, op.tag, op.size)
        self.hook.on_app_send(env)
        self.world.transmit_app(env)
        self.app_messages_sent += 1
        req._complete(None)
        return req

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _matches(self, env: Envelope, src: int, tag: int) -> bool:
        return (src == ANY_SOURCE or env.src == src) and (tag == ANY_TAG or env.tag == tag)

    def _try_match(self, src: int, tag: int) -> Envelope | None:
        for i, env in enumerate(self.unexpected):
            if self._matches(env, src, tag):
                del self.unexpected[i]
                return env
        return None

    def _recv_value(self, env: Envelope, with_status: bool) -> Any:
        self.app_messages_received += 1
        if with_status:
            return env.payload, Status(env.src, env.tag, env.size)
        return env.payload

    def _make_recv_completer(self, with_status: bool) -> Callable[[Envelope], None]:
        inc = self.incarnation

        def complete(env: Envelope) -> None:
            value = self._recv_value(env, with_status)
            if self.paused:
                self._pending_resume = (value,)
            else:
                self.world.engine.call_soon(lambda: self._resume_if_current(inc, value))

        return complete

    def _post_recv(self, src: int, tag: int, complete: Callable[[Envelope], None]) -> None:
        self._post_seq += 1
        self._posted.append(_PostedRecv(src, tag, complete, self._post_seq))

    def _handle_irecv(self, op: IrecvOp) -> Request:
        req = Request("irecv")
        matched = self._try_match(op.src, op.tag)
        if matched is not None:
            req._complete(matched.payload)
            self.app_messages_received += 1
            return req

        def complete(env: Envelope) -> None:
            self.app_messages_received += 1
            req._complete(env.payload)

        self._post_recv(op.src, op.tag, complete)
        return req

    def _wait_request(self, req: Request) -> None:
        inc = self.incarnation

        def waiter() -> None:
            if self.paused:
                self._pending_resume = (req.value,)
            else:
                self.world.engine.call_soon(lambda: self._resume_if_current(inc, req.value))

        req._waiter = waiter

    def _wait_all(self, all_reqs: list[Request], pending: list[Request]) -> None:
        inc = self.incarnation
        remaining = {id(r) for r in pending}

        def make_waiter(r: Request) -> Callable[[], None]:
            def waiter() -> None:
                remaining.discard(id(r))
                if not remaining:
                    values = [x.value for x in all_reqs]
                    if self.paused:
                        self._pending_resume = (values,)
                    else:
                        self.world.engine.call_soon(
                            lambda: self._resume_if_current(inc, values)
                        )

            return waiter

        for r in pending:
            r._waiter = make_waiter(r)

    # ------------------------------------------------------------------
    # Inbound delivery (called by World)
    # ------------------------------------------------------------------
    def deliver(self, env: Envelope) -> None:
        """Accept an inbound application envelope.

        The protocol hook sees it first and may suppress it (duplicates);
        otherwise it matches a posted receive or joins the unexpected queue.
        """
        if not self.alive:
            return
        if not self.hook.on_message(env):
            return
        for i, posted in enumerate(self._posted):
            if self._matches(env, posted.src, posted.tag):
                del self._posted[i]
                posted.complete(env)
                return
        self.unexpected.append(env)

    def deliver_to_app(self, env: Envelope) -> None:
        """Deliver an envelope to the application, bypassing the hook.

        Used by protocols that buffer and re-order deliveries themselves
        (e.g. pessimistic message logging replaying in determinant order).
        """
        if not self.alive:
            return
        for i, posted in enumerate(self._posted):
            if self._matches(env, posted.src, posted.tag):
                del self._posted[i]
                posted.complete(env)
                return
        self.unexpected.append(env)

    def deliver_control(self, env: Envelope) -> None:
        if not self.alive:
            return
        self.hook.on_control(env)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _handle_checkpoint(self, op: CheckpointOp) -> tuple[bool, float]:
        """Returns ``(taken, write_duration)``; the hook may charge I/O time."""
        if not (op.force or self.hook.checkpoint_due()):
            return False, 0.0
        if self._posted:
            raise SimulationError(
                f"rank {self.rank}: checkpoint with outstanding receives is unsupported"
            )
        duration = self.hook.on_checkpoint() or 0.0
        return True, float(duration)

    # ------------------------------------------------------------------
    def describe_block(self) -> str:
        if self.done:
            return "done"
        return self.blocked_on or "runnable"
