"""Collective operations built over point-to-point messages.

Every collective is a *generator function* used by rank programs through
``yield from``.  The algorithms are fixed and data-independent, so all
collectives are send-deterministic by construction (the same sequence of
point-to-point sends happens in every correct execution) — which is the
property the paper's protocol requires of the application layer.

Algorithms
----------
* ``bcast`` / ``reduce`` — binomial trees rooted at ``root`` (log2 P steps).
* ``allreduce`` / ``allgather`` — reduce/gather to rank 0 + broadcast; this
  trades a little latency for simplicity and strict determinism.
* ``barrier`` — zero-byte allreduce.
* ``alltoall`` — linear pairwise exchange ``(rank + i) mod P``; buffered
  sends make it deadlock-free.
* ``gather`` / ``scatter`` — linear to/from the root, in rank order.

Tags: each collective *instance* gets its own reserved tag (negative, below
:data:`~repro.simmpi.message.COLLECTIVE_TAG_BASE`) derived from a per-rank
sequence counter; SPMD programs call collectives in the same order on every
rank, so the counters agree globally and concurrent instances never match
each other's traffic.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, TYPE_CHECKING

from .message import COLLECTIVE_TAG_BASE, CONTROL_TAG_BASE

if TYPE_CHECKING:  # pragma: no cover
    from .api import MpiApi

__all__ = [
    "collective_tag",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
    "scan",
    "reduce_scatter",
    "sendrecv",
]

#: number of distinct collective tags before the counter wraps
_TAG_SPACE = -(CONTROL_TAG_BASE - COLLECTIVE_TAG_BASE) - 16


def collective_tag(seq: int) -> int:
    """Reserved tag for collective instance ``seq`` (wraps in the tag space)."""
    return COLLECTIVE_TAG_BASE - (seq % _TAG_SPACE)


def _resolve_op(op: Callable[[Any, Any], Any] | None) -> Callable[[Any, Any], Any]:
    return operator.add if op is None else op


# ----------------------------------------------------------------------
def bcast(api: "MpiApi", value: Any, root: int, tag: int):
    """Binomial-tree broadcast; every rank returns the root's value."""
    rank, size = api.rank, api.size
    if size == 1:
        return value
    vrank = (rank - root) % size
    mask = 1
    while mask < size:
        if vrank & mask:
            src = ((vrank - mask) + root) % size
            value = yield api.recv(src, tag)
            break
        mask <<= 1
    # after the loop, ``mask`` is the level this rank received at (or the
    # first power of two >= size for the root); children are vrank + m for
    # every power of two m below that level.
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            dst = (vrank + mask + root) % size
            yield api.send(dst, value, tag)
        mask >>= 1
    return value


def reduce(api: "MpiApi", value: Any, op, root: int, tag: int):
    """Binomial-tree reduction; the root returns the combined value."""
    rank, size = api.rank, api.size
    combine = _resolve_op(op)
    if size == 1:
        return value
    vrank = (rank - root) % size
    acc = value
    mask = 1
    while mask < size:
        if (vrank & mask) == 0:
            peer = vrank | mask
            if peer < size:
                other = yield api.recv((peer + root) % size, tag)
                acc = combine(acc, other)
        else:
            parent = vrank & ~mask
            yield api.send((parent + root) % size, acc, tag)
            return None
        mask <<= 1
    return acc if rank == root else None


def allreduce(api: "MpiApi", value: Any, op, tag: int):
    """Reduce to rank 0 then broadcast; every rank returns the result."""
    acc = yield from reduce(api, value, op, 0, tag)
    result = yield from bcast(api, acc, 0, tag - 1 if tag - 1 > CONTROL_TAG_BASE else tag)
    return result


def barrier(api: "MpiApi", tag: int):
    """Synchronize all ranks (zero-byte allreduce)."""
    yield from allreduce(api, 0, None, tag)
    return None


def gather(api: "MpiApi", value: Any, root: int, tag: int):
    """Linear gather; the root returns ``[value_0, ..., value_{P-1}]``."""
    rank, size = api.rank, api.size
    if rank == root:
        out: list[Any] = [None] * size
        out[root] = value
        for src in range(size):
            if src == root:
                continue
            out[src] = yield api.recv(src, tag)
        return out
    yield api.send(root, value, tag)
    return None


def scatter(api: "MpiApi", values: list[Any] | None, root: int, tag: int):
    """Linear scatter; every rank returns its slice of the root's list."""
    rank, size = api.rank, api.size
    if rank == root:
        if values is None or len(values) != size:
            raise ValueError("scatter root must supply one value per rank")
        for dst in range(size):
            if dst == root:
                continue
            yield api.send(dst, values[dst], tag)
        return values[root]
    result = yield api.recv(root, tag)
    return result


def allgather(api: "MpiApi", value: Any, tag: int):
    """Gather to rank 0 then broadcast the list; every rank returns it."""
    gathered = yield from gather(api, value, 0, tag)
    result = yield from bcast(
        api, gathered, 0, tag - 1 if tag - 1 > CONTROL_TAG_BASE else tag
    )
    return result


def scan(api: "MpiApi", value: Any, op, tag: int):
    """Inclusive prefix reduction: rank ``i`` returns ``v_0 op ... op v_i``.

    Linear pipeline (rank ``i`` receives the prefix from ``i - 1``,
    combines, forwards) — latency O(P) but strictly deterministic and it
    preserves non-commutative operator order, unlike tree schedules.
    """
    rank, size = api.rank, api.size
    combine = _resolve_op(op)
    acc = value
    if rank > 0:
        prefix = yield api.recv(rank - 1, tag)
        acc = combine(prefix, value)
    if rank + 1 < size:
        yield api.send(rank + 1, acc, tag)
    return acc


def reduce_scatter(api: "MpiApi", values: list[Any], op, tag: int):
    """Combine ``values`` element-wise across ranks; rank ``i`` returns the
    combined element ``i`` (reduce to rank 0 + scatter)."""
    rank, size = api.rank, api.size
    if len(values) != size:
        raise ValueError("reduce_scatter needs one value per rank")
    combine = _resolve_op(op)

    def merge(a: list[Any], b: list[Any]) -> list[Any]:
        return [combine(x, y) for x, y in zip(a, b)]

    combined = yield from reduce(api, list(values), merge, 0, tag)
    result = yield from scatter(
        api, combined, 0, tag - 1 if tag - 1 > CONTROL_TAG_BASE else tag
    )
    return result


def sendrecv(api: "MpiApi", dst: int, payload: Any, src: int, tag: int,
             size: int = 0):
    """Combined send+receive (``MPI_Sendrecv``): deadlock-free under the
    substrate's buffered sends; returns the received payload."""
    yield api.send(dst, payload, tag, size)
    received = yield api.recv(src, tag)
    return received


def alltoall(api: "MpiApi", values: list[Any], tag: int):
    """Pairwise exchange; rank ``i`` returns ``[v_0[i], ..., v_{P-1}[i]]``.

    Round ``i`` sends to ``(rank + i) mod P`` and receives from
    ``(rank - i) mod P``; buffered sends keep the rounds deadlock-free.
    """
    rank, size = api.rank, api.size
    if len(values) != size:
        raise ValueError("alltoall needs one value per rank")
    out: list[Any] = [None] * size
    out[rank] = values[rank]
    for i in range(1, size):
        dst = (rank + i) % size
        src = (rank - i) % size
        yield api.send(dst, values[dst], tag)
        out[src] = yield api.recv(src, tag)
    return out
