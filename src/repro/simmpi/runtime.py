"""The :class:`World`: engine + network + processes wired together.

``World`` is the top-level entry point of the substrate.  It owns the
event engine, the network, one :class:`~repro.simmpi.process.Proc` per
rank, one rank program per rank (created by a user factory) and the
tracer.  Fault-tolerance protocols plug in through per-rank hooks created
by ``hook_factory``; the plain world (no factory) runs without any fault
tolerance, which is what the native-performance baselines measure.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import DeadlockError, SimulationError
from ..obs.registry import NULL_OBS
from .api import MpiApi
from .engine import Engine
from .message import CONTROL_TAG_BASE, Envelope, retention_copy
from .network import Network, TimingModel
from .process import NullHook, Proc, ProtocolHook
from .trace import Tracer

__all__ = ["World"]


class World:
    """A simulated machine running ``nprocs`` ranks.

    Parameters
    ----------
    nprocs:
        Number of MPI ranks.
    program_factory:
        ``f(rank, size) -> RankProgram`` building each rank's program (any
        object with ``run(api) -> generator``, ``snapshot()`` and
        ``restore(state)``; see :class:`repro.apps.base.RankProgram`).
    timing:
        Network cost model (defaults to the Myri-10G-calibrated model).
    hook_factory:
        ``f(rank) -> ProtocolHook`` creating the per-rank protocol hook.
    copy_payloads:
        Deep-copy *mutable* payloads at send time so sender-side buffer
        reuse cannot corrupt in-flight messages.  Immutable payloads
        (ints, floats, strings, bytes, tuples of immutables, ``None``) are
        never copied under either setting — sharing them is always safe.
        The rank programs in :mod:`repro.apps` all hand fresh buffers to
        ``send`` and never mutate them afterwards, so the default ``False``
        is zero-copy end to end; the protocol layer makes its own retention
        copies when an envelope enters the sender-based log or a checkpoint
        (copy-on-log — see :func:`repro.simmpi.message.retention_copy`).
        Enable only for programs that recycle send buffers in place.
    record_events:
        Keep the full event log in the tracer (memory-hungry; off by
        default, counts and sequences are always kept).
    obs:
        Optional :class:`repro.obs.MetricsRegistry`; threaded into the
        engine and network.  Defaults to the shared no-op registry, which
        keeps the hot paths uninstrumented.
    """

    def __init__(
        self,
        nprocs: int,
        program_factory: Callable[[int, int], Any],
        timing: TimingModel | None = None,
        hook_factory: Callable[[int], ProtocolHook] | None = None,
        copy_payloads: bool = False,
        record_events: bool = False,
        network_seed: int = 0,
        obs: Any = None,
    ):
        if nprocs < 1:
            raise SimulationError("need at least one rank")
        self.nprocs = nprocs
        self.obs = obs if obs is not None else NULL_OBS
        self.engine = Engine(obs=self.obs)
        self.network = Network(self.engine, timing, seed=network_seed, obs=self.obs)
        self.tracer = Tracer(nprocs, record_events=record_events)
        self.copy_payloads = copy_payloads
        self.programs = [program_factory(rank, nprocs) for rank in range(nprocs)]
        self.apis = [MpiApi(rank, nprocs) for rank in range(nprocs)]
        self.procs: list[Proc] = []
        for rank in range(nprocs):
            hook = hook_factory(rank) if hook_factory is not None else NullHook()
            proc = Proc(rank, self, hook)
            self.procs.append(proc)
            self.network.attach(rank, self._make_receiver(rank))
        self._done_count = 0
        self.on_all_done: Callable[[], None] | None = None

    # ------------------------------------------------------------------
    def launch(self) -> None:
        """Create and schedule every rank program's generator."""
        for rank, proc in enumerate(self.procs):
            proc.start(self.programs[rank].run(self.apis[rank]))

    def _make_receiver(self, rank: int) -> Callable[[Envelope], None]:
        proc = self.procs[rank]
        tracer = self.tracer
        engine = self.engine

        def receive(env: Envelope) -> None:
            # env.is_control inlined: this runs once per delivered message
            if env.tag <= CONTROL_TAG_BASE:
                proc.deliver_control(env)
            else:
                tracer.on_app_deliver(env, engine.now)
                proc.deliver(env)

        return receive

    # ------------------------------------------------------------------
    # Transmission entry points
    # ------------------------------------------------------------------
    def transmit_app(self, env: Envelope) -> float:
        """Send an application envelope; returns sender CPU time."""
        if self.copy_payloads:
            # defensive mode for buffer-recycling programs: immutable
            # payloads still travel zero-copy (retention_copy shares them)
            env.payload = retention_copy(env.payload)
        self.tracer.on_app_send(
            env, self.engine.now, is_replay_dup=bool(env.meta.get("replayed"))
        )
        return self.network.transmit(env)

    def transmit_control(self, env: Envelope) -> float:
        """Send a control-plane envelope (protocol internal traffic)."""
        if not env.is_control:
            raise SimulationError("transmit_control requires a control tag")
        return self.network.transmit(env)

    # ------------------------------------------------------------------
    # Completion tracking
    # ------------------------------------------------------------------
    def on_rank_done(self, rank: int) -> None:
        self._done_count += 1
        if self._done_count == self.nprocs and self.on_all_done is not None:
            self.on_all_done()

    def note_rank_restarted(self) -> None:
        """A finished rank was rolled back and is running again."""
        self._done_count -= 1

    @property
    def all_done(self) -> bool:
        return all(p.done for p in self.procs)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: float | None = None, expect_completion: bool = True) -> float:
        """Run the simulation; returns the final virtual time.

        With ``expect_completion`` a quiescent world with unfinished
        programs raises :class:`DeadlockError` carrying per-rank blocking
        diagnostics — the single most useful debugging signal when a
        protocol gates a send it should have released.
        """
        self.engine.run(until=until)
        if expect_completion and until is None and not self.all_done:
            blocked = {
                p.rank: p.describe_block() for p in self.procs if not p.done
            }
            raise DeadlockError(
                f"simulation quiesced with {len(blocked)} unfinished ranks", blocked
            )
        return self.engine.now

    def run_until_quiescent(self) -> float:
        """Drain every pending event without completion checks."""
        self.engine.run()
        return self.engine.now
