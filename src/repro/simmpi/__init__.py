"""``repro.simmpi`` — discrete-event MPI runtime simulator (substrate).

Implements the paper's system model: a finite set of processes connected by
reliable FIFO channels, asynchronous delivery with unbounded delay, fail-stop
failures.  See DESIGN.md §3 for the module map.
"""

from .api import ANY_SOURCE, ANY_TAG, MpiApi
from .engine import Engine
from .failure import FailureInjector
from .message import Envelope
from .network import Network, TimingModel
from .process import NullHook, Proc, ProtocolHook, Request, Status
from .runtime import World
from .subcomm import SubComm, split_by_color
from .topology import CartGrid, balanced_dims, hypercube_neighbors
from .trace import SendRecord, Tracer

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "MpiApi",
    "Engine",
    "FailureInjector",
    "Envelope",
    "Network",
    "TimingModel",
    "NullHook",
    "Proc",
    "ProtocolHook",
    "Request",
    "Status",
    "World",
    "SubComm",
    "split_by_color",
    "CartGrid",
    "balanced_dims",
    "hypercube_neighbors",
    "SendRecord",
    "Tracer",
]
