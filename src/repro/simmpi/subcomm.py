"""Subcommunicators: collectives over rank subsets (``MPI_Comm_split``).

A :class:`SubComm` wraps a parent :class:`~repro.simmpi.api.MpiApi` with a
member list: inside it, ranks are 0..len(members)-1 and every operation is
translated to world ranks.  NPB-style kernels use these for row/column
reductions on process grids.

Tag discipline: a subcommunicator draws its collective tags from the
*parent* rank's counter, one allocation per collective call.  The SPMD
usage contract — every world rank participates in exactly one
subcommunicator collective per program step (e.g. "each row reduces") —
keeps the counters globally aligned; simultaneous *disjoint*
subcommunicators may then share a tag value safely because their member
pairs are disjoint (per-channel matching cannot cross).  The counter is
part of the parent API and therefore checkpointed/restored with it, so
re-executed subcommunicator traffic reuses the original tags.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..errors import ConfigError
from .api import MpiApi
from . import collectives as _coll

__all__ = ["SubComm", "split_by_color"]


class SubComm:
    """A communicator over a subset of world ranks.

    Build with :meth:`MpiApi-like` construction::

        row = SubComm(api, members=[4, 5, 6, 7])
        total = yield from row.allreduce(x)
    """

    def __init__(self, parent: MpiApi, members: Sequence[int]):
        members = list(members)
        if len(set(members)) != len(members):
            raise ConfigError("subcommunicator members must be distinct")
        if not members:
            raise ConfigError("subcommunicator cannot be empty")
        for m in members:
            if not 0 <= m < parent.size:
                raise ConfigError(f"member {m} outside the world")
        if parent.rank not in members:
            raise ConfigError(
                f"rank {parent.rank} constructing a subcommunicator it is "
                f"not a member of"
            )
        self.parent = parent
        self.members = members
        self.rank = members.index(parent.rank)
        self.size = len(members)

    # -- rank translation ----------------------------------------------
    def world_rank(self, sub_rank: int) -> int:
        return self.members[sub_rank]

    # the collectives library drives everything through these four
    # attributes/methods, so a translating facade is all that is needed
    def send(self, dst: int, payload: Any, tag: int = 0, size: int = 0):
        return self.parent.send(self.world_rank(dst), payload, tag, size)

    def recv(self, src: int, tag: int):
        return self.parent.recv(self.world_rank(src), tag)

    def compute(self, seconds: float):
        return self.parent.compute(seconds)

    def now(self):
        return self.parent.now()

    def _next_coll_tag(self) -> int:
        return self.parent._next_coll_tag()

    # -- collectives over the subset --------------------------------------
    def barrier(self):
        return _coll.barrier(self, self._next_coll_tag())

    def bcast(self, value: Any = None, root: int = 0):
        return _coll.bcast(self, value, root, self._next_coll_tag())

    def reduce(self, value: Any, op=None, root: int = 0):
        return _coll.reduce(self, value, op, root, self._next_coll_tag())

    def allreduce(self, value: Any, op=None):
        return _coll.allreduce(self, value, op, self._next_coll_tag())

    def gather(self, value: Any, root: int = 0):
        return _coll.gather(self, value, root, self._next_coll_tag())

    def scatter(self, values: list[Any] | None = None, root: int = 0):
        return _coll.scatter(self, values, root, self._next_coll_tag())

    def allgather(self, value: Any):
        return _coll.allgather(self, value, self._next_coll_tag())

    def alltoall(self, values: list[Any]):
        return _coll.alltoall(self, values, self._next_coll_tag())

    def scan(self, value: Any, op=None):
        return _coll.scan(self, value, op, self._next_coll_tag())


def split_by_color(api: MpiApi, color: int, colors: Sequence[int]) -> SubComm:
    """``MPI_Comm_split`` with a globally known color map.

    ``colors[r]`` is world rank ``r``'s color; the caller passes its own
    ``color`` for clarity (validated).  Deterministic and local — the
    color map must be SPMD-consistent, as in the NPB grid decompositions.
    """
    if len(colors) != api.size:
        raise ConfigError("color map must cover every world rank")
    if colors[api.rank] != color:
        raise ConfigError("caller's color does not match the map")
    members = [r for r in range(api.size) if colors[r] == color]
    return SubComm(api, members)
