"""Rank-facing MPI-like API.

An :class:`MpiApi` instance is handed to every rank program.  Point-to-point
operations return *op objects* that the program must ``yield``; collective
operations are generator functions used with ``yield from``::

    def run(self, api):
        yield api.send(1, data, tag=7)
        x = yield api.recv(src=0, tag=7)
        total = yield from api.allreduce(x)
        yield api.maybe_checkpoint()

This mirrors mpi4py's lower-case pickle-based interface (``send``/``recv``/
``bcast``/...) while staying inside the discrete-event simulator.
"""

from __future__ import annotations

from typing import Any

from .message import ANY_SOURCE, ANY_TAG
from . import collectives as _coll
from .process import (
    CheckpointOp,
    ComputeOp,
    IrecvOp,
    IsendOp,
    NowOp,
    RecvOp,
    Request,
    SendOp,
    WaitallOp,
    WaitOp,
)

__all__ = ["MpiApi", "ANY_SOURCE", "ANY_TAG"]


class MpiApi:
    """The communication interface a rank program sees.

    Attributes
    ----------
    rank, size:
        This process's rank and the world size, as in ``MPI_Comm_rank`` /
        ``MPI_Comm_size`` on ``MPI_COMM_WORLD``.
    """

    def __init__(self, rank: int, size: int):
        self.rank = rank
        self.size = size
        # Per-rank collective instance counter.  All kernels are SPMD and
        # call collectives in the same order on every rank, so the counter
        # is globally consistent and keeps concurrent collectives from
        # matching each other's traffic.
        self._coll_seq = 0

    # ------------------------------------------------------------------
    # Point-to-point (yield the returned op)
    # ------------------------------------------------------------------
    def send(self, dst: int, payload: Any, tag: int = 0, size: int = 0) -> SendOp:
        """Blocking buffered send."""
        return SendOp(dst, payload, tag, size)

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG, with_status: bool = False) -> RecvOp:
        """Blocking receive; yields the payload (or ``(payload, status)``)."""
        return RecvOp(src, tag, with_status)

    def isend(self, dst: int, payload: Any, tag: int = 0, size: int = 0) -> IsendOp:
        """Non-blocking send; yields a :class:`Request`."""
        return IsendOp(dst, payload, tag, size)

    def irecv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> IrecvOp:
        """Non-blocking receive; yields a :class:`Request`."""
        return IrecvOp(src, tag)

    def wait(self, request: Request) -> WaitOp:
        return WaitOp(request)

    def waitall(self, requests: list[Request]) -> WaitallOp:
        return WaitallOp(list(requests))

    # ------------------------------------------------------------------
    # Local operations
    # ------------------------------------------------------------------
    def compute(self, seconds: float) -> ComputeOp:
        """Model a local computation lasting ``seconds`` of virtual time."""
        return ComputeOp(seconds)

    def now(self) -> NowOp:
        """Yields the current virtual time (for app-level instrumentation)."""
        return NowOp()

    def checkpoint(self) -> CheckpointOp:
        """Unconditionally take a checkpoint at this point."""
        return CheckpointOp(force=True)

    def maybe_checkpoint(self) -> CheckpointOp:
        """Offer a checkpoint opportunity; the protocol's schedule decides."""
        return CheckpointOp(force=False)

    # ------------------------------------------------------------------
    # Collectives (use with ``yield from``)
    # ------------------------------------------------------------------
    def _next_coll_tag(self) -> int:
        # stride 2: composite collectives (allreduce = reduce + bcast) use
        # ``tag`` and ``tag - 1``, so instances must not be adjacent.
        self._coll_seq += 2
        return _coll.collective_tag(self._coll_seq)

    def barrier(self):
        return _coll.barrier(self, self._next_coll_tag())

    def bcast(self, value: Any = None, root: int = 0):
        return _coll.bcast(self, value, root, self._next_coll_tag())

    def reduce(self, value: Any, op=None, root: int = 0):
        return _coll.reduce(self, value, op, root, self._next_coll_tag())

    def allreduce(self, value: Any, op=None):
        return _coll.allreduce(self, value, op, self._next_coll_tag())

    def gather(self, value: Any, root: int = 0):
        return _coll.gather(self, value, root, self._next_coll_tag())

    def scatter(self, values: list[Any] | None = None, root: int = 0):
        return _coll.scatter(self, values, root, self._next_coll_tag())

    def allgather(self, value: Any):
        return _coll.allgather(self, value, self._next_coll_tag())

    def alltoall(self, values: list[Any]):
        return _coll.alltoall(self, values, self._next_coll_tag())

    def scan(self, value: Any, op=None):
        """Inclusive prefix reduction (use with ``yield from``)."""
        return _coll.scan(self, value, op, self._next_coll_tag())

    def reduce_scatter(self, values: list[Any], op=None):
        """Element-wise combine + scatter (use with ``yield from``)."""
        return _coll.reduce_scatter(self, values, op, self._next_coll_tag())

    def sendrecv(self, dst: int, payload: Any, src: int, tag: int = 0,
                 size: int = 0):
        """Combined exchange, MPI_Sendrecv-style (use with ``yield from``)."""
        return _coll.sendrecv(self, dst, payload, src, tag, size)
