"""Fail-stop failure injection.

The paper assumes a *fail-stop* model with possibly multiple concurrent
failures (Section II-A).  The injector schedules kill events at virtual
times (or when a rank reaches an event count) and invokes a handler —
normally the protocol controller's failure orchestration — which performs
the actual kill/restore.  The substrate-level kill primitive lives on
:class:`~repro.simmpi.process.Proc` (``kill()``: drop the execution, purge
in-flight inbound traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import World

__all__ = ["FailureEvent", "FailureInjector", "TIME_QUANTUM"]

#: two scheduled failure times closer than this are one concurrent round.
#: Float arithmetic on schedule times (``t + dt``, fractions of a measured
#: horizon) produces values that are *intended* equal but differ in the
#: last ulps; the quantum is far below every timing-model constant (the
#: fastest network hop is ~1e-6 s), so genuinely distinct rounds are never
#: merged while arithmetic noise never splits a concurrent batch.
TIME_QUANTUM = 1e-9


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled fail-stop failure."""

    rank: int
    time: float


class FailureInjector:
    """Schedules fail-stop failures and dispatches them to a handler.

    Concurrent failures: multiple events within ``time_quantum`` of each
    other are delivered to the handler as a single batch (list of ranks),
    matching the paper's "multiple concurrent failures" scenario where the
    recovery line must account for every failed process at once.  Exact
    float equality is deliberately *not* required — schedule times that
    come from arithmetic (``t + dt``) land a few ulps apart.
    """

    def __init__(self, world: "World", handler: Callable[[list[int]], None],
                 time_quantum: float = TIME_QUANTUM):
        self.world = world
        self.handler = handler
        self.time_quantum = time_quantum
        self._scheduled: list[FailureEvent] = []
        self.fired: list[FailureEvent] = []
        #: active ``after_sends`` taps: {"rank", "nsends", "fired"}
        self._taps: list[dict] = []
        self._tap_wrapper: Callable | None = None
        self._orig_transmit: Callable | None = None

    def at(self, time: float, rank: int) -> None:
        """Kill ``rank`` at virtual ``time``."""
        if not 0 <= rank < self.world.nprocs:
            raise ConfigError(f"rank {rank} out of range")
        self._scheduled.append(FailureEvent(rank, time))

    def concurrent(self, time: float, ranks: list[int]) -> None:
        """Kill several ranks at the same instant."""
        for rank in ranks:
            self.at(time, rank)

    # ------------------------------------------------------------------
    # Logical placement: kill after the Nth application send
    # ------------------------------------------------------------------
    def after_sends(self, rank: int, nsends: int) -> None:
        """Kill ``rank`` immediately after its ``nsends``-th application
        send — deterministic logical placement, independent of the timing
        model (useful for reproducible protocol corner cases).

        Multiple taps compose: each registered ``(rank, nsends)`` fires
        independently through one shared ``transmit_app`` wrapper, and the
        wrapper is uninstalled once every tap has fired, so steady-state
        sends never keep paying for an exhausted tap.
        """
        if not 0 <= rank < self.world.nprocs:
            raise ConfigError(f"rank {rank} out of range")
        if nsends < 1:
            raise ConfigError("nsends must be positive")
        self._taps.append({"rank": rank, "nsends": nsends, "fired": False})
        self._install_tap()

    def _install_tap(self) -> None:
        if self._tap_wrapper is not None:
            return
        original = self.world.transmit_app

        def tapped(env, _original=original):
            cpu = _original(env)
            if self._taps:
                # the send counter increments after transmit returns, so
                # +1 makes this the count *including* the in-flight send:
                # the kill lands right after the nsends-th send, not one
                # message later
                sent = self.world.procs[env.src].app_messages_sent + 1
                exhausted = True
                for tap in self._taps:
                    if (not tap["fired"] and tap["rank"] == env.src
                            and sent >= tap["nsends"]):
                        tap["fired"] = True
                        self.world.engine.call_soon(
                            lambda r=env.src: self._fire(
                                [r], self.world.engine.now
                            )
                        )
                    exhausted = exhausted and tap["fired"]
                if exhausted:
                    self._taps.clear()
                    self._uninstall_tap()
            return cpu

        self._orig_transmit = original
        self._tap_wrapper = tapped
        self.world.transmit_app = tapped

    def _uninstall_tap(self) -> None:
        """Restore the original ``transmit_app`` hook once every tap fired.

        If someone wrapped ``transmit_app`` *after* us, restoring the
        original would silently drop their wrapper — in that case ours
        stays in the chain as a cheap pass-through (empty tap list)."""
        if self._tap_wrapper is None:
            return
        if self.world.transmit_app is self._tap_wrapper:
            assert self._orig_transmit is not None
            self.world.transmit_app = self._orig_transmit
        self._tap_wrapper = None
        self._orig_transmit = None

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Install the scheduled failures into the engine.

        Events are grouped into concurrent rounds within
        ``self.time_quantum`` of each group's earliest time (not exact
        float equality), and each group fires at that earliest time.
        """
        events = sorted(self._scheduled, key=lambda ev: (ev.time, ev.rank))
        groups: list[tuple[float, list[int]]] = []
        for ev in events:
            if groups and ev.time - groups[-1][0] <= self.time_quantum:
                groups[-1][1].append(ev.rank)
            else:
                groups.append((ev.time, [ev.rank]))
        for time, ranks in groups:
            self.world.engine.schedule_at(
                time, lambda rs=sorted(set(ranks)), t=time: self._fire(rs, t)
            )
        self._scheduled.clear()

    def _fire(self, ranks: list[int], time: float) -> None:
        alive = [r for r in ranks if self.world.procs[r].alive]
        if not alive:
            return
        for r in alive:
            self.fired.append(FailureEvent(r, time))
            self.world.tracer.on_mark("failure", r, time)
        self.handler(alive)
