"""Fail-stop failure injection.

The paper assumes a *fail-stop* model with possibly multiple concurrent
failures (Section II-A).  The injector schedules kill events at virtual
times (or when a rank reaches an event count) and invokes a handler —
normally the protocol controller's failure orchestration — which performs
the actual kill/restore.  The substrate-level kill primitive lives on
:class:`~repro.simmpi.process.Proc` (``kill()``: drop the execution, purge
in-flight inbound traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import World

__all__ = ["FailureEvent", "FailureInjector"]


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled fail-stop failure."""

    rank: int
    time: float


class FailureInjector:
    """Schedules fail-stop failures and dispatches them to a handler.

    Concurrent failures: multiple events at the same virtual time are
    delivered to the handler as a single batch (list of ranks), matching
    the paper's "multiple concurrent failures" scenario where the recovery
    line must account for every failed process at once.
    """

    def __init__(self, world: "World", handler: Callable[[list[int]], None]):
        self.world = world
        self.handler = handler
        self._scheduled: list[FailureEvent] = []
        self.fired: list[FailureEvent] = []

    def at(self, time: float, rank: int) -> None:
        """Kill ``rank`` at virtual ``time``."""
        if not 0 <= rank < self.world.nprocs:
            raise ConfigError(f"rank {rank} out of range")
        self._scheduled.append(FailureEvent(rank, time))

    def concurrent(self, time: float, ranks: list[int]) -> None:
        """Kill several ranks at the same instant."""
        for rank in ranks:
            self.at(time, rank)

    def after_sends(self, rank: int, nsends: int) -> None:
        """Kill ``rank`` immediately after its ``nsends``-th application
        send — deterministic logical placement, independent of the timing
        model (useful for reproducible protocol corner cases)."""
        if not 0 <= rank < self.world.nprocs:
            raise ConfigError(f"rank {rank} out of range")
        if nsends < 1:
            raise ConfigError("nsends must be positive")
        original = self.world.transmit_app
        state = {"installed": False}

        def tapped(env, _original=original):
            cpu = _original(env)
            if (env.src == rank
                    and self.world.procs[rank].app_messages_sent >= nsends
                    and not state["installed"]):
                state["installed"] = True
                self.world.engine.call_soon(
                    lambda: self._fire([rank], self.world.engine.now)
                )
            return cpu

        self.world.transmit_app = tapped

    def arm(self) -> None:
        """Install the scheduled failures into the engine."""
        by_time: dict[float, list[int]] = {}
        for ev in self._scheduled:
            by_time.setdefault(ev.time, []).append(ev.rank)
        for time, ranks in by_time.items():
            self.world.engine.schedule_at(
                time, lambda rs=sorted(set(ranks)), t=time: self._fire(rs, t)
            )
        self._scheduled.clear()

    def _fire(self, ranks: list[int], time: float) -> None:
        alive = [r for r in ranks if self.world.procs[r].alive]
        if not alive:
            return
        for r in alive:
            self.fired.append(FailureEvent(r, time))
            self.world.tracer.on_mark("failure", r, time)
        self.handler(alive)
