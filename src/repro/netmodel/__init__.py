"""``repro.netmodel`` — analytic performance model (Figs. 6-7).

Latency/bandwidth curves for native MPICH2 vs the protocol with and
without logging, calibrated to the paper's Myri-10G testbed, plus
conversion into simulator timing models for whole-kernel overhead runs.
"""

from . import calibration
from .collectives_cost import CollectiveCost
from .model import MODES, PerfModel, timing_model_for

__all__ = ["calibration", "CollectiveCost", "MODES", "PerfModel", "timing_model_for"]
