"""Analytic point-to-point cost model — regenerates Fig. 6 and feeds Fig. 7.

Three configurations, as in the paper's ping-pong experiment:

* ``native`` — plain MPICH2: ``T(s) = L + s / B``.
* ``protocol-nolog`` — the protocol with no message logged: piggyback
  management adds a constant ``~0.5 us`` per message; messages above the
  eager threshold need an explicit acknowledgement whose cost is almost
  entirely overlapped with the transfer (the paper: "acknowledging every
  message has a negligible overhead").
* ``protocol-log`` — every message logged: one extra sender-side memcpy,
  negligible for small messages, bandwidth-limiting for large ones
  (``1/B_eff = 1/B + 1/B_copy``).

The model also provides :func:`timing_model_for`, which converts a
configuration into a :class:`~repro.simmpi.network.TimingModel` so whole
kernels can be simulated under each configuration — that is how the Fig. 7
NAS overhead bars are produced.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..simmpi.network import TimingModel
from . import calibration as cal

__all__ = ["MODES", "PerfModel", "timing_model_for"]

MODES = ("native", "protocol-nolog", "protocol-log")


@dataclass(frozen=True)
class PerfModel:
    """Analytic one-way message cost for the three configurations."""

    latency: float = cal.NATIVE_LATENCY
    bandwidth: float = cal.NATIVE_BANDWIDTH
    piggyback: float = cal.PIGGYBACK_OVERHEAD
    copy_bandwidth: float = cal.COPY_BANDWIDTH
    eager_threshold: int = cal.EAGER_THRESHOLD
    ack_residual: float = cal.ACK_RESIDUAL

    def one_way_time(self, size: int, mode: str) -> float:
        """One-way time (seconds) for a ``size``-byte message under ``mode``."""
        if mode not in MODES:
            raise ConfigError(f"unknown mode {mode!r}; pick one of {MODES}")
        t = self.latency + size / self.bandwidth
        if mode == "native":
            return t
        t += self.piggyback
        if size > self.eager_threshold:
            t += self.ack_residual
        if mode == "protocol-log":
            t += size / self.copy_bandwidth
        return t

    def bandwidth_mbps(self, size: int, mode: str) -> float:
        """Achieved bandwidth in Mbit/s (the unit of Fig. 6, right)."""
        return size * 8 / self.one_way_time(size, mode) / 1e6

    def latency_overhead(self, size: int, mode: str) -> float:
        """Relative latency overhead vs native (the paper's ~15 % figure)."""
        return self.one_way_time(size, mode) / self.one_way_time(size, "native") - 1.0

    def series(self, sizes: list[int]) -> dict[str, dict[int, float]]:
        """Fig. 6 data: per mode, size -> one-way latency (seconds)."""
        return {
            mode: {s: self.one_way_time(s, mode) for s in sizes} for mode in MODES
        }


def timing_model_for(mode: str, model: PerfModel | None = None,
                     logged_fraction: float = 1.0) -> TimingModel:
    """A :class:`TimingModel` whose per-message costs realise ``mode``.

    ``logged_fraction`` scales the copy cost for runs where only part of
    the traffic is logged (the protocol's whole point): the per-byte copy
    charge is applied proportionally.
    """
    m = model or PerfModel()
    if mode == "native":
        return TimingModel(latency=m.latency, bandwidth=m.bandwidth,
                           send_overhead=cal.SEND_OVERHEAD)
    if mode == "protocol-nolog":
        return TimingModel(latency=m.latency + m.piggyback, bandwidth=m.bandwidth,
                           send_overhead=cal.SEND_OVERHEAD)
    if mode == "protocol-log":
        per_byte = logged_fraction / m.copy_bandwidth
        return TimingModel(latency=m.latency + m.piggyback, bandwidth=m.bandwidth,
                           send_overhead=cal.SEND_OVERHEAD,
                           per_byte_overhead=per_byte)
    raise ConfigError(f"unknown mode {mode!r}; pick one of {MODES}")
