"""Hardware constants calibrated to the paper's testbed (Section V-B/C).

The performance experiments ran on Grid'5000 Lille nodes: 2x Intel Xeon
E5440, Myri-10G NICs (MX).  Fig. 6 shows ~3 us small-message half-round-
trip latency for native MPICH2, ~9.5 Gb/s peak bandwidth, a ~15 %
(~0.5 us) small-message latency overhead from the protocol's piggyback
management, and a visibly lower large-message bandwidth when message
contents are copied for logging.

These constants are *calibration*, not measurement: the simulator derives
the curve shapes (who crosses whom, where) from the cost model; only the
absolute scales are pinned to the paper's hardware.
"""

from __future__ import annotations

#: zero-byte one-way network latency, seconds (native MPICH2 on MX/Myri-10G)
NATIVE_LATENCY = 2.7e-6
#: asymptotic link bandwidth, bytes/s (~9.5 Gb/s as in Fig. 6)
NATIVE_BANDWIDTH = 9.5e9 / 8
#: sender CPU cost of posting a send, seconds
SEND_OVERHEAD = 0.3e-6
#: per-message cost of managing piggybacked ack data (the paper measured
#: ~0.5 us ≈ 15 % added latency on small messages)
PIGGYBACK_OVERHEAD = 0.5e-6
#: memory-copy bandwidth used for sender-based logging copies, bytes/s
#: (one extra memcpy per logged message; E5440-era ~2.5 GB/s streaming)
COPY_BANDWIDTH = 2.5e9
#: eager threshold: messages at or below are copied by default and need no
#: explicit acknowledgement (Fig. 5's optimization)
EAGER_THRESHOLD = 1024
#: explicit ack one-way cost for large messages that require one, seconds;
#: mostly overlapped with the transfer, so only a residual cost remains
ACK_RESIDUAL = 0.2e-6
