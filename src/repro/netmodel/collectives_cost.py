"""Analytic cost model for the substrate's collective algorithms.

Predicts the virtual-time latency of each collective from the point-to-
point model and the algorithm structure documented in
:mod:`repro.simmpi.collectives` (binomial trees, reduce+bcast composites,
linear pipelines, pairwise exchange).  Used to sanity-check the simulator
(prediction vs measurement tests) and to reason about how much of the
Fig. 7 overhead comes from latency-bound collective chains.
"""

from __future__ import annotations

import math

from ..errors import ConfigError
from ..simmpi.network import TimingModel

__all__ = ["CollectiveCost"]


class CollectiveCost:
    """Latency predictions for P ranks under a :class:`TimingModel`.

    Predictions assume an idle network and simultaneous entry — the same
    conditions the prediction-vs-simulation tests create.
    """

    def __init__(self, timing: TimingModel, nprocs: int):
        if nprocs < 1:
            raise ConfigError("need at least one rank")
        self.timing = timing
        self.nprocs = nprocs

    # -- primitives ------------------------------------------------------
    def hop(self, size: int) -> float:
        """One message hop: sender CPU + wire."""
        return self.timing.sender_cpu_time(size) + self.timing.transit_time(size)

    def _tree_depth(self) -> int:
        return max(1, math.ceil(math.log2(self.nprocs))) if self.nprocs > 1 else 0

    # -- collectives -------------------------------------------------------
    def bcast(self, size: int) -> float:
        """Binomial tree: depth ceil(log2 P) sequential hops on the longest
        root-to-leaf path."""
        return self._tree_depth() * self.hop(size)

    def reduce(self, size: int) -> float:
        """Same tree, leaves-to-root."""
        return self._tree_depth() * self.hop(size)

    def allreduce(self, size: int) -> float:
        """reduce to 0 + bcast from 0 (the substrate's composite)."""
        return self.reduce(size) + self.bcast(size)

    def barrier(self) -> float:
        return self.allreduce(8)

    def gather(self, size: int) -> float:
        """Linear: the root consumes P-1 messages; with buffered senders the
        arrivals overlap, leaving the serial FIFO hand-off at the root."""
        if self.nprocs == 1:
            return 0.0
        return self.hop(size) + (self.nprocs - 2) * self.timing.sender_cpu_time(size)

    def scan(self, size: int) -> float:
        """Linear pipeline: P-1 sequential hops to reach the last rank."""
        return (self.nprocs - 1) * self.hop(size)

    def alltoall(self, size: int) -> float:
        """P-1 pairwise rounds; each round costs one hop (sends overlap),
        plus the per-round sender CPU for the round's emission."""
        if self.nprocs == 1:
            return 0.0
        return (self.nprocs - 1) * self.hop(size)

    # -- helpers -----------------------------------------------------------
    def predict(self, name: str, size: int = 8) -> float:
        table = {
            "bcast": self.bcast,
            "reduce": self.reduce,
            "allreduce": self.allreduce,
            "scan": self.scan,
            "alltoall": self.alltoall,
            "gather": self.gather,
        }
        if name not in table:
            raise ConfigError(f"no cost model for collective {name!r}")
        return table[name](size)
