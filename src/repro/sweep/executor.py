"""Multiprocessing sweep executor.

A *sweep* is a list of independent tasks, each a call of one module-level
function with a parameter mapping.  The executor runs them sequentially
(``workers <= 1``) or across a process pool, and always returns results in
task order, so downstream consumers (tables, JSON artefacts) are
independent of scheduling.

Determinism
-----------
Each task receives a ``seed`` derived from ``(base_seed, index, name)``
with :func:`task_seed`, which uses a keyed blake2b digest — stable across
processes and interpreter invocations (unlike ``hash()``, which is salted
per process).  Tasks that need randomness must take it from this seed.

The multiprocessing start method is pinned explicitly
(:data:`MP_START_METHOD`): results and worker-global state must never
depend on the *platform default* silently flipping between ``fork`` and
``spawn``.  The pin prefers ``fork`` where available (cheap workers) and
is overridable with ``REPRO_MP_START_METHOD``; the cache-key path is
asserted fork/spawn-invariant by the service tests.

Crash isolation
---------------
The task function runs inside a try/except *in the worker*; an exception
produces a ``status="error"`` :class:`SweepResult` carrying the formatted
traceback while the rest of the sweep proceeds.  A worker that dies
*without* returning (``os._exit``, OOM kill, segfault) is detected by the
work-stealing scheduler, retried once in a fresh pool, and — if it
crashes again — reported by raising ``RuntimeError: sweep lost results
for task indices [...]`` after the surviving tasks complete.

Result caching
--------------
``run_sweep(..., cache=ResultCache(...))`` consults the content-addressed
result cache (:mod:`repro.service.cache`) before executing: tasks are
pure functions of (code, seed, params), so a hit returns the stored
:class:`SweepResult` — byte-identical value, duration and obs snapshot —
and the merged registry/exports are indistinguishable from a cold run.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

__all__ = [
    "MP_START_METHOD",
    "SweepTask",
    "SweepResult",
    "mp_context",
    "results_document",
    "run_sweep",
    "save_results",
    "task_seed",
]


def _pinned_start_method() -> str:
    """Explicit multiprocessing start method for every pool in the repo.

    ``fork`` where the platform offers it (cheap workers, shared imports),
    ``spawn`` otherwise — chosen *here*, once, rather than inherited from
    ``multiprocessing``'s platform default, so a Python upgrade flipping
    the default cannot silently change worker-global state semantics.
    ``REPRO_MP_START_METHOD`` overrides (e.g. the campaign service passes
    ``forkserver``/``spawn``, which are safe to use from threads).
    """
    override = os.environ.get("REPRO_MP_START_METHOD")
    if override:
        return override
    return "fork" if "fork" in multiprocessing.get_all_start_methods() \
        else "spawn"


MP_START_METHOD: str = _pinned_start_method()


def mp_context(method: str | None = None):
    """The pinned multiprocessing context (never the platform default)."""
    return multiprocessing.get_context(method or MP_START_METHOD)


def task_seed(base_seed: int, index: int, name: str) -> int:
    """Deterministic 63-bit per-task seed.

    Stable across processes, platforms and ``PYTHONHASHSEED`` values; two
    sweeps with the same ``base_seed`` and task list see identical seeds
    regardless of worker count or scheduling.
    """
    digest = hashlib.blake2b(
        f"{base_seed}:{index}:{name}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") & (2**63 - 1)


@dataclass(frozen=True)
class SweepTask:
    """One unit of work: ``fn(params)`` under a deterministic seed.

    ``params`` must be picklable (it crosses the process boundary); the
    executor injects ``seed`` into a copy of ``params`` before the call, so
    task functions take a single mapping argument.
    """

    name: str
    params: dict[str, Any] = field(default_factory=dict)


@dataclass
class SweepResult:
    """Outcome of one task, in task order.

    ``status`` is ``"ok"`` or ``"error"``; an error result carries the
    exception text and formatted traceback instead of a value.  ``duration``
    is host wall-clock (informational only — it varies between runs and
    must not feed any determinism-sensitive consumer).
    """

    index: int
    name: str
    status: str
    value: Any = None
    error: str | None = None
    traceback: str | None = None
    duration: float = 0.0
    seed: int = 0
    params: dict[str, Any] = field(default_factory=dict)
    #: observability snapshot of the task's private registry (plain data,
    #: crosses the process boundary; merged by run_sweep, not serialised
    #: into to_json)
    obs: dict[str, Any] | None = None
    #: True when this result was served by the content-addressed cache.
    #: Deliberately *not* serialised by to_json: a warm run's exported
    #: documents must be byte-identical to the cold run that filled the
    #: cache (the duration carried here is the cold run's, for the same
    #: reason).
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json(self) -> dict[str, Any]:
        out = {
            "index": self.index,
            "name": self.name,
            "status": self.status,
            "seed": self.seed,
            "duration_s": round(self.duration, 6),
            "params": _jsonable(self.params),
        }
        if self.status == "ok":
            out["value"] = _jsonable(self.value)
        else:
            out["error"] = self.error
            out["traceback"] = self.traceback
        return out


def _jsonable(value: Any, strict: bool = False) -> Any:
    """Conversion to JSON-serialisable data.

    Dict keys are stringified; two keys that stringify identically (``1``
    and ``"1"``, ``None`` and ``"None"``) used to silently merge with
    last-writer-wins.  Now the collision is *detected*: the first key
    keeps the plain form and later colliders are disambiguated with a
    ``#<typename>`` (then ``.2``, ``.3`` …) suffix — deterministically,
    since dict iteration order is insertion order.  ``strict=True``
    raises instead (cache keys must refuse ambiguity), and also rejects
    the lossy ``repr()`` fallback for unknown objects (reprs can embed
    memory addresses).
    """
    if isinstance(value, dict):
        out: dict[str, Any] = {}
        for k, v in value.items():
            s = str(k)
            if s in out:
                if strict:
                    raise ValueError(
                        f"dict keys collide after stringification: {k!r} "
                        f"also maps to {s!r}")
                base = f"{s}#{type(k).__name__}"
                s, n = base, 2
                while s in out:
                    s = f"{base}.{n}"
                    n += 1
            out[s] = _jsonable(v, strict=strict)
        return out
    if isinstance(value, (list, tuple)):
        return [_jsonable(v, strict=strict) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "to_json"):
        return _jsonable(value.to_json(), strict=strict)
    if hasattr(value, "_asdict"):
        return _jsonable(value._asdict(), strict=strict)
    if strict:
        raise ValueError(
            f"cannot canonicalize {type(value).__name__!r} value "
            f"(repr fallback is not content-stable)")
    return repr(value)


def _execute(fn: Callable[[dict[str, Any]], Any], task: SweepTask,
             index: int, seed: int, collect_obs: bool = False,
             timeseries: float | None = None) -> SweepResult:
    """Run one task with crash isolation (used in-process and in workers).

    With ``collect_obs`` the task gets a private ``MetricsRegistry`` under
    ``params["obs"]`` and its plain-data snapshot rides back on the result —
    the same path inline and across the pool, so merged observability is
    shape-identical regardless of worker count.  ``timeseries`` arms the
    task registry's virtual-time series recorder at that interval.
    """
    params = dict(task.params)
    params["seed"] = seed
    registry = None
    if collect_obs:
        from ..obs import MetricsRegistry

        registry = MetricsRegistry(timeseries_interval=timeseries)
        params["obs"] = registry
    snap = None
    # host wall-clock is allowed here: SweepResult.duration is documented
    # as informational-only and never feeds a determinism-sensitive path
    t0 = time.perf_counter()  # repro: noqa[RPD002]
    try:
        value = fn(params)
    except Exception as exc:  # noqa: BLE001 — isolation is the point
        if registry is not None:
            snap = registry.snapshot()
        return SweepResult(
            index=index, name=task.name, status="error",
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
            duration=time.perf_counter() - t0,  # repro: noqa[RPD002]
            seed=seed, params=task.params,
            obs=snap,
        )
    if registry is not None:
        snap = registry.snapshot()
    return SweepResult(
        index=index, name=task.name, status="ok", value=value,
        duration=time.perf_counter() - t0,  # repro: noqa[RPD002]
        seed=seed, params=task.params,
        obs=snap,
    )


def _worker(payload: tuple) -> SweepResult:
    fn, task, index, seed, collect_obs, timeseries = payload
    return _execute(fn, task, index, seed, collect_obs, timeseries)


def run_sweep(
    fn: Callable[[dict[str, Any]], Any],
    tasks: Sequence[SweepTask] | Iterable[SweepTask],
    workers: int = 1,
    base_seed: int = 0,
    obs: Any = None,
    on_progress: Callable[[SweepResult], None] | None = None,
    collect_obs: bool = False,
    timeseries: float | None = None,
    cache: Any = None,
    scheduler: Any = None,
    mp_method: str | None = None,
    service_obs: Any = None,
) -> list[SweepResult]:
    """Run every task through ``fn``; returns results in task order.

    Parameters
    ----------
    fn:
        Module-level function of one parameter mapping (must be picklable
        for ``workers > 1``).  Receives the task's ``params`` plus a
        ``seed`` entry.
    workers:
        ``<= 1`` runs inline in this process — bit-identical to a plain
        loop, no multiprocessing machinery touched.  Higher values fan out
        over the work-stealing scheduler (capped at the task count).
    obs:
        Optional :class:`repro.obs.MetricsRegistry`; progress lands in the
        ``sweep.*`` counters and an event per completed task.
    on_progress:
        Callback invoked in the parent with each completed result (cache
        hits first in task order, then executed tasks in completion
        order, which under parallel execution is not task order).
    collect_obs:
        Give every task a private registry via ``params["obs"]`` and ship
        its snapshot back on the result.  When ``obs`` is also given, the
        snapshots are merged into it **in task order** after the sweep, so
        the merged registry is identical for any worker count.
    timeseries:
        With ``collect_obs``, sample each task's instruments into
        virtual-time series at this interval (virtual seconds); series
        merge into ``obs`` in task order, byte-identical for any worker
        count.
    cache:
        Optional :class:`repro.service.ResultCache`.  Tasks whose content
        address is already stored return the cached result (marked
        ``cached=True``); misses execute and are stored.
    scheduler:
        Optional :class:`repro.service.WorkStealingScheduler` to reuse (a
        resident service keeps one pool across jobs).  When given, its
        worker count wins over ``workers``.
    mp_method:
        Explicit multiprocessing start method for a scheduler created by
        this call (default: the pinned :data:`MP_START_METHOD`).
    service_obs:
        Registry for *service accounting*: ``service.cache`` hit/miss and
        ``service.leases``/``service.steals``/``service.tasks_lost``
        counters.  Kept separate from ``obs`` so the merged simulation
        registry exports stay byte-identical between a cold run and a
        cache-warm re-run (hit/miss tallies necessarily differ between
        the two).  ``None`` disables accounting counters (cache objects
        still tally their own :meth:`stats`).
    """
    tasks = list(tasks)
    seeds = [task_seed(base_seed, i, t.name) for i, t in enumerate(tasks)]
    obs = obs if (obs is not None and getattr(obs, "enabled", False)) else None
    acct = service_obs if (service_obs is not None
                           and getattr(service_obs, "enabled", False)) else None

    def _note(result: SweepResult) -> None:
        if obs is not None:
            obs.counter("sweep.tasks_completed", ("status",)).inc(
                labels=(result.status,)
            )
            obs.event(
                "sweep.task_done", name=result.name, status=result.status,
                duration_s=result.duration,
            )
        if on_progress is not None:
            on_progress(result)

    def _merge_worker_obs(results: list[SweepResult]) -> None:
        # task order, not completion order: merge order is part of the
        # determinism contract (histogram/event streams concatenate)
        if obs is None or not collect_obs:
            return
        for result in results:
            if result.obs:
                obs.merge(result.obs)

    results_by_index: list[SweepResult | None] = [None] * len(tasks)
    keys: list[str | None] = [None] * len(tasks)
    pending = list(range(len(tasks)))

    # --- cache probe: hits short-circuit, in task order ---------------
    if cache is not None:
        cache_counter = (acct.counter("service.cache", ("outcome",))
                         if acct is not None else None)
        pending = []
        for i, task in enumerate(tasks):
            keys[i] = cache.key_for(fn, task.params, seeds[i],
                                    collect_obs=collect_obs,
                                    timeseries=timeseries)
            hit = cache.get(keys[i]) if keys[i] is not None else None
            if hit is not None:
                hit.index, hit.name, hit.cached = i, task.name, True
                results_by_index[i] = hit
                if cache_counter is not None:
                    cache_counter.inc(labels=("hit",))
                _note(hit)
            else:
                pending.append(i)
                if cache_counter is not None:
                    cache_counter.inc(labels=("miss",))

    def _store(result: SweepResult) -> None:
        if cache is not None and keys[result.index] is not None:
            cache.put(keys[result.index], result)

    # --- execute the misses -------------------------------------------
    nworkers = scheduler.workers if scheduler is not None else workers
    if pending and (nworkers <= 1 or len(pending) <= 1):
        for i in pending:
            result = _execute(fn, tasks[i], i, seeds[i], collect_obs,
                              timeseries)
            results_by_index[i] = result
            _store(result)
            _note(result)
    elif pending:
        from ..service.scheduler import WorkStealingScheduler

        payloads = [
            (i, (fn, tasks[i], i, seeds[i], collect_obs, timeseries))
            for i in pending
        ]

        def on_result(result: SweepResult) -> None:
            results_by_index[result.index] = result
            _store(result)
            _note(result)

        own = scheduler is None
        sched = scheduler if scheduler is not None else WorkStealingScheduler(
            min(workers, len(pending)), mp_method=mp_method, obs=acct)
        if scheduler is not None and sched.obs is None:
            sched.obs = acct
        try:
            outcome = sched.run(_worker, payloads, on_result=on_result)
        finally:
            if own:
                sched.close()
        if outcome.lost:  # a worker died twice without returning
            raise RuntimeError(
                f"sweep lost results for task indices {outcome.lost}")

    missing = [i for i, r in enumerate(results_by_index) if r is None]
    if missing:  # defensive: the scheduler already accounts for losses
        raise RuntimeError(f"sweep lost results for task indices {missing}")
    _merge_worker_obs(results_by_index)  # type: ignore[arg-type]
    return results_by_index  # type: ignore[return-value]


#: top-level keys of a results document; extras live under "extra"
RESERVED_DOCUMENT_KEYS = frozenset(
    {"sweep", "tasks", "ok", "errors", "results", "extra"})


def results_document(
    results: Sequence[SweepResult],
    sweep_name: str = "sweep",
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """A sweep's results as one structured JSON-ready document.

    ``extra`` entries are nested under the document's ``"extra"`` key —
    they used to be merged into the top level, where a key like
    ``"results"`` or ``"ok"`` would silently clobber the document's own
    fields."""
    doc: dict[str, Any] = {
        "sweep": sweep_name,
        "tasks": len(results),
        "ok": sum(1 for r in results if r.ok),
        "errors": sum(1 for r in results if not r.ok),
        "results": [r.to_json() for r in results],
    }
    if extra:
        doc["extra"] = _jsonable(extra)
    return doc


def save_results(
    path: str,
    results: Sequence[SweepResult],
    sweep_name: str = "sweep",
    extra: dict[str, Any] | None = None,
) -> None:
    """Write a sweep's results as one structured JSON document."""
    with open(path, "w") as fh:
        json.dump(results_document(results, sweep_name, extra), fh,
                  indent=1, sort_keys=False)
        fh.write("\n")
