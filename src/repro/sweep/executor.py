"""Multiprocessing sweep executor.

A *sweep* is a list of independent tasks, each a call of one module-level
function with a parameter mapping.  The executor runs them sequentially
(``workers <= 1``) or across a process pool, and always returns results in
task order, so downstream consumers (tables, JSON artefacts) are
independent of scheduling.

Determinism
-----------
Each task receives a ``seed`` derived from ``(base_seed, index, name)``
with :func:`task_seed`, which uses a keyed blake2b digest — stable across
processes and interpreter invocations (unlike ``hash()``, which is salted
per process).  Tasks that need randomness must take it from this seed.

Crash isolation
---------------
The task function runs inside a try/except *in the worker*; an exception
produces a ``status="error"`` :class:`SweepResult` carrying the formatted
traceback while the rest of the sweep proceeds.  The sweep as a whole only
fails if the pool infrastructure itself dies.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

__all__ = ["SweepTask", "SweepResult", "run_sweep", "save_results", "task_seed"]


def task_seed(base_seed: int, index: int, name: str) -> int:
    """Deterministic 63-bit per-task seed.

    Stable across processes, platforms and ``PYTHONHASHSEED`` values; two
    sweeps with the same ``base_seed`` and task list see identical seeds
    regardless of worker count or scheduling.
    """
    digest = hashlib.blake2b(
        f"{base_seed}:{index}:{name}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") & (2**63 - 1)


@dataclass(frozen=True)
class SweepTask:
    """One unit of work: ``fn(params)`` under a deterministic seed.

    ``params`` must be picklable (it crosses the process boundary); the
    executor injects ``seed`` into a copy of ``params`` before the call, so
    task functions take a single mapping argument.
    """

    name: str
    params: dict[str, Any] = field(default_factory=dict)


@dataclass
class SweepResult:
    """Outcome of one task, in task order.

    ``status`` is ``"ok"`` or ``"error"``; an error result carries the
    exception text and formatted traceback instead of a value.  ``duration``
    is host wall-clock (informational only — it varies between runs and
    must not feed any determinism-sensitive consumer).
    """

    index: int
    name: str
    status: str
    value: Any = None
    error: str | None = None
    traceback: str | None = None
    duration: float = 0.0
    seed: int = 0
    params: dict[str, Any] = field(default_factory=dict)
    #: observability snapshot of the task's private registry (plain data,
    #: crosses the process boundary; merged by run_sweep, not serialised
    #: into to_json)
    obs: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json(self) -> dict[str, Any]:
        out = {
            "index": self.index,
            "name": self.name,
            "status": self.status,
            "seed": self.seed,
            "duration_s": round(self.duration, 6),
            "params": _jsonable(self.params),
        }
        if self.status == "ok":
            out["value"] = _jsonable(self.value)
        else:
            out["error"] = self.error
            out["traceback"] = self.traceback
        return out


def _jsonable(value: Any) -> Any:
    """Best-effort conversion to JSON-serialisable data (lossy fallback)."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "to_json"):
        return _jsonable(value.to_json())
    if hasattr(value, "_asdict"):
        return _jsonable(value._asdict())
    return repr(value)


def _execute(fn: Callable[[dict[str, Any]], Any], task: SweepTask,
             index: int, seed: int, collect_obs: bool = False,
             timeseries: float | None = None) -> SweepResult:
    """Run one task with crash isolation (used in-process and in workers).

    With ``collect_obs`` the task gets a private ``MetricsRegistry`` under
    ``params["obs"]`` and its plain-data snapshot rides back on the result —
    the same path inline and across the pool, so merged observability is
    shape-identical regardless of worker count.  ``timeseries`` arms the
    task registry's virtual-time series recorder at that interval.
    """
    params = dict(task.params)
    params["seed"] = seed
    registry = None
    if collect_obs:
        from ..obs import MetricsRegistry

        registry = MetricsRegistry(timeseries_interval=timeseries)
        params["obs"] = registry
    snap = None
    # host wall-clock is allowed here: SweepResult.duration is documented
    # as informational-only and never feeds a determinism-sensitive path
    t0 = time.perf_counter()  # repro: noqa[RPD002]
    try:
        value = fn(params)
    except Exception as exc:  # noqa: BLE001 — isolation is the point
        if registry is not None:
            snap = registry.snapshot()
        return SweepResult(
            index=index, name=task.name, status="error",
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
            duration=time.perf_counter() - t0,  # repro: noqa[RPD002]
            seed=seed, params=task.params,
            obs=snap,
        )
    if registry is not None:
        snap = registry.snapshot()
    return SweepResult(
        index=index, name=task.name, status="ok", value=value,
        duration=time.perf_counter() - t0,  # repro: noqa[RPD002]
        seed=seed, params=task.params,
        obs=snap,
    )


def _worker(payload: tuple) -> SweepResult:
    fn, task, index, seed, collect_obs, timeseries = payload
    return _execute(fn, task, index, seed, collect_obs, timeseries)


def run_sweep(
    fn: Callable[[dict[str, Any]], Any],
    tasks: Sequence[SweepTask] | Iterable[SweepTask],
    workers: int = 1,
    base_seed: int = 0,
    obs: Any = None,
    on_progress: Callable[[SweepResult], None] | None = None,
    collect_obs: bool = False,
    timeseries: float | None = None,
) -> list[SweepResult]:
    """Run every task through ``fn``; returns results in task order.

    Parameters
    ----------
    fn:
        Module-level function of one parameter mapping (must be picklable
        for ``workers > 1``).  Receives the task's ``params`` plus a
        ``seed`` entry.
    workers:
        ``<= 1`` runs inline in this process — bit-identical to a plain
        loop, no multiprocessing machinery touched.  Higher values fan out
        over a process pool (capped at the task count).
    obs:
        Optional :class:`repro.obs.MetricsRegistry`; progress lands in the
        ``sweep.*`` counters and an event per completed task.
    on_progress:
        Callback invoked in the parent with each completed result
        (completion order, which under parallel execution is not task
        order).
    collect_obs:
        Give every task a private registry via ``params["obs"]`` and ship
        its snapshot back on the result.  When ``obs`` is also given, the
        snapshots are merged into it **in task order** after the sweep, so
        the merged registry is identical for any worker count.
    timeseries:
        With ``collect_obs``, sample each task's instruments into
        virtual-time series at this interval (virtual seconds); series
        merge into ``obs`` in task order, byte-identical for any worker
        count.
    """
    tasks = list(tasks)
    seeds = [task_seed(base_seed, i, t.name) for i, t in enumerate(tasks)]
    obs = obs if (obs is not None and getattr(obs, "enabled", False)) else None

    def _note(result: SweepResult) -> None:
        if obs is not None:
            obs.counter("sweep.tasks_completed", ("status",)).inc(
                labels=(result.status,)
            )
            obs.event(
                "sweep.task_done", name=result.name, status=result.status,
                duration_s=result.duration,
            )
        if on_progress is not None:
            on_progress(result)

    def _merge_worker_obs(results: list[SweepResult]) -> None:
        # task order, not completion order: merge order is part of the
        # determinism contract (histogram/event streams concatenate)
        if obs is None or not collect_obs:
            return
        for result in results:
            if result.obs:
                obs.merge(result.obs)

    if workers <= 1 or len(tasks) <= 1:
        results = []
        for i, task in enumerate(tasks):
            result = _execute(fn, task, i, seeds[i], collect_obs, timeseries)
            _note(result)
            results.append(result)
        _merge_worker_obs(results)
        return results

    nworkers = min(workers, len(tasks))
    payloads = [
        (fn, t, i, seeds[i], collect_obs, timeseries)
        for i, t in enumerate(tasks)
    ]
    results_by_index: list[SweepResult | None] = [None] * len(tasks)
    ctx = multiprocessing.get_context()
    with ctx.Pool(processes=nworkers) as pool:
        # unordered: progress reporting tracks actual completion; the
        # index carried by each result restores task order afterwards
        for result in pool.imap_unordered(_worker, payloads):
            results_by_index[result.index] = result
            _note(result)
    missing = [i for i, r in enumerate(results_by_index) if r is None]
    if missing:  # a worker died without returning (hard crash)
        raise RuntimeError(f"sweep lost results for task indices {missing}")
    _merge_worker_obs(results_by_index)  # type: ignore[arg-type]
    return results_by_index  # type: ignore[return-value]


def save_results(
    path: str,
    results: Sequence[SweepResult],
    sweep_name: str = "sweep",
    extra: dict[str, Any] | None = None,
) -> None:
    """Write a sweep's results as one structured JSON document."""
    doc = {
        "sweep": sweep_name,
        "tasks": len(results),
        "ok": sum(1 for r in results if r.ok),
        "errors": sum(1 for r in results if not r.ok),
        "results": [r.to_json() for r in results],
    }
    if extra:
        doc.update(_jsonable(extra))
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=False)
        fh.write("\n")
