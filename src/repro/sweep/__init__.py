"""Parallel scenario sweeps (``repro.sweep``).

Fans independent simulation runs across worker processes.  Every run is a
self-contained deterministic simulation, so a sweep parallelises trivially;
the executor adds the operational pieces: per-run deterministic seeds,
crash isolation (a failing run yields an error *result*, not a dead sweep),
ordered structured results, and progress reporting through
:mod:`repro.obs`.

With ``workers <= 1`` the executor degrades to a plain in-process loop —
the results (and any output derived from them) are byte-identical to code
that never imported this module, which is what lets the CLI bolt
``--workers`` onto existing commands without re-validating their output.
"""

from .executor import (
    MP_START_METHOD,
    SweepResult,
    SweepTask,
    mp_context,
    results_document,
    run_sweep,
    save_results,
    task_seed,
)

__all__ = [
    "MP_START_METHOD",
    "SweepResult",
    "SweepTask",
    "mp_context",
    "results_document",
    "run_sweep",
    "save_results",
    "task_seed",
]
