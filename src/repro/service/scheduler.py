"""Work-stealing task scheduler over a process pool.

The one-shot sweep executor used ``Pool.imap_unordered``, which hands the
pool a frozen task list and lets the C-level chunker assign work.  That
has two operational problems for an always-on campaign service:

* **head-of-line blocking** — a slow task (a 4096-rank Table-1 cell)
  pins one worker while the chunker may still route further tasks behind
  it; and
* **undetectable hard crashes** — a worker that dies without returning
  (``os._exit``, OOM kill, segfault) leaves ``imap`` waiting forever or
  loses results silently.

This scheduler replaces both.  Tasks are split into per-worker deques
(contiguous blocks, preserving the locality of the old chunking); each
logical worker *leases* one task at a time from the head of its own
deque, and when its deque runs dry it *steals* from the tail of the
victim with the most remaining work.  The parent coordinates leases, so
a slow task occupies exactly one worker slot while every other slot
drains the rest of the campaign.

Execution rides on :class:`concurrent.futures.ProcessPoolExecutor`,
which (unlike ``multiprocessing.Pool``) detects abrupt worker death and
raises ``BrokenProcessPool``.  On a broken pool the scheduler rebuilds
the executor and retries every in-flight task once — the crashing task
crashes again deterministically and is recorded as *lost*, while
innocent tasks that happened to share the pool complete on retry.  Lost
indices are reported on the outcome; :func:`repro.sweep.run_sweep`
turns them into its historical ``RuntimeError: sweep lost results …``.

Lease/steal/loss counts land in the accounting registry's
``service.leases`` / ``service.steals`` / ``service.tasks_lost``
counters, which the campaign service streams to dashboards.

A scheduler may be reused across many runs (the campaign service keeps
one alive for its whole lifetime — the pool persists between jobs);
:meth:`close` tears the pool down.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["SchedulerOutcome", "WorkStealingScheduler"]

#: attempts per task before it is declared lost (1 initial + 1 retry)
MAX_ATTEMPTS = 2


@dataclass
class SchedulerOutcome:
    """What one :meth:`WorkStealingScheduler.run` call did."""

    #: task index -> worker-function return value, for completed tasks
    results: dict[int, Any] = field(default_factory=dict)
    #: indices whose worker died on every attempt (hard crash)
    lost: list[int] = field(default_factory=list)
    leases: int = 0
    steals: int = 0
    #: executor rebuilds after a broken pool
    rebuilds: int = 0


class WorkStealingScheduler:
    """Parent-coordinated work-stealing over a process pool.

    ``workers`` bounds the number of concurrent leases; ``mp_method`` is
    an explicit multiprocessing start method (``None`` uses the pinned
    repo-wide default from :mod:`repro.sweep.executor` — never the
    silent platform default).
    """

    def __init__(self, workers: int, mp_method: str | None = None,
                 obs: Any = None):
        from ..sweep.executor import MP_START_METHOD

        self.workers = max(1, int(workers))
        self.mp_method = mp_method or MP_START_METHOD
        self.obs = obs
        self._executor: ProcessPoolExecutor | None = None

    # -- pool lifecycle -------------------------------------------------
    def _context(self):
        import multiprocessing

        return multiprocessing.get_context(self.mp_method)

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._context()
            )
        return self._executor

    def _rebuild_executor(self) -> ProcessPoolExecutor:
        if self._executor is not None:
            # the pool is broken: don't wait on dead workers
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        return self._ensure_executor()

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkStealingScheduler":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- scheduling core ------------------------------------------------
    def run(
        self,
        worker_fn: Callable[[Any], Any],
        payloads: list[tuple[int, Any]],
        on_result: Callable[[Any], None] | None = None,
    ) -> SchedulerOutcome:
        """Run every ``(index, payload)`` through ``worker_fn`` in pool
        workers; returns when all are completed or lost.

        ``on_result`` fires in the parent, in completion order.  The
        outcome's ``results`` map is keyed by the supplied indices.
        """
        outcome = SchedulerOutcome()
        if not payloads:
            return outcome
        nslots = min(self.workers, len(payloads))

        # contiguous block split: slot w owns payloads[w*size : ...], the
        # same locality the old imap chunking gave contiguous indices
        deques: list[deque[tuple[int, Any]]] = [deque() for _ in range(nslots)]
        base, rem = divmod(len(payloads), nslots)
        pos = 0
        for w in range(nslots):
            size = base + (1 if w < rem else 0)
            deques[w].extend(payloads[pos:pos + size])
            pos += size

        attempts: dict[int, int] = {}
        inflight: dict[Future, tuple[int, int, Any]] = {}

        obs = self.obs
        lease_counter = steal_counter = lost_counter = None
        if obs is not None and getattr(obs, "enabled", False):
            lease_counter = obs.counter("service.leases")
            steal_counter = obs.counter("service.steals")
            lost_counter = obs.counter("service.tasks_lost")

        def next_lease(slot: int) -> tuple[int, Any] | None:
            if deques[slot]:
                return deques[slot].popleft()
            # steal from the tail of the victim with the most work left
            victim = max(range(nslots), key=lambda w: len(deques[w]))
            if not deques[victim]:
                return None
            outcome.steals += 1
            if steal_counter is not None:
                steal_counter.inc()
            return deques[victim].pop()

        def lease(slot: int, executor: ProcessPoolExecutor) -> None:
            entry = next_lease(slot)
            if entry is None:
                return
            index, payload = entry
            attempts[index] = attempts.get(index, 0) + 1
            outcome.leases += 1
            if lease_counter is not None:
                lease_counter.inc()
            future = executor.submit(worker_fn, payload)
            inflight[future] = (slot, index, payload)

        executor = self._ensure_executor()
        try:
            for slot in range(nslots):
                lease(slot, executor)
            while inflight:
                done, _ = wait(list(inflight), return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    if future not in inflight:
                        continue  # drained by a broken-pool rebuild
                    slot, index, payload = inflight.pop(future)
                    try:
                        value = future.result()
                    except BrokenProcessPool:
                        broken = True
                        # every in-flight task died with the pool; retry
                        # each once, then declare repeat offenders lost
                        casualties = [(slot, index, payload)]
                        casualties.extend(inflight.values())
                        inflight.clear()
                        for c_slot, c_index, c_payload in casualties:
                            if attempts.get(c_index, 0) >= MAX_ATTEMPTS:
                                outcome.lost.append(c_index)
                                if lost_counter is not None:
                                    lost_counter.inc()
                            else:
                                deques[c_slot].appendleft((c_index, c_payload))
                        outcome.rebuilds += 1
                        executor = self._rebuild_executor()
                        for w in range(nslots):
                            lease(w, executor)
                        break
                    outcome.results[index] = value
                    if on_result is not None:
                        on_result(value)
                    lease(slot, executor)
                if broken:
                    continue
        except BaseException:
            # infrastructure failure (pickling error, interrupt): don't
            # leave a half-dead pool behind for the next run
            self.close()
            raise
        outcome.lost.sort()
        return outcome
