"""Thin synchronous client for the campaign service.

Speaks the JSON-lines protocol of :mod:`repro.service.server` over a
Unix socket or ``host:port`` TCP.  Used by ``repro submit`` and by
tests; the whole protocol is "write one request line, read event lines
until the final object carrying ``done: true``".
"""

from __future__ import annotations

import json
import socket
from typing import Any, Callable

from ..errors import ConfigError

__all__ = ["ServiceClient"]


class ServiceClient:
    """One connection to a running ``repro serve`` instance.

    ``connect`` is a Unix-socket path (anything containing a path
    separator, e.g. ``/tmp/repro.sock``) or ``host:port``.
    """

    def __init__(self, connect: str, timeout: float | None = 300.0):
        self.spec = connect
        if "/" in connect or connect.endswith(".sock"):
            if not hasattr(socket, "AF_UNIX"):
                raise ConfigError("unix sockets unsupported on this platform")
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(connect)
        else:
            host, _, port = connect.rpartition(":")
            if not port.isdigit():
                raise ConfigError(
                    f"connect spec {connect!r} is neither a socket path "
                    f"nor host:port")
            sock = socket.create_connection(
                (host or "127.0.0.1", int(port)), timeout=timeout)
        self._sock = sock
        self._fh = sock.makefile("rwb")

    def close(self) -> None:
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- protocol ------------------------------------------------------
    def request(
        self,
        op: str,
        on_event: Callable[[dict[str, Any]], None] | None = None,
        **fields: Any,
    ) -> dict[str, Any]:
        """Send one request; stream events to ``on_event``; return the
        final reply object."""
        payload = {"op": op, **fields}
        self._fh.write(json.dumps(payload).encode() + b"\n")
        self._fh.flush()
        while True:
            line = self._fh.readline()
            if not line:
                raise ConfigError(
                    f"service at {self.spec!r} closed the connection")
            reply = json.loads(line)
            if "event" in reply and "done" not in reply:
                if on_event is not None:
                    on_event(reply["event"])
                continue
            return reply

    # -- conveniences --------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def submit(
        self,
        campaign: dict[str, Any],
        wait: bool = True,
        include_results: bool = False,
        on_event: Callable[[dict[str, Any]], None] | None = None,
    ) -> dict[str, Any]:
        return self.request(
            "submit", campaign=campaign, wait=wait,
            include_results=include_results,
            stream=on_event is not None, on_event=on_event,
        )

    def status(self, job: str | None = None) -> dict[str, Any]:
        return self.request("status", **({"job": job} if job else {}))

    def result(self, job: str) -> dict[str, Any]:
        return self.request("result", job=job)

    def stats(self) -> dict[str, Any]:
        return self.request("stats")

    def shutdown(self) -> dict[str, Any]:
        return self.request("shutdown")
