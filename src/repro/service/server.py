"""Always-on campaign service: asyncio job queue over the shared pool.

``repro serve`` turns the one-shot sweep executor into a resident
orchestration layer:

* **job queue** — connections submit campaign specs (sweep / table1 /
  chaos / selftest); jobs run FIFO, one at a time, each fanning its
  tasks over the shared work-stealing pool (worker slots are a
  service-wide resource, so running jobs concurrently would only
  interleave the same slots);
* **persistent workers** — one :class:`WorkStealingScheduler` lives for
  the whole service lifetime; its process pool survives between jobs
  (no per-campaign pool spin-up) and is rebuilt automatically if a task
  hard-crashes it;
* **result cache** — every job shares one content-addressed
  :class:`ResultCache`, so resubmitting an identical campaign returns
  stored results without touching the pool.

The wire protocol is JSON-lines over a Unix socket or localhost TCP.
Each request is one JSON object with an ``op``; the server replies with
zero or more ``{"event": ...}`` lines (task progress, for waiting
submits) followed by exactly one final object carrying ``"done": true``.
Ops: ``submit``, ``status``, ``result``, ``stats``, ``ping``,
``shutdown``.

Pool start method: jobs execute in a worker thread (to keep the event
loop responsive), and forking from a threaded process is unsafe — the
service therefore defaults to ``forkserver`` (or ``spawn``) rather than
the repo-wide ``fork`` pin.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
from typing import Any

from .cache import ResultCache
from .jobs import run_campaign_job, validate_spec
from .scheduler import WorkStealingScheduler

__all__ = ["CampaignService", "serve"]

#: completed-job documents retained in memory (oldest evicted first)
KEEP_RESULTS = 64


def _service_mp_method() -> str:
    """Thread-safe start method: forkserver where available, else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return "forkserver" if "forkserver" in methods else "spawn"


class Job:
    """One queued campaign submission."""

    __slots__ = ("id", "spec", "state", "doc", "error", "done",
                 "subscribers")

    def __init__(self, job_id: str, spec: dict[str, Any]):
        self.id = job_id
        self.spec = spec
        self.state = "queued"  # queued -> running -> done | failed
        self.doc: dict[str, Any] | None = None
        self.error: str | None = None
        self.done = asyncio.Event()
        #: live task-event fan-out to waiting connections
        self.subscribers: set[asyncio.Queue] = set()

    def brief(self) -> dict[str, Any]:
        out: dict[str, Any] = {"job": self.id, "state": self.state,
                               "kind": self.spec.get("kind")}
        if self.error:
            out["error"] = self.error
        if self.doc is not None:
            out["summary"] = self.doc["summary"]
        return out


class CampaignService:
    """The resident orchestrator behind ``repro serve``."""

    def __init__(self, workers: int = 2, cache: ResultCache | None = None,
                 mp_method: str | None = None, keep_results: int = KEEP_RESULTS):
        from ..obs import MetricsRegistry

        self.workers = max(1, int(workers))
        self.cache = cache
        #: service-lifetime accounting registry (cache hits/misses, work
        #: stealing, job tallies) — separate from per-job simulation obs
        self.registry = MetricsRegistry()
        self.scheduler = WorkStealingScheduler(
            self.workers, mp_method=mp_method or _service_mp_method(),
            obs=self.registry)
        self.keep_results = keep_results
        self.jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._queue: asyncio.Queue[Job] = asyncio.Queue()
        self._next_id = 0
        self._runner: asyncio.Task | None = None
        self._stopping = asyncio.Event()

    # -- job lifecycle -------------------------------------------------
    def submit(self, spec: dict[str, Any]) -> Job:
        """Validate and enqueue a campaign spec (raises ConfigError)."""
        spec = validate_spec(spec)
        self._next_id += 1
        job = Job(f"job-{self._next_id:06d}", spec)
        self.jobs[job.id] = job
        self._order.append(job.id)
        while len(self._order) > max(self.keep_results, 1):
            old = self._order.pop(0)
            stale = self.jobs.get(old)
            if stale is not None and stale.done.is_set():
                del self.jobs[old]
            else:  # still queued/running: keep it, stop evicting
                self._order.insert(0, old)
                break
        self._queue.put_nowait(job)
        self.registry.counter("service.jobs", ("state",)).inc(
            labels=("submitted",))
        return job

    async def _run_jobs(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._stopping.is_set():
            get = asyncio.create_task(self._queue.get())
            stop = asyncio.create_task(self._stopping.wait())
            done, pending = await asyncio.wait(
                {get, stop}, return_when=asyncio.FIRST_COMPLETED)
            for task in pending:
                task.cancel()
            if get not in done:
                break
            job = get.result()
            job.state = "running"

            def on_event(event: dict[str, Any], job: Job = job) -> None:
                # called from the job thread; hop onto the loop
                loop.call_soon_threadsafe(self._publish, job, event)

            try:
                job.doc = await asyncio.to_thread(
                    run_campaign_job, job.spec, self.workers,
                    self.cache, self.scheduler, self.registry, on_event,
                )
                job.state = "done"
                self.registry.counter("service.jobs", ("state",)).inc(
                    labels=("done",))
            except Exception as exc:  # noqa: BLE001 — job isolation
                job.state = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
                self.registry.counter("service.jobs", ("state",)).inc(
                    labels=("failed",))
            job.done.set()
            self._publish(job, None)  # wake subscribers for the finale

    def _publish(self, job: Job, event: dict[str, Any] | None) -> None:
        for queue in list(job.subscribers):
            queue.put_nowait(event)

    # -- stats ---------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        jobs_counter = self.registry.counter("service.jobs", ("state",))
        out: dict[str, Any] = {
            "workers": self.workers,
            "mp_method": self.scheduler.mp_method,
            "jobs": {
                "submitted": int(jobs_counter.get(("submitted",))),
                "done": int(jobs_counter.get(("done",))),
                "failed": int(jobs_counter.get(("failed",))),
                "queued": self._queue.qsize(),
            },
            "steals": int(self.registry.counter("service.steals").get()),
            "leases": int(self.registry.counter("service.leases").get()),
            "tasks_lost": int(
                self.registry.counter("service.tasks_lost").get()),
            "cache": self.cache.stats() if self.cache is not None else None,
        }
        return out

    # -- wire protocol -------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        async def send(obj: dict[str, Any]) -> None:
            writer.write(json.dumps(obj, sort_keys=True).encode() + b"\n")
            await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                except ValueError:
                    await send({"ok": False, "error": "bad JSON",
                                "done": True})
                    continue
                try:
                    stop = await self._dispatch(request, send)
                except Exception as exc:  # noqa: BLE001 — protocol guard
                    await send({"ok": False, "done": True,
                                "error": f"{type(exc).__name__}: {exc}"})
                    continue
                if stop:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: dict[str, Any], send) -> bool:
        op = request.get("op")
        if op == "ping":
            await send({"ok": True, "pong": True, "done": True})
        elif op == "submit":
            await self._op_submit(request, send)
        elif op == "status":
            job_id = request.get("job")
            if job_id:
                job = self.jobs.get(job_id)
                if job is None:
                    await send({"ok": False, "done": True,
                                "error": f"unknown job {job_id!r}"})
                    return False
                await send({"ok": True, "done": True, **job.brief()})
            else:
                await send({"ok": True, "done": True,
                            "jobs": [self.jobs[j].brief()
                                     for j in self._order]})
        elif op == "result":
            job = self.jobs.get(request.get("job", ""))
            if job is None or job.doc is None:
                await send({"ok": False, "done": True,
                            "error": "no such finished job"})
            else:
                await send({"ok": True, "done": True, **job.brief(),
                            "results": job.doc["results"],
                            "obs": job.doc["obs"]})
        elif op == "stats":
            await send({"ok": True, "done": True, "stats": self.stats()})
        elif op == "shutdown":
            await send({"ok": True, "done": True, "stopping": True})
            self._stopping.set()
            return True
        else:
            await send({"ok": False, "done": True,
                        "error": f"unknown op {op!r}"})
        return False

    async def _op_submit(self, request: dict[str, Any], send) -> None:
        from ..errors import ConfigError

        try:
            job = self.submit(request.get("campaign") or {})
        except ConfigError as exc:
            await send({"ok": False, "done": True, "error": str(exc)})
            return
        if not request.get("wait", True):
            await send({"ok": True, "done": True, "job": job.id,
                        "state": job.state})
            return
        events: asyncio.Queue = asyncio.Queue()
        job.subscribers.add(events)
        try:
            if request.get("stream", True):
                while not job.done.is_set():
                    event = await events.get()
                    if event is None:
                        break
                    await send({"event": event})
            else:
                await job.done.wait()
        finally:
            job.subscribers.discard(events)
        reply: dict[str, Any] = {"ok": job.state == "done", "done": True,
                                 **job.brief()}
        if job.doc is not None and request.get("include_results"):
            reply["results"] = job.doc["results"]
            reply["obs"] = job.doc["obs"]
        await send(reply)

    # -- lifecycle -----------------------------------------------------
    async def serve(self, socket_path: str | None = None,
                    host: str = "127.0.0.1", port: int = 7723,
                    ready: Any = None) -> None:
        """Listen until a ``shutdown`` op (or task cancellation).

        ``ready`` is an optional ``threading.Event`` set once the socket
        is bound (used by in-thread test servers)."""
        self._runner = asyncio.ensure_future(self._run_jobs())
        if socket_path:
            server = await asyncio.start_unix_server(
                self._handle, path=socket_path)
            where = socket_path
        else:
            server = await asyncio.start_server(self._handle, host, port)
            where = f"{host}:{port}"
        print(f"repro service listening on {where} "
              f"(workers={self.workers}, "
              f"cache={'on' if self.cache else 'off'})", flush=True)
        if ready is not None:
            ready.set()
        try:
            async with server:
                await self._stopping.wait()
        finally:
            self._stopping.set()
            if self._runner is not None:
                self._runner.cancel()
                try:
                    await self._runner
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass
            self.scheduler.close()

    def shutdown(self) -> None:
        self._stopping.set()


def serve(socket_path: str | None = None, host: str = "127.0.0.1",
          port: int = 7723, workers: int = 2,
          cache_dir: str | None = None, no_cache: bool = False,
          mp_method: str | None = None) -> int:
    """Blocking entry point for ``repro serve``."""
    cache = None if no_cache else ResultCache(cache_dir)
    service = CampaignService(workers=workers, cache=cache,
                              mp_method=mp_method)
    try:
        asyncio.run(service.serve(socket_path=socket_path, host=host,
                                  port=port))
    except KeyboardInterrupt:
        pass
    return 0
