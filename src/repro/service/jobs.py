"""Campaign specifications and the job runner shared by service + CLI.

A *campaign spec* is a plain JSON mapping — what ``repro submit`` sends
over the wire and what the service queues.  :func:`run_campaign_job`
executes one spec synchronously (the server calls it from a worker
thread) and returns a plain-data job document:

* ``summary`` — tallies plus cache/steal accounting and two content
  digests (``results_digest``, ``obs_digest``) that let a client assert
  byte-identity of a warm resubmission against its cold run without
  shipping the full documents;
* ``results`` — the same structured document ``repro sweep --out``
  writes (:func:`repro.sweep.results_document`), or the chaos campaign
  report for ``kind: chaos``;
* ``obs`` — the merged simulation registry's metrics export (JSONL).
  Cache/steal accounting deliberately lands in the *service-level*
  registry, never this one, so ``obs`` is byte-identical between a cold
  run and a 100%-hit re-run.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable

from ..errors import ConfigError

__all__ = ["CAMPAIGN_KINDS", "run_campaign_job", "validate_spec"]

CAMPAIGN_KINDS = ("sweep", "table1", "chaos", "selftest")

#: accepted spec fields per kind (beyond "kind"); everything optional
_SPEC_FIELDS: dict[str, tuple[str, ...]] = {
    "table1": ("kernels", "ranks", "clusters", "niters", "base_seed",
               "timeseries"),
    "sweep": ("scenario", "ranks", "clusters", "niters", "runs",
              "base_seed", "timeseries"),
    "chaos": ("trials", "seed", "kernels", "max_failures", "allow_no_log",
              "shrink"),
    "selftest": ("tasks", "base_seed"),
}


def _one(value: Any, default: int) -> int:
    """First element of a possibly-list numeric field."""
    if value is None:
        return default
    if isinstance(value, (list, tuple)):
        value = value[0] if value else default
    return int(value)


def _many(value: Any, default: list[int]) -> list[int]:
    if value is None:
        return list(default)
    if isinstance(value, (list, tuple)):
        return [int(v) for v in value]
    return [int(value)]


def validate_spec(spec: dict[str, Any]) -> dict[str, Any]:
    """Check a campaign spec's shape; returns a normalized copy."""
    if not isinstance(spec, dict):
        raise ConfigError("campaign spec must be a JSON object")
    kind = spec.get("kind")
    if kind not in CAMPAIGN_KINDS:
        raise ConfigError(
            f"unknown campaign kind {kind!r} (have {CAMPAIGN_KINDS})")
    allowed = set(_SPEC_FIELDS[kind]) | {"kind"}
    unknown = sorted(set(spec) - allowed)
    if unknown:
        raise ConfigError(
            f"unknown spec field(s) for kind {kind!r}: {', '.join(unknown)}")
    return dict(spec)


def _digest(text: str) -> str:
    return hashlib.blake2b(text.encode(), digest_size=16).hexdigest()


def _build_tasks(spec: dict[str, Any]):
    """(fn, tasks, base_seed, name) for the non-chaos kinds."""
    from .. import campaigns

    kind = spec["kind"]
    if kind == "table1":
        kernels = spec.get("kernels") or ["CG", "FT"]
        tasks = campaigns.table1_tasks(
            kernels, _many(spec.get("ranks"), [16]),
            _many(spec.get("clusters"), [4]), _one(spec.get("niters"), 8))
        return campaigns.table1_cell, tasks, _one(spec.get("base_seed"), 0)
    if kind == "sweep":
        scenario = spec.get("scenario", "failures")
        if scenario == "table1":
            from ..apps import TABLE1_KERNELS

            niters = max(2, _one(spec.get("niters"), 40) // 5)
            tasks = campaigns.table1_tasks(
                sorted(TABLE1_KERNELS), [_one(spec.get("ranks"), 8)],
                [_one(spec.get("clusters"), 2)], niters)
            return campaigns.table1_cell, tasks, _one(spec.get("base_seed"), 0)
        if scenario != "failures":
            raise ConfigError(f"unknown sweep scenario {scenario!r}")
        tasks = campaigns.failure_tasks(
            _one(spec.get("runs"), 8), _one(spec.get("ranks"), 8),
            _one(spec.get("clusters"), 2), _one(spec.get("niters"), 40))
        return campaigns.failure_scenario, tasks, _one(spec.get("base_seed"), 0)
    # selftest
    tasks = campaigns.selftest_tasks(_one(spec.get("tasks"), 8))
    return campaigns.selftest_cell, tasks, _one(spec.get("base_seed"), 0)


def run_campaign_job(
    spec: dict[str, Any],
    workers: int = 1,
    cache: Any = None,
    scheduler: Any = None,
    service_obs: Any = None,
    on_event: Callable[[dict[str, Any]], None] | None = None,
    collect_obs: bool = True,
) -> dict[str, Any]:
    """Execute one campaign spec; returns the job document.

    Runs synchronously (the asyncio server offloads it to a thread).
    ``scheduler`` is the resident work-stealing pool to reuse;
    ``service_obs`` the service-lifetime accounting registry.
    """
    from ..obs import MetricsRegistry, dump_metrics

    spec = validate_spec(spec)
    kind = spec["kind"]
    registry = MetricsRegistry(
        timeseries_interval=spec.get("timeseries"))
    cache_before = cache.stats() if cache is not None else None

    def emit(event: dict[str, Any]) -> None:
        if on_event is not None:
            on_event(event)

    def on_progress(result: Any) -> None:
        emit({
            "kind": "task_done", "index": result.index, "name": result.name,
            "status": result.status, "cached": bool(result.cached),
            "duration_s": round(result.duration, 6),
        })

    if kind == "chaos":
        from ..chaos import run_campaign

        report = run_campaign(
            _one(spec.get("trials"), 50), seed=_one(spec.get("seed"), 0),
            workers=workers,
            kernels=tuple(spec["kernels"]) if spec.get("kernels") else None,
            max_failures=_one(spec.get("max_failures"), 4),
            allow_no_log=bool(spec.get("allow_no_log", True)),
            shrink=_one(spec.get("shrink"), 0),
            obs=registry, on_progress=on_progress,
            cache=cache, scheduler=scheduler, service_obs=service_obs,
        )
        results_doc: dict[str, Any] = report.to_json()
        tasks = report.trials
        ok = report.passed
        errors = report.failed + report.errors
    else:
        from ..sweep import results_document, run_sweep

        fn, tasks_list, base_seed = _build_tasks(spec)
        results = run_sweep(
            fn, tasks_list, workers=workers, base_seed=base_seed,
            obs=registry, collect_obs=collect_obs,
            timeseries=spec.get("timeseries"),
            on_progress=on_progress, cache=cache, scheduler=scheduler,
            service_obs=service_obs,
        )
        results_doc = results_document(results, sweep_name=kind)
        tasks = len(results)
        ok = sum(1 for r in results if r.ok)
        errors = tasks - ok

    obs_export = dump_metrics(registry, "jsonl")
    cache_stats = None
    if cache is not None:
        after = cache.stats()
        cache_stats = {k: after[k] - cache_before.get(k, 0)
                       for k in ("hits", "misses", "stores", "unkeyable")}
    steals = leases = 0
    if service_obs is not None and getattr(service_obs, "enabled", False):
        steals = int(service_obs.counter("service.steals").get())
        leases = int(service_obs.counter("service.leases").get())
    results_json = json.dumps(results_doc, sort_keys=True,
                              separators=(",", ":"))
    summary = {
        "campaign": kind,
        "tasks": tasks,
        "ok": ok,
        "errors": errors,
        "cache": cache_stats,
        "steals_total": steals,
        "leases_total": leases,
        "results_digest": _digest(results_json),
        "obs_digest": _digest(obs_export),
    }
    return {"summary": summary, "results": results_doc, "obs": obs_export}
