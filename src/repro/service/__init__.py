"""Always-on campaign service (``repro.service``).

The one-shot sweep executor grown into a resident orchestration layer:

* :mod:`~repro.service.scheduler` — work-stealing workers leasing tasks
  from per-worker deques over a persistent process pool, with
  hard-crash detection and retry;
* :mod:`~repro.service.cache` — content-addressed result cache keyed by
  blake2b of (code digest, task seed, canonical params);
* :mod:`~repro.service.server` / :mod:`~repro.service.client` — the
  asyncio job-queue service (``repro serve``) and its JSONL client
  (``repro submit``);
* :mod:`~repro.service.jobs` — campaign specs and the job runner shared
  by the service and the one-shot CLI.

See ``docs/service.md`` for queue/lease/cache semantics.
"""

from .cache import (
    CacheUnkeyable,
    ResultCache,
    cache_key,
    canonical_params,
    code_digest,
    register_code_deps,
)
from .client import ServiceClient
from .jobs import CAMPAIGN_KINDS, run_campaign_job, validate_spec
from .scheduler import SchedulerOutcome, WorkStealingScheduler
from .server import CampaignService, serve

__all__ = [
    "CAMPAIGN_KINDS",
    "CacheUnkeyable",
    "CampaignService",
    "ResultCache",
    "SchedulerOutcome",
    "ServiceClient",
    "WorkStealingScheduler",
    "cache_key",
    "canonical_params",
    "code_digest",
    "register_code_deps",
    "run_campaign_job",
    "serve",
    "validate_spec",
]
