"""Content-addressed result cache for sweep/campaign tasks.

Every task the executors run is a *pure function* of ``(code, seed,
params)``: the simulations are deterministic by construction (that is
the paper's premise, and the certifier enforces it), and the per-task
seed from :func:`repro.sweep.task_seed` is itself content-addressed.
That makes result caching sound: if the code digest, the seed and the
canonicalized parameters match, the task would produce the same
:class:`~repro.sweep.SweepResult` — including its observability
snapshot — so returning the stored one is indistinguishable from
re-running it.

Cache key
---------
``blake2b-128`` over a canonical JSON document::

    {"v": 1, "code": <code digest>, "seed": <task seed>,
     "params": <canonical params>, "opts": {...execution options...}}

* **code digest** — blake2b over the task function's source plus, for
  every kernel class the task depends on, the MRO code digest from the
  send-determinism certifier (:func:`repro.lint.certify.
  current_kernel_digest`): editing a kernel — or a base class it
  inherits ``run`` from — invalidates its cached cells.  Task functions
  declare their kernel dependencies through :func:`register_code_deps`
  (keyed by qualified name, so registration needs no imports); tasks
  with a ``params["kernel"]`` naming a Table-1 kernel are resolved
  automatically.
* **seed** — the injected per-task seed (which already encodes the
  campaign base seed, task index and task name).
* **params** — strict-canonical JSON of the task's params: sorted keys,
  no whitespace, and *refusing* (rather than papering over) any value
  that does not round-trip — colliding stringified dict keys or objects
  that only ``repr()`` (reprs can embed memory addresses, which would
  make "identical" params hash differently).  Unkeyable tasks simply
  bypass the cache.
* **opts** — execution options that change the result's *shape*:
  ``collect_obs``, the ``timeseries`` interval, and whether the runtime
  sanitizer is armed (a sanitized run must never satisfy an unsanitized
  request, or vice versa — the invariant counters differ).

Keys are start-method invariant (pure content hashing, no ``hash()`` /
``id()``), so a cache written by a fork pool is valid for a spawn pool
and across hosts — asserted by the fork/spawn invariance test.

Storage
-------
In-memory store plus an optional on-disk layer (``<dir>/<k[:2]>/<k>.pkl``,
atomic ``os.replace`` writes) so a restarted service — or a second CI
job — keeps its hits.  Entries are pickled ``SweepResult`` objects;
``get`` unpickles a fresh copy per call, so callers can mutate results
without corrupting the cache.  Only trust cache directories you wrote:
unpickling executes code.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from typing import Any, Callable, Iterable

__all__ = [
    "CacheUnkeyable",
    "ResultCache",
    "cache_key",
    "canonical_params",
    "code_digest",
    "register_code_deps",
]

#: bump when the key document layout changes
KEY_SCHEMA_VERSION = 1


class CacheUnkeyable(ValueError):
    """Raised when params cannot be canonicalized unambiguously."""


# ----------------------------------------------------------------------
# Canonical params
# ----------------------------------------------------------------------
#: params entries injected by the executor, not part of the task identity
INJECTED_PARAMS = ("obs", "seed")


def canonical_params(params: dict[str, Any]) -> str:
    """Strict canonical JSON for a task's params.

    Uses the sweep executor's strict ``_jsonable`` mode: stringified
    dict-key collisions and repr-only objects raise
    :class:`CacheUnkeyable` instead of producing an ambiguous key.
    """
    from ..sweep.executor import _jsonable

    cleaned = {k: v for k, v in params.items() if k not in INJECTED_PARAMS}
    try:
        data = _jsonable(cleaned, strict=True)
    except ValueError as exc:
        raise CacheUnkeyable(str(exc)) from exc
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Code digest
# ----------------------------------------------------------------------
#: "module.qualname" of a task fn -> resolver(params) -> kernel classes
_DEP_RESOLVERS: dict[str, Callable[[dict[str, Any]], Iterable[type]]] = {}


def register_code_deps(
    qualname: str, resolver: Callable[[dict[str, Any]], Iterable[type]]
) -> None:
    """Declare which kernel classes a task function's results depend on.

    ``qualname`` is ``f"{fn.__module__}.{fn.__qualname__}"`` — a string,
    so registration sites need not import the function's module (and the
    resolver itself may import lazily)."""
    _DEP_RESOLVERS[qualname] = resolver


def _default_deps(params: dict[str, Any]) -> Iterable[type]:
    kernel = params.get("kernel")
    if isinstance(kernel, str):
        from ..apps import TABLE1_KERNELS

        cls = TABLE1_KERNELS.get(kernel)
        if cls is not None:
            return (cls,)
    return ()


def _fn_source(fn: Callable[..., Any]) -> str:
    import inspect

    try:
        return inspect.getsource(fn)
    except (OSError, TypeError):
        return ""


def _kernel_digest(cls: type) -> str:
    """MRO code digest of a kernel class, with a stable fallback."""
    from ..lint.certify import current_kernel_digest

    digest = current_kernel_digest(cls)
    if digest is None:  # no source (REPL class): identity only
        digest = f"unversioned:{cls.__module__}.{cls.__qualname__}"
    return digest


def code_digest(fn: Callable[..., Any], params: dict[str, Any]) -> str:
    """Digest of the code a task's result depends on.

    Covers the task function's own source and the certifier MRO digest
    of every declared kernel dependency.  Helpers the function calls are
    *not* transitively hashed — ``docs/service.md`` spells out the
    contract (bump the function, or clear the cache, when shared
    helpers change semantics)."""
    qualname = f"{fn.__module__}.{fn.__qualname__}"
    resolver = _DEP_RESOLVERS.get(qualname, _default_deps)
    h = hashlib.blake2b(digest_size=16)
    h.update(qualname.encode())
    h.update(b"\x00")
    h.update(_fn_source(fn).encode())
    for cls in sorted(resolver(params), key=lambda c: c.__qualname__):
        h.update(b"\x00")
        h.update(_kernel_digest(cls).encode())
    return h.hexdigest()


def _sanitize_armed() -> bool:
    from ..lint.sanitize import ENV_VAR

    return os.environ.get(ENV_VAR, "") not in ("", "0")


def cache_key(
    fn: Callable[..., Any],
    params: dict[str, Any],
    seed: int,
    collect_obs: bool = False,
    timeseries: float | None = None,
) -> str:
    """The content address of one task execution (raises
    :class:`CacheUnkeyable` when params cannot be canonicalized)."""
    doc = {
        "v": KEY_SCHEMA_VERSION,
        "code": code_digest(fn, params),
        "seed": int(seed),
        "params": canonical_params(params),
        "opts": {
            "collect_obs": bool(collect_obs),
            "timeseries": timeseries,
            "sanitize": _sanitize_armed(),
        },
    }
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------
class ResultCache:
    """In-memory + optional on-disk content-addressed result store."""

    def __init__(self, path: str | None = None):
        self.path = path
        self._memory: dict[str, bytes] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.unkeyable = 0
        if path:
            os.makedirs(path, exist_ok=True)

    # -- keys ----------------------------------------------------------
    def key_for(
        self,
        fn: Callable[..., Any],
        params: dict[str, Any],
        seed: int,
        collect_obs: bool = False,
        timeseries: float | None = None,
    ) -> str | None:
        """:func:`cache_key`, or ``None`` (counted) when unkeyable."""
        try:
            return cache_key(fn, params, seed,
                             collect_obs=collect_obs, timeseries=timeseries)
        except CacheUnkeyable:
            self.unkeyable += 1
            return None

    # -- storage -------------------------------------------------------
    def _file_for(self, key: str) -> str | None:
        if not self.path:
            return None
        return os.path.join(self.path, key[:2], key + ".pkl")

    def get(self, key: str | None) -> Any | None:
        """A *fresh copy* of the stored result, or ``None`` on miss."""
        if key is None:
            self.misses += 1
            return None
        blob = self._memory.get(key)
        if blob is None:
            fname = self._file_for(key)
            if fname is not None:
                try:
                    with open(fname, "rb") as fh:
                        blob = fh.read()
                except OSError:
                    blob = None
                if blob is not None:
                    self._memory[key] = blob
        if blob is None:
            self.misses += 1
            return None
        try:
            value = pickle.loads(blob)
        except Exception:  # corrupt entry: treat as miss  # noqa: BLE001
            self._memory.pop(key, None)
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str | None, result: Any) -> None:
        if key is None:
            return
        blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        self._memory[key] = blob
        self.stores += 1
        fname = self._file_for(key)
        if fname is None:
            return
        os.makedirs(os.path.dirname(fname), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(fname),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, fname)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- reporting -----------------------------------------------------
    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "unkeyable": self.unkeyable,
            "entries_memory": len(self._memory),
        }
