"""BT — block-tridiagonal ADI communication pattern (NPB BT).

NPB BT advances a 3-D CFD discretisation with Alternating Direction
Implicit sweeps: each time step solves block-tridiagonal systems along x,
then y, then z.  On the (multi-partitioned square) process grid this means
directional **pipelines**: a forward-elimination pass flows across the
grid row (west → east: receive upstream boundary, factor, send
downstream), a back-substitution pass flows back (east → west), and the
same pair runs along columns for the y sweep; the z sweep is rank-local
under the 2-D decomposition we use.  BT sends relatively few, relatively
large messages per step (SP, its scalar sibling, sends more and smaller —
see :mod:`repro.apps.sp`).
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ..simmpi.api import MpiApi
from ..simmpi.topology import CartGrid, balanced_dims
from .base import RankProgram

__all__ = ["ADIKernel", "BTKernel"]


class ADIKernel(RankProgram):
    """Shared ADI sweep skeleton for BT and SP.

    Parameters
    ----------
    niters:
        Time steps.
    block:
        Local block edge length.
    sweeps_per_dir:
        Pipelined sub-sweeps per direction per step (1 for BT's blocked
        solves; >1 for SP's scalar penta-diagonal factor/solve stages).
    """

    TAG_FWD_X, TAG_BWD_X = 400, 401
    TAG_FWD_Y, TAG_BWD_Y = 402, 403

    def __init__(self, rank: int, size: int, niters: int = 8, block: int = 6,
                 sweeps_per_dir: int = 1, compute_time: float = 0.0):
        super().__init__(rank, size)
        self.grid = CartGrid(balanced_dims(size, 2), periodic=False)
        self.sweeps_per_dir = sweeps_per_dir
        self.compute_time = compute_time
        rng = np.random.default_rng(1313 + rank)
        self.state = {
            "it": 0,
            "niters": niters,
            "u": rng.standard_normal((block, block)) * 0.1,
            "rms": 0.0,
        }

    def _sweep(self, api: MpiApi, up: int | None, down: int | None,
               tag_fwd: int, tag_bwd: int):
        """One forward-elimination + back-substitution pipeline pass."""
        st = self.state
        u = st["u"]
        boundary = np.zeros(u.shape[1])
        # forward elimination: upstream boundary flows downstream
        if up is not None:
            boundary = yield api.recv(up, tag=tag_fwd)
        u = 0.85 * u + 0.15 * boundary
        if self.compute_time:
            yield api.compute(self.compute_time)
        if down is not None:
            yield api.send(down, u[-1, :].copy(), tag=tag_fwd)
        # back substitution: solution flows back upstream
        back = np.zeros(u.shape[1])
        if down is not None:
            back = yield api.recv(down, tag=tag_bwd)
        u = u + 0.05 * back
        if up is not None:
            yield api.send(up, u[0, :].copy(), tag=tag_bwd)
        st["u"] = u
        return None

    def run(self, api: MpiApi) -> Generator[Any, Any, None]:
        g = self.grid
        north = g.shift(api.rank, 0, -1)
        south = g.shift(api.rank, 0, +1)
        west = g.shift(api.rank, 1, -1)
        east = g.shift(api.rank, 1, +1)
        st = self.state
        while st["it"] < st["niters"]:
            for _ in range(self.sweeps_per_dir):  # x sweep along the row
                yield from self._sweep(api, west, east, self.TAG_FWD_X, self.TAG_BWD_X)
            for _ in range(self.sweeps_per_dir):  # y sweep along the column
                yield from self._sweep(api, north, south, self.TAG_FWD_Y, self.TAG_BWD_Y)
            # z sweep is local under the 2-D decomposition
            st["u"] = np.tanh(st["u"])
            st["rms"] = yield from api.allreduce(float((st["u"] ** 2).sum()))
            st["it"] += 1
            yield api.maybe_checkpoint()

    def result(self) -> dict[str, Any]:
        return {"u": self.state["u"], "rms": self.state["rms"]}


class BTKernel(ADIKernel):
    """BT: one blocked solve per direction per step, larger payloads."""

    def __init__(self, rank: int, size: int, niters: int = 8, block: int = 8,
                 compute_time: float = 0.0):
        super().__init__(rank, size, niters=niters, block=block,
                         sweeps_per_dir=1, compute_time=compute_time)
