"""Two-rank NetPIPE-style ping-pong (Fig. 6's workload).

Rank 0 sends a buffer of ``size`` bytes to rank 1, which bounces it back;
``reps`` round trips per size, over a sweep of message sizes.  The world's
timing model (plus the protocol's overhead knobs in
:mod:`repro.netmodel`) turns the measured virtual round-trip times into
the latency/bandwidth curves of Fig. 6.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ..errors import ConfigError
from ..simmpi.api import MpiApi
from .base import RankProgram

__all__ = ["PingPong", "DEFAULT_SIZES"]

#: NetPIPE-like size sweep: 1 B ... 8 MiB in powers of two
DEFAULT_SIZES = [1 << k for k in range(0, 24)]


class PingPong(RankProgram):
    """Rank 0 <-> rank 1 round trips; other ranks idle.

    ``state['timings']`` maps message size to the mean one-way time
    (half round trip), measured in virtual seconds on rank 0.
    """

    TAG_PING, TAG_PONG = 500, 501

    def __init__(self, rank: int, size: int, sizes: list[int] | None = None,
                 reps: int = 3):
        super().__init__(rank, size)
        if size < 2:
            raise ConfigError("ping-pong needs two ranks")
        self.sizes = list(sizes or DEFAULT_SIZES)
        self.reps = reps
        self.state = {"idx": 0, "timings": {}}

    def run(self, api: MpiApi) -> Generator[Any, Any, None]:
        if api.rank > 1:
            return
        while self.state["idx"] < len(self.sizes):
            size = self.sizes[self.state["idx"]]
            payload = np.zeros(max(1, size // 8), dtype=np.float64)
            if api.rank == 0:
                start = yield api.now()
                for _ in range(self.reps):
                    yield api.send(1, payload, tag=self.TAG_PING, size=size)
                    payload = yield api.recv(1, tag=self.TAG_PONG)
                end = yield api.now()
                self.state["timings"][size] = (end - start) / (2 * self.reps)
            else:
                for _ in range(self.reps):
                    payload = yield api.recv(0, tag=self.TAG_PING)
                    yield api.send(0, payload, tag=self.TAG_PONG, size=size)
            self.state["idx"] += 1
            yield api.maybe_checkpoint()

    def result(self) -> dict[int, float]:
        return dict(self.state["timings"])
