"""IS — parallel integer (bucket) sort communication pattern (NPB IS).

NPB IS ranks a large array of small integers: each iteration computes
local key histograms, combines them with an **all-reduce**, derives the
bucket boundaries, and redistributes the keys with an **all-to-all(v)**.
Communication-wise it sits between FT (dense all-to-all) and the stencil
kernels: dense but volume-skewed by the key distribution.

Not part of the paper's Table I set (they ran the five class-D-capable
kernels), included as an extension workload: its alltoall payloads are
data-dependent in *size* but the send sequence (who-to-whom, per
iteration) is fixed — a useful edge case for the send-determinism
contract, which constrains the message sequence, not the byte counts.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ..simmpi.api import MpiApi
from .base import RankProgram

__all__ = ["ISKernel"]


class ISKernel(RankProgram):
    """Bucket sort with the NPB IS schedule.

    Parameters
    ----------
    niters:
        Ranking iterations (NPB IS runs 10).
    keys_per_rank:
        Local key count.
    max_key:
        Key range; buckets are ``max_key / size`` wide.
    """

    def __init__(self, rank: int, size: int, niters: int = 5,
                 keys_per_rank: int = 64, max_key: int = 1 << 11,
                 compute_time: float = 0.0):
        super().__init__(rank, size)
        self.max_key = max_key
        self.compute_time = compute_time
        rng = np.random.default_rng(1000 + rank)
        self.state = {
            "it": 0,
            "niters": niters,
            "keys": rng.integers(0, max_key, size=keys_per_rank,
                                 dtype=np.int64),
            "checksum": 0,
        }

    def run(self, api: MpiApi) -> Generator[Any, Any, None]:
        st = self.state
        width = self.max_key // api.size or 1
        while st["it"] < st["niters"]:
            keys = st["keys"]
            # local histogram over P coarse buckets + global combine
            local_counts = np.bincount(
                np.minimum(keys // width, api.size - 1), minlength=api.size
            )
            total_counts = yield from api.allreduce(local_counts)
            if self.compute_time:
                yield api.compute(self.compute_time)
            # redistribute: bucket b goes to rank b
            buckets = [
                np.sort(keys[np.minimum(keys // width, api.size - 1) == b])
                for b in range(api.size)
            ]
            received = yield from api.alltoall(buckets)
            merged = np.sort(np.concatenate(received)) if received else keys
            # verify bucketing against the global histogram
            assert len(merged) == int(total_counts[api.rank])
            # next iteration permutes the keys deterministically so the
            # traffic pattern varies across iterations (NPB re-ranks
            # modified keys each iteration)
            st["keys"] = (merged * 5 + st["it"] + api.rank) % self.max_key
            st["checksum"] = yield from api.allreduce(int(merged.sum()))
            st["it"] += 1
            yield api.maybe_checkpoint()

    def result(self) -> dict[str, Any]:
        return {"checksum": self.state["checksum"]}
