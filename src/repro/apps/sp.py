"""SP — scalar penta-diagonal ADI communication pattern (NPB SP).

SP is BT's scalar sibling: the same ADI sweep structure on the same square
process grid, but the penta-diagonal solver splits each directional solve
into more pipeline stages exchanging smaller messages (NPB SP communicates
roughly 2-3x as many messages per step as BT, each a few times smaller).
We model that with ``sweeps_per_dir=3`` and a smaller block size.
"""

from __future__ import annotations

from .bt import ADIKernel

__all__ = ["SPKernel"]


class SPKernel(ADIKernel):
    """SP: three pipelined sub-sweeps per direction, smaller payloads."""

    def __init__(self, rank: int, size: int, niters: int = 8, block: int = 4,
                 compute_time: float = 0.0):
        super().__init__(rank, size, niters=niters, block=block,
                         sweeps_per_dir=3, compute_time=compute_time)
