"""CG — conjugate-gradient kernel communication pattern (NPB CG).

NPB CG distributes a sparse SPD matrix over a ``nprows x npcols`` process
grid (both powers of two).  Each CG iteration performs:

* a **row butterfly**: ``log2(npcols)`` pairwise exchange steps among the
  processes of a row (recursive doubling) to reduce the partial
  matrix-vector products — this produces the block-diagonal squares of the
  paper's Fig. 8 (left);
* a **transpose exchange** with the symmetric grid position (swap of row
  and column indices) to redistribute the result vector — the off-diagonal
  bands in Fig. 8;
* scalar **all-reduces** (``p.q`` and ``rho``) over all ranks.

On *square* grids (16, 64, 256 ranks) this kernel is an exact distributed
CG: rank ``(i, j)`` owns dense block ``A[i, j]`` of a deterministic SPD
matrix and the column-replicated vector blocks ``x_j, r_j, p_j``; the row
butterfly assembles ``q_i = (A p)_i`` and the transpose exchange converts
it to column distribution.  Tests verify true CG convergence.  On
rectangular power-of-two grids (8, 32, 128 ranks, where NPB uses its
``reduce_exch_proc`` half-row pairing) the same message schedule runs in
*pattern mode* with bounded surrogate arithmetic — Table I and Fig. 8 only
depend on the schedule.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ..errors import ConfigError
from ..simmpi.api import MpiApi
from ..simmpi.topology import is_power_of_two
from .base import RankProgram

__all__ = ["CGKernel", "cg_grid"]


def cg_grid(size: int) -> tuple[int, int]:
    """NPB CG process grid ``(nprows, npcols)``: powers of two with
    ``npcols == nprows`` (even log2) or ``npcols == 2 * nprows``."""
    if not is_power_of_two(size):
        raise ConfigError(f"CG needs a power-of-two rank count, got {size}")
    log2 = size.bit_length() - 1
    nprows = 1 << (log2 // 2)
    npcols = size // nprows
    return nprows, npcols


#: (n, seed) -> shared SPD matrix / rhs vector.  Every rank builds the
#: *same* deterministic operator, so at 4K ranks rebuilding it per rank is
#: p× redundant O(n^3) work (the dominant setup cost of large exact-mode
#: worlds).  The cached arrays are frozen read-only; ranks only ever take
#: views (``a_block``) or copies (``b_j.copy()``), never mutate them.
_MATRIX_CACHE: dict[tuple[int, int], np.ndarray] = {}
_RHS_CACHE: dict[tuple[int, int], np.ndarray] = {}


def _spd_matrix(n: int, seed: int = 2011) -> np.ndarray:
    """Deterministic well-conditioned SPD matrix (same on every rank)."""
    key = (n, seed)
    a = _MATRIX_CACHE.get(key)
    if a is None:
        rng = np.random.default_rng(seed)
        m = rng.standard_normal((n, n)) / np.sqrt(n)
        a = m.T @ m + np.eye(n)
        a.setflags(write=False)
        _MATRIX_CACHE[key] = a
    return a


def _rhs_vector(n: int, seed: int = 99) -> np.ndarray:
    """Deterministic right-hand side (same on every rank), cached like the
    matrix — callers must copy before mutating."""
    key = (n, seed)
    b = _RHS_CACHE.get(key)
    if b is None:
        b = np.random.default_rng(seed).standard_normal(n)
        b.setflags(write=False)
        _RHS_CACHE[key] = b
    return b


class CGKernel(RankProgram):
    """Distributed CG with the NPB CG communication skeleton.

    Parameters
    ----------
    niters:
        CG iterations (one NPB conjugate-gradient inner loop).
    block:
        Column-block length per rank.
    compute_time:
        Virtual seconds charged per local mat-vec.
    """

    TAG_BUTTERFLY = 100
    TAG_TRANSPOSE = 101

    def __init__(self, rank: int, size: int, niters: int = 25, block: int = 8,
                 compute_time: float = 0.0):
        super().__init__(rank, size)
        self.nprows, self.npcols = cg_grid(size)
        self.row = rank // self.npcols
        self.col = rank % self.npcols
        self.exact = self.nprows == self.npcols
        self.compute_time = compute_time
        if self.exact:
            n = self.nprows * block
            a = _spd_matrix(n)
            self.a_block = a[
                self.row * block:(self.row + 1) * block,
                self.col * block:(self.col + 1) * block,
            ]
            b = _rhs_vector(n)  # same rhs on all ranks
            b_j = b[self.col * block:(self.col + 1) * block]
        else:
            self.a_block = np.eye(block) * 0.5
            rng = np.random.default_rng(99 + self.col)
            b_j = rng.standard_normal(block)
        self.state = {
            "it": 0,
            "niters": niters,
            "x": np.zeros(block),
            "r": b_j.copy(),
            "p": b_j.copy(),
            "rho": float("nan"),
            "res_history": [],
        }

    # -- grid helpers ----------------------------------------------------
    def _row_partners(self) -> list[int]:
        base = self.row * self.npcols
        return [
            base + (self.col ^ (1 << b))
            for b in range(self.npcols.bit_length() - 1)
        ]

    def _transpose_partner(self) -> int:
        if self.exact:
            return self.col * self.npcols + self.row
        # rectangular grid: NPB pairs the two column halves of the row
        half = self.npcols // 2
        return self.row * self.npcols + (self.col + half) % self.npcols

    def run(self, api: MpiApi) -> Generator[Any, Any, None]:
        st = self.state
        partners = self._row_partners()
        tpartner = self._transpose_partner()
        scale = 1.0 / self.nprows  # column replication factor in dot products
        while st["it"] < st["niters"]:
            # partial q = A[i, j] @ p_j, then row butterfly sums over j
            q = self.a_block @ st["p"]
            if self.compute_time:
                yield api.compute(self.compute_time)
            for peer in partners:
                yield api.send(peer, q.copy(), tag=self.TAG_BUTTERFLY)
                other = yield api.recv(peer, tag=self.TAG_BUTTERFLY)
                q = q + other
            # transpose exchange: row-distributed q_i -> column-distributed q_j
            if tpartner != api.rank:
                yield api.send(tpartner, q.copy(), tag=self.TAG_TRANSPOSE)
                q = yield api.recv(tpartner, tag=self.TAG_TRANSPOSE)
            pq = yield from api.allreduce(float(st["p"] @ q) * scale)
            rho = yield from api.allreduce(float(st["r"] @ st["r"]) * scale)
            if self.exact:
                alpha = rho / pq if pq else 0.0
                st["x"] = st["x"] + alpha * st["p"]
                st["r"] = st["r"] - alpha * q
                rho_new = yield from api.allreduce(
                    float(st["r"] @ st["r"]) * scale
                )
                beta = rho_new / rho if rho else 0.0
                st["p"] = st["r"] + beta * st["p"]
            else:
                # pattern mode: same schedule, bounded surrogate update
                st["x"] = np.tanh(st["x"] + 0.1 * q)
                st["r"] = 0.9 * st["r"]
                rho_new = yield from api.allreduce(
                    float(st["r"] @ st["r"]) * scale
                )
                st["p"] = st["r"] + 0.5 * st["p"]
            st["rho"] = rho_new
            st["res_history"].append(rho_new)
            st["it"] += 1
            yield api.maybe_checkpoint()

    def result(self) -> dict[str, Any]:
        return {"x": self.state["x"], "rho": self.state["rho"],
                "res_history": list(self.state["res_history"])}
