"""MG — multigrid V-cycle communication pattern (NPB MG).

NPB MG solves a 3-D Poisson problem with a V-cycle over a hierarchy of
grids.  Ranks form a 3-D process grid; at hierarchy level ``l`` each rank
exchanges face halos with its ±1 neighbours *at stride ``2^l``* in every
dimension (coarser levels talk to more distant ranks — the widening bands
of the paper's Fig. 8, right), then the cycle walks back down with the
same exchanges.  A norm all-reduce closes each iteration.

The kernel performs a genuine (toy) V-cycle on local blocks — smoothing,
restriction, prolongation — so its output is deterministic and testable,
while the exchange schedule matches MG's.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ..errors import ConfigError
from ..simmpi.api import MpiApi
from ..simmpi.topology import CartGrid, balanced_dims
from .base import RankProgram

__all__ = ["MGKernel"]


class MGKernel(RankProgram):
    """3-D multigrid-pattern kernel.

    Parameters
    ----------
    niters:
        Number of V-cycles.
    levels:
        Hierarchy depth; level ``l`` exchanges with neighbours at stride
        ``2^l`` (clamped to the grid extent).
    block:
        Local block edge length (payload sizes shrink with level, like
        MG's coarsening).
    """

    TAG_BASE = 200  # + level * 8 + direction

    def __init__(self, rank: int, size: int, niters: int = 12, levels: int = 3,
                 block: int = 8, compute_time: float = 0.0):
        super().__init__(rank, size)
        self.grid = CartGrid(balanced_dims(size, 3), periodic=True)
        self.levels = levels
        self.compute_time = compute_time
        rng = np.random.default_rng(777 + rank)
        self.state = {
            "it": 0,
            "niters": niters,
            "u": rng.standard_normal(block),
            "norm": 0.0,
        }

    def _neighbors_at(self, rank: int, stride: int) -> list[tuple[int, int]]:
        """(direction_id, peer) pairs for ±stride along each dimension."""
        out = []
        for dim in range(self.grid.ndims):
            if self.grid.dims[dim] == 1:
                continue
            step = stride % self.grid.dims[dim]
            if step == 0:
                step = self.grid.dims[dim] // 2 or 1
            for di, disp in enumerate((-step, +step)):
                peer = self.grid.shift(rank, dim, disp)
                if peer is not None and peer != rank:
                    out.append((dim * 2 + di, peer))
        return out

    def _exchange(self, api: MpiApi, level: int, data: np.ndarray):
        """Face exchange at hierarchy level ``level``; returns neighbour sum."""
        acc = np.zeros_like(data)
        pairs = self._neighbors_at(api.rank, 1 << level)
        tag = self.TAG_BASE + level * 8
        for d, peer in pairs:
            yield api.send(peer, data.copy(), tag=tag + d)
        for d, peer in pairs:
            # matching receive: my direction d pairs with the peer's
            # opposite direction (d ^ 1)
            other = yield api.recv(peer, tag=tag + (d ^ 1))
            acc += other
        return acc

    def run(self, api: MpiApi) -> Generator[Any, Any, None]:
        st = self.state
        while st["it"] < st["niters"]:
            u = st["u"]
            residues = []
            # downward sweep: smooth + restrict at each level
            for level in range(self.levels):
                halo = yield from self._exchange(api, level, u)
                u = 0.5 * u + 0.5 * halo / max(1, len(self._neighbors_at(api.rank, 1 << level)))
                residues.append(u)
                u = 0.5 * (u[0::2] + u[1::2]) if len(u) > 1 else u  # restrict
                if self.compute_time:
                    yield api.compute(self.compute_time)
            # upward sweep: prolong + smooth
            for level in range(self.levels - 1, -1, -1):
                u = np.repeat(u, 2)[: len(residues[level])] + residues[level]
                halo = yield from self._exchange(api, level, u)
                u = 0.5 * u + 0.5 * halo / max(1, len(self._neighbors_at(api.rank, 1 << level)))
                if self.compute_time:
                    yield api.compute(self.compute_time)
            st["u"] = u / (1.0 + np.abs(u).max())  # keep bounded
            st["norm"] = yield from api.allreduce(float(u @ u))
            st["it"] += 1
            yield api.maybe_checkpoint()

    def result(self) -> dict[str, Any]:
        return {"u": self.state["u"], "norm": self.state["norm"]}
