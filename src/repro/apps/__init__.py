"""``repro.apps`` — send-deterministic mini-kernels.

Five NAS-pattern kernels (CG, MG, FT, LU, BT/SP — the Table I set), generic
stencils and the NetPIPE-style ping-pong of Fig. 6.  Every kernel follows
the :class:`~repro.apps.base.RankProgram` contract: restartable from a
snapshot and send-deterministic by construction.
"""

from .base import RankProgram
from .bt import ADIKernel, BTKernel
from .cg import CGKernel, cg_grid
from .ft import FTKernel
from .is_sort import ISKernel
from .lu import LUKernel
from .mg import MGKernel
from .pingpong import DEFAULT_SIZES, PingPong
from .reduce_tree import ReduceTreeKernel
from .sp import SPKernel
from .stencil import Stencil1D, Stencil2D

#: the Table I kernel set, keyed the way the paper's rows are
TABLE1_KERNELS = {
    "MG": MGKernel,
    "LU": LUKernel,
    "FT": FTKernel,
    "CG": CGKernel,
    "BT": BTKernel,
}

__all__ = [
    "RankProgram",
    "ADIKernel",
    "BTKernel",
    "CGKernel",
    "cg_grid",
    "FTKernel",
    "ISKernel",
    "LUKernel",
    "MGKernel",
    "PingPong",
    "ReduceTreeKernel",
    "DEFAULT_SIZES",
    "SPKernel",
    "Stencil1D",
    "Stencil2D",
    "TABLE1_KERNELS",
]
