"""Rank-program contract for send-deterministic applications.

A :class:`RankProgram` is a restartable, send-deterministic SPMD program:

* ``run(api)`` is a generator producing simulator ops; it must *resume*
  from whatever position the program state describes, so that restoring a
  snapshot and calling ``run`` again re-executes from the checkpoint;
* ``snapshot()`` returns a deep, picklable copy of the full program state;
* ``restore(state)`` reinstates a snapshot (the state object passed in is
  owned by the checkpoint store — implementations must copy it).

Send-determinism contract (paper Section II-A): for a fixed configuration,
the sequence of messages each rank sends must be identical in every correct
execution, regardless of the order in which non-causally-related messages
are delivered.  Programs therefore must not branch on reception *order*
(branching on received *values* is fine when the values themselves are
deterministic), must not read wall-clock time, and must draw randomness
only from seeded generators stored in their state.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import Any, Generator

from ..simmpi.api import MpiApi

__all__ = ["RankProgram", "iterate_with_checkpoints"]


class RankProgram(ABC):
    """Base class for simulated rank programs.

    Subclasses keep *all* mutable execution state in ``self.state`` (a dict
    or dataclass) so the default ``snapshot``/``restore`` work; programs
    with bespoke state layouts override both.
    """

    def __init__(self, rank: int, size: int):
        self.rank = rank
        self.size = size
        self.state: dict[str, Any] = {}

    @abstractmethod
    def run(self, api: MpiApi) -> Generator[Any, Any, None]:
        """The program body; must resume from ``self.state``."""

    def snapshot(self) -> Any:
        """Deep copy of the program state (application-level checkpoint)."""
        return copy.deepcopy(self.state)

    def restore(self, state: Any) -> None:
        """Reinstate a snapshot taken by :meth:`snapshot`."""
        self.state = copy.deepcopy(state)

    # Convenience for result collection in tests/benchmarks -------------
    def result(self) -> Any:
        """The program's final output (kernel-specific; default: state)."""
        return self.state


def iterate_with_checkpoints(program: RankProgram, api: MpiApi, body, niters_key: str = "it",
                             total_key: str = "niters"):
    """Drive ``body(it)`` for the remaining iterations with checkpoint offers.

    A shared helper for iterative kernels: resumes at ``state[niters_key]``,
    offers an (uncoordinated) checkpoint opportunity after every iteration,
    and advances the iteration counter *before* the offer so a restored
    program does not redo the completed iteration.
    """
    while program.state[niters_key] < program.state[total_key]:
        yield from body(program.state[niters_key])
        program.state[niters_key] += 1
        yield api.maybe_checkpoint()
