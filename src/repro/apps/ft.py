"""FT — 3-D FFT transpose communication pattern (NPB FT).

NPB FT computes a 3-D FFT with a 1-D (slab) or 2-D (pencil) decomposition;
the distributed dimension is exchanged with a **global transpose**, i.e. an
``MPI_Alltoall`` over all ranks, once (inverse+forward) per time step, plus
a checksum all-reduce.  The dense all-to-all is why clustering helps FT
least in Table I (37-47 % of messages logged regardless of clustering —
"FT uses many all-to-all communications and so clustering has a limited
effect").

The kernel evolves a small spectral state with genuine per-rank DFTs on
local slabs and a real all-to-all transpose each iteration, so results are
deterministic and testable.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ..simmpi.api import MpiApi
from .base import RankProgram

__all__ = ["FTKernel"]


class FTKernel(RankProgram):
    """All-to-all transpose kernel with the NPB FT schedule.

    Parameters
    ----------
    niters:
        Number of time steps (NPB FT class D runs 25).
    slab:
        Rows per rank of the distributed array (payload scale).
    """

    def __init__(self, rank: int, size: int, niters: int = 10, slab: int = 4,
                 compute_time: float = 0.0):
        super().__init__(rank, size)
        self.compute_time = compute_time
        rng = np.random.default_rng(4242 + rank)
        # local slab: ``slab`` rows x ``size`` columns (one column block per
        # destination rank in the transpose)
        self.state = {
            "it": 0,
            "niters": niters,
            "slab_data": rng.standard_normal((slab, size)) * 0.1,
            "checksum": 0.0,
        }

    def run(self, api: MpiApi) -> Generator[Any, Any, None]:
        st = self.state
        while st["it"] < st["niters"]:
            data = st["slab_data"]
            # local 1-D FFT pass along the resident dimension
            spectral = np.fft.rfft(data, axis=0).real
            spectral = np.vstack([spectral, np.zeros((data.shape[0] - spectral.shape[0],
                                                      data.shape[1]))])[: data.shape[0]]
            if self.compute_time:
                yield api.compute(self.compute_time)
            # global transpose: column block j goes to rank j
            blocks = [spectral[:, j:j + 1].copy() for j in range(api.size)]
            received = yield from api.alltoall(blocks)
            st["slab_data"] = np.hstack(received)
            # evolve + damp to keep values bounded and iteration-dependent
            st["slab_data"] = np.tanh(st["slab_data"] + 0.01 * (st["it"] + 1))
            st["checksum"] = yield from api.allreduce(float(st["slab_data"].sum()))
            st["it"] += 1
            yield api.maybe_checkpoint()

    def result(self) -> dict[str, Any]:
        return {"checksum": self.state["checksum"]}
