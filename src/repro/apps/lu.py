"""LU — SSOR pipelined-wavefront communication pattern (NPB LU).

NPB LU applies symmetric successive over-relaxation to a block-structured
system on a 2-D process grid.  Each iteration sweeps a wavefront from the
north-west corner to the south-east corner — every rank *receives from
north and west, computes, then sends to south and east* — followed by the
reverse sweep (receive from south/east, send to north/west), with the
sweep pipelined over ``nblocks`` k-planes.  Periodic norm all-reduces
close the time step.  The resulting pattern is strictly nearest-neighbour
on a non-periodic 2-D grid, which is why LU clusters well in Table I.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ..simmpi.api import MpiApi
from ..simmpi.topology import CartGrid, balanced_dims
from .base import RankProgram

__all__ = ["LUKernel"]


class LUKernel(RankProgram):
    """2-D wavefront kernel with the NPB LU (SSOR) schedule.

    Parameters
    ----------
    niters:
        SSOR time steps.
    nblocks:
        k-plane pipeline depth per sweep (NPB pipelines the k loop).
    block:
        Local block edge length (payload scale).
    """

    TAG_LOWER = 300  # + plane parity
    TAG_UPPER = 301

    def __init__(self, rank: int, size: int, niters: int = 8, nblocks: int = 4,
                 block: int = 6, compute_time: float = 0.0):
        super().__init__(rank, size)
        self.grid = CartGrid(balanced_dims(size, 2), periodic=False)
        self.nblocks = nblocks
        self.compute_time = compute_time
        rng = np.random.default_rng(909 + rank)
        self.state = {
            "it": 0,
            "niters": niters,
            "u": rng.standard_normal((block, block)) * 0.1,
            "rsdnm": 0.0,
        }

    def run(self, api: MpiApi) -> Generator[Any, Any, None]:
        g = self.grid
        north = g.shift(api.rank, 0, -1)
        south = g.shift(api.rank, 0, +1)
        west = g.shift(api.rank, 1, -1)
        east = g.shift(api.rank, 1, +1)
        st = self.state
        while st["it"] < st["niters"]:
            u = st["u"]
            # lower-triangular sweep (blts): NW -> SE wavefront, pipelined
            for _plane in range(self.nblocks):
                inflow = np.zeros(u.shape[1])
                if north is not None:
                    inflow = inflow + (yield api.recv(north, tag=self.TAG_LOWER))
                if west is not None:
                    inflow = inflow + (yield api.recv(west, tag=self.TAG_LOWER))
                u = 0.9 * u + 0.1 * inflow  # relaxation fed by the wavefront
                if self.compute_time:
                    yield api.compute(self.compute_time)
                if south is not None:
                    yield api.send(south, u[-1, :].copy(), tag=self.TAG_LOWER)
                if east is not None:
                    yield api.send(east, u[:, -1].copy(), tag=self.TAG_LOWER)
            # upper-triangular sweep (buts): SE -> NW wavefront
            for _plane in range(self.nblocks):
                inflow = np.zeros(u.shape[1])
                if south is not None:
                    inflow = inflow + (yield api.recv(south, tag=self.TAG_UPPER))
                if east is not None:
                    inflow = inflow + (yield api.recv(east, tag=self.TAG_UPPER))
                u = 0.9 * u + 0.1 * inflow
                if self.compute_time:
                    yield api.compute(self.compute_time)
                if north is not None:
                    yield api.send(north, u[0, :].copy(), tag=self.TAG_UPPER)
                if west is not None:
                    yield api.send(west, u[:, 0].copy(), tag=self.TAG_UPPER)
            st["u"] = np.tanh(u)
            st["rsdnm"] = yield from api.allreduce(float(np.abs(u).sum()))
            st["it"] += 1
            yield api.maybe_checkpoint()

    def result(self) -> dict[str, Any]:
        return {"u": self.state["u"], "rsdnm": self.state["rsdnm"]}
