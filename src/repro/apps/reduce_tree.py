"""Anonymous-receive reduction tree — an ANY_SOURCE send-deterministic app.

Send-determinism does not forbid ``MPI_ANY_SOURCE``: it only requires the
*send* sequence to be independent of reception interleavings.  This kernel
is the canonical such case — a binomial reduction where each parent
receives its children's partial sums with ``ANY_SOURCE`` and an
order-insensitive combine, then forwards one message up.  Reception order
varies freely (and does vary across network jitter seeds); the sends do
not.

Commutativity alone is *not* enough for that guarantee in floating point:
``(a + b) + c`` and ``(a + c) + b`` differ in the last ulps, so a running
sum over an ANY_SOURCE receive loop makes send *contents* depend on
arrival order — bit-exact send-determinism silently breaks the moment a
recovery replays children in a different (causally equivalent) order.
The chaos harness found exactly that; the combine therefore buffers the
children's values and adds them in sorted order, which is a pure function
of the value multiset.

Included because the paper's *phase* machinery exists precisely for
applications with anonymous receives: during recovery, replayed messages
from different senders may race into an ``ANY_SOURCE`` receive, and
causal-delivery ordering keeps the matching equivalent to some correct
execution.  Tests drive failures through this kernel to exercise that
path.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ..simmpi.api import ANY_SOURCE, MpiApi
from .base import RankProgram

__all__ = ["ReduceTreeKernel"]


class ReduceTreeKernel(RankProgram):
    """Repeated binomial all-reduce with ANY_SOURCE parents.

    Each iteration: every rank contributes ``value``; parents combine
    their children's messages received with ``ANY_SOURCE`` in sorted
    order (order-insensitive despite float non-associativity); rank 0
    broadcasts the total back down the same tree; every rank folds the
    total into its state.
    """

    TAG_UP = 600
    TAG_DOWN = 601

    def __init__(self, rank: int, size: int, niters: int = 10,
                 compute_time: float = 0.0):
        super().__init__(rank, size)
        self.compute_time = compute_time
        rng = np.random.default_rng(31 + rank)
        self.state = {
            "it": 0,
            "niters": niters,
            "value": float(rng.uniform(0.5, 1.5)),
            "totals": [],
        }

    def _children(self, api: MpiApi) -> list[int]:
        out = []
        mask = 1
        while mask < api.size:
            if api.rank & (mask - 1) == 0 and api.rank | mask != api.rank:
                child = api.rank | mask
                if child < api.size:
                    out.append(child)
            if api.rank & mask:
                break
            mask <<= 1
        return out

    def _parent(self, api: MpiApi) -> int | None:
        """Binomial-tree parent: the rank with the lowest set bit cleared."""
        if api.rank == 0:
            return None
        return api.rank & (api.rank - 1)

    def run(self, api: MpiApi) -> Generator[Any, Any, None]:
        st = self.state
        children = self._children(api)
        parent = self._parent(api)
        while st["it"] < st["niters"]:
            acc = st["value"] * (st["it"] + 1)
            # upward pass: ANY_SOURCE — children arrive in any order, so
            # buffer and combine in sorted order (float addition is not
            # associative; summing in arrival order would leak reception
            # interleavings into the send contents)
            parts = []
            for _ in children:
                parts.append((yield api.recv(ANY_SOURCE, tag=self.TAG_UP)))
            for part in sorted(parts):
                acc += part
            if self.compute_time:
                yield api.compute(self.compute_time)
            if parent is not None:
                yield api.send(parent, acc, tag=self.TAG_UP)
                total = yield api.recv(parent, tag=self.TAG_DOWN)
            else:
                total = acc
            for child in children:
                yield api.send(child, total, tag=self.TAG_DOWN)
            st["totals"].append(total)
            st["it"] += 1
            yield api.maybe_checkpoint()

    def result(self) -> list[float]:
        return list(self.state["totals"])
