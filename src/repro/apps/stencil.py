"""Generic iterative halo-exchange kernels (1-D and 2-D).

Not one of the NAS kernels, but the canonical send-deterministic workload:
a Jacobi-style sweep where each iteration exchanges boundary slabs with
grid neighbors then relaxes the local block.  Used throughout the test
suite because its result is easy to verify analytically (a 1-D averaging
stencil converges to the global mean) and every message is accounted for.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ..errors import ConfigError
from ..simmpi.api import MpiApi
from ..simmpi.topology import CartGrid, balanced_dims
from .base import RankProgram

__all__ = ["Stencil1D", "Stencil2D"]


class Stencil1D(RankProgram):
    """1-D three-point averaging stencil on a periodic ring.

    Each rank owns ``cells`` values initialised to ``rank`` (so the global
    field is a staircase); every iteration exchanges edge cells with both
    ring neighbors and applies ``u <- (left + u + right) / 3``.  After many
    iterations every value approaches the global mean ``(P - 1) / 2``.
    """

    TAG_LEFT = 10
    TAG_RIGHT = 11

    def __init__(self, rank: int, size: int, niters: int = 20, cells: int = 8,
                 compute_time: float = 0.0):
        super().__init__(rank, size)
        if size < 2:
            raise ConfigError("Stencil1D needs at least 2 ranks")
        self.compute_time = compute_time
        self.state = {
            "it": 0,
            "niters": niters,
            "u": np.full(cells, float(rank)),
        }

    def run(self, api: MpiApi) -> Generator[Any, Any, None]:
        left = (api.rank - 1) % api.size
        right = (api.rank + 1) % api.size
        while self.state["it"] < self.state["niters"]:
            u = self.state["u"]
            # send my edges; receive neighbors' edges
            yield api.send(left, u[0], tag=self.TAG_LEFT)
            yield api.send(right, u[-1], tag=self.TAG_RIGHT)
            from_right = yield api.recv(right, tag=self.TAG_LEFT)
            from_left = yield api.recv(left, tag=self.TAG_RIGHT)
            if self.compute_time:
                yield api.compute(self.compute_time)
            padded = np.concatenate(([from_left], u, [from_right]))
            self.state["u"] = (padded[:-2] + padded[1:-1] + padded[2:]) / 3.0
            self.state["it"] += 1
            yield api.maybe_checkpoint()

    def result(self) -> np.ndarray:
        return self.state["u"]


class Stencil2D(RankProgram):
    """2-D five-point averaging stencil on a periodic process grid.

    Exercises four-neighbor halo exchange — the communication skeleton of
    the paper's LU/BT/SP kernels — with a verifiable averaging dynamics.
    """

    TAG_N, TAG_S, TAG_E, TAG_W = 20, 21, 22, 23

    def __init__(self, rank: int, size: int, niters: int = 10, block: int = 4,
                 compute_time: float = 0.0):
        super().__init__(rank, size)
        self.grid = CartGrid(balanced_dims(size, 2), periodic=True)
        self.compute_time = compute_time
        self.state = {
            "it": 0,
            "niters": niters,
            "u": np.full((block, block), float(rank)),
        }

    def run(self, api: MpiApi) -> Generator[Any, Any, None]:
        g = self.grid
        north = g.shift(api.rank, 0, -1)
        south = g.shift(api.rank, 0, +1)
        west = g.shift(api.rank, 1, -1)
        east = g.shift(api.rank, 1, +1)
        while self.state["it"] < self.state["niters"]:
            u = self.state["u"]
            yield api.send(north, u[0, :].copy(), tag=self.TAG_N)
            yield api.send(south, u[-1, :].copy(), tag=self.TAG_S)
            yield api.send(west, u[:, 0].copy(), tag=self.TAG_W)
            yield api.send(east, u[:, -1].copy(), tag=self.TAG_E)
            from_south = yield api.recv(south, tag=self.TAG_N)
            from_north = yield api.recv(north, tag=self.TAG_S)
            from_east = yield api.recv(east, tag=self.TAG_W)
            from_west = yield api.recv(west, tag=self.TAG_E)
            if self.compute_time:
                yield api.compute(self.compute_time)
            up = np.vstack([from_north, u[:-1, :]])
            down = np.vstack([u[1:, :], from_south])
            left = np.column_stack([from_west, u[:, :-1]])
            right = np.column_stack([u[:, 1:], from_east])
            self.state["u"] = (u + up + down + left + right) / 5.0
            self.state["it"] += 1
            yield api.maybe_checkpoint()

    def result(self) -> np.ndarray:
        return self.state["u"]
